#!/usr/bin/env python3
"""Insert one-line doc comments for undocumented public items flagged by
`cargo build` with #![warn(missing_docs)].

Only used for trivial accessors; substantive items are documented by hand.
Docs are derived from the item name via a small phrase table; anything not
recognized gets a name-derived sentence that the author then reviews.
"""
import json
import re
import subprocess
import sys
from collections import defaultdict

PHRASES = {
    "new": "Create a new instance with default state.",
    "ZERO": "The zero value.",
    "NULL": "The null address (never mapped).",
    "get": "Current value.",
    "inc": "Increment by one.",
    "add": "Add `n` to the value.",
    "reset": "Reset to zero, returning the previous value.",
    "as_nanos": "Value in nanoseconds.",
    "as_micros_f64": "Value in microseconds, as a float (reporting only).",
    "as_secs_f64": "Value in seconds, as a float (reporting only).",
    "is_zero": "True if this is the zero value.",
    "max": "The larger of the two values.",
    "min": "The smaller of the two values.",
    "as_u64": "Raw integer value.",
    "as_bytes_per_sec": "Rate in bytes per second.",
    "len": "Number of contained elements.",
    "is_empty": "True if there are no elements.",
    "name": "Human-readable name (diagnostics).",
    "count": "Number of recorded samples.",
    "mean": "Arithmetic mean of recorded samples (0 if none).",
    "record": "Record one sample.",
    "record_duration": "Record a duration sample in nanoseconds.",
    "busy": "Accumulated busy time.",
    "offset": "Address `delta` bytes past this one.",
    "id": "Stable identifier.",
    "ops": "Operation count.",
    "bytes": "Byte count.",
    "mem": "This host's memory arena.",
    "cpu": "This host's CPU busy-time meter.",
    "latency": "Propagation latency.",
    "bandwidth": "Configured wire rate.",
}


def main(packages):
    cmd = ["cargo", "build", "--message-format=json"] + sum(
        [["-p", p] for p in packages], []
    )
    out = subprocess.run(cmd, capture_output=True, text=True).stdout
    # file -> list of (line_number, item_name)
    targets = defaultdict(list)
    for line in out.splitlines():
        try:
            msg = json.loads(line)
        except json.JSONDecodeError:
            continue
        if msg.get("reason") != "compiler-message":
            continue
        d = msg["message"]
        if "missing documentation" not in d.get("message", ""):
            continue
        span = d["spans"][0]
        text = span["text"][0]["text"] if span["text"] else ""
        m = re.search(r"(?:fn|const|struct|enum|static)\s+(\w+)", text)
        name = m.group(1) if m else None
        if name is None:
            m = re.search(r"pub\s+(\w+)\s*:", text)  # struct field
            name = m.group(1) if m else "item"
        targets[span["file_name"]].append((span["line_start"], name, text.strip()))

    for fname, items in targets.items():
        with open(fname) as f:
            lines = f.readlines()
        # Insert from the bottom up so line numbers stay valid.
        for lineno, name, text in sorted(items, reverse=True):
            phrase = PHRASES.get(name)
            if phrase is None:
                words = name.replace("_", " ")
                phrase = f"{words[0].upper()}{words[1:]}."
            indent = re.match(r"\s*", lines[lineno - 1]).group(0)
            lines.insert(lineno - 1, f"{indent}/// {phrase}\n")
            print(f"{fname}:{lineno}: {name} -> {phrase}")
        with open(fname, "w") as f:
            f.writelines(lines)


if __name__ == "__main__":
    main(sys.argv[1:] or ["simnet"])
