#!/usr/bin/env sh
# Local CI: build, test, lint. Run from the repo root; fails fast.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release (warnings are errors)"
RUSTFLAGS="${RUSTFLAGS:-} -D warnings" cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> chaos suite (deterministic fault injection)"
cargo test -q --test chaos

echo "==> R-F7 overlap smoke (pipelined two-phase sweep)"
f7_out=$(cargo run --release -p mpio-dafs-bench --bin f7_overlap -- --smoke)
echo "$f7_out"
echo "$f7_out" | grep -q "pipelined" || {
    echo "ci: R-F7 output missing the pipelined column" >&2
    exit 1
}

echo "==> R-F8 server-scaling smoke (striped multi-server DAFS)"
f8_out=$(cargo run --release -p mpio-dafs-bench --bin f8_server_scaling -- --smoke)
echo "$f8_out"
echo "$f8_out" | grep -q "bit-identical" || {
    echo "ci: R-F8 output missing the striped-vs-raw identity note" >&2
    exit 1
}

echo "==> R-F9 list-I/O smoke (vectored ops vs data sieving)"
f9_out=$(cargo run --release -p mpio-dafs-bench --bin f9_listio -- --smoke)
echo "$f9_out"
echo "$f9_out" | grep -q "byte-identical" || {
    echo "ci: R-F9 output missing the cross-routing identity note" >&2
    exit 1
}

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "ci: OK"
