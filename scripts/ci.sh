#!/usr/bin/env sh
# Local CI: build, test, lint. Run from the repo root; fails fast.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release (warnings are errors)"
RUSTFLAGS="${RUSTFLAGS:-} -D warnings" cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> chaos suite (deterministic fault injection)"
cargo test -q --test chaos

echo "==> R-F7 overlap smoke (pipelined two-phase sweep)"
f7_out=$(cargo run --release -p mpio-dafs-bench --bin f7_overlap -- --smoke)
echo "$f7_out"
echo "$f7_out" | grep -q "pipelined" || {
    echo "ci: R-F7 output missing the pipelined column" >&2
    exit 1
}

echo "==> R-F8 server-scaling smoke (striped multi-server DAFS)"
f8_out=$(cargo run --release -p mpio-dafs-bench --bin f8_server_scaling -- --smoke)
echo "$f8_out"
echo "$f8_out" | grep -q "bit-identical" || {
    echo "ci: R-F8 output missing the striped-vs-raw identity note" >&2
    exit 1
}

echo "==> R-F9 list-I/O smoke (vectored ops vs data sieving)"
f9_out=$(cargo run --release -p mpio-dafs-bench --bin f9_listio -- --smoke)
echo "$f9_out"
echo "$f9_out" | grep -q "byte-identical" || {
    echo "ci: R-F9 output missing the cross-routing identity note" >&2
    exit 1
}

echo "==> R-X5 client-cache smoke (lease-coherent re-read sweep)"
x5_out=$(cargo run --release -p mpio-dafs-bench --bin x5_small_op_cache -- --smoke)
echo "$x5_out"
echo "$x5_out" | grep -q "cached+loss" || {
    echo "ci: R-X5 output missing the degraded cached+loss row" >&2
    exit 1
}
echo "$x5_out" | grep -q "scale-out" || {
    echo "ci: R-X5 output missing the striped scale-out ladder" >&2
    exit 1
}

echo "==> R-F10 switched-fabric smoke (incast/oversubscription sweep)"
f10_out=$(cargo run --release -p mpio-dafs-bench --bin f10_fabric_sweep -- --smoke)
echo "$f10_out"
echo "$f10_out" | grep -q "oversub" || {
    echo "ci: R-F10 output missing the oversubscription sweep" >&2
    exit 1
}

echo "==> X-6 QoS-fairness smoke (multi-tenant WFQ vs FIFO)"
# The binary's own asserts are the gate: WFQ small-op p99 must beat FIFO
# (the >=5x bound is enforced on the full-size run inside all_experiments
# below, where the quantiles are fine enough to pin a ratio).
x6_out=$(cargo run --release -p mpio-dafs-bench --bin x6_qos_fairness -- --smoke)
echo "$x6_out"
echo "$x6_out" | grep -q "deadline boost" || {
    echo "ci: X-6 output missing the deadline-boost note" >&2
    exit 1
}

echo "==> R-K1 kernel-speed floor (wall-clock events/s regression gate)"
# The simulator itself must stay fast: the smoke-size kernel microbench
# has to dispatch at least this many events per wall-clock second on
# every workload shape. The floor is ~10x below what the zero-copy /
# per-actor-condvar / same-timestamp-batching kernel measures on a quiet
# machine, so it only trips on a genuine dispatch-path regression, not
# scheduler noise.
cargo run --release -p mpio-dafs-bench --bin kernel_speed -- --smoke --floor 25000

echo "==> bench suite byte-identity under MPIO_DAFS_CACHE=disable"
# The client cache must be invisible when disabled: the full suite, run
# with the cache hint forced off via the env override, must emit exactly
# the checked-in goldens (which the default-env run also must match,
# since dafs_cache defaults to off). The same holds for the QoS
# scheduler: with MPIO_DAFS_SCHED unset (or =disable) the server's
# default FifoSched must be byte-identical in virtual time to the
# pre-scheduler dispatch loop, so the goldens double as that gate —
# X-6's fifo rows come from the same FifoSched path. Likewise
# MPIO_ROMIO_CB_CACHE=disable pins cache-aware collective I/O off: the
# two-phase sweep must take the plain list-I/O path bit-for-bit.
# Wall-clock lines are real elapsed time (nondeterministic by design):
# the per-table harness throughput notes in the rendered text, R-F10's
# embedded cell notes, and the R-K1 microbench (whose title carries the
# marker, excluding its whole JSON line). Both diffs filter them; every
# other line is compared byte-for-byte.
tmp_json=$(mktemp) tmp_txt=$(mktemp)
MPIO_DAFS_CACHE=disable MPIO_DAFS_SCHED=disable MPIO_ROMIO_CB_CACHE=disable \
    MPIO_DAFS_JSON="$tmp_json" \
    cargo run --release -p mpio-dafs-bench --bin all_experiments >"$tmp_txt"
grep -v 'wall-clock' bench_output.txt >"$tmp_txt.golden"
grep -v 'wall-clock' "$tmp_txt" >"$tmp_txt.got"
diff -u "$tmp_txt.golden" "$tmp_txt.got" || {
    echo "ci: bench_output.txt differs under MPIO_DAFS_CACHE=disable" >&2
    exit 1
}
grep -v 'wall-clock' BENCH_10.json >"$tmp_json.golden"
grep -v 'wall-clock' "$tmp_json" >"$tmp_json.got"
diff -u "$tmp_json.golden" "$tmp_json.got" || {
    echo "ci: BENCH_10.json differs under MPIO_DAFS_CACHE=disable" >&2
    exit 1
}

echo "==> R-F10 1024-client cell wall-clock budget"
# The 1024-client cell is the largest single simulation in the suite;
# same-timestamp pop batching keeps it dispatching well above this
# floor (~10x below a quiet-machine run), so a kernel or fabric
# regression that makes the big cells crawl fails CI instead of just
# making the suite slow. The note comes from the identity run above.
f10_rate=$(sed -n 's|.*1024-client s=4 o=1:1 cell ran [0-9]* sim events in [0-9.]*s (\([0-9]*\) events/s).*|\1|p' "$tmp_txt")
if [ -z "$f10_rate" ]; then
    echo "ci: R-F10 output missing the 1024-client cell wall-clock note" >&2
    exit 1
fi
if [ "$f10_rate" -lt 1200 ]; then
    echo "ci: R-F10 1024-client cell too slow: $f10_rate events/s (floor 1200)" >&2
    exit 1
fi
echo "1024-client cell: $f10_rate events/s (floor 1200)"

rm -f "$tmp_json" "$tmp_txt" "$tmp_txt.golden" "$tmp_txt.got" "$tmp_json.golden" "$tmp_json.got"

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "ci: OK"
