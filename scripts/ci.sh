#!/usr/bin/env sh
# Local CI: build, test, lint. Run from the repo root; fails fast.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> chaos suite (deterministic fault injection)"
cargo test -q --test chaos

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "ci: OK"
