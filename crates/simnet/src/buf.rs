//! Shared payload buffers: refcounted byte slabs with zero-cost subslicing,
//! plus a small freelist pool for short-lived wire frames.
//!
//! Every hop of the simulated data path used to re-own its payload —
//! `gather` built a fresh `Vec<u8>` per send, `memfs` reads returned
//! `to_vec` slices, and each port queue cloned frames again. [`Bytes`] makes
//! payload hand-off a refcount bump: one backing [`Slab`] is materialized at
//! the producer (a memfs page, a gathered send, a wire frame) and every
//! consumer downstream holds a cheap `(slab, offset, len)` view. Actual
//! copies remain only where the simulated machine genuinely copies — into
//! and out of a host's registered-memory arena ([`crate::HostMem`]).
//!
//! Slabs are immutable once published: a `Bytes` view can never observe a
//! later mutation (the aliasing property tested in `tests/determinism.rs`).
//! Writable storage that *shares* slabs (the memfs `Regular` file body)
//! clones-on-write via [`std::sync::Arc::make_mut`] — `Slab: Clone` exists
//! for exactly that.
//!
//! All accounting here is **wall-clock harness telemetry** (bytes alive,
//! peak, total materialized); it never feeds back into virtual time, so it
//! cannot perturb the deterministic timeline.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, Weak};

use parking_lot::Mutex;

/// Live payload bytes across all slabs (plain and pooled) in the process.
static ALIVE: AtomicU64 = AtomicU64::new(0);
/// High-water mark of [`ALIVE`].
static PEAK: AtomicU64 = AtomicU64::new(0);
/// Total payload bytes ever materialized into slabs (the "MiB simulated"
/// numerator for harness throughput).
static TOTAL: AtomicU64 = AtomicU64::new(0);

fn charge(n: usize) {
    if n == 0 {
        return;
    }
    TOTAL.fetch_add(n as u64, Ordering::Relaxed);
    let now = ALIVE.fetch_add(n as u64, Ordering::Relaxed) + n as u64;
    PEAK.fetch_max(now, Ordering::Relaxed);
}

fn discharge(n: usize) {
    if n != 0 {
        ALIVE.fetch_sub(n as u64, Ordering::Relaxed);
    }
}

/// Payload bytes currently alive (backing slabs still referenced).
pub fn bytes_alive() -> u64 {
    ALIVE.load(Ordering::Relaxed)
}

/// High-water mark of [`bytes_alive`] since process start.
pub fn bytes_peak() -> u64 {
    PEAK.load(Ordering::Relaxed)
}

/// Total payload bytes ever materialized into slabs since process start.
pub fn bytes_total() -> u64 {
    TOTAL.load(Ordering::Relaxed)
}

/// Reset the high-water mark to the currently-alive total, so the next
/// [`bytes_peak`] reading reports a per-interval peak (harness telemetry
/// around one benchmark run).
pub fn reset_bytes_peak() {
    PEAK.store(ALIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// One refcounted backing allocation. Immutable once shared; mutable only
/// through `Arc::make_mut` (which clones when other references exist —
/// copy-on-write, never mutation-in-place of shared data).
pub struct Slab {
    data: Vec<u8>,
    /// Bytes charged against the global accounting; adjusted by
    /// [`Slab::recharge`] after in-place growth.
    charged: usize,
}

impl Slab {
    /// Wrap a vector, charging its length to the global accounting.
    pub fn from_vec(data: Vec<u8>) -> Slab {
        charge(data.len());
        let charged = data.len();
        Slab { data, charged }
    }

    /// The stored bytes.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Mutable access to the backing vector. Only call on an unshared slab
    /// (e.g. via `Arc::make_mut`); call [`Slab::recharge`] afterwards if the
    /// length changed.
    pub fn data_mut(&mut self) -> &mut Vec<u8> {
        &mut self.data
    }

    /// Re-sync the global byte accounting after an in-place length change.
    pub fn recharge(&mut self) {
        let len = self.data.len();
        if len > self.charged {
            charge(len - self.charged);
        } else {
            discharge(self.charged - len);
        }
        self.charged = len;
    }

    /// Stored length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Clone for Slab {
    fn clone(&self) -> Slab {
        Slab::from_vec(self.data.clone())
    }
}

impl Drop for Slab {
    fn drop(&mut self) {
        discharge(self.charged);
    }
}

impl Deref for Slab {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for Slab {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Slab({} bytes)", self.data.len())
    }
}

/// A pooled backing buffer: on final release the vector returns to its
/// pool's freelist instead of the allocator.
struct PooledSlab {
    data: Vec<u8>,
    home: Weak<PoolState>,
}

impl Drop for PooledSlab {
    fn drop(&mut self) {
        discharge(self.data.len());
        if let Some(pool) = self.home.upgrade() {
            pool.put(std::mem::take(&mut self.data));
        }
    }
}

enum Repr {
    Plain(Arc<Slab>),
    Pooled(Arc<PooledSlab>),
}

impl Clone for Repr {
    fn clone(&self) -> Repr {
        match self {
            Repr::Plain(s) => Repr::Plain(s.clone()),
            Repr::Pooled(s) => Repr::Pooled(s.clone()),
        }
    }
}

/// A cheaply-cloneable view into a refcounted byte slab.
///
/// Cloning and subslicing are refcount/arithmetic only — no bytes move.
/// The backing storage is immutable for as long as any view exists, so a
/// frame delivered into a queue can never be mutated by a later writer.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
    off: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer (no backing allocation charge).
    pub fn new() -> Bytes {
        Bytes::from_vec(Vec::new())
    }

    /// Take ownership of a vector without copying it.
    pub fn from_vec(v: Vec<u8>) -> Bytes {
        Bytes::from_slab(Arc::new(Slab::from_vec(v)))
    }

    /// View an existing shared slab without copying (zero-copy handoff from
    /// storage that keeps the slab, e.g. a memfs file body).
    pub fn from_slab(slab: Arc<Slab>) -> Bytes {
        let len = slab.len();
        Bytes {
            repr: Repr::Plain(slab),
            off: 0,
            len,
        }
    }

    /// Copy a slice into a fresh backing slab (the one copy an inline path
    /// is allowed).
    pub fn copy_from_slice(src: &[u8]) -> Bytes {
        Bytes::from_vec(src.to_vec())
    }

    /// A zero-cost sub-view. Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&s) => s,
            Bound::Excluded(&s) => s + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&e) => e + 1,
            Bound::Excluded(&e) => e,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice {start}..{end} out of bounds for {} bytes",
            self.len
        );
        Bytes {
            repr: self.repr.clone(),
            off: self.off + start,
            len: end - start,
        }
    }

    /// The viewed bytes.
    pub fn as_slice(&self) -> &[u8] {
        let backing: &[u8] = match &self.repr {
            Repr::Plain(s) => s,
            Repr::Pooled(s) => &s.data,
        };
        &backing[self.off..self.off + self.len]
    }

    /// View length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Copy the view out into an owned vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::from_vec(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len)
    }
}

/// How many spare vectors a pool retains before excess buffers fall back to
/// the allocator.
const POOL_RETAIN: usize = 64;

struct PoolState {
    free: Mutex<Vec<Vec<u8>>>,
}

impl PoolState {
    fn put(&self, mut v: Vec<u8>) {
        v.clear();
        let mut free = self.free.lock();
        if free.len() < POOL_RETAIN {
            free.push(v);
        }
    }
}

/// A freelist of wire-frame buffers: [`BufPool::alloc`] hands out a
/// writable buffer (recycled when available), and freezing it into a
/// [`Bytes`] arranges for the vector to return to the pool when the last
/// view drops.
#[derive(Clone)]
pub struct BufPool {
    state: Arc<PoolState>,
}

impl BufPool {
    /// Create an empty pool.
    pub fn new() -> BufPool {
        BufPool {
            state: Arc::new(PoolState {
                free: Mutex::new(Vec::new()),
            }),
        }
    }

    /// A zero-filled writable buffer of `len` bytes, recycled from the
    /// freelist when possible.
    pub fn alloc(&self, len: usize) -> PoolBuf {
        let mut v = self.state.free.lock().pop().unwrap_or_default();
        v.resize(len, 0);
        PoolBuf {
            data: v,
            home: Arc::downgrade(&self.state),
        }
    }

    /// Buffers currently parked in the freelist (test/diagnostic hook).
    pub fn idle(&self) -> usize {
        self.state.free.lock().len()
    }
}

impl Default for BufPool {
    fn default() -> BufPool {
        BufPool::new()
    }
}

/// The process-wide frame pool used by the transport layers for short-lived
/// wire frames (gathered sends, TCP chunks).
pub fn frame_pool() -> &'static BufPool {
    static POOL: OnceLock<BufPool> = OnceLock::new();
    POOL.get_or_init(BufPool::new)
}

/// A writable, pool-backed staging buffer; freeze it into an immutable
/// [`Bytes`] once filled.
pub struct PoolBuf {
    data: Vec<u8>,
    home: Weak<PoolState>,
}

impl PoolBuf {
    /// Publish the buffer as an immutable shared payload. The backing
    /// vector rejoins the pool when the last `Bytes` view drops.
    pub fn freeze(self) -> Bytes {
        charge(self.data.len());
        let len = self.data.len();
        Bytes {
            repr: Repr::Pooled(Arc::new(PooledSlab {
                data: self.data,
                home: self.home,
            })),
            off: 0,
            len,
        }
    }
}

impl Deref for PoolBuf {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        &self.data
    }
}

impl std::ops::DerefMut for PoolBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The alive/peak globals are process-wide; tests that assert on them
    /// exactly must not overlap other slab-creating tests in this binary.
    static ACCOUNTING: Mutex<()> = Mutex::new(());

    #[test]
    fn views_share_one_backing() {
        let _serial = ACCOUNTING.lock();
        let b = Bytes::from_vec(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s, [2, 3, 4].as_slice());
        assert_eq!(s.slice(1..2), [3].as_slice());
        let c = b.clone();
        drop(b);
        assert_eq!(c, vec![1, 2, 3, 4, 5]);
        assert_eq!(c.slice(..0).len(), 0);
        assert_eq!(c.slice(5..).len(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oversized_slice_panics() {
        Bytes::from_vec(vec![0; 4]).slice(2..6);
    }

    #[test]
    fn slab_views_are_zero_copy() {
        let _serial = ACCOUNTING.lock();
        let slab = Arc::new(Slab::from_vec(b"page data".to_vec()));
        let view = Bytes::from_slab(slab.clone());
        assert_eq!(view, b"page data".as_slice());
        // Same backing allocation, not a copy.
        assert!(std::ptr::eq(view.as_slice().as_ptr(), slab.data().as_ptr()));
    }

    #[test]
    fn cow_slab_preserves_published_views() {
        let _serial = ACCOUNTING.lock();
        let mut file = Arc::new(Slab::from_vec(b"aaaa".to_vec()));
        let delivered = Bytes::from_slab(file.clone());
        // A later write while views are outstanding must clone, not mutate.
        let body = Arc::make_mut(&mut file);
        body.data_mut()[0] = b'z';
        body.recharge();
        assert_eq!(delivered, b"aaaa".as_slice());
        assert_eq!(file.data(), b"zaaa");
    }

    #[test]
    fn pool_recycles_buffers() {
        let _serial = ACCOUNTING.lock();
        let pool = BufPool::new();
        let mut buf = pool.alloc(8);
        buf.copy_from_slice(b"frame!!!");
        let frozen = buf.freeze();
        let copy = frozen.clone();
        assert_eq!(pool.idle(), 0);
        drop(frozen);
        assert_eq!(pool.idle(), 0, "live view must keep the buffer out");
        assert_eq!(copy, b"frame!!!".as_slice());
        drop(copy);
        assert_eq!(pool.idle(), 1, "last drop returns the vector");
        // Reallocation hands back a cleared buffer of the right size.
        let again = pool.alloc(3);
        assert_eq!(&again[..], &[0, 0, 0]);
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn accounting_tracks_alive_and_peak() {
        let _serial = ACCOUNTING.lock();
        let before = bytes_alive();
        let total_before = bytes_total();
        let b = Bytes::from_vec(vec![0; 1024]);
        let v = b.slice(..512);
        assert_eq!(bytes_alive(), before + 1024, "views add no charge");
        assert!(bytes_peak() >= before + 1024);
        assert_eq!(bytes_total(), total_before + 1024);
        drop(b);
        assert_eq!(bytes_alive(), before + 1024, "slab alive while viewed");
        drop(v);
        assert_eq!(bytes_alive(), before);
    }
}
