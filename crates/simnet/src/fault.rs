//! Seeded, deterministic fault injection.
//!
//! A [`FaultPlan`] describes the misbehaviour of the simulated network and
//! hosts: per-link packet loss probability, bounded latency jitter, link
//! down/up windows, and host crash/restart windows — all at virtual times.
//! Transports (tcpnet, via) consult the plan at each wire delivery; because
//! every random draw comes from one seeded [`Rng64`] and the simulation
//! schedule is deterministic, identical seeds replay identical fault
//! timelines, so chaos tests and the R-X4 loss sweep are bit-reproducible.
//!
//! The plan is passive: it only *judges* deliveries. The recovery machinery
//! (NFS retransmit, DAFS session reconnect, VIA error completions) lives in
//! the layers that own the affected state. Fault metrics (`sim.faults.*`)
//! and trace events are emitted only when a fault actually fires, so a run
//! with a plan that injects nothing is observably identical to a run with
//! no plan at all.
//!
//! ```
//! use simnet::fault::FaultPlan;
//! use simnet::units::*;
//!
//! let plan = FaultPlan::builder(0xBAD5EED)
//!     .loss(0.01)                // 1% of wire messages vanish
//!     .jitter(us(50))            // up to 50us extra latency, FIFO-safe
//!     .build();
//! assert_eq!(plan.seed(), 0xBAD5EED);
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::host::HostId;
use crate::kernel::ActorCtx;
use crate::rng::Rng64;
use crate::time::{SimDuration, SimTime};
use obs::Value;

/// Why a wire message was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropCause {
    /// Random packet loss on the link.
    Loss,
    /// The link was inside a configured down window.
    LinkDown,
    /// The source or destination host was inside a crash window.
    HostDown,
    /// A switch egress queue (or its shared buffer pool) overflowed under
    /// [`QueuePolicy::Drop`](crate::topo::QueuePolicy::Drop).
    QueueFull,
}

impl DropCause {
    /// Stable label used in metrics and trace events.
    pub fn as_str(self) -> &'static str {
        match self {
            DropCause::Loss => "loss",
            DropCause::LinkDown => "link_down",
            DropCause::HostDown => "host_down",
            DropCause::QueueFull => "queue_full",
        }
    }
}

/// Per-link fault parameters (the default spec applies to links with no
/// override).
#[derive(Debug, Clone, Default)]
struct LinkSpec {
    /// Probability in `[0, 1]` that a wire message is silently dropped.
    loss: f64,
    /// Maximum extra latency added to a delivery (uniform in `[0, jitter]`).
    jitter: SimDuration,
    /// Half-open `[from, until)` windows during which the link drops
    /// everything.
    down: Vec<(SimTime, SimTime)>,
}

struct Inner {
    seed: u64,
    default_spec: LinkSpec,
    /// Overrides keyed by unordered host pair (normalised `min, max`).
    links: HashMap<(usize, usize), LinkSpec>,
    /// Host crash windows: half-open `[crash, restart)`.
    hosts: HashMap<usize, Vec<(SimTime, SimTime)>>,
    state: Mutex<RunState>,
}

struct RunState {
    rng: Rng64,
    /// Last delivery instant per *directed* link, used to clamp jittered
    /// arrivals so reordering never happens on an otherwise-FIFO wire.
    last_delivery: HashMap<(usize, usize), SimTime>,
}

/// Builder for a [`FaultPlan`]. All times are virtual.
pub struct FaultPlanBuilder {
    seed: u64,
    default_spec: LinkSpec,
    links: HashMap<(usize, usize), LinkSpec>,
    hosts: HashMap<usize, Vec<(SimTime, SimTime)>>,
}

fn pair_key(a: HostId, b: HostId) -> (usize, usize) {
    if a.0 <= b.0 {
        (a.0, b.0)
    } else {
        (b.0, a.0)
    }
}

impl FaultPlanBuilder {
    /// Default (all-link) packet loss probability, clamped to `[0, 1]`.
    pub fn loss(mut self, p: f64) -> Self {
        self.default_spec.loss = p.clamp(0.0, 1.0);
        self
    }

    /// Default maximum latency jitter per delivery (uniform in
    /// `[0, jitter]`, clamped so a link never reorders).
    pub fn jitter(mut self, jitter: SimDuration) -> Self {
        self.default_spec.jitter = jitter;
        self
    }

    /// Override the loss probability on the link between `a` and `b`.
    pub fn link_loss(mut self, a: HostId, b: HostId, p: f64) -> Self {
        let d = self.default_spec.clone();
        self.links.entry(pair_key(a, b)).or_insert(d).loss = p.clamp(0.0, 1.0);
        self
    }

    /// Take the link between `a` and `b` down for `[from, until)`.
    pub fn link_down(mut self, a: HostId, b: HostId, from: SimTime, until: SimTime) -> Self {
        let d = self.default_spec.clone();
        self.links
            .entry(pair_key(a, b))
            .or_insert(d)
            .down
            .push((from, until));
        self
    }

    /// Crash host `h` at `from`; it restarts at `until`. While crashed the
    /// host neither sends nor receives (in-memory connection state is
    /// assumed rebuilt by higher layers; stable storage survives).
    pub fn host_crash(mut self, h: HostId, from: SimTime, until: SimTime) -> Self {
        self.hosts.entry(h.0).or_default().push((from, until));
        self
    }

    /// Finalise the plan. Cheap to clone; all clones share one RNG stream.
    pub fn build(self) -> FaultPlan {
        FaultPlan {
            inner: Arc::new(Inner {
                seed: self.seed,
                default_spec: self.default_spec,
                links: self.links,
                hosts: self.hosts,
                state: Mutex::new(RunState {
                    rng: Rng64::new(self.seed),
                    last_delivery: HashMap::new(),
                }),
            }),
        }
    }
}

/// A deterministic fault schedule shared by every transport in a run.
#[derive(Clone)]
pub struct FaultPlan {
    inner: Arc<Inner>,
}

impl FaultPlan {
    /// Start building a plan seeded with `seed`.
    pub fn builder(seed: u64) -> FaultPlanBuilder {
        FaultPlanBuilder {
            seed,
            default_spec: LinkSpec::default(),
            links: HashMap::new(),
            hosts: HashMap::new(),
        }
    }

    /// The seed this plan draws from.
    pub fn seed(&self) -> u64 {
        self.inner.seed
    }

    fn spec(&self, src: HostId, dst: HostId) -> &LinkSpec {
        self.inner
            .links
            .get(&pair_key(src, dst))
            .unwrap_or(&self.inner.default_spec)
    }

    /// True if the `a`↔`b` link is inside a configured down window at time
    /// `t`. A pure window query (no RNG draw, no metrics): the fabric layer
    /// uses it to judge rail health without perturbing the loss stream.
    pub fn link_down_at(&self, a: HostId, b: HostId, t: SimTime) -> bool {
        self.spec(a, b)
            .down
            .iter()
            .any(|&(from, until)| t >= from && t < until)
    }

    /// True if host `h` is inside a crash window at time `t`.
    pub fn host_down_at(&self, h: HostId, t: SimTime) -> bool {
        self.inner
            .hosts
            .get(&h.0)
            .is_some_and(|ws| ws.iter().any(|&(from, until)| t >= from && t < until))
    }

    /// Judge a wire message sent now from `src`, nominally arriving at `dst`
    /// at `arrival`. Returns the cause if the message must be dropped.
    /// Emits `sim.faults.*` metrics and a trace event only on a drop.
    pub fn should_drop(
        &self,
        ctx: &ActorCtx,
        src: HostId,
        dst: HostId,
        arrival: SimTime,
    ) -> Option<DropCause> {
        let spec = self.spec(src, dst);
        let cause = if self.host_down_at(src, ctx.now()) || self.host_down_at(dst, arrival) {
            Some(DropCause::HostDown)
        } else if spec
            .down
            .iter()
            .any(|&(from, until)| ctx.now() >= from && ctx.now() < until)
        {
            Some(DropCause::LinkDown)
        } else if spec.loss > 0.0 && self.inner.state.lock().rng.chance(spec.loss) {
            Some(DropCause::Loss)
        } else {
            None
        };
        if let Some(c) = cause {
            ctx.metrics().counter("sim.faults.dropped").inc();
            ctx.metrics()
                .counter(&format!("sim.faults.{}", c.as_str()))
                .inc();
            ctx.trace(
                "sim",
                "fault.drop",
                &[
                    ("src", Value::U64(src.0 as u64)),
                    ("dst", Value::U64(dst.0 as u64)),
                    ("cause", Value::Str(c.as_str())),
                ],
            );
        }
        cause
    }

    /// Apply latency jitter to a delivery that survived [`should_drop`]
    /// (`FaultPlan::should_drop`). The result is clamped to be monotone per
    /// directed link so jitter never reorders a FIFO wire.
    pub fn jitter(&self, ctx: &ActorCtx, src: HostId, dst: HostId, nominal: SimTime) -> SimTime {
        let max = self.spec(src, dst).jitter;
        let mut st = self.inner.state.lock();
        let mut arrival = nominal;
        if !max.is_zero() {
            let extra = SimDuration::from_nanos(st.rng.below(max.as_nanos() + 1));
            if !extra.is_zero() {
                arrival += extra;
                ctx.metrics()
                    .counter("sim.faults.jitter_ns")
                    .add(extra.as_nanos());
            }
        }
        let last = st.last_delivery.entry((src.0, dst.0)).or_insert(arrival);
        arrival = arrival.max(*last);
        *last = arrival;
        arrival
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::SimKernel;
    use crate::time::units::*;

    fn with_ctx(f: impl Fn(&ActorCtx) + Send + 'static) {
        let k = SimKernel::new();
        k.spawn("t", move |ctx| f(ctx));
        k.run();
    }

    #[test]
    fn same_seed_same_verdicts() {
        let draw = |seed: u64| {
            let plan = FaultPlan::builder(seed).loss(0.3).build();
            let mut verdicts = Vec::new();
            let v2 = std::sync::Arc::new(Mutex::new(Vec::new()));
            let v3 = v2.clone();
            let k = SimKernel::new();
            k.spawn("t", move |ctx| {
                for _ in 0..64 {
                    v3.lock().push(
                        plan.should_drop(ctx, HostId(0), HostId(1), ctx.now())
                            .is_some(),
                    );
                }
            });
            k.run();
            verdicts.extend(v2.lock().iter().copied());
            verdicts
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8), "different seeds should diverge");
    }

    #[test]
    fn down_windows_drop_everything() {
        with_ctx(|ctx| {
            let plan = FaultPlan::builder(1)
                .link_down(
                    HostId(0),
                    HostId(1),
                    SimTime::ZERO + ms(1),
                    SimTime::ZERO + ms(2),
                )
                .build();
            assert_eq!(plan.should_drop(ctx, HostId(0), HostId(1), ctx.now()), None);
            ctx.advance(ms(1));
            assert_eq!(
                plan.should_drop(ctx, HostId(1), HostId(0), ctx.now()),
                Some(DropCause::LinkDown),
                "windows are symmetric in the host pair"
            );
            ctx.advance(ms(1));
            assert_eq!(plan.should_drop(ctx, HostId(0), HostId(1), ctx.now()), None);
        });
    }

    #[test]
    fn host_crash_window_is_half_open() {
        with_ctx(|ctx| {
            let plan = FaultPlan::builder(1)
                .host_crash(HostId(3), SimTime::ZERO + ms(5), SimTime::ZERO + ms(6))
                .build();
            assert!(!plan.host_down_at(HostId(3), SimTime::ZERO));
            assert!(plan.host_down_at(HostId(3), SimTime::ZERO + ms(5)));
            assert!(!plan.host_down_at(HostId(3), SimTime::ZERO + ms(6)));
            // Arrival inside the window drops even though the send is before.
            assert_eq!(
                plan.should_drop(ctx, HostId(0), HostId(3), SimTime::ZERO + ms(5)),
                Some(DropCause::HostDown)
            );
        });
    }

    #[test]
    fn jitter_is_bounded_and_fifo() {
        with_ctx(|ctx| {
            let plan = FaultPlan::builder(42).jitter(us(100)).build();
            let mut prev = SimTime::ZERO;
            for i in 0..200u64 {
                let nominal = SimTime::ZERO + us(10 * i);
                let j = plan.jitter(ctx, HostId(0), HostId(1), nominal);
                assert!(j >= nominal, "jitter only delays");
                assert!(
                    j <= nominal + us(100) || j == prev,
                    "bounded unless clamped"
                );
                assert!(j >= prev, "FIFO clamp must keep arrivals monotone");
                prev = j;
            }
        });
    }

    #[test]
    fn zero_plan_never_drops_or_jitters() {
        with_ctx(|ctx| {
            let plan = FaultPlan::builder(9).build();
            for i in 0..100u64 {
                let nominal = SimTime::ZERO + us(i);
                assert_eq!(plan.should_drop(ctx, HostId(0), HostId(1), nominal), None);
                assert_eq!(plan.jitter(ctx, HostId(0), HostId(1), nominal), nominal);
            }
        });
    }

    #[test]
    fn per_link_loss_override() {
        with_ctx(|ctx| {
            let plan = FaultPlan::builder(5)
                .link_loss(HostId(0), HostId(1), 1.0)
                .build();
            // The overridden link always drops; other links never do.
            assert_eq!(
                plan.should_drop(ctx, HostId(0), HostId(1), ctx.now()),
                Some(DropCause::Loss)
            );
            assert_eq!(plan.should_drop(ctx, HostId(0), HostId(2), ctx.now()), None);
        });
    }

    use parking_lot::Mutex;
}
