//! Conservative discrete-event kernel with threaded actors.
//!
//! Each simulated process (an MPI rank, a file server, a helper) runs on its
//! own OS thread, but the kernel admits **exactly one runnable actor at a
//! time** — always the one with the smallest local virtual time. Actors
//! voluntarily yield whenever they advance their clock (`advance`, `compute`,
//! `sleep_until`) or block on a [`Port`](crate::port::Port). Because no actor
//! ever runs "ahead" of a pending earlier event, message delivery is globally
//! causal and the whole simulation is deterministic: the same program and
//! seed produce a bit-identical virtual timeline on every run.
//!
//! The scheme trades wall-clock speed (two context switches per yield) for a
//! natural blocking programming style in the protocol crates; simulated
//! workloads model per-request costs, not per-byte events, so event counts
//! stay modest.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use obs::{Obs, Registry, Value};
use parking_lot::{Condvar, Mutex};

use crate::time::{SimDuration, SimTime};

/// Identifies an actor within one [`SimKernel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActorId(pub(crate) usize);

impl std::fmt::Display for ActorId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "actor#{}", self.0)
    }
}

/// Lifecycle state of an actor, as seen by the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ActorState {
    /// Created but its thread has not reached its first yield yet.
    Starting,
    /// Selected by the scheduler; its thread may run.
    Running,
    /// Parked; will run again when a wake event with its current generation
    /// fires.
    Blocked,
    /// Its closure returned.
    Done,
}

struct ActorSlot {
    name: Arc<str>,
    state: ActorState,
    /// Incremented on every block; wake events carry the generation they
    /// target, so stale wakes (superseded by an earlier one) are discarded.
    generation: u64,
    daemon: bool,
    join: Option<JoinHandle<()>>,
    /// The actor's local clock, shared with its `ActorCtx` (which reads it
    /// lock-free); kept in the slot so the scheduler and wakers touch it
    /// under the one `state` lock they already hold.
    clock: Arc<AtomicU64>,
    /// Private wake signal: the scheduler wakes exactly the actor whose turn
    /// it is instead of broadcasting to every parked thread.
    cv: Arc<Condvar>,
    /// Earliest wake already queued for the *current* generation, if any.
    /// Later wakes at the same or a greater time are coalesced away (the
    /// earlier event supersedes them once the actor re-blocks), which keeps
    /// the heap small under fan-in.
    pending_wake: Option<SimTime>,
}

/// One scheduled wake-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    time: SimTime,
    /// Global tiebreak sequence: events at equal times fire in creation
    /// order, which is itself deterministic.
    seq: u64,
    actor: ActorId,
    generation: u64,
}

#[derive(Default)]
struct SchedState {
    actors: Vec<ActorSlot>,
    queue: BinaryHeap<Reverse<Event>>,
    /// Still-valid events drained from the heap in one batch pass — the
    /// earliest event plus everything sharing its timestamp, FIFO by
    /// sequence number. Serving a same-time burst then costs one O(1)
    /// queue front per grant instead of one O(log n) heap pop, which is
    /// the hot case under fan-in (many actors woken at one delivery
    /// time). Events pushed while the batch drains carry later sequence
    /// numbers and never earlier times (wakes are stamped at or past the
    /// waker's clock, which has reached the batch time), so batch order
    /// is exactly the (time, seq) order the one-pop scheduler dispatched.
    ready: VecDeque<Event>,
    seq: u64,
    /// Actor currently allowed to run, if any.
    current: Option<ActorId>,
    /// Set when an actor panicked; the scheduler propagates it.
    poisoned: Option<String>,
    /// Virtual end time observed so far (max of all actor clocks).
    horizon: SimTime,
}

pub(crate) struct KernelInner {
    state: Mutex<SchedState>,
    /// Signalled whenever control should return to the scheduler loop.
    scheduler_cv: Condvar,
    /// Global trace flag (diagnostics only).
    trace: AtomicU64,
    /// Observability handle shared by every actor: structured tracer plus
    /// the metrics registry. Never advances virtual time.
    obs: Obs,
}

/// Process-wide count of scheduled events, accumulated as kernels finish.
/// Purely a wall-clock harness statistic (sim-events/sec); never feeds back
/// into virtual time.
static EVENTS_GLOBAL: AtomicU64 = AtomicU64::new(0);

/// Total events scheduled by every completed [`SimKernel::run`] in this
/// process so far. Bench harnesses read the delta around an experiment to
/// report real-time throughput.
pub fn events_scheduled_global() -> u64 {
    EVENTS_GLOBAL.load(Ordering::Relaxed)
}

impl KernelInner {
    fn trace_on(&self) -> bool {
        self.trace.load(Ordering::Relaxed) != 0
    }
}

/// The simulation kernel. Create one, [`spawn`](SimKernel::spawn) actors,
/// then [`run`](SimKernel::run) to completion.
pub struct SimKernel {
    inner: Arc<KernelInner>,
}

impl Default for SimKernel {
    fn default() -> Self {
        Self::new()
    }
}

impl SimKernel {
    /// Create a new instance with default state. Structured tracing follows
    /// the environment: when `MPIO_DAFS_TRACE=<path>` is set, every actor's
    /// events append to that file as JSON lines.
    pub fn new() -> SimKernel {
        SimKernel::with_obs(Obs::from_env())
    }

    /// Create a kernel with an explicit observability handle (tests use
    /// [`Obs::buffered`] to capture the trace deterministically in memory;
    /// [`Obs::disabled`] turns event emission off).
    pub fn with_obs(obs: Obs) -> SimKernel {
        SimKernel {
            inner: Arc::new(KernelInner {
                state: Mutex::new(SchedState::default()),
                scheduler_cv: Condvar::new(),
                trace: AtomicU64::new(0),
                obs,
            }),
        }
    }

    /// The kernel's observability handle.
    pub fn obs(&self) -> &Obs {
        &self.inner.obs
    }

    /// Enable or disable stderr event tracing (debugging aid).
    pub fn set_trace(&self, on: bool) {
        self.inner.trace.store(on as u64, Ordering::Relaxed);
    }

    /// Spawn a regular actor. The simulation does not finish until every
    /// non-daemon actor's closure has returned.
    pub fn spawn<F>(&self, name: &str, body: F) -> ActorId
    where
        F: FnOnce(&ActorCtx) + Send + 'static,
    {
        self.spawn_inner(name, false, body)
    }

    /// Spawn a daemon actor (e.g. a server loop). Daemons may still be
    /// blocked when the simulation ends; the kernel does not wait for them.
    pub fn spawn_daemon<F>(&self, name: &str, body: F) -> ActorId
    where
        F: FnOnce(&ActorCtx) + Send + 'static,
    {
        self.spawn_inner(name, true, body)
    }

    fn spawn_inner<F>(&self, name: &str, daemon: bool, body: F) -> ActorId
    where
        F: FnOnce(&ActorCtx) + Send + 'static,
    {
        let inner = self.inner.clone();
        let mut st = inner.state.lock();
        let id = ActorId(st.actors.len());
        let clock = Arc::new(AtomicU64::new(0));
        let cv = Arc::new(Condvar::new());
        let name: Arc<str> = Arc::from(name);

        let thread_inner = inner.clone();
        let thread_name = format!("sim-{}-{}", id.0, name);
        inner.obs.registry().counter("sim.actors.spawned").inc();
        let ctx = ActorCtx {
            id,
            name: name.clone(),
            kernel: thread_inner.clone(),
            clock: clock.clone(),
            cv: cv.clone(),
        };
        let join = std::thread::Builder::new()
            .name(thread_name)
            .spawn(move || {
                // Wait for our first turn before touching any shared state.
                ctx.wait_for_turn();
                ctx.trace("sim", "actor.start", &[("daemon", Value::Bool(daemon))]);
                let result = panic::catch_unwind(AssertUnwindSafe(|| body(&ctx)));
                ctx.trace("sim", "actor.exit", &[("ok", Value::Bool(result.is_ok()))]);
                let mut st = thread_inner.state.lock();
                if let Err(payload) = result {
                    let msg = payload
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "actor panicked".to_string());
                    let name = st.actors[ctx.id.0].name.clone();
                    st.poisoned = Some(format!("actor '{name}' panicked: {msg}"));
                }
                st.actors[ctx.id.0].state = ActorState::Done;
                st.current = None;
                thread_inner.scheduler_cv.notify_one();
            })
            .expect("failed to spawn actor thread");

        st.actors.push(ActorSlot {
            name,
            state: ActorState::Starting,
            generation: 0,
            daemon,
            join: Some(join),
            clock,
            cv,
            pending_wake: Some(SimTime::ZERO),
        });
        // Schedule the actor's first run at t=0 (or at the caller's time when
        // spawned from inside the simulation — see ActorCtx::spawn).
        let seq = st.seq;
        st.seq += 1;
        st.queue.push(Reverse(Event {
            time: SimTime::ZERO,
            seq,
            actor: id,
            generation: 0,
        }));
        id
    }

    /// Drive the simulation until every non-daemon actor has finished.
    ///
    /// Returns the virtual end time (the max clock reached by any actor).
    /// Panics if any actor panicked, or on deadlock (no runnable actor, no
    /// pending event, and some non-daemon actor still blocked).
    pub fn run(self) -> SimTime {
        let inner = self.inner.clone();
        loop {
            let mut st = inner.state.lock();
            // Wait until no actor holds the token.
            while st.current.is_some() && st.poisoned.is_none() {
                inner.scheduler_cv.wait(&mut st);
            }
            if let Some(msg) = st.poisoned.take() {
                drop(st);
                self.detach_threads();
                panic!("{msg}");
            }

            // Serve the earliest still-valid event, refilling the ready
            // batch from the heap when it runs dry: one pass drains the
            // earliest event plus every event sharing its timestamp (see
            // `SchedState::ready` for why batch order is dispatch order).
            let next = loop {
                if st.ready.is_empty() {
                    while let Some(&Reverse(top)) = st.queue.peek() {
                        if st.ready.front().is_some_and(|b| top.time > b.time) {
                            break;
                        }
                        st.queue.pop();
                        let slot = &st.actors[top.actor.0];
                        let valid = slot.generation == top.generation
                            && matches!(slot.state, ActorState::Blocked | ActorState::Starting);
                        // Stale (superseded wake or finished actor): a
                        // generation never rolls back, so staleness is
                        // permanent and early discard is safe.
                        if valid {
                            st.ready.push_back(top);
                        }
                    }
                    if st.ready.is_empty() {
                        break None;
                    }
                }
                let ev = st.ready.pop_front().expect("nonempty ready batch");
                // Re-validate at serve time: an actor granted earlier in
                // this batch has re-blocked under a new generation, staling
                // any event it left behind.
                let slot = &st.actors[ev.actor.0];
                let valid = slot.generation == ev.generation
                    && matches!(slot.state, ActorState::Blocked | ActorState::Starting);
                if valid {
                    break Some(ev);
                }
            };

            match next {
                Some(ev) => {
                    st.horizon = st.horizon.max(ev.time);
                    let slot = &mut st.actors[ev.actor.0];
                    slot.state = ActorState::Running;
                    slot.pending_wake = None;
                    // Advance the actor's clock to the wake time; it may be
                    // ahead already (e.g. a message arrived in its past).
                    slot.clock.fetch_max(ev.time.as_nanos(), Ordering::Relaxed);
                    let cv = slot.cv.clone();
                    st.current = Some(ev.actor);
                    if inner.trace_on() {
                        eprintln!(
                            "[sim {:>12}] run {} ({})",
                            ev.time, ev.actor, st.actors[ev.actor.0].name
                        );
                    }
                    drop(st);
                    // Wake exactly the chosen actor: a targeted notify, not a
                    // broadcast over every parked actor thread.
                    cv.notify_one();
                }
                None => {
                    // No events. Either we're done, or we're deadlocked.
                    let blocked_nondaemon: Vec<String> = st
                        .actors
                        .iter()
                        .filter(|a| !a.daemon && a.state != ActorState::Done)
                        .map(|a| a.name.to_string())
                        .collect();
                    if blocked_nondaemon.is_empty() {
                        let end = st.horizon;
                        // Total events ever scheduled (including superseded
                        // wakes): the denominator for wall-clock
                        // sim-events/sec harness throughput.
                        let events = st.seq;
                        drop(st);
                        self.detach_threads();
                        EVENTS_GLOBAL.fetch_add(events, Ordering::Relaxed);
                        inner.obs.registry().counter("sim.events.total").add(events);
                        // Close out the trace: final registry snapshot at the
                        // virtual end time, then flush the sink.
                        inner.obs.emit_snapshot(end.as_nanos());
                        return end;
                    }
                    drop(st);
                    self.detach_threads();
                    panic!(
                        "simulation deadlock: no pending events but actors {:?} \
                         are still blocked",
                        blocked_nondaemon
                    );
                }
            }
        }
    }

    /// Join finished actor threads and detach daemons (they are parked on a
    /// condvar and hold only Arcs; dropping the kernel lets the process exit).
    fn detach_threads(&self) {
        let handles: Vec<(bool, Option<JoinHandle<()>>)> = {
            let mut st = self.inner.state.lock();
            st.actors
                .iter_mut()
                .map(|a| (a.state == ActorState::Done, a.join.take()))
                .collect()
        };
        for (done, handle) in handles {
            if let Some(h) = handle {
                if done {
                    let _ = h.join();
                }
                // Blocked daemons are left parked; their threads are detached.
            }
        }
    }
}

/// Handle given to each actor; all virtual-time operations go through it.
///
/// `ActorCtx` is deliberately not `Clone`: it is owned by exactly one actor
/// thread and must not leak to another.
pub struct ActorCtx {
    id: ActorId,
    name: Arc<str>,
    kernel: Arc<KernelInner>,
    clock: Arc<AtomicU64>,
    /// This actor's private wake signal (also held by its `ActorSlot`).
    cv: Arc<Condvar>,
}

impl ActorCtx {
    /// This actor's id.
    pub fn id(&self) -> ActorId {
        self.id
    }

    /// This actor's name (as passed to `spawn`); stamps trace events.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The simulation-wide observability handle.
    pub fn obs(&self) -> &Obs {
        &self.kernel.obs
    }

    /// The simulation-wide metrics registry (always live).
    pub fn metrics(&self) -> &Registry {
        self.kernel.obs.registry()
    }

    /// Emit one structured trace event stamped with this actor's name and
    /// current virtual time. Costs a single branch when tracing is off.
    #[inline]
    pub fn trace(&self, layer: &str, event: &str, fields: &[(&str, Value<'_>)]) {
        let obs = &self.kernel.obs;
        if obs.enabled() {
            obs.emit(self.now().as_nanos(), &self.name, layer, event, fields);
        }
    }

    /// Open a timed span over `{layer}.{op}`. On drop the span adds the
    /// elapsed virtual time to the `{layer}.{op}_ns` counter, bumps
    /// `{layer}.{op}.calls`, and (when tracing) emits one event carrying
    /// both endpoints. Spans never advance time themselves.
    pub fn span(&self, layer: &'static str, op: &'static str) -> Span<'_> {
        Span {
            ctx: self,
            layer,
            op,
            start: self.now(),
        }
    }

    /// Current local virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        SimTime(self.clock.load(Ordering::Relaxed))
    }

    /// Advance local time by `d`, yielding to the scheduler so that any
    /// other actor with earlier pending work runs first.
    pub fn advance(&self, d: SimDuration) {
        if d.is_zero() {
            return;
        }
        self.sleep_until(self.now() + d);
    }

    /// Sleep until the given instant (no-op if already past it).
    pub fn sleep_until(&self, t: SimTime) {
        if t <= self.now() {
            return;
        }
        self.block(Some(t));
    }

    /// Yield without advancing time: lets any same-time actor run first.
    pub fn yield_now(&self) {
        self.block(Some(self.now()));
    }

    /// Spawn a new actor from inside the simulation; it starts at the
    /// spawner's current time.
    pub fn spawn<F>(&self, name: &str, body: F) -> ActorId
    where
        F: FnOnce(&ActorCtx) + Send + 'static,
    {
        self.spawn_inner(name, false, body)
    }

    /// Spawn a daemon actor from inside the simulation (the run can end
    /// while it is still blocked — server-side connection handlers).
    pub fn spawn_daemon<F>(&self, name: &str, body: F) -> ActorId
    where
        F: FnOnce(&ActorCtx) + Send + 'static,
    {
        self.spawn_inner(name, true, body)
    }

    fn spawn_inner<F>(&self, name: &str, daemon: bool, body: F) -> ActorId
    where
        F: FnOnce(&ActorCtx) + Send + 'static,
    {
        let start = self.now();
        let kernel = SimKernel {
            inner: self.kernel.clone(),
        };
        let id = if daemon {
            kernel.spawn_daemon(name, body)
        } else {
            kernel.spawn(name, body)
        };
        // Re-stamp the initial event from t=0 to the spawn time.
        let mut st = self.kernel.state.lock();
        // The freshly pushed event has generation 0; supersede it.
        let slot = &mut st.actors[id.0];
        slot.generation += 1;
        let generation = slot.generation;
        slot.pending_wake = Some(start);
        slot.clock.store(start.as_nanos(), Ordering::Relaxed);
        let seq = st.seq;
        st.seq += 1;
        st.queue.push(Reverse(Event {
            time: start,
            seq,
            actor: id,
            generation,
        }));
        drop(kernel); // temporary handle onto the shared kernel state
        id
    }

    /// Block until a wake event with the current generation fires.
    /// `wake_at`: optionally self-schedule a wake (sleep); external wakers
    /// (message sends) may add earlier wakes for the same generation.
    pub(crate) fn block(&self, wake_at: Option<SimTime>) {
        {
            let mut st = self.kernel.state.lock();
            debug_assert_eq!(st.current, Some(self.id), "yield from non-current actor");
            let slot = &mut st.actors[self.id.0];
            slot.state = ActorState::Blocked;
            slot.generation += 1;
            slot.pending_wake = wake_at;
            let generation = slot.generation;
            if let Some(t) = wake_at {
                let seq = st.seq;
                st.seq += 1;
                st.queue.push(Reverse(Event {
                    time: t,
                    seq,
                    actor: self.id,
                    generation,
                }));
            }
            st.current = None;
            self.kernel.scheduler_cv.notify_one();
        }
        self.wait_for_turn();
    }

    /// Re-register as blocked *while already blocked-and-woken*: used by
    /// Port::recv loops. Identical to `block(None)`.
    pub(crate) fn block_unscheduled(&self) {
        self.block(None);
    }

    /// Park until the scheduler hands us the token.
    fn wait_for_turn(&self) {
        let mut st = self.kernel.state.lock();
        while st.current != Some(self.id) {
            self.cv.wait(&mut st);
        }
    }

    /// Schedule a wake for a (possibly blocked) actor at time `t`.
    ///
    /// Used by message sends: if `target` is currently blocked, it will run
    /// at `max(t, its own clock)`; if it is running or already has an earlier
    /// wake, the extra event is harmless (stale generations are discarded,
    /// and a woken actor re-checks its condition).
    pub(crate) fn wake_actor_at(&self, target: ActorId, t: SimTime) {
        let mut st = self.kernel.state.lock();
        let slot = &mut st.actors[target.0];
        if slot.state == ActorState::Done {
            return;
        }
        let generation = slot.generation;
        let target_clock = SimTime(slot.clock.load(Ordering::Relaxed));
        let time = t.max(target_clock);
        // Coalesce: a wake at or after one already queued for this
        // generation can never fire (the earlier event runs the actor and
        // its next block bumps the generation, staling this one), so skip
        // the heap push. The sequence number still advances — `seq` is the
        // deterministic tiebreak *and* the scheduled-event total, and both
        // must not depend on heap occupancy.
        let redundant = slot.pending_wake.is_some_and(|pw| pw <= time);
        if !redundant {
            slot.pending_wake = Some(time);
        }
        let seq = st.seq;
        st.seq += 1;
        if redundant {
            return;
        }
        st.queue.push(Reverse(Event {
            time,
            seq,
            actor: target,
            generation,
        }));
    }
}

/// RAII virtual-time span (see [`ActorCtx::span`]).
///
/// Time spent between construction and drop — as measured on the actor's
/// *virtual* clock — accrues to the `{layer}.{op}_ns` counter, which the
/// bench reports aggregate into per-layer time-breakdown tables.
#[must_use = "a span measures the time until it is dropped"]
pub struct Span<'a> {
    ctx: &'a ActorCtx,
    layer: &'static str,
    op: &'static str,
    start: SimTime,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let start = self.start.as_nanos();
        let end = self.ctx.now().as_nanos();
        let elapsed = end.saturating_sub(start);
        let reg = self.ctx.kernel.obs.registry();
        let (ns, calls) = reg.span_counters(self.layer, self.op);
        ns.add(elapsed);
        calls.inc();
        self.ctx.trace(
            self.layer,
            self.op,
            &[
                ("start_ns", Value::U64(start)),
                ("elapsed_ns", Value::U64(elapsed)),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::units::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn empty_kernel_runs_to_zero() {
        let k = SimKernel::new();
        assert_eq!(k.run(), SimTime::ZERO);
    }

    #[test]
    fn single_actor_advances_time() {
        let k = SimKernel::new();
        k.spawn("a", |ctx| {
            ctx.advance(us(10));
            ctx.advance(us(5));
            assert_eq!(ctx.now(), SimTime::ZERO + us(15));
        });
        assert_eq!(k.run(), SimTime::ZERO + us(15));
    }

    #[test]
    fn actors_interleave_in_time_order() {
        let k = SimKernel::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        for (name, step) in [("slow", 10u64), ("fast", 3u64)] {
            let order = order.clone();
            k.spawn(name, move |ctx| {
                for i in 0..3 {
                    ctx.advance(us(step));
                    order.lock().push((ctx.now().as_nanos(), name, i));
                }
            });
        }
        k.run();
        let got = order.lock().clone();
        // Events must be globally sorted by virtual time.
        let times: Vec<u64> = got.iter().map(|e| e.0).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted, "interleaving violated time order: {got:?}");
        // fast: 3,6,9 then slow: 10, fast... exact sequence check:
        assert_eq!(got[0].1, "fast");
        assert_eq!(got[3].1, "slow");
    }

    #[test]
    fn determinism_across_runs() {
        fn run_once() -> Vec<(u64, usize)> {
            let k = SimKernel::new();
            let log = Arc::new(Mutex::new(Vec::new()));
            for a in 0..8usize {
                let log = log.clone();
                k.spawn(&format!("a{a}"), move |ctx| {
                    for _ in 0..50 {
                        ctx.advance(us((a as u64 * 7 + 3) % 11 + 1));
                        log.lock().push((ctx.now().as_nanos(), a));
                    }
                });
            }
            k.run();
            let v = log.lock().clone();
            v
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn spawn_from_inside_starts_at_spawn_time() {
        let k = SimKernel::new();
        let child_start = Arc::new(AtomicU64::new(0));
        let cs = child_start.clone();
        k.spawn("parent", move |ctx| {
            ctx.advance(us(42));
            let cs = cs.clone();
            ctx.spawn("child", move |cctx| {
                cs.store(cctx.now().as_nanos(), Ordering::Relaxed);
            });
        });
        k.run();
        assert_eq!(child_start.load(Ordering::Relaxed), 42_000);
    }

    #[test]
    #[should_panic(expected = "panicked: boom")]
    fn actor_panic_propagates() {
        let k = SimKernel::new();
        k.spawn("bomber", |ctx| {
            ctx.advance(us(1));
            panic!("boom");
        });
        k.run();
    }

    #[test]
    fn daemon_does_not_block_completion() {
        let k = SimKernel::new();
        let ticks = Arc::new(AtomicUsize::new(0));
        let t = ticks.clone();
        // A daemon that would sleep forever after its work.
        k.spawn_daemon("daemon", move |ctx| {
            ctx.advance(us(1));
            t.fetch_add(1, Ordering::Relaxed);
            // Block forever with no scheduled wake.
            ctx.block(None);
            unreachable!();
        });
        k.spawn("worker", |ctx| ctx.advance(us(100)));
        let end = k.run();
        assert_eq!(end, SimTime::ZERO + us(100));
        assert_eq!(ticks.load(Ordering::Relaxed), 1);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_detected() {
        let k = SimKernel::new();
        k.spawn("stuck", |ctx| {
            ctx.block(None); // waits forever, not a daemon
        });
        k.run();
    }

    #[test]
    fn yield_now_preserves_time() {
        let k = SimKernel::new();
        k.spawn("y", |ctx| {
            ctx.advance(us(4));
            let t = ctx.now();
            ctx.yield_now();
            assert_eq!(ctx.now(), t);
        });
        k.run();
    }
}
