//! Shared host-side cost model constants, calibrated to the 2001-era
//! platform the paper's testbed represents (Pentium-III class nodes,
//! GigaNet cLAN VIA NICs, Fast/Gigabit Ethernet kernel path).
//!
//! Every constant lives in [`HostCost`] so that ablation experiments can
//! sweep them; the transport-specific models (`via::ViaCost`,
//! `tcpnet::TcpCost`) reference these for the host-side terms.

use crate::time::{Bandwidth, SimDuration};

/// Host-side (CPU) cost constants.
#[derive(Debug, Clone, Copy)]
pub struct HostCost {
    /// One user↔kernel crossing (trap + return).
    pub syscall: SimDuration,
    /// Fixed cost of starting any memcpy (cache-line setup, call overhead).
    pub memcpy_setup: SimDuration,
    /// Sustainable copy bandwidth of the host memory system.
    pub memcpy_bw: Bandwidth,
    /// Taking one device interrupt (dispatch + handler prologue/epilogue).
    pub interrupt: SimDuration,
    /// One context switch (schedule + register/TLB state).
    pub context_switch: SimDuration,
}

impl Default for HostCost {
    fn default() -> Self {
        HostCost {
            syscall: SimDuration::from_nanos(3_000),
            memcpy_setup: SimDuration::from_nanos(150),
            // P-III era SDRAM copy bandwidth.
            memcpy_bw: Bandwidth::mb_per_sec(400),
            interrupt: SimDuration::from_micros(5),
            context_switch: SimDuration::from_micros(4),
        }
    }
}

impl HostCost {
    /// CPU time to copy `bytes` once.
    pub fn copy(&self, bytes: u64) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        self.memcpy_setup + self.memcpy_bw.time_for(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::units::*;

    #[test]
    fn default_values_sane() {
        let c = HostCost::default();
        assert_eq!(c.syscall, us(3));
        assert!(c.interrupt > c.syscall);
    }

    #[test]
    fn copy_scales_with_size() {
        let c = HostCost::default();
        assert_eq!(c.copy(0), SimDuration::ZERO);
        let small = c.copy(64);
        let big = c.copy(1 << 20);
        assert!(big > small * 100);
        // 1 MiB at 400 MB/s ≈ 2.62 ms.
        assert!(big.as_secs_f64() > 0.0025 && big.as_secs_f64() < 0.0028);
    }
}
