//! Simulated hosts: CPU accounting and a byte-addressable memory arena.
//!
//! Bytes really move in this simulator — a DMA or a `memcpy` reads and
//! writes actual buffer contents — so end-to-end tests can verify file data
//! written through the whole MPI-IO → DAFS → VIA stack. [`HostMem`] provides
//! a per-host virtual address space backed by allocation chunks;
//! [`CpuMeter`] accumulates busy time for the host-overhead experiments.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::kernel::ActorCtx;
use crate::time::{SimDuration, SimTime};

/// A simulated virtual address within one host's address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtAddr(pub u64);

impl VirtAddr {
    /// The null address (never mapped).
    pub const NULL: VirtAddr = VirtAddr(0);

    #[inline]
    /// Address `delta` bytes past this one.
    pub fn offset(self, delta: u64) -> VirtAddr {
        VirtAddr(self.0 + delta)
    }

    #[inline]
    /// Raw integer value.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

struct Allocation {
    base: u64,
    data: Vec<u8>,
}

/// A host's memory arena. Addresses start at 0x1000 (null stays invalid);
/// allocations are contiguous ranges; access outside any allocation panics —
/// in the simulator a wild pointer is always a bug in *our* code, whereas
/// *protection* errors (RDMA to unregistered memory) are modeled separately
/// in the VIA layer.
#[derive(Default)]
struct MemState {
    /// base -> allocation, ordered so range lookups are O(log n).
    allocs: BTreeMap<u64, Allocation>,
    next: u64,
    allocated_bytes: u64,
}

#[derive(Clone)]
/// HostMem.
pub struct HostMem {
    state: Arc<RwLock<MemState>>,
}

impl Default for HostMem {
    fn default() -> Self {
        Self::new()
    }
}

impl HostMem {
    /// Create a new instance with default state.
    pub fn new() -> HostMem {
        HostMem {
            state: Arc::new(RwLock::new(MemState {
                allocs: BTreeMap::new(),
                next: 0x1000,
                allocated_bytes: 0,
            })),
        }
    }

    /// Allocate `len` zeroed bytes; returns the base address.
    pub fn alloc(&self, len: usize) -> VirtAddr {
        let mut st = self.state.write();
        let base = st.next;
        // Align the next allocation to 4 KiB so page-granularity registration
        // costs are realistic, and leave a guard gap.
        let span = (len as u64 + 0xFFF) & !0xFFF;
        st.next = base + span.max(0x1000) + 0x1000;
        st.allocated_bytes += len as u64;
        st.allocs.insert(
            base,
            Allocation {
                base,
                data: vec![0u8; len],
            },
        );
        VirtAddr(base)
    }

    /// Free an allocation by its base address. Panics on a non-base address
    /// (simulator-bug detection, like a bad `free(3)`).
    pub fn free(&self, addr: VirtAddr) {
        let mut st = self.state.write();
        let a = st
            .allocs
            .remove(&addr.0)
            .unwrap_or_else(|| panic!("HostMem::free of non-allocation {addr}"));
        st.allocated_bytes -= a.data.len() as u64;
    }

    /// Total live allocated bytes.
    pub fn allocated_bytes(&self) -> u64 {
        self.state.read().allocated_bytes
    }

    fn with_alloc<R>(&self, addr: VirtAddr, len: usize, f: impl FnOnce(&mut [u8]) -> R) -> R {
        let mut st = self.state.write();
        let (_, alloc) = st
            .allocs
            .range_mut(..=addr.0)
            .next_back()
            .unwrap_or_else(|| panic!("HostMem access to unmapped address {addr}"));
        let off = (addr.0 - alloc.base) as usize;
        assert!(
            off + len <= alloc.data.len(),
            "HostMem access [{addr} + {len}) overruns allocation of {} bytes",
            alloc.data.len()
        );
        f(&mut alloc.data[off..off + len])
    }

    /// Copy bytes out of simulated memory.
    pub fn read(&self, addr: VirtAddr, out: &mut [u8]) {
        self.with_alloc(addr, out.len(), |m| out.copy_from_slice(m));
    }

    /// Copy bytes out into a fresh vector.
    pub fn read_vec(&self, addr: VirtAddr, len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        self.read(addr, &mut v);
        v
    }

    /// Copy bytes out into a pooled, refcounted frame. One copy out of the
    /// arena; everything downstream shares the frame by reference.
    pub fn read_bytes(&self, addr: VirtAddr, len: usize) -> crate::buf::Bytes {
        let mut frame = crate::buf::frame_pool().alloc(len);
        self.read(addr, &mut frame[..len]);
        frame.freeze()
    }

    /// Copy bytes into simulated memory.
    pub fn write(&self, addr: VirtAddr, data: &[u8]) {
        self.with_alloc(addr, data.len(), |m| m.copy_from_slice(data));
    }

    /// Fill a range with one byte value.
    pub fn fill(&self, addr: VirtAddr, len: usize, value: u8) {
        self.with_alloc(addr, len, |m| m.fill(value));
    }

    /// True if `[addr, addr+len)` lies inside one live allocation.
    pub fn is_mapped(&self, addr: VirtAddr, len: usize) -> bool {
        let st = self.state.read();
        match st.allocs.range(..=addr.0).next_back() {
            Some((_, a)) => (addr.0 - a.base) as usize + len <= a.data.len(),
            None => false,
        }
    }
}

/// Accumulates CPU busy time on a host; utilization = busy / window.
#[derive(Clone, Default)]
pub struct CpuMeter {
    busy_ns: Arc<AtomicU64>,
}

impl CpuMeter {
    /// Create a new instance with default state.
    pub fn new() -> CpuMeter {
        CpuMeter::default()
    }

    /// Record `d` of CPU work (called by `Host::compute`).
    pub fn add(&self, d: SimDuration) {
        self.busy_ns.fetch_add(d.as_nanos(), Ordering::Relaxed);
    }

    /// Accumulated busy time.
    pub fn busy(&self) -> SimDuration {
        SimDuration::from_nanos(self.busy_ns.load(Ordering::Relaxed))
    }

    /// Reset to zero, returning the previous value.
    pub fn reset(&self) -> SimDuration {
        SimDuration::from_nanos(self.busy_ns.swap(0, Ordering::Relaxed))
    }

    /// Utilization.
    pub fn utilization(&self, window: SimDuration) -> f64 {
        if window.is_zero() {
            return 0.0;
        }
        self.busy().as_nanos() as f64 / window.as_nanos() as f64
    }
}

/// Identifies a host in a [`Cluster`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub usize);

/// A simulated machine: name, memory, CPU meter.
#[derive(Clone)]
pub struct Host {
    /// Stable identifier.
    pub id: HostId,
    name: Arc<str>,
    /// This host's memory arena.
    pub mem: HostMem,
    /// This host's CPU busy-time meter.
    pub cpu: CpuMeter,
}

impl Host {
    /// Human-readable name (diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Perform `d` of CPU work: advances the calling actor's clock and
    /// charges the host CPU meter.
    pub fn compute(&self, ctx: &ActorCtx, d: SimDuration) {
        self.cpu.add(d);
        ctx.metrics().counter("sim.cpu_ns").add(d.as_nanos());
        ctx.trace(
            "sim",
            "cpu.compute",
            &[
                ("host", obs::Value::Str(&self.name)),
                ("busy_ns", obs::Value::U64(d.as_nanos())),
            ],
        );
        ctx.advance(d);
    }

    /// Charge CPU time without blocking the caller (for costs that overlap
    /// with a subsequent sleep, e.g. interrupt handling on another flow).
    pub fn charge_cpu(&self, d: SimDuration) {
        self.cpu.add(d);
    }
}

/// A registry of hosts, shared by the transport layers.
#[derive(Clone, Default)]
pub struct Cluster {
    hosts: Arc<Mutex<Vec<Host>>>,
}

impl Cluster {
    /// Create a new instance with default state.
    pub fn new() -> Cluster {
        Cluster::default()
    }

    /// Add host.
    pub fn add_host(&self, name: &str) -> Host {
        let mut hs = self.hosts.lock();
        let host = Host {
            id: HostId(hs.len()),
            name: name.into(),
            mem: HostMem::new(),
            cpu: CpuMeter::new(),
        };
        hs.push(host.clone());
        host
    }

    /// Host.
    pub fn host(&self, id: HostId) -> Host {
        self.hosts.lock()[id.0].clone()
    }

    /// Number of contained elements.
    pub fn len(&self) -> usize {
        self.hosts.lock().len()
    }

    /// True if there are no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Elapsed-window helper for utilization reports.
pub struct Stopwatch {
    start: SimTime,
}

impl Stopwatch {
    /// Start.
    pub fn start(ctx: &ActorCtx) -> Stopwatch {
        Stopwatch { start: ctx.now() }
    }

    /// Elapsed.
    pub fn elapsed(&self, ctx: &ActorCtx) -> SimDuration {
        ctx.now().since(self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::SimKernel;
    use crate::time::units::*;

    #[test]
    fn alloc_read_write_roundtrip() {
        let m = HostMem::new();
        let a = m.alloc(64);
        m.write(a, b"hello");
        m.write(a.offset(5), b" world");
        assert_eq!(m.read_vec(a, 11), b"hello world");
        assert_eq!(m.allocated_bytes(), 64);
    }

    #[test]
    fn allocations_are_disjoint_and_zeroed() {
        let m = HostMem::new();
        let a = m.alloc(4096);
        let b = m.alloc(4096);
        assert!(b.0 >= a.0 + 4096);
        m.fill(a, 4096, 0xAA);
        assert_eq!(m.read_vec(b, 16), vec![0u8; 16]);
    }

    #[test]
    fn interior_pointer_access_works() {
        let m = HostMem::new();
        let a = m.alloc(1000);
        m.write(a.offset(500), &[1, 2, 3]);
        assert_eq!(m.read_vec(a.offset(501), 1), vec![2]);
    }

    #[test]
    #[should_panic(expected = "unmapped")]
    fn unmapped_access_panics() {
        let m = HostMem::new();
        m.read_vec(VirtAddr(0x10), 1);
    }

    #[test]
    #[should_panic(expected = "overruns")]
    fn overrun_access_panics() {
        let m = HostMem::new();
        let a = m.alloc(8);
        m.read_vec(a, 9);
    }

    #[test]
    fn free_then_mapped_check() {
        let m = HostMem::new();
        let a = m.alloc(128);
        assert!(m.is_mapped(a, 128));
        m.free(a);
        assert!(!m.is_mapped(a, 1));
        assert_eq!(m.allocated_bytes(), 0);
    }

    #[test]
    fn cpu_meter_and_compute() {
        let k = SimKernel::new();
        let c = Cluster::new();
        let h = c.add_host("node0");
        let h2 = h.clone();
        k.spawn("w", move |ctx| {
            h2.compute(ctx, us(30));
            ctx.advance(us(70)); // idle
        });
        let end = k.run();
        assert_eq!(h.cpu.busy(), us(30));
        assert!((h.cpu.utilization(end.since(SimTime::ZERO)) - 0.3).abs() < 1e-9);
    }

    #[test]
    fn cluster_host_lookup() {
        let c = Cluster::new();
        let a = c.add_host("a");
        let b = c.add_host("b");
        assert_eq!(c.len(), 2);
        assert_eq!(c.host(a.id).name(), "a");
        assert_eq!(c.host(b.id).name(), "b");
    }
}
