//! Point-to-point links: propagation latency + serialized wire bandwidth.
//!
//! A [`Link`] is directional. Transfers occupy the wire (a [`Resource`]) for
//! `bytes / bandwidth`, then propagate for `latency`; the returned arrival
//! instant is used to stamp the message on the far end's port. Back-to-back
//! transfers pipeline exactly as on a real serial medium.

use crate::resource::Resource;
use crate::time::{Bandwidth, SimDuration, SimTime};

/// A directional point-to-point link.
#[derive(Clone)]
pub struct Link {
    wire: Resource,
    latency: SimDuration,
    bandwidth: Bandwidth,
}

impl Link {
    /// Create a new instance with default state.
    pub fn new(name: &str, latency: SimDuration, bandwidth: Bandwidth) -> Link {
        Link {
            wire: Resource::new(name),
            latency,
            bandwidth,
        }
    }

    /// Build a full-duplex pair of identical links (forward, reverse).
    pub fn duplex(name: &str, latency: SimDuration, bandwidth: Bandwidth) -> (Link, Link) {
        (
            Link::new(&format!("{name}.fwd"), latency, bandwidth),
            Link::new(&format!("{name}.rev"), latency, bandwidth),
        )
    }

    /// Propagation latency.
    pub fn latency(&self) -> SimDuration {
        self.latency
    }

    /// Configured wire rate.
    pub fn bandwidth(&self) -> Bandwidth {
        self.bandwidth
    }

    /// Pure serialization delay of `bytes` (no queueing, no latency).
    pub fn serialization_delay(&self, bytes: u64) -> SimDuration {
        self.bandwidth.time_for(bytes)
    }

    /// Occupy the wire for a transfer injected at `depart`; returns the
    /// arrival instant at the far end.
    pub fn transfer(&self, depart: SimTime, bytes: u64) -> SimTime {
        let wire_done = self.wire.book(depart, self.bandwidth.time_for(bytes));
        wire_done + self.latency
    }

    /// Total bytes·time booked on the wire so far, for utilization reports.
    pub fn wire_busy(&self) -> SimDuration {
        self.wire.busy_total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::units::*;

    fn link() -> Link {
        // 10us latency, 100 MB/s => 10ns per byte.
        Link::new("l", us(10), Bandwidth::mb_per_sec(100))
    }

    #[test]
    fn single_transfer_latency_plus_serialization() {
        let l = link();
        let arrival = l.transfer(SimTime::ZERO, 1000);
        // 1000 B * 10 ns/B = 10us serialization + 10us latency.
        assert_eq!(arrival, SimTime::ZERO + us(20));
    }

    #[test]
    fn back_to_back_transfers_pipeline() {
        let l = link();
        let a1 = l.transfer(SimTime::ZERO, 1000);
        let a2 = l.transfer(SimTime::ZERO, 1000);
        // Second must wait for the wire, not for the first's arrival.
        assert_eq!(a1, SimTime::ZERO + us(20));
        assert_eq!(a2, SimTime::ZERO + us(30));
    }

    #[test]
    fn zero_byte_message_is_latency_only() {
        let l = link();
        assert_eq!(l.transfer(SimTime(5), 0), SimTime(5) + us(10));
    }

    #[test]
    fn duplex_directions_independent() {
        let (f, r) = Link::duplex("d", us(1), Bandwidth::mb_per_sec(100));
        let a = f.transfer(SimTime::ZERO, 100_000);
        let b = r.transfer(SimTime::ZERO, 100_000);
        assert_eq!(a, b, "opposite directions must not contend");
    }
}
