//! Virtual time: instants, durations, and bandwidth arithmetic.
//!
//! All simulated time is kept in integer nanoseconds so that results are
//! exactly reproducible across platforms (no floating-point drift in the
//! event queue). Bandwidths are bytes/second; converting a transfer size to
//! a duration rounds *up*, so a transfer never completes early.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant in virtual time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The zero value.
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since simulation start.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds as a float (for reporting only).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// Duration since an earlier instant. Panics if `earlier` is later.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: earlier instant is in the future"),
        )
    }

    /// Duration since `earlier`, saturating at zero.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero value.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    #[inline]
    /// Value in nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    #[inline]
    /// Value in microseconds, as a float (reporting only).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    #[inline]
    /// Value in seconds, as a float (reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    #[inline]
    /// True if this is the zero value.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    #[inline]
    /// The larger of the two values.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Scale by an integer factor (saturating).
    #[inline]
    pub fn saturating_mul(self, n: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(n))
    }
}

/// Shorthand constructors, re-exported at the crate root.
pub mod units {
    use super::SimDuration;

    /// `n` nanoseconds.
    #[inline]
    pub const fn ns(n: u64) -> SimDuration {
        SimDuration::from_nanos(n)
    }

    /// `n` microseconds.
    #[inline]
    pub const fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    /// `n` milliseconds.
    #[inline]
    pub const fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    /// `n` seconds.
    #[inline]
    pub const fn secs(n: u64) -> SimDuration {
        SimDuration::from_secs(n)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration underflow in subtraction"),
        )
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

fn fmt_ns(ns: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if ns >= 1_000_000_000 {
        write!(f, "{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        write!(f, "{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        write!(f, "{:.3}us", ns as f64 / 1e3)
    } else {
        write!(f, "{}ns", ns)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

/// A transfer rate in bytes per second.
///
/// The zero bandwidth is invalid; constructors reject it so that duration
/// computation can never divide by zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bandwidth(u64);

impl Bandwidth {
    /// From raw bytes/second. Panics on zero.
    #[inline]
    pub fn bytes_per_sec(bps: u64) -> Bandwidth {
        assert!(bps > 0, "bandwidth must be positive");
        Bandwidth(bps)
    }

    /// From megabytes/second (decimal MB, matching how NIC datasheets of the
    /// era quoted application-level throughput).
    #[inline]
    pub fn mb_per_sec(mb: u64) -> Bandwidth {
        Bandwidth::bytes_per_sec(mb * 1_000_000)
    }

    #[inline]
    /// Rate in bytes per second.
    pub fn as_bytes_per_sec(self) -> u64 {
        self.0
    }

    /// Time to move `bytes` at this rate, rounded up to whole nanoseconds.
    ///
    /// Rounding up means a simulated transfer is never faster than the
    /// physical rate allows, so measured bandwidth converges to the
    /// configured rate from below.
    #[inline]
    pub fn time_for(self, bytes: u64) -> SimDuration {
        // ns = bytes * 1e9 / rate, computed in u128 to avoid overflow for
        // multi-gigabyte transfers.
        let ns = (bytes as u128 * 1_000_000_000u128).div_ceil(self.0 as u128);
        SimDuration(ns as u64)
    }

    /// Observed rate for `bytes` moved in `elapsed` (for reporting).
    pub fn observed(bytes: u64, elapsed: SimDuration) -> f64 {
        if elapsed.is_zero() {
            return f64::INFINITY;
        }
        bytes as f64 / elapsed.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::units::*;
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::ZERO + us(5) + ns(250);
        assert_eq!(t.as_nanos(), 5_250);
        assert_eq!(t.since(SimTime(250)), us(5));
        assert_eq!(t - SimTime(5_000), ns(250));
    }

    #[test]
    fn duration_units() {
        assert_eq!(secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(ms(3).as_nanos(), 3_000_000);
        assert_eq!(us(7) * 3, us(21));
        assert_eq!(us(21) / 3, us(7));
        assert_eq!(us(9) - us(4), us(5));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn duration_underflow_panics() {
        let _ = us(1) - us(2);
    }

    #[test]
    #[should_panic(expected = "in the future")]
    fn since_future_panics() {
        let _ = SimTime(10).since(SimTime(20));
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(SimTime(10).saturating_since(SimTime(20)), ns(0));
        assert_eq!(SimTime(20).saturating_since(SimTime(10)), ns(10));
    }

    #[test]
    fn bandwidth_rounds_up() {
        let bw = Bandwidth::bytes_per_sec(3);
        // 1 byte at 3 B/s = 333333333.33 ns, must round up.
        assert_eq!(bw.time_for(1).as_nanos(), 333_333_334);
        // Zero bytes take zero time.
        assert_eq!(bw.time_for(0), SimDuration::ZERO);
    }

    #[test]
    fn bandwidth_large_transfer_no_overflow() {
        let bw = Bandwidth::mb_per_sec(110);
        let d = bw.time_for(16 << 30); // 16 GiB
        assert!(d.as_secs_f64() > 150.0 && d.as_secs_f64() < 160.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_rejected() {
        let _ = Bandwidth::bytes_per_sec(0);
    }

    #[test]
    fn display_is_humane() {
        assert_eq!(format!("{}", ns(17)), "17ns");
        assert_eq!(format!("{}", us(5)), "5.000us");
        assert_eq!(format!("{}", ms(2) + us(500)), "2.500ms");
        assert_eq!(format!("{}", secs(1)), "1.000s");
    }

    #[test]
    fn observed_bandwidth() {
        let r = Bandwidth::observed(1_000_000, ms(10));
        assert!((r - 100_000_000.0).abs() < 1.0);
        assert!(Bandwidth::observed(1, SimDuration::ZERO).is_infinite());
    }
}
