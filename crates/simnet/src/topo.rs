//! Switched-fabric topology: ports, store-and-forward/cut-through switches,
//! and multi-rail trunking.
//!
//! Every testbed before this module wired hosts point-to-point: a sender's
//! `tx_wire` resource fed the receiver's `rx_wire` directly, one propagation
//! delay apart. A production cluster interposes *switches*: shared egress
//! ports with bounded queues, oversubscribed trunks between leaves, and
//! (optionally) several parallel rails per trunk. This module models exactly
//! that, as timing arithmetic over the same [`Resource`] primitive the
//! point-to-point path uses:
//!
//! * A [`Switch`](SwitchConfig) is a set of egress ports, one per neighbour
//!   (host or switch) per rail. Each port serializes frames at its link rate
//!   on its own [`Resource`], holds at most `queue_capacity` frames, and
//!   draws from a per-switch shared buffer pool of `pool_bytes`. When either
//!   bound is hit the switch [backpressures](QueuePolicy::Backpressure)
//!   (delays admission until a buffer frees — link-level flow control, the
//!   lossless VIA-era default) or [drops](QueuePolicy::Drop) the frame.
//! * Forwarding is [cut-through](ForwardingMode::CutThrough) (egress may
//!   start once the first bit arrives — how the cLAN switches the paper ran
//!   on behaved) or [store-and-forward](ForwardingMode::StoreAndForward)
//!   (egress waits for the last bit).
//! * A topology may have several *rails*: parallel copies of the whole
//!   switch plane. Each flow (directed host pair) is deterministically
//!   assigned a rail in first-use order; if a [`FaultPlan`] takes a link or
//!   switch on that rail down, the flow fails over to the next healthy rail
//!   (`fabric.failovers`), and only when every rail is down does the frame
//!   drop with [`DropCause::LinkDown`].
//!
//! The switch is deliberately a **passive shared model object**, not a
//! spawned actor: the forwarding plane has no decisions to make that depend
//! on simulated time passing — every per-frame outcome (queue wait, service
//! span, drop) is a deterministic function of prior bookings, exactly like
//! [`Resource`] itself. An actor thread per switch would add context
//! switches without changing a single computed time. (tcpnet's softirq
//! resource follows the same pattern.)
//!
//! Each switch also allocates one *pseudo-host* per rail from the
//! [`Cluster`]. These hosts run nothing; they exist so the existing
//! [`FaultPlan`] machinery addresses fabric elements uniformly:
//! `link_down(host, switch_rail_host, ..)` takes down one rail's uplink,
//! `host_crash(switch_rail_host, ..)` takes down a whole rail of a switch.
//!
//! With a single cut-through switch whose port rate equals the wire rate
//! and whose two hop latencies sum to the point-to-point propagation delay,
//! the fabric is **byte-identical in virtual time** to the direct wire —
//! including under incast, because the egress port pre-serializes flows in
//! exactly the order the receiver's `rx_wire` would have (an induction over
//! `Resource` bookings; asserted in `tests/determinism.rs`).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use parking_lot::Mutex;

use crate::fault::{DropCause, FaultPlan};
use crate::host::{Cluster, HostId};
use crate::kernel::ActorCtx;
use crate::resource::Resource;
use crate::time::{Bandwidth, SimDuration, SimTime};
use obs::{Registry, Value};

/// When an egress port may begin transmitting a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ForwardingMode {
    /// Start once the first bit has arrived (wormhole/cut-through, as on the
    /// cLAN). The degenerate one-switch topology is byte-identical to the
    /// direct wire in this mode.
    #[default]
    CutThrough,
    /// Wait for the last bit (classic store-and-forward): adds one full
    /// serialization delay per hop.
    StoreAndForward,
}

/// What happens when an egress queue (or the shared pool) is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueuePolicy {
    /// Delay admission until a buffer frees — models link-level flow
    /// control pushing back on the upstream hop (lossless, VIA-style).
    #[default]
    Backpressure,
    /// Drop the frame ([`DropCause::QueueFull`]); recovery is the
    /// transport's problem, as with a real Ethernet switch.
    Drop,
}

/// Per-switch configuration.
#[derive(Debug, Clone, Copy)]
pub struct SwitchConfig {
    /// Serialization rate of host-facing egress ports. (Switch-to-switch
    /// ports use the trunk's own bandwidth.)
    pub port_bw: Bandwidth,
    /// Maximum frames resident per egress port; `0` = unbounded.
    pub queue_capacity: usize,
    /// Shared buffer pool per switch (bytes across all its ports);
    /// `0` = unbounded.
    pub pool_bytes: u64,
    /// Cut-through or store-and-forward.
    pub mode: ForwardingMode,
    /// Backpressure or drop on full.
    pub policy: QueuePolicy,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig {
            port_bw: Bandwidth::mb_per_sec(110),
            queue_capacity: 64,
            pool_bytes: 0,
            mode: ForwardingMode::default(),
            policy: QueuePolicy::default(),
        }
    }
}

/// Handle to a switch within a [`TopologyBuilder`] (index into the plane).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchRef(usize);

/// A frame the fabric refused to carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricDrop {
    /// [`DropCause::QueueFull`] (egress overflow under [`QueuePolicy::Drop`])
    /// or [`DropCause::LinkDown`] (every rail unhealthy).
    pub cause: DropCause,
    /// Virtual instant the frame died.
    pub at: SimTime,
}

/// Frozen per-port accounting, for tests and end-of-run metric export.
#[derive(Debug, Clone)]
pub struct PortStats {
    /// Switch name (as given to [`TopologyBuilder::switch`]).
    pub switch: String,
    /// Rail index.
    pub rail: usize,
    /// Egress port label (`to_h<id>` or `to_<switch>`).
    pub port: String,
    /// Frames admitted (booked onto the port).
    pub frames: u64,
    /// Bytes admitted.
    pub bytes: u64,
    /// Frames dropped at this port (queue/pool full under `Drop`).
    pub drops: u64,
    /// Bytes dropped.
    pub dropped_bytes: u64,
    /// Maximum frames resident at any admission instant (≤ the configured
    /// `queue_capacity` whenever one is set).
    pub qdepth_max: u64,
    /// Total virtual time frames waited behind the port before service.
    pub queued_ns: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum NodeKey {
    Switch(usize),
    Host(usize),
}

struct SwitchDef {
    name: String,
    cfg: SwitchConfig,
    /// One pseudo-host per rail (FaultPlan address of this switch plane).
    rail_hosts: Vec<HostId>,
}

#[derive(Clone, Copy)]
struct Edge {
    to: usize,
    latency: SimDuration,
    bw: Bandwidth,
}

#[derive(Clone, Copy)]
struct Attachment {
    switch: usize,
    latency: SimDuration,
}

struct PortState {
    res: Resource,
    /// Resident frames as `(egress done, bytes)`, done-ascending.
    queue: VecDeque<(SimTime, u64)>,
    frames: u64,
    bytes: u64,
    drops: u64,
    dropped_bytes: u64,
    qdepth_max: u64,
    queued_ns: u64,
}

#[derive(Default)]
struct PoolState {
    used: u64,
    /// Release schedule: `(egress done, bytes)`, earliest-done first.
    heap: BinaryHeap<Reverse<(SimTime, u64)>>,
}

/// One switch on one rail: its egress ports plus the shared buffer pool.
#[derive(Default)]
struct SwState {
    ports: std::collections::BTreeMap<NodeKey, PortState>,
    pool: PoolState,
}

#[derive(Default)]
struct TopoState {
    /// `[rail][switch]` mutable forwarding state.
    rails: Vec<Vec<SwState>>,
    /// Rail assigned to each directed host pair, in first-use order.
    rail_assign: HashMap<(usize, usize), usize>,
    next_rail: usize,
}

struct Hop {
    sw: usize,
    key: NodeKey,
    /// Resource/metric label of the egress port.
    label: String,
    /// Propagation to the next node after egress.
    latency: SimDuration,
    /// Egress serialization rate (port rate or trunk rate).
    bw: Bandwidth,
}

/// Builds a [`Topology`]: declare switches, trunk them, attach hosts.
pub struct TopologyBuilder<'a> {
    cluster: &'a Cluster,
    rails: usize,
    switches: Vec<SwitchDef>,
    adj: Vec<Vec<Edge>>,
    attach: HashMap<usize, Attachment>,
    default_attach: Option<Attachment>,
}

impl<'a> TopologyBuilder<'a> {
    /// Start building a topology with `rails` parallel switch planes
    /// (`rails >= 1`). Switch pseudo-hosts are allocated from `cluster`.
    pub fn new(cluster: &'a Cluster, rails: usize) -> TopologyBuilder<'a> {
        assert!(rails >= 1, "a topology needs at least one rail");
        TopologyBuilder {
            cluster,
            rails,
            switches: Vec::new(),
            adj: Vec::new(),
            attach: HashMap::new(),
            default_attach: None,
        }
    }

    /// Add a switch (replicated on every rail). Allocates one pseudo-host
    /// per rail named `<name>.r<rail>` so fault plans can address it.
    pub fn switch(&mut self, name: &str, cfg: SwitchConfig) -> SwitchRef {
        let rail_hosts = (0..self.rails)
            .map(|r| self.cluster.add_host(&format!("{name}.r{r}")).id)
            .collect();
        self.switches.push(SwitchDef {
            name: name.to_string(),
            cfg,
            rail_hosts,
        });
        self.adj.push(Vec::new());
        SwitchRef(self.switches.len() - 1)
    }

    /// Trunk two switches with a bidirectional link of `bw` **per rail** and
    /// one-way propagation `latency`.
    pub fn trunk(&mut self, a: SwitchRef, b: SwitchRef, bw: Bandwidth, latency: SimDuration) {
        assert_ne!(a.0, b.0, "a switch cannot trunk to itself");
        self.adj[a.0].push(Edge {
            to: b.0,
            latency,
            bw,
        });
        self.adj[b.0].push(Edge {
            to: a.0,
            latency,
            bw,
        });
    }

    /// Attach `host` to `sw` with one-way propagation `latency` on the
    /// host link (each direction; the host's own NIC paces its uplink, the
    /// switch's egress port paces the downlink).
    pub fn attach(&mut self, host: HostId, sw: SwitchRef, latency: SimDuration) {
        let prev = self.attach.insert(
            host.0,
            Attachment {
                switch: sw.0,
                latency,
            },
        );
        assert!(prev.is_none(), "host {host:?} attached twice");
    }

    /// Hosts without an explicit [`attach`](Self::attach) call route via
    /// `sw` — the leaf for hosts created *after* the topology (MPI ranks).
    pub fn attach_default(&mut self, sw: SwitchRef, latency: SimDuration) {
        self.default_attach = Some(Attachment {
            switch: sw.0,
            latency,
        });
    }

    /// Finalize: compute deterministic shortest-path routes between every
    /// switch pair (BFS, neighbour insertion order breaks ties).
    pub fn build(self) -> Topology {
        let n = self.switches.len();
        assert!(n >= 1, "a topology needs at least one switch");
        let mut paths = vec![vec![None; n]; n];
        for src in 0..n {
            let mut parent: Vec<Option<usize>> = vec![None; n];
            let mut seen = vec![false; n];
            let mut q = VecDeque::new();
            seen[src] = true;
            q.push_back(src);
            while let Some(u) = q.pop_front() {
                for e in &self.adj[u] {
                    if !seen[e.to] {
                        seen[e.to] = true;
                        parent[e.to] = Some(u);
                        q.push_back(e.to);
                    }
                }
            }
            for dst in 0..n {
                if !seen[dst] {
                    continue;
                }
                let mut path = vec![dst];
                let mut cur = dst;
                while let Some(p) = parent[cur] {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                paths[src][dst] = Some(path);
            }
        }
        let state = TopoState {
            rails: (0..self.rails)
                .map(|_| (0..n).map(|_| SwState::default()).collect())
                .collect(),
            ..TopoState::default()
        };
        Topology {
            rails: self.rails,
            switches: self.switches,
            adj: self.adj,
            attach: self.attach,
            default_attach: self.default_attach,
            paths,
            state: Mutex::new(state),
        }
    }
}

/// Parameters for [`Topology::dumbbell`] — the canonical incast /
/// oversubscription shape: a server leaf and a client leaf joined by a
/// trunk.
#[derive(Debug, Clone, Copy)]
pub struct DumbbellSpec {
    /// Host-facing egress port rate on both leaves.
    pub port_bw: Bandwidth,
    /// Total trunk bandwidth (split evenly across rails).
    pub trunk_bw: Bandwidth,
    /// Total one-way path latency host→host (split across the three hops).
    pub latency: SimDuration,
    /// Parallel rails (`>= 1`).
    pub rails: usize,
    /// Per-port queue capacity in frames (`0` = unbounded).
    pub queue_capacity: usize,
    /// Shared pool per switch in bytes (`0` = unbounded).
    pub pool_bytes: u64,
    /// Forwarding mode for both leaves.
    pub mode: ForwardingMode,
    /// Full-queue policy for both leaves.
    pub policy: QueuePolicy,
}

/// An immutable routed fabric shared by every transport in a run.
///
/// Passive and lock-internal, like [`Resource`]: transports call
/// [`deliver`](Topology::deliver) from whichever actor is sending; the
/// conservative kernel admits one actor at a time, so bookings happen in a
/// deterministic order.
pub struct Topology {
    rails: usize,
    switches: Vec<SwitchDef>,
    adj: Vec<Vec<Edge>>,
    attach: HashMap<usize, Attachment>,
    default_attach: Option<Attachment>,
    /// `paths[a][b]`: switch sequence from `a` to `b` inclusive.
    paths: Vec<Vec<Option<Vec<usize>>>>,
    state: Mutex<TopoState>,
}

impl Topology {
    /// Build the two-leaf dumbbell: `servers` attached to a server leaf,
    /// every other (including later-created) host on the client leaf, one
    /// trunk between them.
    pub fn dumbbell(cluster: &Cluster, servers: &[HostId], spec: DumbbellSpec) -> Topology {
        let cfg = SwitchConfig {
            port_bw: spec.port_bw,
            queue_capacity: spec.queue_capacity,
            pool_bytes: spec.pool_bytes,
            mode: spec.mode,
            policy: spec.policy,
        };
        let mut b = TopologyBuilder::new(cluster, spec.rails);
        let srv = b.switch("leaf-srv", cfg);
        let cli = b.switch("leaf-cli", cfg);
        let host_lat = spec.latency / 3;
        let trunk_lat = spec.latency - host_lat - host_lat;
        let per_rail =
            Bandwidth::bytes_per_sec((spec.trunk_bw.as_bytes_per_sec() / spec.rails as u64).max(1));
        b.trunk(srv, cli, per_rail, trunk_lat);
        for &h in servers {
            b.attach(h, srv, host_lat);
        }
        b.attach_default(cli, host_lat);
        b.build()
    }

    /// Number of parallel rails.
    pub fn rails(&self) -> usize {
        self.rails
    }

    /// The per-rail pseudo-hosts of switch `sw` (index in declaration
    /// order), for [`FaultPlan`] targeting.
    pub fn switch_hosts(&self, sw: usize) -> &[HostId] {
        &self.switches[sw].rail_hosts
    }

    fn attachment(&self, h: HostId) -> Attachment {
        self.attach
            .get(&h.0)
            .copied()
            .or(self.default_attach)
            .unwrap_or_else(|| panic!("host {h:?} is not attached to the topology"))
    }

    fn edge(&self, a: usize, b: usize) -> Edge {
        *self.adj[a]
            .iter()
            .find(|e| e.to == b)
            .expect("routed path uses a missing edge")
    }

    /// True when rail `r` has no down link or crashed switch pseudo-host on
    /// the `src`→`dst` path at time `t` (pure window queries; no RNG).
    fn rail_healthy(
        &self,
        faults: Option<&FaultPlan>,
        r: usize,
        path: &[usize],
        src: HostId,
        dst: HostId,
        t: SimTime,
    ) -> bool {
        let Some(f) = faults else { return true };
        let sw_host = |s: usize| self.switches[s].rail_hosts[r];
        let mut prev = src;
        for &s in path {
            let h = sw_host(s);
            if f.host_down_at(h, t) || f.link_down_at(prev, h, t) {
                return false;
            }
            prev = h;
        }
        !f.link_down_at(prev, dst, t)
    }

    /// Rail carrying the `src`→`dst` flow at time `t`: the flow's assigned
    /// rail if healthy, else the next healthy one (`failover = true`), else
    /// `None` (all rails down).
    fn pick_rail(
        &self,
        st: &mut TopoState,
        faults: Option<&FaultPlan>,
        path: &[usize],
        src: HostId,
        dst: HostId,
        t: SimTime,
    ) -> Option<(usize, bool)> {
        let home = *st.rail_assign.entry((src.0, dst.0)).or_insert_with(|| {
            let r = st.next_rail % self.rails;
            st.next_rail += 1;
            r
        });
        for k in 0..self.rails {
            let r = (home + k) % self.rails;
            if self.rail_healthy(faults, r, path, src, dst, t) {
                return Some((r, k > 0));
            }
        }
        None
    }

    /// Carry one frame of `bytes` from `src` to `dst`, given the instants
    /// its first and last bit leave the source NIC (`tx_start`, `tx_done`).
    ///
    /// Returns the instant the destination's receive port starts taking
    /// bits (the caller books its `rx_wire` from there), or the drop if the
    /// fabric refused the frame. Frames of one flow ride one rail, so
    /// ordering within a flow is FIFO except across a failover transition.
    #[allow(clippy::too_many_arguments)]
    pub fn deliver(
        &self,
        ctx: &ActorCtx,
        faults: Option<&FaultPlan>,
        src: HostId,
        dst: HostId,
        bytes: u64,
        tx_start: SimTime,
        tx_done: SimTime,
    ) -> Result<SimTime, FabricDrop> {
        let sa = self.attachment(src);
        let da = self.attachment(dst);
        let path = self.paths[sa.switch][da.switch]
            .as_ref()
            .unwrap_or_else(|| panic!("no route between switches of {src:?} and {dst:?}"));

        // Precompute the hop list (egress port + link per switch) outside
        // the state lock.
        let mut hops = Vec::with_capacity(path.len());
        for (i, &s) in path.iter().enumerate() {
            let (key, label, latency, bw) = if i + 1 < path.len() {
                let e = self.edge(s, path[i + 1]);
                (
                    NodeKey::Switch(e.to),
                    format!("to_{}", self.switches[e.to].name),
                    e.latency,
                    e.bw,
                )
            } else {
                (
                    NodeKey::Host(dst.0),
                    format!("to_h{}", dst.0),
                    da.latency,
                    self.switches[s].cfg.port_bw,
                )
            };
            hops.push(Hop {
                sw: s,
                key,
                label,
                latency,
                bw,
            });
        }

        let mut st = self.state.lock();
        let Some((rail, failover)) = self.pick_rail(&mut st, faults, path, src, dst, ctx.now())
        else {
            drop(st);
            ctx.metrics().counter("fabric.drops").inc();
            ctx.trace(
                "fabric",
                "drop",
                &[
                    ("src", Value::U64(src.0 as u64)),
                    ("dst", Value::U64(dst.0 as u64)),
                    ("cause", Value::Str(DropCause::LinkDown.as_str())),
                ],
            );
            return Err(FabricDrop {
                cause: DropCause::LinkDown,
                at: ctx.now(),
            });
        };

        let mut first = tx_start + sa.latency;
        let mut last = tx_done + sa.latency;
        for hop in &hops {
            let cfg = self.switches[hop.sw].cfg;
            let ready = match cfg.mode {
                ForwardingMode::CutThrough => first,
                ForwardingMode::StoreAndForward => last,
            };
            let ser = hop.bw.time_for(bytes);
            let rail_name = format!("{}.r{rail}", self.switches[hop.sw].name);
            let sws = &mut st.rails[rail][hop.sw];
            match admit(
                sws, &cfg, &rail_name, &hop.label, hop.key, bytes, ser, ready,
            ) {
                Ok((start, done, waited)) => {
                    if !waited.is_zero() {
                        ctx.metrics()
                            .counter("fabric.queued_ns")
                            .add(waited.as_nanos());
                    }
                    first = start + hop.latency;
                    last = done + hop.latency;
                }
                Err(at) => {
                    drop(st);
                    ctx.metrics().counter("fabric.drops").inc();
                    ctx.trace(
                        "fabric",
                        "drop",
                        &[
                            ("switch", Value::Str(&rail_name)),
                            ("port", Value::Str(&hop.label)),
                            ("cause", Value::Str(DropCause::QueueFull.as_str())),
                        ],
                    );
                    return Err(FabricDrop {
                        cause: DropCause::QueueFull,
                        at,
                    });
                }
            }
        }
        drop(st);
        if failover {
            ctx.metrics().counter("fabric.failovers").inc();
        }
        ctx.metrics().counter("fabric.frames").inc();
        ctx.metrics().counter("fabric.bytes").add(bytes);
        let _ = last;
        Ok(first)
    }

    /// Per-port accounting for every port that carried (or refused) at
    /// least one frame, in deterministic (rail, switch, port) order.
    pub fn port_stats(&self) -> Vec<PortStats> {
        let st = self.state.lock();
        let mut out = Vec::new();
        for (r, rail) in st.rails.iter().enumerate() {
            for (s, sws) in rail.iter().enumerate() {
                for (key, p) in &sws.ports {
                    let port = match key {
                        NodeKey::Host(h) => format!("to_h{h}"),
                        NodeKey::Switch(i) => format!("to_{}", self.switches[*i].name),
                    };
                    out.push(PortStats {
                        switch: self.switches[s].name.clone(),
                        rail: r,
                        port,
                        frames: p.frames,
                        bytes: p.bytes,
                        drops: p.drops,
                        dropped_bytes: p.dropped_bytes,
                        qdepth_max: p.qdepth_max,
                        queued_ns: p.queued_ns,
                    });
                }
            }
        }
        out
    }

    /// Export per-port counters into `registry` as
    /// `fabric.<switch>.r<rail>.<port>.{frames,bytes,drops,qdepth_max,queued_ns}`.
    /// Call once after the run (the snapshot then carries per-port
    /// queue-depth and drop metrics next to the aggregate `fabric.*` ones).
    pub fn publish_metrics(&self, registry: &Registry) {
        for ps in self.port_stats() {
            let prefix = format!("fabric.{}.r{}.{}", ps.switch, ps.rail, ps.port);
            registry.counter(&format!("{prefix}.frames")).add(ps.frames);
            registry.counter(&format!("{prefix}.bytes")).add(ps.bytes);
            registry.counter(&format!("{prefix}.drops")).add(ps.drops);
            registry
                .counter(&format!("{prefix}.qdepth_max"))
                .add(ps.qdepth_max);
            registry
                .counter(&format!("{prefix}.queued_ns"))
                .add(ps.queued_ns);
        }
    }
}

impl PortState {
    fn new(name: &str) -> PortState {
        PortState {
            res: Resource::new(name),
            queue: VecDeque::new(),
            frames: 0,
            bytes: 0,
            drops: 0,
            dropped_bytes: 0,
            qdepth_max: 0,
            queued_ns: 0,
        }
    }
}

/// Admit one frame to an egress port: expire departed frames at `ready`,
/// enforce the per-port depth bound and the shared pool, then book the
/// serialization span. Returns `(start, done, waited)`; `Err(at)` is a
/// queue-full drop under [`QueuePolicy::Drop`].
///
/// Frames are expired *at the admission instant each caller presents*,
/// which — like [`Resource`] itself — is a processing-order model: a later
/// caller with an earlier `ready` sees the queue as already drained by the
/// first caller's expiry. The kernel's nondecreasing-time scheduling makes
/// such inversions rare and the outcome deterministic either way.
#[allow(clippy::too_many_arguments)]
fn admit(
    sws: &mut SwState,
    cfg: &SwitchConfig,
    rail_name: &str,
    label: &str,
    key: NodeKey,
    bytes: u64,
    ser: SimDuration,
    ready0: SimTime,
) -> Result<(SimTime, SimTime, SimDuration), SimTime> {
    let SwState { ports, pool } = sws;
    let port = ports
        .entry(key)
        .or_insert_with(|| PortState::new(&format!("{rail_name}.{label}")));
    let mut ready = ready0;
    loop {
        // Frames whose last bit has left the port free their buffer.
        while let Some(&(done, _)) = port.queue.front() {
            if done <= ready {
                port.queue.pop_front();
            } else {
                break;
            }
        }
        while let Some(&Reverse((done, b))) = pool.heap.peek() {
            if done <= ready {
                pool.heap.pop();
                pool.used -= b;
            } else {
                break;
            }
        }
        let wait = if cfg.queue_capacity > 0 && port.queue.len() >= cfg.queue_capacity {
            // The queue frees a slot when its (len - capacity + 1)-th
            // oldest resident departs; `done`s are ascending, so index
            // `len - capacity` is the first departure that helps.
            Some(port.queue[port.queue.len() - cfg.queue_capacity].0)
        } else if cfg.pool_bytes > 0 && pool.used + bytes > cfg.pool_bytes {
            match pool.heap.peek() {
                Some(&Reverse((done, _))) => Some(done),
                // The frame alone exceeds the whole pool: it can never be
                // buffered, under either policy.
                None => {
                    port.drops += 1;
                    port.dropped_bytes += bytes;
                    return Err(ready);
                }
            }
        } else {
            None
        };
        match wait {
            None => break,
            Some(t) => match cfg.policy {
                QueuePolicy::Drop => {
                    port.drops += 1;
                    port.dropped_bytes += bytes;
                    return Err(ready);
                }
                // After expiry every resident `done` is strictly later than
                // `ready`, so `t > ready`: each pass moves `ready` forward
                // past at least one departure and the loop terminates.
                QueuePolicy::Backpressure => ready = ready.max(t),
            },
        }
    }
    let (start, done) = port.res.book_span(ready, ser);
    port.queue.push_back((done, bytes));
    pool.used += bytes;
    pool.heap.push(Reverse((done, bytes)));
    port.frames += 1;
    port.bytes += bytes;
    let waited = start.since(ready0);
    port.queued_ns += waited.as_nanos();
    let depth = port.queue.len() as u64;
    if depth > port.qdepth_max {
        port.qdepth_max = depth;
    }
    Ok((start, done, waited))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::kernel::SimKernel;
    use crate::time::units::*;

    fn with_ctx(f: impl Fn(&ActorCtx) + Send + 'static) {
        let k = SimKernel::new();
        k.spawn("t", move |ctx| f(ctx));
        k.run();
    }

    #[test]
    fn cut_through_uncontended_is_latency_only() {
        let cluster = Cluster::new();
        let a = cluster.add_host("a").id;
        let b = cluster.add_host("b").id;
        let topo = std::sync::Arc::new({
            let mut tb = TopologyBuilder::new(&cluster, 1);
            let sw = tb.switch("sw0", SwitchConfig::default());
            tb.attach(a, sw, us(2));
            tb.attach(b, sw, us(3));
            tb.build()
        });
        let t = topo.clone();
        with_ctx(move |ctx| {
            // 110 MB/s port: 11000 bytes = 100 us serialization.
            let tx_start = ctx.now();
            let tx_done = tx_start + us(100);
            let arr = t
                .deliver(ctx, None, a, b, 11_000, tx_start, tx_done)
                .unwrap();
            // Cut-through: egress starts at first-bit arrival (tx_start +
            // 2us); dst first bit lands one more hop later.
            assert_eq!(arr, tx_start + us(2) + us(3));
        });
    }

    #[test]
    fn store_and_forward_adds_one_serialization() {
        let cluster = Cluster::new();
        let a = cluster.add_host("a").id;
        let b = cluster.add_host("b").id;
        let cfg = SwitchConfig {
            mode: ForwardingMode::StoreAndForward,
            ..SwitchConfig::default()
        };
        let topo = std::sync::Arc::new({
            let mut tb = TopologyBuilder::new(&cluster, 1);
            let sw = tb.switch("sw0", cfg);
            tb.attach(a, sw, us(2));
            tb.attach(b, sw, us(3));
            tb.build()
        });
        let t = topo.clone();
        with_ctx(move |ctx| {
            let tx_start = ctx.now();
            let tx_done = tx_start + us(100);
            let arr = t
                .deliver(ctx, None, a, b, 11_000, tx_start, tx_done)
                .unwrap();
            // Egress waits for the last bit (tx_done + 2us), then the dst
            // sees the first bit one hop later.
            assert_eq!(arr, tx_done + us(2) + us(3));
        });
    }

    #[test]
    fn incast_serializes_on_the_egress_port() {
        let cluster = Cluster::new();
        let a = cluster.add_host("a").id;
        let b = cluster.add_host("b").id;
        let dst = cluster.add_host("dst").id;
        let topo = std::sync::Arc::new({
            let mut tb = TopologyBuilder::new(&cluster, 1);
            let sw = tb.switch("sw0", SwitchConfig::default());
            tb.attach(a, sw, us(1));
            tb.attach(b, sw, us(1));
            tb.attach(dst, sw, us(1));
            tb.build()
        });
        let t = topo.clone();
        with_ctx(move |ctx| {
            let ser = Bandwidth::mb_per_sec(110).time_for(110_000);
            let s = ctx.now();
            let a1 = t.deliver(ctx, None, a, dst, 110_000, s, s + ser).unwrap();
            let a2 = t.deliver(ctx, None, b, dst, 110_000, s, s + ser).unwrap();
            assert_eq!(a1, s + us(1) + us(1));
            // Second flow finds the egress port busy until a1's last bit.
            assert_eq!(a2, s + us(1) + ser + us(1));
            let stats = t.port_stats();
            assert_eq!(stats.len(), 1);
            assert_eq!(stats[0].frames, 2);
            assert_eq!(stats[0].bytes, 220_000);
            assert_eq!(stats[0].qdepth_max, 2);
            assert!(stats[0].queued_ns > 0);
        });
    }

    #[test]
    fn drop_policy_sheds_when_queue_full() {
        let cluster = Cluster::new();
        let srcs: Vec<HostId> = (0..4)
            .map(|i| cluster.add_host(&format!("s{i}")).id)
            .collect();
        let dst = cluster.add_host("dst").id;
        let cfg = SwitchConfig {
            queue_capacity: 2,
            policy: QueuePolicy::Drop,
            ..SwitchConfig::default()
        };
        let topo = std::sync::Arc::new({
            let mut tb = TopologyBuilder::new(&cluster, 1);
            let sw = tb.switch("sw0", cfg);
            tb.attach_default(sw, us(1));
            tb.build()
        });
        let t = topo.clone();
        with_ctx(move |ctx| {
            let ser = Bandwidth::mb_per_sec(110).time_for(110_000);
            let s = ctx.now();
            let mut ok = 0;
            let mut dropped = 0;
            for &src in &srcs {
                match t.deliver(ctx, None, src, dst, 110_000, s, s + ser) {
                    Ok(_) => ok += 1,
                    Err(d) => {
                        assert_eq!(d.cause, DropCause::QueueFull);
                        dropped += 1;
                    }
                }
            }
            assert_eq!(ok, 2, "capacity-2 port admits two concurrent frames");
            assert_eq!(dropped, 2);
            let stats = t.port_stats();
            assert_eq!(stats[0].frames, 2);
            assert_eq!(stats[0].drops, 2);
            assert!(stats[0].qdepth_max <= 2);
        });
    }

    #[test]
    fn backpressure_bounds_depth_without_loss() {
        let cluster = Cluster::new();
        let srcs: Vec<HostId> = (0..8)
            .map(|i| cluster.add_host(&format!("s{i}")).id)
            .collect();
        let dst = cluster.add_host("dst").id;
        let cfg = SwitchConfig {
            queue_capacity: 2,
            ..SwitchConfig::default()
        };
        let topo = std::sync::Arc::new({
            let mut tb = TopologyBuilder::new(&cluster, 1);
            let sw = tb.switch("sw0", cfg);
            tb.attach_default(sw, us(1));
            tb.build()
        });
        let t = topo.clone();
        with_ctx(move |ctx| {
            let ser = Bandwidth::mb_per_sec(110).time_for(110_000);
            let s = ctx.now();
            let mut last = SimTime::ZERO;
            for &src in &srcs {
                let arr = t.deliver(ctx, None, src, dst, 110_000, s, s + ser).unwrap();
                assert!(arr >= last, "port serializes frames in order");
                last = arr;
            }
            let stats = t.port_stats();
            assert_eq!(stats[0].frames, 8, "backpressure never drops");
            assert_eq!(stats[0].drops, 0);
            assert!(
                stats[0].qdepth_max <= 2,
                "depth {} exceeds capacity",
                stats[0].qdepth_max
            );
        });
    }

    #[test]
    fn shared_pool_caps_buffered_bytes() {
        let cluster = Cluster::new();
        let srcs: Vec<HostId> = (0..4)
            .map(|i| cluster.add_host(&format!("s{i}")).id)
            .collect();
        let dst = cluster.add_host("dst").id;
        let cfg = SwitchConfig {
            queue_capacity: 0,
            pool_bytes: 150_000,
            policy: QueuePolicy::Drop,
            ..SwitchConfig::default()
        };
        let topo = std::sync::Arc::new({
            let mut tb = TopologyBuilder::new(&cluster, 1);
            let sw = tb.switch("sw0", cfg);
            tb.attach_default(sw, us(1));
            tb.build()
        });
        let t = topo.clone();
        with_ctx(move |ctx| {
            let ser = Bandwidth::mb_per_sec(110).time_for(110_000);
            let s = ctx.now();
            let mut ok = 0;
            for &src in &srcs {
                if t.deliver(ctx, None, src, dst, 110_000, s, s + ser).is_ok() {
                    ok += 1;
                }
            }
            assert_eq!(ok, 1, "pool of 150 KB holds one 110 KB frame");
        });
    }

    #[test]
    fn two_switch_chain_routes_and_conserves() {
        let cluster = Cluster::new();
        let a = cluster.add_host("a").id;
        let b = cluster.add_host("b").id;
        let topo = std::sync::Arc::new({
            let mut tb = TopologyBuilder::new(&cluster, 1);
            let s0 = tb.switch("sw0", SwitchConfig::default());
            let s1 = tb.switch("sw1", SwitchConfig::default());
            tb.trunk(s0, s1, Bandwidth::mb_per_sec(55), us(4));
            tb.attach(a, s0, us(1));
            tb.attach(b, s1, us(1));
            tb.build()
        });
        let t = topo.clone();
        with_ctx(move |ctx| {
            let s = ctx.now();
            let arr = t.deliver(ctx, None, a, b, 11_000, s, s + us(100)).unwrap();
            // Cut-through at both switches: 1 + 4 + 1 us of latency.
            assert_eq!(arr, s + us(6));
            let stats = t.port_stats();
            // sw0 has a trunk egress, sw1 a host egress; bytes conserved.
            assert_eq!(stats.len(), 2);
            assert!(stats.iter().all(|p| p.frames == 1 && p.bytes == 11_000));
        });
    }

    #[test]
    fn rails_assign_per_flow_and_fail_over() {
        let cluster = Cluster::new();
        let a = cluster.add_host("a").id;
        let b = cluster.add_host("b").id;
        let topo = std::sync::Arc::new({
            let mut tb = TopologyBuilder::new(&cluster, 2);
            let sw = tb.switch("sw0", SwitchConfig::default());
            tb.attach(a, sw, us(1));
            tb.attach(b, sw, us(1));
            tb.build()
        });
        // Rail pseudo-hosts were allocated after a and b.
        let rail0 = topo.switch_hosts(0)[0];
        assert_eq!(cluster.host(rail0).name(), "sw0.r0");
        let down_from = SimTime::ZERO + ms(1);
        let down_until = SimTime::ZERO + ms(2);
        let plan = FaultPlan::builder(9)
            .link_down(a, rail0, down_from, down_until)
            .build();
        let t = topo.clone();
        with_ctx(move |ctx| {
            let s = ctx.now();
            // Flow a->b grabs rail 0 (first flow).
            t.deliver(ctx, Some(&plan), a, b, 1000, s, s + us(10))
                .unwrap();
            ctx.advance(ms(1));
            // Inside the window the a->rail0 uplink is down: fails over.
            let s = ctx.now();
            t.deliver(ctx, Some(&plan), a, b, 1000, s, s + us(10))
                .unwrap();
            let by_rail: Vec<usize> = t.port_stats().iter().map(|p| p.rail).collect();
            assert!(by_rail.contains(&0) && by_rail.contains(&1));
            ctx.advance(ms(2));
            // Window over: back on the home rail.
            let s = ctx.now();
            t.deliver(ctx, Some(&plan), a, b, 1000, s, s + us(10))
                .unwrap();
            let r0_frames: u64 = t
                .port_stats()
                .iter()
                .filter(|p| p.rail == 0)
                .map(|p| p.frames)
                .sum();
            assert_eq!(r0_frames, 2);
        });
    }

    #[test]
    fn all_rails_down_is_a_link_down_drop() {
        let cluster = Cluster::new();
        let a = cluster.add_host("a").id;
        let b = cluster.add_host("b").id;
        let topo = std::sync::Arc::new({
            let mut tb = TopologyBuilder::new(&cluster, 2);
            let sw = tb.switch("sw0", SwitchConfig::default());
            tb.attach(a, sw, us(1));
            tb.attach(b, sw, us(1));
            tb.build()
        });
        let from = SimTime::ZERO;
        let until = SimTime::ZERO + secs(1);
        let plan = FaultPlan::builder(9)
            .host_crash(topo.switch_hosts(0)[0], from, until)
            .host_crash(topo.switch_hosts(0)[1], from, until)
            .build();
        let t = topo.clone();
        with_ctx(move |ctx| {
            let s = ctx.now();
            let err = t
                .deliver(ctx, Some(&plan), a, b, 1000, s, s + us(10))
                .unwrap_err();
            assert_eq!(err.cause, DropCause::LinkDown);
        });
    }

    #[test]
    fn unattached_host_panics() {
        let cluster = Cluster::new();
        let a = cluster.add_host("a").id;
        let b = cluster.add_host("b").id;
        let topo = {
            let mut tb = TopologyBuilder::new(&cluster, 1);
            let sw = tb.switch("sw0", SwitchConfig::default());
            tb.attach(a, sw, us(1));
            // No default attachment: b is unknown to the fabric.
            tb.build()
        };
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            topo.attachment(b);
        }));
        assert!(r.is_err());
    }
}
