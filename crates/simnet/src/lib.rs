//! # simnet — deterministic discrete-event simulation substrate
//!
//! The reproduction of *"MPI/IO on DAFS over VIA"* needs hardware that no
//! longer exists (VIA NICs, a DAFS server appliance, a 2001-era cluster).
//! `simnet` replaces the physical platform with a conservative discrete-event
//! simulator in which every simulated process — an MPI rank, a file server, a
//! NIC engine — is an *actor* running on its own OS thread, scheduled by a
//! kernel that admits exactly one runnable actor at a time, always the one
//! with the smallest local virtual time.
//!
//! The important properties:
//!
//! * **Determinism** — the same program and seed produce a bit-identical
//!   virtual timeline, so every table in `EXPERIMENTS.md` is exactly
//!   reproducible.
//! * **Real data movement** — buffers are actual bytes in a per-host arena
//!   ([`HostMem`]); DMA and copies move real data, so file contents written
//!   through the full MPI-IO→DAFS→VIA stack are verified in tests.
//! * **Cost accounting** — per-host CPU meters ([`CpuMeter`]) and serial
//!   resources ([`Resource`]) make host-overhead and saturation experiments
//!   first-class.
//!
//! ## Quick example
//!
//! ```
//! use simnet::{SimKernel, Port, units::*};
//!
//! let kernel = SimKernel::new();
//! let port: Port<u32> = Port::new("wire");
//! let tx = port.clone();
//! kernel.spawn("sender", move |ctx| {
//!     tx.send(ctx, 42, ctx.now() + us(7)); // 7us one-way latency
//! });
//! let rx = port;
//! kernel.spawn("receiver", move |ctx| {
//!     assert_eq!(rx.recv(ctx), Some(42));
//!     assert_eq!(ctx.now().as_nanos(), 7_000);
//! });
//! kernel.run();
//! ```

#![warn(missing_docs)]
#![allow(clippy::new_without_default)]

mod kernel;
mod link;
mod port;
mod resource;
mod stats;

pub mod buf;
pub mod cost;
pub mod fault;
pub mod host;
pub mod rng;
pub mod time;
pub mod topo;

/// Re-export of the observability crate so downstream layers can name
/// `simnet::obs::...` without a separate dependency edge.
pub use obs;

pub use buf::{BufPool, Bytes};
pub use fault::{DropCause, FaultPlan, FaultPlanBuilder};
pub use host::{Cluster, CpuMeter, Host, HostId, HostMem, Stopwatch, VirtAddr};
pub use kernel::{events_scheduled_global, ActorCtx, ActorId, SimKernel, Span};
pub use link::Link;
pub use port::{Port, RecvUntil};
pub use resource::Resource;
pub use rng::Rng64;
pub use stats::{ByteMeter, Counter, DurationMetric, Histogram, SampleSet, WindowedRate};
pub use time::{units, Bandwidth, SimDuration, SimTime};
pub use topo::{
    DumbbellSpec, FabricDrop, ForwardingMode, PortStats, QueuePolicy, SwitchConfig, SwitchRef,
    Topology, TopologyBuilder,
};
