//! Timed single-consumer message ports.
//!
//! A [`Port<T>`] is the kernel-level message primitive: senders stamp each
//! message with an *arrival time* (computed from a link / resource model) and
//! receivers take messages in arrival order, their local clock advancing to
//! the arrival instant. Ports are multi-producer, single-consumer: exactly
//! one actor may block in `recv` at a time (the usual shape for a NIC queue,
//! a server doorbell, or an MPI match list).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::kernel::{ActorCtx, ActorId};
use crate::time::SimTime;

struct Timed<T> {
    arrival: SimTime,
    seq: u64,
    msg: T,
}

// Ordering for the min-heap (via Reverse): by arrival, then send order.
impl<T> PartialEq for Timed<T> {
    fn eq(&self, other: &Self) -> bool {
        self.arrival == other.arrival && self.seq == other.seq
    }
}
impl<T> Eq for Timed<T> {}
impl<T> PartialOrd for Timed<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Timed<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.arrival, self.seq).cmp(&(other.arrival, other.seq))
    }
}

struct PortInner<T> {
    heap: Mutex<PortState<T>>,
    seq: AtomicU64,
    name: String,
}

struct PortState<T> {
    messages: BinaryHeap<Reverse<Timed<T>>>,
    /// Actor currently blocked in `recv`, if any.
    waiter: Option<ActorId>,
    closed: bool,
}

/// A timed, multi-producer single-consumer message port.
pub struct Port<T> {
    inner: Arc<PortInner<T>>,
}

impl<T> Clone for Port<T> {
    fn clone(&self) -> Self {
        Port {
            inner: self.inner.clone(),
        }
    }
}

impl<T: Send + 'static> Default for Port<T> {
    fn default() -> Self {
        Self::new("port")
    }
}

impl<T: Send + 'static> Port<T> {
    /// Create a named port (the name appears in diagnostics).
    pub fn new(name: &str) -> Port<T> {
        Port {
            inner: Arc::new(PortInner {
                heap: Mutex::new(PortState {
                    messages: BinaryHeap::new(),
                    waiter: None,
                    closed: false,
                }),
                seq: AtomicU64::new(0),
                name: name.to_string(),
            }),
        }
    }

    /// Number of queued (not yet received) messages, including future ones.
    pub fn len(&self) -> usize {
        self.inner.heap.lock().messages.len()
    }

    /// True if there are no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deposit a message that becomes visible to the receiver at `arrival`.
    ///
    /// If an actor is blocked in `recv`, it is woken at
    /// `max(arrival, its local clock)`.
    pub fn send(&self, ctx: &ActorCtx, msg: T, arrival: SimTime) {
        debug_assert!(
            arrival >= ctx.now(),
            "message to '{}' would arrive in the sender's past ({} < {})",
            self.inner.name,
            arrival,
            ctx.now()
        );
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        let waiter = {
            let mut st = self.inner.heap.lock();
            assert!(!st.closed, "send on closed port '{}'", self.inner.name);
            st.messages.push(Reverse(Timed { arrival, seq, msg }));
            st.waiter
        };
        if let Some(w) = waiter {
            ctx.wake_actor_at(w, arrival);
        }
    }

    /// Close the port: a blocked or future `recv` returns `None` once all
    /// queued messages are drained.
    pub fn close(&self, ctx: &ActorCtx) {
        let waiter = {
            let mut st = self.inner.heap.lock();
            st.closed = true;
            st.waiter
        };
        if let Some(w) = waiter {
            ctx.wake_actor_at(w, ctx.now());
        }
    }

    /// Receive the next message, blocking in virtual time until one arrives.
    /// Returns `None` only if the port is closed and drained.
    ///
    /// On return the caller's clock is `max(previous clock, msg arrival)`.
    pub fn recv(&self, ctx: &ActorCtx) -> Option<T> {
        loop {
            // Fast path: a message has already arrived (or will, at a known
            // time — then sleep to it and re-check, since an earlier message
            // may slip in while we sleep).
            let decision = {
                let mut st = self.inner.heap.lock();
                match st.messages.peek() {
                    Some(Reverse(t)) if t.arrival <= ctx.now() => {
                        let Reverse(t) = st.messages.pop().unwrap();
                        return Some(t.msg);
                    }
                    Some(Reverse(t)) => RecvWait::SleepUntil(t.arrival),
                    None if st.closed => return None,
                    None => {
                        assert!(
                            st.waiter.is_none(),
                            "port '{}' already has a blocked receiver",
                            self.inner.name
                        );
                        st.waiter = Some(ctx.id());
                        RecvWait::Park
                    }
                }
            };
            match decision {
                RecvWait::SleepUntil(t) => {
                    // Register as waiter too, so an *earlier* arrival wakes
                    // us before `t`.
                    {
                        let mut st = self.inner.heap.lock();
                        assert!(st.waiter.is_none());
                        st.waiter = Some(ctx.id());
                    }
                    ctx.sleep_until(t);
                    self.inner.heap.lock().waiter = None;
                }
                RecvWait::Park => {
                    ctx.block_unscheduled();
                    self.inner.heap.lock().waiter = None;
                }
            }
        }
    }

    /// Like [`Port::recv`], but give up once the caller's clock reaches
    /// `deadline` with no message arrived. The timeout consumes virtual
    /// time (the clock advances to `deadline`), which is what a protocol
    /// retransmit timer needs; the happy path is indistinguishable from
    /// `recv`.
    pub fn recv_until(&self, ctx: &ActorCtx, deadline: SimTime) -> RecvUntil<T> {
        loop {
            let decision = {
                let mut st = self.inner.heap.lock();
                match st.messages.peek() {
                    Some(Reverse(t)) if t.arrival <= ctx.now() => {
                        let Reverse(t) = st.messages.pop().unwrap();
                        return RecvUntil::Msg(t.msg);
                    }
                    Some(Reverse(t)) => Some(t.arrival),
                    None if st.closed => return RecvUntil::Closed,
                    None => None,
                }
            };
            if ctx.now() >= deadline {
                return RecvUntil::TimedOut;
            }
            // Sleep toward the earlier of the next known arrival and the
            // deadline, registered as waiter so an earlier send preempts.
            let target = decision.map_or(deadline, |a| a.min(deadline));
            {
                let mut st = self.inner.heap.lock();
                assert!(
                    st.waiter.is_none(),
                    "port '{}' already has a blocked receiver",
                    self.inner.name
                );
                st.waiter = Some(ctx.id());
            }
            ctx.sleep_until(target);
            self.inner.heap.lock().waiter = None;
        }
    }

    /// Take a message only if one has arrived by the caller's current time.
    pub fn try_recv(&self, ctx: &ActorCtx) -> Option<T> {
        let mut st = self.inner.heap.lock();
        match st.messages.peek() {
            Some(Reverse(t)) if t.arrival <= ctx.now() => Some(st.messages.pop().unwrap().0.msg),
            _ => None,
        }
    }

    /// Arrival time of the earliest queued message, if any.
    pub fn next_arrival(&self) -> Option<SimTime> {
        self.inner
            .heap
            .lock()
            .messages
            .peek()
            .map(|Reverse(t)| t.arrival)
    }
}

enum RecvWait {
    SleepUntil(SimTime),
    Park,
}

/// Outcome of [`Port::recv_until`].
#[derive(Debug, PartialEq, Eq)]
pub enum RecvUntil<T> {
    /// A message arrived before the deadline.
    Msg(T),
    /// The port is closed and drained.
    Closed,
    /// The deadline passed with no message; the caller's clock is at (or
    /// past) the deadline.
    TimedOut,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::SimKernel;
    use crate::time::units::*;
    use crate::time::SimDuration;

    fn pair() -> (Port<u64>, Port<u64>) {
        (Port::new("a->b"), Port::new("b->a"))
    }

    #[test]
    fn messages_delivered_in_arrival_order() {
        let k = SimKernel::new();
        let p: Port<u64> = Port::new("p");
        let tx = p.clone();
        k.spawn("sender", move |ctx| {
            // Send out of order: arrivals 30us, 10us, 20us.
            tx.send(ctx, 30, ctx.now() + us(30));
            tx.send(ctx, 10, ctx.now() + us(10));
            tx.send(ctx, 20, ctx.now() + us(20));
        });
        let rx = p.clone();
        let log = Arc::new(Mutex::new(Vec::new()));
        let l2 = log.clone();
        k.spawn("receiver", move |ctx| {
            for _ in 0..3 {
                let v = rx.recv(ctx).unwrap();
                l2.lock().push((v, ctx.now().as_nanos()));
            }
        });
        k.run();
        assert_eq!(
            log.lock().clone(),
            vec![(10, 10_000), (20, 20_000), (30, 30_000)]
        );
    }

    #[test]
    fn recv_clock_merges_not_regresses() {
        let k = SimKernel::new();
        let p: Port<u64> = Port::new("p");
        let tx = p.clone();
        k.spawn("sender", move |ctx| {
            tx.send(ctx, 1, ctx.now() + us(5));
        });
        let rx = p;
        k.spawn("receiver", move |ctx| {
            ctx.advance(us(100)); // receiver is way ahead
            assert_eq!(rx.recv(ctx), Some(1));
            // Message arrived in our past; clock must not move backwards.
            assert_eq!(ctx.now(), SimTime::ZERO + us(100));
        });
        k.run();
    }

    #[test]
    fn earlier_message_preempts_scheduled_sleep() {
        // Receiver sees a message due at 100us, starts sleeping toward it,
        // then a message due at 50us arrives. It must receive the 50us one
        // at 50us.
        let k = SimKernel::new();
        let p: Port<u64> = Port::new("p");
        let tx1 = p.clone();
        k.spawn("late-sender", move |ctx| {
            tx1.send(ctx, 100, ctx.now() + us(100));
        });
        let tx2 = p.clone();
        k.spawn("early-sender", move |ctx| {
            ctx.advance(us(20));
            tx2.send(ctx, 50, ctx.now() + us(30)); // arrival 50us
        });
        let rx = p;
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = got.clone();
        k.spawn("receiver", move |ctx| {
            ctx.advance(us(1)); // let late-sender's msg be queued
            let v = rx.recv(ctx).unwrap();
            g.lock().push((v, ctx.now().as_nanos()));
        });
        k.run();
        assert_eq!(got.lock().clone(), vec![(50, 50_000)]);
    }

    #[test]
    fn try_recv_respects_arrival_time() {
        let k = SimKernel::new();
        let p: Port<u64> = Port::new("p");
        let tx = p.clone();
        k.spawn("sender", move |ctx| {
            tx.send(ctx, 7, ctx.now() + us(10));
        });
        let rx = p;
        k.spawn("receiver", move |ctx| {
            ctx.advance(us(5));
            assert_eq!(rx.try_recv(ctx), None, "message hasn't arrived yet");
            ctx.advance(us(10));
            assert_eq!(rx.try_recv(ctx), Some(7));
        });
        k.run();
    }

    #[test]
    fn closed_port_returns_none_after_drain() {
        let k = SimKernel::new();
        let p: Port<u64> = Port::new("p");
        let tx = p.clone();
        k.spawn("sender", move |ctx| {
            tx.send(ctx, 1, ctx.now() + us(1));
            tx.close(ctx);
        });
        let rx = p;
        k.spawn("receiver", move |ctx| {
            assert_eq!(rx.recv(ctx), Some(1));
            assert_eq!(rx.recv(ctx), None);
            assert_eq!(rx.recv(ctx), None, "stays closed");
        });
        k.run();
    }

    #[test]
    fn ping_pong_round_trip_time() {
        let k = SimKernel::new();
        let (ab, ba) = pair();
        let one_way: SimDuration = us(7);
        {
            let (ab, ba) = (ab.clone(), ba.clone());
            k.spawn("client", move |ctx| {
                for i in 0..10u64 {
                    ab.send(ctx, i, ctx.now() + one_way);
                    let r = ba.recv(ctx).unwrap();
                    assert_eq!(r, i * 2);
                }
                assert_eq!(ctx.now(), SimTime::ZERO + us(7 * 2 * 10));
                ab.close(ctx);
            });
        }
        k.spawn_daemon("server", move |ctx| {
            while let Some(v) = ab.recv(ctx) {
                ba.send(ctx, v * 2, ctx.now() + one_way);
            }
        });
        k.run();
    }

    #[test]
    fn recv_until_times_out_at_deadline() {
        let k = SimKernel::new();
        let p: Port<u64> = Port::new("p");
        let rx = p.clone();
        k.spawn("receiver", move |ctx| {
            let deadline = ctx.now() + us(30);
            assert_eq!(rx.recv_until(ctx, deadline), RecvUntil::TimedOut);
            assert_eq!(ctx.now(), deadline, "timeout consumes virtual time");
        });
        k.run();
    }

    #[test]
    fn recv_until_returns_message_before_deadline() {
        let k = SimKernel::new();
        let p: Port<u64> = Port::new("p");
        let tx = p.clone();
        k.spawn("sender", move |ctx| {
            tx.send(ctx, 9, ctx.now() + us(10));
        });
        let rx = p;
        k.spawn("receiver", move |ctx| {
            assert_eq!(rx.recv_until(ctx, ctx.now() + us(30)), RecvUntil::Msg(9));
            assert_eq!(ctx.now().as_nanos(), 10_000);
            // Second recv with nothing pending times out at its deadline.
            assert_eq!(rx.recv_until(ctx, ctx.now() + us(5)), RecvUntil::TimedOut);
            assert_eq!(ctx.now().as_nanos(), 15_000);
        });
        k.run();
    }

    #[test]
    fn recv_until_ignores_message_past_deadline() {
        let k = SimKernel::new();
        let p: Port<u64> = Port::new("p");
        let tx = p.clone();
        k.spawn("sender", move |ctx| {
            tx.send(ctx, 1, ctx.now() + us(100));
        });
        let rx = p;
        k.spawn("receiver", move |ctx| {
            ctx.advance(us(1)); // let the future message queue up
            assert_eq!(rx.recv_until(ctx, ctx.now() + us(10)), RecvUntil::TimedOut);
            // The message is still there for a later recv.
            assert_eq!(rx.recv(ctx), Some(1));
            assert_eq!(ctx.now().as_nanos(), 100_000);
        });
        k.run();
    }

    #[test]
    fn recv_until_sees_close() {
        let k = SimKernel::new();
        let p: Port<u64> = Port::new("p");
        let tx = p.clone();
        k.spawn("closer", move |ctx| {
            ctx.advance(us(5));
            tx.close(ctx);
        });
        let rx = p;
        k.spawn("receiver", move |ctx| {
            assert_eq!(rx.recv_until(ctx, ctx.now() + us(50)), RecvUntil::Closed);
            assert!(ctx.now().as_nanos() <= 50_000);
        });
        k.run();
    }

    use parking_lot::Mutex;
    use std::sync::Arc;
}
