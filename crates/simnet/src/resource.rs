//! Serial resources: FIFO-queued service stations (a NIC engine, a server
//! CPU, a disk arm, a shared wire).
//!
//! A [`Resource`] models a station that serves one request at a time:
//! `completion = max(free_at, arrival) + service`. Because the kernel runs
//! actors in nondecreasing virtual-time order, bookings happen in arrival
//! order and the model reduces to exact FIFO queueing.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::kernel::ActorCtx;
use crate::time::{SimDuration, SimTime};

#[derive(Default)]
struct ResourceState {
    free_at: SimTime,
    busy_total: SimDuration,
    bookings: u64,
}

/// A serially-shared service station.
#[derive(Clone)]
pub struct Resource {
    inner: Arc<Mutex<ResourceState>>,
    name: Arc<str>,
}

impl Resource {
    /// Create a new instance with default state.
    pub fn new(name: &str) -> Resource {
        Resource {
            inner: Arc::new(Mutex::new(ResourceState::default())),
            name: name.into(),
        }
    }

    /// Human-readable name (diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Book `service` time starting no earlier than `arrival`; returns the
    /// completion instant. Does not block the caller — use the returned time
    /// as a message arrival, or `sleep_until` it for synchronous use.
    pub fn book(&self, arrival: SimTime, service: SimDuration) -> SimTime {
        let mut st = self.inner.lock();
        let start = st.free_at.max(arrival);
        let completion = start + service;
        st.free_at = completion;
        st.busy_total += service;
        st.bookings += 1;
        completion
    }

    /// Like [`book`](Resource::book), but also returns the instant service
    /// began (needed by cut-through link models, where the downstream hop
    /// starts receiving when the first byte departs, not the last).
    pub fn book_span(&self, arrival: SimTime, service: SimDuration) -> (SimTime, SimTime) {
        let mut st = self.inner.lock();
        let start = st.free_at.max(arrival);
        let completion = start + service;
        st.free_at = completion;
        st.busy_total += service;
        st.bookings += 1;
        (start, completion)
    }

    /// Convenience: book at the caller's current time and sleep until done.
    pub fn use_blocking(&self, ctx: &ActorCtx, service: SimDuration) -> SimTime {
        let arrival = ctx.now();
        let done = self.book(arrival, service);
        ctx.trace(
            "sim",
            "resource.acquire",
            &[
                ("resource", obs::Value::Str(&self.name)),
                ("service_ns", obs::Value::U64(service.as_nanos())),
                (
                    "queued_ns",
                    obs::Value::U64((done - arrival).as_nanos() - service.as_nanos()),
                ),
            ],
        );
        ctx.sleep_until(done);
        done
    }

    /// Earliest instant at which a new booking could start service.
    pub fn free_at(&self) -> SimTime {
        self.inner.lock().free_at
    }

    /// Total service time booked so far (for utilization reports).
    pub fn busy_total(&self) -> SimDuration {
        self.inner.lock().busy_total
    }

    /// Number of bookings made.
    pub fn bookings(&self) -> u64 {
        self.inner.lock().bookings
    }

    /// Utilization over an observation window.
    pub fn utilization(&self, window: SimDuration) -> f64 {
        if window.is_zero() {
            return 0.0;
        }
        self.busy_total().as_nanos() as f64 / window.as_nanos() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::SimKernel;
    use crate::time::units::*;

    #[test]
    fn fifo_queueing_math() {
        let r = Resource::new("cpu");
        // First request: starts at its arrival.
        assert_eq!(r.book(SimTime(100), us(10)), SimTime(100) + us(10));
        // Second arrives while busy: queues.
        assert_eq!(r.book(SimTime(105), us(5)), SimTime(100) + us(10) + us(5));
        // Third arrives after idle gap: starts at its own arrival.
        let idle_arrival = SimTime(1_000_000);
        assert_eq!(r.book(idle_arrival, us(1)), idle_arrival + us(1));
        assert_eq!(r.busy_total(), us(16));
        assert_eq!(r.bookings(), 3);
    }

    #[test]
    fn blocking_use_advances_caller() {
        let k = SimKernel::new();
        let r = Resource::new("engine");
        let r2 = r.clone();
        k.spawn("user", move |ctx| {
            r2.use_blocking(ctx, us(25));
            assert_eq!(ctx.now(), SimTime::ZERO + us(25));
            r2.use_blocking(ctx, us(5));
            assert_eq!(ctx.now(), SimTime::ZERO + us(30));
        });
        k.run();
        assert_eq!(r.busy_total(), us(30));
    }

    #[test]
    fn contention_serializes_two_actors() {
        let k = SimKernel::new();
        let r = Resource::new("wire");
        let ends = Arc::new(Mutex::new(Vec::new()));
        for i in 0..2 {
            let r = r.clone();
            let ends = ends.clone();
            k.spawn(&format!("u{i}"), move |ctx| {
                let done = r.use_blocking(ctx, us(10));
                ends.lock().push(done.as_nanos());
            });
        }
        k.run();
        let mut e = ends.lock().clone();
        e.sort_unstable();
        assert_eq!(e, vec![10_000, 20_000], "two 10us jobs must serialize");
    }

    #[test]
    fn utilization_fraction() {
        let r = Resource::new("x");
        r.book(SimTime::ZERO, ms(3));
        assert!((r.utilization(ms(10)) - 0.3).abs() < 1e-9);
        assert_eq!(r.utilization(SimDuration::ZERO), 0.0);
    }

    use parking_lot::Mutex;
    use std::sync::Arc;
}
