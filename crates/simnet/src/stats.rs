//! Metrics instruments, re-exported from [`obs`].
//!
//! Historically `simnet` defined its own `Counter`/`ByteMeter`/`Histogram`;
//! they now live in the `obs` crate so the whole stack shares one set of
//! instrument types and the [`obs::Registry`] can vend them behind named
//! handles. The re-export keeps `simnet::{Counter, ByteMeter, Histogram}`
//! working for every existing layer.

pub use obs::{ByteMeter, Counter, Histogram, SampleSet};

use crate::time::SimDuration;

/// Duration-flavored helpers bridging [`obs`]'s plain-`u64` instruments to
/// the simulator's time types.
pub trait DurationMetric {
    /// Record a virtual-time duration sample (stored as nanoseconds).
    fn record_duration(&self, d: SimDuration);
}

impl DurationMetric for Histogram {
    fn record_duration(&self, d: SimDuration) {
        self.record(d.as_nanos());
    }
}

impl DurationMetric for SampleSet {
    fn record_duration(&self, d: SimDuration) {
        self.record(d.as_nanos());
    }
}

/// Throughput helper over a virtual-time window.
pub trait WindowedRate {
    /// Bytes/second moved during `window` of virtual time.
    fn throughput(&self, window: SimDuration) -> f64;
}

impl WindowedRate for ByteMeter {
    fn throughput(&self, window: SimDuration) -> f64 {
        self.throughput_ns(window.as_nanos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::units::*;

    #[test]
    fn duration_bridges_to_nanos() {
        let h = Histogram::new();
        h.record_duration(us(3));
        assert_eq!(h.max(), 3_000);
        let m = ByteMeter::new();
        m.record(400);
        // 400 B in 4us = 100 MB/s.
        assert!((m.throughput(us(4)) - 1e8).abs() < 1.0);
    }
}
