//! A small deterministic PRNG (SplitMix64) for seeded workloads and
//! randomized tests.
//!
//! The simulator's determinism contract extends to its inputs: experiment
//! scripts and property-style tests must generate identical sequences on
//! every run and every platform. SplitMix64 is tiny, fast, passes BigCrush,
//! and — unlike an external `rand` dependency — is fully pinned in-tree.

/// A 64-bit SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Seed the generator.
    pub fn new(seed: u64) -> Rng64 {
        Rng64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "Rng64::below(0)");
        // Multiply-shift rejection-free mapping (Lemire); bias is < 2^-64
        // per draw, irrelevant for workloads and tests.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi)` (half-open, like `gen_range`).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range(lo as u64, hi as u64) as usize
    }

    /// One random byte.
    pub fn byte(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// `len` random bytes.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.byte()).collect()
    }

    /// A coin flip with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let a: Vec<u64> = {
            let mut r = Rng64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut r = Rng64::new(43);
        assert_ne!(a[0], r.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng64::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let v = r.range(5, 8);
            assert!((5..8).contains(&v));
        }
    }

    #[test]
    fn known_first_value() {
        // Pin the algorithm: changing the generator would silently change
        // every seeded experiment.
        let mut r = Rng64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
    }
}
