//! Stress and property tests for the DES substrate.
//!
//! Randomized cases are driven by the in-tree deterministic PRNG
//! ([`simnet::Rng64`]) so every run checks identical inputs.

use simnet::time::units::*;
use simnet::{Cluster, Port, Resource, Rng64, SimDuration, SimKernel, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// 32 actors exchanging messages in a ring for many rounds: time-ordering
/// and termination under load.
#[test]
fn ring_of_32_actors_many_rounds() {
    const N: usize = 32;
    const ROUNDS: usize = 50;
    let kernel = SimKernel::new();
    let ports: Vec<Port<u64>> = (0..N).map(|i| Port::new(&format!("ring{i}"))).collect();
    let done = Arc::new(AtomicU64::new(0));
    for i in 0..N {
        let my = ports[i].clone();
        let next = ports[(i + 1) % N].clone();
        let done = done.clone();
        kernel.spawn(&format!("node{i}"), move |ctx| {
            if i == 0 {
                next.send(ctx, 0, ctx.now() + us(3));
            }
            // Each node receives exactly ROUNDS messages; node 0 does not
            // forward its last one, so every port drains exactly.
            for r in 0..ROUNDS {
                let v = my.recv(ctx).expect("ring message");
                let last = i == 0 && r == ROUNDS - 1;
                if !last {
                    next.send(ctx, v + 1, ctx.now() + us(3));
                }
                if last {
                    done.store(r as u64 + 1, Ordering::Relaxed);
                }
            }
        });
    }
    let end = kernel.run();
    // Node 0 saw one message per completed round.
    assert_eq!(done.load(Ordering::Relaxed), ROUNDS as u64);
    // Total virtual time ≈ rounds × ring latency.
    let hops = (ROUNDS * N) as u64;
    assert!(end >= SimTime::ZERO + us(3 * (hops - N as u64)));
}

/// The deadlock detector must name the stuck actor, not hang.
#[test]
fn deadlock_report_names_culprit() {
    let result = std::panic::catch_unwind(|| {
        let kernel = SimKernel::new();
        let p: Port<u8> = Port::new("never");
        kernel.spawn("starved", move |ctx| {
            p.recv(ctx);
        });
        kernel.run();
    });
    let msg = *result.unwrap_err().downcast::<String>().unwrap();
    assert!(msg.contains("starved"), "diagnostic was: {msg}");
}

/// Spawning from inside actors composes (tree of actors).
#[test]
fn nested_spawn_tree() {
    let kernel = SimKernel::new();
    let count = Arc::new(AtomicU64::new(0));
    let c = count.clone();
    kernel.spawn("root", move |ctx| {
        ctx.advance(us(1));
        for i in 0..4 {
            let c = c.clone();
            ctx.spawn(&format!("child{i}"), move |cctx| {
                cctx.advance(us(2));
                let c = c.clone();
                cctx.spawn(&format!("grandchild{i}"), move |gctx| {
                    gctx.advance(us(3));
                    c.fetch_add(1, Ordering::Relaxed);
                });
            });
        }
    });
    let end = kernel.run();
    assert_eq!(count.load(Ordering::Relaxed), 4);
    assert_eq!(end, SimTime::ZERO + us(6));
}

/// Resource FIFO algebra: completions are nondecreasing when arrivals
/// are nondecreasing, total busy equals the sum of services, and no
/// service starts before its arrival.
#[test]
fn resource_fifo_invariants() {
    let mut rng = Rng64::new(0x5E55_0001);
    for case in 0..64 {
        let r = Resource::new("x");
        let mut arrivals: Vec<(u64, u64)> = (0..rng.range_usize(1, 40))
            .map(|_| (rng.below(1000), rng.range(1, 100)))
            .collect();
        arrivals.sort_unstable();
        let mut last_completion = 0u64;
        let mut total = 0u64;
        for (arr, svc) in &arrivals {
            let (start, done) = r.book_span(SimTime(*arr), SimDuration(*svc));
            assert!(start.as_nanos() >= *arr, "case {case}");
            assert!(start.as_nanos() >= last_completion, "case {case}");
            assert_eq!(done.as_nanos(), start.as_nanos() + svc);
            last_completion = done.as_nanos();
            total += svc;
        }
        assert_eq!(r.busy_total().as_nanos(), total);
        assert_eq!(r.bookings(), arrivals.len() as u64);
    }
}

/// HostMem: random disjoint allocations keep their contents.
#[test]
fn hostmem_allocations_are_isolated() {
    let mut rng = Rng64::new(0x5E55_0002);
    for _ in 0..64 {
        let cluster = Cluster::new();
        let host = cluster.add_host("h");
        let n = rng.range_usize(1, 12);
        let mut bufs = Vec::new();
        for _ in 0..n {
            let size = rng.range_usize(1, 4096);
            let pat = rng.byte();
            let a = host.mem.alloc(size);
            host.mem.fill(a, size, pat);
            bufs.push((a, size, pat));
        }
        for (a, len, pat) in &bufs {
            let got = host.mem.read_vec(*a, *len);
            assert!(got.iter().all(|b| b == pat));
        }
    }
}
