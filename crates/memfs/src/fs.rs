//! The filesystem proper: inodes, directories, file data.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;
use simnet::buf::{Bytes, Slab};

/// Identifies an inode. Also serves as the wire-visible file handle for
/// both servers (DAFS and NFS wrap it in their own handle formats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u64);

/// The root directory's id, fixed at mount.
pub const ROOT_ID: NodeId = NodeId(1);

/// Inode type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileType {
    /// Regular file.
    Regular,
    /// Directory.
    Directory,
}

/// Attributes returned by `getattr` and carried in protocol replies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileAttr {
    /// Inode number.
    pub id: NodeId,
    /// Regular file or directory.
    pub ftype: FileType,
    /// Size in bytes (0 for directories).
    pub size: u64,
    /// Monotone version counter, bumped on every mutation. Stands in for
    /// mtime in cache-consistency checks (NFS attribute cache, close-to-open).
    pub version: u64,
    /// Link count (1 for files, 2+ for directories).
    pub nlink: u32,
}

/// Mutable attributes for `setattr`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SetAttr {
    /// Truncate / extend to this size.
    pub size: Option<u64>,
}

/// Filesystem errors, aligned with the NFSv3 error set both protocols map
/// onto their wire formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsError {
    /// Name not found in directory.
    NotFound,
    /// Handle does not name a live inode.
    Stale,
    /// Operation requires a directory.
    NotDirectory,
    /// Operation requires a regular file.
    IsDirectory,
    /// Name already exists.
    Exists,
    /// Directory not empty on remove.
    NotEmpty,
    /// Name is invalid (empty, contains '/', or '.'/'..').
    InvalidName,
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FsError::NotFound => "no such file or directory",
            FsError::Stale => "stale file handle",
            FsError::NotDirectory => "not a directory",
            FsError::IsDirectory => "is a directory",
            FsError::Exists => "file exists",
            FsError::NotEmpty => "directory not empty",
            FsError::InvalidName => "invalid name",
        };
        f.write_str(s)
    }
}

impl std::error::Error for FsError {}

/// Convenience alias.
pub type FsResult<T> = Result<T, FsError>;

#[derive(Debug)]
enum NodeBody {
    /// File data lives in one refcounted slab so reads hand out zero-copy
    /// [`Bytes`] views. Writes go through `Arc::make_mut`: in place while
    /// the file is the only owner, copy-on-write the moment read views are
    /// still outstanding — a published view never observes a later write.
    Regular {
        data: Arc<Slab>,
    },
    Directory {
        entries: BTreeMap<String, NodeId>,
    },
}

#[derive(Debug)]
struct Node {
    body: NodeBody,
    version: u64,
    nlink: u32,
}

impl Node {
    fn attr(&self, id: NodeId) -> FileAttr {
        match &self.body {
            NodeBody::Regular { data } => FileAttr {
                id,
                ftype: FileType::Regular,
                size: data.len() as u64,
                version: self.version,
                nlink: self.nlink,
            },
            NodeBody::Directory { .. } => FileAttr {
                id,
                ftype: FileType::Directory,
                size: 0,
                version: self.version,
                nlink: self.nlink,
            },
        }
    }
}

#[derive(Debug)]
struct FsState {
    nodes: BTreeMap<u64, Node>,
    next_id: u64,
    total_data: u64,
}

/// The in-memory filesystem. Cloning shares the same store (both servers
/// export one filesystem instance).
#[derive(Clone)]
pub struct MemFs {
    state: Arc<RwLock<FsState>>,
}

impl Default for MemFs {
    fn default() -> Self {
        Self::new()
    }
}

fn valid_name(name: &str) -> FsResult<()> {
    if name.is_empty() || name == "." || name == ".." || name.contains('/') {
        Err(FsError::InvalidName)
    } else {
        Ok(())
    }
}

impl MemFs {
    /// Create an empty filesystem with a root directory.
    pub fn new() -> MemFs {
        let mut nodes = BTreeMap::new();
        nodes.insert(
            ROOT_ID.0,
            Node {
                body: NodeBody::Directory {
                    entries: BTreeMap::new(),
                },
                version: 0,
                nlink: 2,
            },
        );
        MemFs {
            state: Arc::new(RwLock::new(FsState {
                nodes,
                next_id: 2,
                total_data: 0,
            })),
        }
    }

    /// Attributes of an inode.
    pub fn getattr(&self, id: NodeId) -> FsResult<FileAttr> {
        let st = self.state.read();
        st.nodes
            .get(&id.0)
            .map(|n| n.attr(id))
            .ok_or(FsError::Stale)
    }

    /// Apply mutable attributes (currently: truncate/extend size).
    pub fn setattr(&self, id: NodeId, set: SetAttr) -> FsResult<FileAttr> {
        let mut st = self.state.write();
        let node = st.nodes.get_mut(&id.0).ok_or(FsError::Stale)?;
        if let Some(sz) = set.size {
            match &mut node.body {
                NodeBody::Regular { data } => {
                    let delta = sz as i64 - data.len() as i64;
                    let slab = Arc::make_mut(data);
                    slab.data_mut().resize(sz as usize, 0);
                    slab.recharge();
                    node.version += 1;
                    let attr = node.attr(id);
                    st.total_data = (st.total_data as i64 + delta) as u64;
                    return Ok(attr);
                }
                NodeBody::Directory { .. } => return Err(FsError::IsDirectory),
            }
        }
        Ok(node.attr(id))
    }

    /// Look `name` up in directory `dir`.
    pub fn lookup(&self, dir: NodeId, name: &str) -> FsResult<FileAttr> {
        let st = self.state.read();
        let d = st.nodes.get(&dir.0).ok_or(FsError::Stale)?;
        match &d.body {
            NodeBody::Directory { entries } => {
                let id = *entries.get(name).ok_or(FsError::NotFound)?;
                Ok(st.nodes[&id.0].attr(id))
            }
            _ => Err(FsError::NotDirectory),
        }
    }

    fn insert_node(&self, dir: NodeId, name: &str, body: NodeBody) -> FsResult<FileAttr> {
        valid_name(name)?;
        let mut st = self.state.write();
        let id = NodeId(st.next_id);
        let is_dir = matches!(body, NodeBody::Directory { .. });
        {
            let d = st.nodes.get_mut(&dir.0).ok_or(FsError::Stale)?;
            match &mut d.body {
                NodeBody::Directory { entries } => {
                    if entries.contains_key(name) {
                        return Err(FsError::Exists);
                    }
                    entries.insert(name.to_string(), id);
                    d.version += 1;
                    if is_dir {
                        d.nlink += 1;
                    }
                }
                _ => return Err(FsError::NotDirectory),
            }
        }
        st.next_id += 1;
        let node = Node {
            body,
            version: 0,
            nlink: if is_dir { 2 } else { 1 },
        };
        let attr = node.attr(id);
        st.nodes.insert(id.0, node);
        Ok(attr)
    }

    /// Create an empty regular file.
    pub fn create(&self, dir: NodeId, name: &str) -> FsResult<FileAttr> {
        self.insert_node(
            dir,
            name,
            NodeBody::Regular {
                data: Arc::new(Slab::from_vec(Vec::new())),
            },
        )
    }

    /// Create a directory.
    pub fn mkdir(&self, dir: NodeId, name: &str) -> FsResult<FileAttr> {
        self.insert_node(
            dir,
            name,
            NodeBody::Directory {
                entries: BTreeMap::new(),
            },
        )
    }

    /// Remove a regular file.
    pub fn remove(&self, dir: NodeId, name: &str) -> FsResult<()> {
        valid_name(name)?;
        let mut st = self.state.write();
        let target = {
            let d = st.nodes.get(&dir.0).ok_or(FsError::Stale)?;
            match &d.body {
                NodeBody::Directory { entries } => *entries.get(name).ok_or(FsError::NotFound)?,
                _ => return Err(FsError::NotDirectory),
            }
        };
        if matches!(st.nodes[&target.0].body, NodeBody::Directory { .. }) {
            return Err(FsError::IsDirectory);
        }
        if let NodeBody::Directory { entries } = &mut st.nodes.get_mut(&dir.0).unwrap().body {
            entries.remove(name);
        }
        st.nodes.get_mut(&dir.0).unwrap().version += 1;
        let freed = match &st.nodes[&target.0].body {
            NodeBody::Regular { data } => data.len() as u64,
            _ => 0,
        };
        st.nodes.remove(&target.0);
        st.total_data -= freed;
        Ok(())
    }

    /// Remove an empty directory.
    pub fn rmdir(&self, dir: NodeId, name: &str) -> FsResult<()> {
        valid_name(name)?;
        let mut st = self.state.write();
        let target = {
            let d = st.nodes.get(&dir.0).ok_or(FsError::Stale)?;
            match &d.body {
                NodeBody::Directory { entries } => *entries.get(name).ok_or(FsError::NotFound)?,
                _ => return Err(FsError::NotDirectory),
            }
        };
        match &st.nodes[&target.0].body {
            NodeBody::Directory { entries } => {
                if !entries.is_empty() {
                    return Err(FsError::NotEmpty);
                }
            }
            _ => return Err(FsError::NotDirectory),
        }
        if let NodeBody::Directory { entries } = &mut st.nodes.get_mut(&dir.0).unwrap().body {
            entries.remove(name);
        }
        let d = st.nodes.get_mut(&dir.0).unwrap();
        d.version += 1;
        d.nlink -= 1;
        st.nodes.remove(&target.0);
        Ok(())
    }

    /// Rename `name` in `from` to `to_name` in `to` (both directories).
    /// Overwrites an existing regular file at the destination, like rename(2).
    pub fn rename(&self, from: NodeId, name: &str, to: NodeId, to_name: &str) -> FsResult<()> {
        valid_name(name)?;
        valid_name(to_name)?;
        let mut st = self.state.write();
        let moved = {
            let d = st.nodes.get(&from.0).ok_or(FsError::Stale)?;
            match &d.body {
                NodeBody::Directory { entries } => *entries.get(name).ok_or(FsError::NotFound)?,
                _ => return Err(FsError::NotDirectory),
            }
        };
        // Destination checks.
        let replaced = {
            let d = st.nodes.get(&to.0).ok_or(FsError::Stale)?;
            match &d.body {
                NodeBody::Directory { entries } => entries.get(to_name).copied(),
                _ => return Err(FsError::NotDirectory),
            }
        };
        if let Some(r) = replaced {
            if matches!(st.nodes[&r.0].body, NodeBody::Directory { .. }) {
                return Err(FsError::IsDirectory);
            }
        }
        if let NodeBody::Directory { entries } = &mut st.nodes.get_mut(&from.0).unwrap().body {
            entries.remove(name);
        }
        st.nodes.get_mut(&from.0).unwrap().version += 1;
        if let NodeBody::Directory { entries } = &mut st.nodes.get_mut(&to.0).unwrap().body {
            entries.insert(to_name.to_string(), moved);
        }
        st.nodes.get_mut(&to.0).unwrap().version += 1;
        if let Some(r) = replaced {
            let freed = match &st.nodes[&r.0].body {
                NodeBody::Regular { data } => data.len() as u64,
                _ => 0,
            };
            st.nodes.remove(&r.0);
            st.total_data -= freed;
        }
        Ok(())
    }

    /// Read up to `len` bytes at `offset` as a zero-copy view of the file
    /// slab. Short reads at EOF, like read(2); reads past EOF return empty.
    ///
    /// The view stays valid (and immutable) across later writes: a write
    /// while views are outstanding clones the slab instead of mutating it.
    pub fn read_bytes(&self, id: NodeId, offset: u64, len: u64) -> FsResult<Bytes> {
        let st = self.state.read();
        let n = st.nodes.get(&id.0).ok_or(FsError::Stale)?;
        match &n.body {
            NodeBody::Regular { data } => {
                let start = (offset as usize).min(data.len());
                let end = (offset.saturating_add(len) as usize).min(data.len());
                Ok(Bytes::from_slab(data.clone()).slice(start..end))
            }
            NodeBody::Directory { .. } => Err(FsError::IsDirectory),
        }
    }

    /// [`MemFs::read_bytes`], copied out into an owned vector (compat shim
    /// for callers that need ownership).
    pub fn read(&self, id: NodeId, offset: u64, len: u64) -> FsResult<Vec<u8>> {
        Ok(self.read_bytes(id, offset, len)?.to_vec())
    }

    /// Write `buf` at `offset`, extending (and zero-filling any gap) as
    /// needed. Returns post-write attributes.
    pub fn write(&self, id: NodeId, offset: u64, buf: &[u8]) -> FsResult<FileAttr> {
        let mut st = self.state.write();
        let node = st.nodes.get_mut(&id.0).ok_or(FsError::Stale)?;
        match &mut node.body {
            NodeBody::Regular { data } => {
                let end = offset as usize + buf.len();
                let grow = end.saturating_sub(data.len());
                let slab = Arc::make_mut(data);
                let v = slab.data_mut();
                if end > v.len() {
                    v.resize(end, 0);
                }
                v[offset as usize..end].copy_from_slice(buf);
                slab.recharge();
                node.version += 1;
                let attr = node.attr(id);
                st.total_data += grow as u64;
                Ok(attr)
            }
            NodeBody::Directory { .. } => Err(FsError::IsDirectory),
        }
    }

    /// Visit a directory's entries in name order without allocating: the
    /// callback sees each borrowed name and id under the filesystem lock.
    pub fn with_readdir<F>(&self, dir: NodeId, mut f: F) -> FsResult<()>
    where
        F: FnMut(&str, NodeId),
    {
        let st = self.state.read();
        let d = st.nodes.get(&dir.0).ok_or(FsError::Stale)?;
        match &d.body {
            NodeBody::Directory { entries } => {
                for (k, v) in entries.iter() {
                    f(k, *v);
                }
                Ok(())
            }
            _ => Err(FsError::NotDirectory),
        }
    }

    /// List a directory: (name, id) pairs in name order (allocating compat
    /// shim over [`MemFs::with_readdir`]).
    pub fn readdir(&self, dir: NodeId) -> FsResult<Vec<(String, NodeId)>> {
        let mut out = Vec::new();
        self.with_readdir(dir, |name, id| out.push((name.to_string(), id)))?;
        Ok(out)
    }

    /// Resolve a slash-separated path from the root. Convenience for tests
    /// and examples.
    pub fn resolve(&self, path: &str) -> FsResult<FileAttr> {
        let mut cur = ROOT_ID;
        let mut attr = self.getattr(cur)?;
        for part in path.split('/').filter(|p| !p.is_empty()) {
            attr = self.lookup(cur, part)?;
            cur = attr.id;
        }
        Ok(attr)
    }

    /// Total bytes of live file data (for capacity reports).
    pub fn total_data(&self) -> u64 {
        self.state.read().total_data
    }

    /// Number of live inodes, including the root.
    pub fn inode_count(&self) -> usize {
        self.state.read().nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_exists() {
        let fs = MemFs::new();
        let a = fs.getattr(ROOT_ID).unwrap();
        assert_eq!(a.ftype, FileType::Directory);
        assert_eq!(a.nlink, 2);
        assert_eq!(fs.inode_count(), 1);
    }

    #[test]
    fn create_write_read_roundtrip() {
        let fs = MemFs::new();
        let f = fs.create(ROOT_ID, "a.dat").unwrap();
        assert_eq!(f.size, 0);
        let a1 = fs.write(f.id, 0, b"hello").unwrap();
        assert_eq!(a1.size, 5);
        let a2 = fs.write(f.id, 5, b" world").unwrap();
        assert_eq!(a2.size, 11);
        assert!(a2.version > a1.version);
        assert_eq!(fs.read(f.id, 0, 100).unwrap(), b"hello world");
        assert_eq!(fs.read(f.id, 6, 5).unwrap(), b"world");
        assert_eq!(fs.total_data(), 11);
    }

    #[test]
    fn sparse_write_zero_fills() {
        let fs = MemFs::new();
        let f = fs.create(ROOT_ID, "s").unwrap();
        fs.write(f.id, 100, b"x").unwrap();
        assert_eq!(fs.getattr(f.id).unwrap().size, 101);
        assert_eq!(fs.read(f.id, 0, 100).unwrap(), vec![0u8; 100]);
        assert_eq!(fs.read(f.id, 100, 1).unwrap(), b"x");
    }

    #[test]
    fn read_past_eof_is_short_or_empty() {
        let fs = MemFs::new();
        let f = fs.create(ROOT_ID, "f").unwrap();
        fs.write(f.id, 0, b"abc").unwrap();
        assert_eq!(fs.read(f.id, 2, 10).unwrap(), b"c");
        assert_eq!(fs.read(f.id, 3, 10).unwrap(), b"");
        assert_eq!(fs.read(f.id, 1000, 10).unwrap(), b"");
    }

    #[test]
    fn lookup_and_resolve() {
        let fs = MemFs::new();
        let d = fs.mkdir(ROOT_ID, "dir").unwrap();
        let f = fs.create(d.id, "file").unwrap();
        assert_eq!(fs.lookup(ROOT_ID, "dir").unwrap().id, d.id);
        assert_eq!(fs.lookup(d.id, "file").unwrap().id, f.id);
        assert_eq!(fs.resolve("/dir/file").unwrap().id, f.id);
        assert_eq!(fs.resolve("dir/file").unwrap().id, f.id);
        assert_eq!(fs.lookup(ROOT_ID, "nope"), Err(FsError::NotFound));
        assert_eq!(fs.lookup(f.id, "x"), Err(FsError::NotDirectory));
    }

    #[test]
    fn duplicate_create_rejected() {
        let fs = MemFs::new();
        fs.create(ROOT_ID, "x").unwrap();
        assert_eq!(fs.create(ROOT_ID, "x"), Err(FsError::Exists));
        assert_eq!(fs.mkdir(ROOT_ID, "x"), Err(FsError::Exists));
    }

    #[test]
    fn invalid_names_rejected() {
        let fs = MemFs::new();
        for bad in ["", ".", "..", "a/b"] {
            assert_eq!(fs.create(ROOT_ID, bad), Err(FsError::InvalidName), "{bad}");
        }
    }

    #[test]
    fn remove_file_frees_space_and_staleness() {
        let fs = MemFs::new();
        let f = fs.create(ROOT_ID, "f").unwrap();
        fs.write(f.id, 0, &[7u8; 1000]).unwrap();
        assert_eq!(fs.total_data(), 1000);
        fs.remove(ROOT_ID, "f").unwrap();
        assert_eq!(fs.total_data(), 0);
        assert_eq!(fs.getattr(f.id), Err(FsError::Stale));
        assert_eq!(fs.read(f.id, 0, 1), Err(FsError::Stale));
        assert_eq!(fs.remove(ROOT_ID, "f"), Err(FsError::NotFound));
    }

    #[test]
    fn rmdir_semantics() {
        let fs = MemFs::new();
        let d = fs.mkdir(ROOT_ID, "d").unwrap();
        fs.create(d.id, "f").unwrap();
        assert_eq!(fs.rmdir(ROOT_ID, "d"), Err(FsError::NotEmpty));
        fs.remove(d.id, "f").unwrap();
        fs.rmdir(ROOT_ID, "d").unwrap();
        assert_eq!(fs.getattr(d.id), Err(FsError::Stale));
        assert_eq!(fs.getattr(ROOT_ID).unwrap().nlink, 2);
    }

    #[test]
    fn remove_on_directory_and_rmdir_on_file_rejected() {
        let fs = MemFs::new();
        fs.mkdir(ROOT_ID, "d").unwrap();
        fs.create(ROOT_ID, "f").unwrap();
        assert_eq!(fs.remove(ROOT_ID, "d"), Err(FsError::IsDirectory));
        assert_eq!(fs.rmdir(ROOT_ID, "f"), Err(FsError::NotDirectory));
    }

    #[test]
    fn truncate_and_extend_via_setattr() {
        let fs = MemFs::new();
        let f = fs.create(ROOT_ID, "f").unwrap();
        fs.write(f.id, 0, b"0123456789").unwrap();
        let a = fs.setattr(f.id, SetAttr { size: Some(4) }).unwrap();
        assert_eq!(a.size, 4);
        assert_eq!(fs.read(f.id, 0, 10).unwrap(), b"0123");
        let a = fs.setattr(f.id, SetAttr { size: Some(8) }).unwrap();
        assert_eq!(a.size, 8);
        assert_eq!(fs.read(f.id, 0, 10).unwrap(), b"0123\0\0\0\0");
        assert_eq!(fs.total_data(), 8);
    }

    #[test]
    fn readdir_sorted() {
        let fs = MemFs::new();
        fs.create(ROOT_ID, "b").unwrap();
        fs.create(ROOT_ID, "a").unwrap();
        fs.mkdir(ROOT_ID, "c").unwrap();
        let names: Vec<String> = fs
            .readdir(ROOT_ID)
            .unwrap()
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn rename_moves_and_overwrites() {
        let fs = MemFs::new();
        let d = fs.mkdir(ROOT_ID, "d").unwrap();
        let f = fs.create(ROOT_ID, "f").unwrap();
        fs.write(f.id, 0, b"data").unwrap();
        // Plain move.
        fs.rename(ROOT_ID, "f", d.id, "g").unwrap();
        assert_eq!(fs.lookup(ROOT_ID, "f"), Err(FsError::NotFound));
        assert_eq!(fs.lookup(d.id, "g").unwrap().id, f.id);
        // Overwrite an existing destination.
        let h = fs.create(d.id, "h").unwrap();
        fs.write(h.id, 0, b"old").unwrap();
        fs.rename(d.id, "g", d.id, "h").unwrap();
        assert_eq!(fs.lookup(d.id, "h").unwrap().id, f.id);
        assert_eq!(fs.read(f.id, 0, 10).unwrap(), b"data");
        assert_eq!(fs.getattr(h.id), Err(FsError::Stale));
    }

    #[test]
    fn version_monotone_per_mutation() {
        let fs = MemFs::new();
        let f = fs.create(ROOT_ID, "f").unwrap();
        let mut last = fs.getattr(f.id).unwrap().version;
        for i in 0..5 {
            let v = fs.write(f.id, i, &[i as u8]).unwrap().version;
            assert!(v > last);
            last = v;
        }
    }

    #[test]
    fn shared_clone_sees_same_store() {
        let fs = MemFs::new();
        let fs2 = fs.clone();
        let f = fs.create(ROOT_ID, "shared").unwrap();
        fs2.write(f.id, 0, b"via clone").unwrap();
        assert_eq!(fs.read(f.id, 0, 9).unwrap(), b"via clone");
    }
}
