//! # memfs — an in-memory filesystem backend
//!
//! The shared storage substrate behind both servers in this reproduction:
//! the DAFS server and the NFSv3 baseline server mount the *same* filesystem
//! implementation, so every performance difference measured between them is
//! attributable to the transport and protocol stack, never to storage.
//!
//! 2001-era DAFS evaluations ran server-cached (memory-resident) workloads
//! to isolate the network path; `memfs` reproduces exactly that regime: an
//! inode table, hierarchical directories, and extent-growable file data held
//! in memory. The crate is pure logic — no simulation dependency — and the
//! servers layer their own CPU cost models on top.

#![warn(missing_docs)]

mod fs;

pub use fs::{FileAttr, FileType, FsError, FsResult, MemFs, NodeId, SetAttr, ROOT_ID};
