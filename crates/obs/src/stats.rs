//! The primitive metric instruments: counters, byte meters, and
//! log₂-bucketed histograms.
//!
//! Everything here is lock-free (`AtomicU64`) and cloneable — a clone shares
//! state with the original, so a layer can keep a cheap handle while the
//! [`Registry`](crate::Registry) retains another for snapshotting. Durations
//! are plain `u64` nanoseconds of *virtual* time; this crate knows nothing
//! about the simulator's time types.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotone event counter.
#[derive(Clone, Default)]
pub struct Counter {
    n: Arc<AtomicU64>,
}

impl Counter {
    /// Create a new instance with default state.
    pub fn new() -> Counter {
        Counter::default()
    }

    #[inline]
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    /// Add `n` to the value.
    pub fn add(&self, n: u64) {
        self.n.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.n.load(Ordering::Relaxed)
    }

    /// Reset to zero, returning the previous value.
    pub fn reset(&self) -> u64 {
        self.n.swap(0, Ordering::Relaxed)
    }
}

/// Counts operations and the bytes they moved.
#[derive(Clone, Default)]
pub struct ByteMeter {
    /// Operation count.
    pub ops: Counter,
    /// Byte count.
    pub bytes: Counter,
}

impl ByteMeter {
    /// Create a new instance with default state.
    pub fn new() -> ByteMeter {
        ByteMeter::default()
    }

    /// Record one sample.
    pub fn record(&self, bytes: u64) {
        self.ops.inc();
        self.bytes.add(bytes);
    }

    /// Mean bytes per operation (0 if no ops).
    pub fn mean_size(&self) -> f64 {
        let ops = self.ops.get();
        if ops == 0 {
            0.0
        } else {
            self.bytes.get() as f64 / ops as f64
        }
    }

    /// Throughput over a window of `window_ns` nanoseconds, bytes/second.
    pub fn throughput_ns(&self, window_ns: u64) -> f64 {
        if window_ns == 0 {
            return 0.0;
        }
        self.bytes.get() as f64 / (window_ns as f64 / 1e9)
    }
}

const BUCKETS: usize = 64;

/// A log₂-bucketed histogram of u64 samples (latencies in ns, sizes in
/// bytes). Bucket `i` holds samples with `highest_set_bit == i` (bucket 0
/// holds 0 and 1).
#[derive(Clone)]
pub struct Histogram {
    buckets: Arc<[AtomicU64; BUCKETS]>,
    count: Counter,
    sum: Counter,
    max: Arc<AtomicU64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Create a new instance with default state.
    pub fn new() -> Histogram {
        Histogram {
            buckets: Arc::new(std::array::from_fn(|_| AtomicU64::new(0))),
            count: Counter::new(),
            sum: Counter::new(),
            max: Arc::new(AtomicU64::new(0)),
        }
    }

    #[inline]
    fn bucket_of(v: u64) -> usize {
        (63 - v.max(1).leading_zeros()) as usize
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.inc();
        self.sum.add(v);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.get()
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.get()
    }

    /// Arithmetic mean of recorded samples (0 if none).
    pub fn mean(&self) -> f64 {
        let c = self.count.get();
        if c == 0 {
            0.0
        } else {
            self.sum.get() as f64 / c as f64
        }
    }

    /// The largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Approximate quantile from the log₂ buckets (returns the upper bound of
    /// the bucket containing the q-quantile sample).
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count.get();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64) * q).ceil() as u64;
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return 1u64 << (i + 1).min(63);
            }
        }
        u64::MAX
    }
}

/// An exact-quantile sample recorder for latency *tables*.
///
/// [`Histogram`]'s log₂ buckets are the right instrument for streaming
/// metrics (bounded memory, lock-free), but its `quantile()` returns the
/// containing bucket's **upper bound** — a reported p99 can sit almost 2×
/// above the true sample. Reported tables deserve better: `SampleSet`
/// keeps every sample (bench-scale cardinalities, thousands of ops) and
/// computes nearest-rank quantiles over the sorted set, so a quoted p99
/// is an actual recorded latency.
#[derive(Clone, Default)]
pub struct SampleSet {
    samples: Arc<std::sync::Mutex<Vec<u64>>>,
}

impl SampleSet {
    /// Create a new instance with default state.
    pub fn new() -> SampleSet {
        SampleSet::default()
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.lock().push(v);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<u64>> {
        self.samples.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.lock().len() as u64
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.lock().iter().sum()
    }

    /// Arithmetic mean of recorded samples (0 if none).
    pub fn mean(&self) -> f64 {
        let s = self.lock();
        if s.is_empty() {
            0.0
        } else {
            s.iter().sum::<u64>() as f64 / s.len() as f64
        }
    }

    /// The largest recorded sample (0 if none).
    pub fn max(&self) -> u64 {
        self.lock().iter().copied().max().unwrap_or(0)
    }

    /// Exact nearest-rank quantile: the smallest recorded sample `x` such
    /// that at least `ceil(q·n)` samples are `<= x`. Unlike
    /// [`Histogram::quantile`], the result is always one of the recorded
    /// samples. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let mut s = self.lock().clone();
        if s.is_empty() {
            return 0;
        }
        s.sort_unstable();
        let rank = ((s.len() as f64) * q.clamp(0.0, 1.0)).ceil() as usize;
        s[rank.max(1) - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.reset(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_clone_shares_state() {
        let c = Counter::new();
        let c2 = c.clone();
        c2.add(7);
        assert_eq!(c.get(), 7);
    }

    #[test]
    fn byte_meter_math() {
        let m = ByteMeter::new();
        m.record(100);
        m.record(300);
        assert_eq!(m.ops.get(), 2);
        assert_eq!(m.bytes.get(), 400);
        assert!((m.mean_size() - 200.0).abs() < 1e-9);
        // 400 B in 4us = 100 MB/s.
        assert!((m.throughput_ns(4_000) - 1e8).abs() < 1.0);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 1000, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), 1_000_000);
        assert!((h.mean() - (1_001_006.0 / 6.0)).abs() < 1e-6);
        // Median lands in a small bucket.
        assert!(h.quantile(0.5) <= 8);
        assert!(h.quantile(1.0) >= 1_000_000);
    }

    #[test]
    fn histogram_empty_quantile_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn sample_set_exact_quantiles() {
        let s = SampleSet::new();
        // 1..=100 in scrambled order: p50 = 50, p99 = 99, max = 100.
        for v in (1..=100u64).rev() {
            s.record(v);
        }
        assert_eq!(s.count(), 100);
        assert_eq!(s.sum(), 5050);
        assert!((s.mean() - 50.5).abs() < 1e-9);
        assert_eq!(s.quantile(0.5), 50);
        assert_eq!(s.quantile(0.99), 99);
        assert_eq!(s.quantile(1.0), 100);
        assert_eq!(s.max(), 100);
    }

    #[test]
    fn sample_set_beats_histogram_quantization() {
        // A tight cluster around 3000: the log2 histogram can only answer
        // 4096 (the bucket upper bound); the sample set answers exactly.
        let h = Histogram::new();
        let s = SampleSet::new();
        for v in [2900u64, 2950, 3000, 3050] {
            h.record(v);
            s.record(v);
        }
        assert_eq!(h.quantile(0.5), 4096);
        assert_eq!(s.quantile(0.5), 2950);
    }

    #[test]
    fn sample_set_empty_and_clone_shares_state() {
        let s = SampleSet::new();
        assert_eq!(s.quantile(0.99), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0.0);
        let s2 = s.clone();
        s2.record(7);
        assert_eq!(s.count(), 1);
    }
}
