//! The structured event tracer: virtual-time-stamped JSON-lines records.
//!
//! The tracer is either **enabled** (holds a shared sink) or **disabled**
//! (`sink == None`) — the disabled form is a single branch on the hot path
//! and writes nothing, so tracing can stay compiled in everywhere without
//! perturbing the simulation.

use std::io::Write;
use std::sync::{Arc, Mutex};

use crate::json;

/// One typed field value in a trace event.
#[derive(Debug, Clone, Copy)]
pub enum Value<'a> {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (non-finite renders as null).
    F64(f64),
    /// String.
    Str(&'a str),
    /// Boolean.
    Bool(bool),
}

impl Value<'_> {
    fn push_json(&self, out: &mut String) {
        match self {
            Value::U64(v) => out.push_str(&v.to_string()),
            Value::I64(v) => out.push_str(&v.to_string()),
            Value::F64(v) => json::push_f64(out, *v),
            Value::Str(s) => json::push_str(out, s),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
}

impl From<u64> for Value<'_> {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl<'a> From<&'a str> for Value<'a> {
    fn from(v: &'a str) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value<'_> {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

type SharedSink = Arc<Mutex<Box<dyn Write + Send>>>;

/// A JSON-lines event sink, cheaply cloneable.
#[derive(Clone, Default)]
pub struct Tracer {
    sink: Option<SharedSink>,
}

impl Tracer {
    /// A tracer that drops everything (one branch per call).
    pub fn disabled() -> Tracer {
        Tracer { sink: None }
    }

    /// A tracer writing JSON lines to `w`.
    pub fn to_writer(w: Box<dyn Write + Send>) -> Tracer {
        Tracer {
            sink: Some(Arc::new(Mutex::new(w))),
        }
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Write one event record. No-op when disabled.
    pub fn event(
        &self,
        t_ns: u64,
        actor: &str,
        layer: &str,
        event: &str,
        fields: &[(&str, Value<'_>)],
    ) {
        let Some(sink) = &self.sink else { return };
        let mut line = String::with_capacity(96 + fields.len() * 24);
        line.push_str("{\"type\":\"event\",\"t_ns\":");
        line.push_str(&t_ns.to_string());
        line.push_str(",\"actor\":");
        json::push_str(&mut line, actor);
        line.push_str(",\"layer\":");
        json::push_str(&mut line, layer);
        line.push_str(",\"event\":");
        json::push_str(&mut line, event);
        if !fields.is_empty() {
            line.push_str(",\"fields\":{");
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                json::push_str(&mut line, k);
                line.push(':');
                v.push_json(&mut line);
            }
            line.push('}');
        }
        line.push_str("}\n");
        let mut w = sink.lock().unwrap_or_else(|e| e.into_inner());
        let _ = w.write_all(line.as_bytes());
    }

    /// Write one pre-rendered JSON line (snapshots). No-op when disabled.
    pub fn raw_line(&self, line: &str) {
        let Some(sink) = &self.sink else { return };
        let mut w = sink.lock().unwrap_or_else(|e| e.into_inner());
        let _ = w.write_all(line.as_bytes());
        let _ = w.write_all(b"\n");
    }

    /// Flush the sink (end of a simulation run).
    pub fn flush(&self) {
        if let Some(sink) = &self.sink {
            let _ = sink.lock().unwrap_or_else(|e| e.into_inner()).flush();
        }
    }
}

/// An in-memory trace sink for tests: the tracer side writes, the holder
/// reads the accumulated bytes afterwards.
#[derive(Clone, Default)]
pub struct TraceBuffer {
    buf: Arc<Mutex<Vec<u8>>>,
}

impl TraceBuffer {
    /// Create an empty buffer.
    pub fn new() -> TraceBuffer {
        TraceBuffer::default()
    }

    /// The bytes written so far.
    pub fn contents(&self) -> Vec<u8> {
        self.buf.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

impl Write for TraceBuffer {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.buf
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .extend_from_slice(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_writes_nothing() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        t.event(1, "a", "sim", "noop", &[]);
        t.flush();
    }

    #[test]
    fn event_lines_are_json_objects() {
        let buf = TraceBuffer::new();
        let t = Tracer::to_writer(Box::new(buf.clone()));
        t.event(
            7_000,
            "rank0",
            "via",
            "doorbell",
            &[("bytes", Value::U64(4096)), ("kind", Value::Str("send"))],
        );
        t.flush();
        let s = String::from_utf8(buf.contents()).unwrap();
        assert_eq!(
            s,
            "{\"type\":\"event\",\"t_ns\":7000,\"actor\":\"rank0\",\"layer\":\"via\",\
             \"event\":\"doorbell\",\"fields\":{\"bytes\":4096,\"kind\":\"send\"}}\n"
        );
    }
}
