//! # obs — virtual-time observability for the MPI-IO/DAFS/VIA stack
//!
//! The paper this repository reproduces is an *evaluation*: every claim
//! rests on per-layer cost attribution — who burned CPU, where copies
//! happened, when RDMA completed. `obs` is the substrate that evidence
//! flows through:
//!
//! * a structured **event tracer** ([`Tracer`]) that stamps every record
//!   with the emitting actor and its *virtual* time and writes JSON lines
//!   to a sink (a file when `MPIO_DAFS_TRACE=<path>` is set, nothing
//!   otherwise — the disabled path costs one branch);
//! * a hierarchical **metrics registry** ([`Registry`]) of named handles
//!   (`via.rdma.bytes`, `dafs.regcache.hits`, `mpiio.twophase.exchange_ns`)
//!   unifying the stack's counters, byte meters, and histograms, and
//!   snapshotable at any virtual time ([`Snapshot`]).
//!
//! Both ride together in an [`Obs`] handle that the simulation kernel owns
//! and hands to every actor. Observability **never** advances virtual time
//! or charges CPU: with tracing on or off, the simulated timeline is
//! bit-identical.
//!
//! This crate has zero dependencies (time is plain `u64` nanoseconds); the
//! simulator layers it under every other crate.

#![warn(missing_docs)]

pub mod json;
mod registry;
mod stats;
mod trace;

pub use registry::{Metric, Registry, Snapshot, SnapshotEntry};
pub use stats::{ByteMeter, Counter, Histogram, SampleSet};
pub use trace::{TraceBuffer, Tracer, Value};

use std::sync::Arc;

/// The environment variable naming the JSON-lines trace sink.
pub const TRACE_ENV: &str = "MPIO_DAFS_TRACE";

/// The per-simulation observability handle: one tracer + one registry.
///
/// Cloning is cheap and shares state; the kernel keeps one and every actor
/// context borrows it.
#[derive(Clone, Default)]
pub struct Obs {
    tracer: Tracer,
    registry: Arc<Registry>,
}

impl Obs {
    /// Observability off: metrics still collect, trace events vanish.
    pub fn disabled() -> Obs {
        Obs::default()
    }

    /// Build from the environment: if `MPIO_DAFS_TRACE` names a path, trace
    /// events append to that file; otherwise tracing is disabled.
    pub fn from_env() -> Obs {
        match std::env::var(TRACE_ENV) {
            Ok(path) if !path.is_empty() => match std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
            {
                Ok(f) => Obs::to_writer(Box::new(std::io::BufWriter::new(f))),
                Err(e) => {
                    eprintln!("obs: cannot open {TRACE_ENV}={path}: {e}; tracing disabled");
                    Obs::disabled()
                }
            },
            _ => Obs::disabled(),
        }
    }

    /// Trace into an arbitrary writer.
    pub fn to_writer(w: Box<dyn std::io::Write + Send>) -> Obs {
        Obs {
            tracer: Tracer::to_writer(w),
            registry: Arc::new(Registry::new()),
        }
    }

    /// Trace into an in-memory buffer (deterministic tests); returns the
    /// handle plus the readable buffer.
    pub fn buffered() -> (Obs, TraceBuffer) {
        let buf = TraceBuffer::new();
        (Obs::to_writer(Box::new(buf.clone())), buf)
    }

    /// Whether trace events are being recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.tracer.enabled()
    }

    /// The metrics registry (always live, even with tracing disabled).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Emit one structured event (no-op when disabled).
    #[inline]
    pub fn emit(
        &self,
        t_ns: u64,
        actor: &str,
        layer: &str,
        event: &str,
        fields: &[(&str, Value<'_>)],
    ) {
        self.tracer.event(t_ns, actor, layer, event, fields);
    }

    /// Snapshot the registry at virtual time `t_ns`.
    pub fn snapshot(&self, t_ns: u64) -> Snapshot {
        self.registry.snapshot(t_ns)
    }

    /// Write a registry snapshot record to the trace sink (no-op when
    /// disabled) and flush. The kernel calls this when a run completes.
    pub fn emit_snapshot(&self, t_ns: u64) {
        if self.enabled() {
            self.tracer.raw_line(&self.snapshot(t_ns).to_json_line());
            self.tracer.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_obs_still_counts() {
        let o = Obs::disabled();
        o.registry().counter("x.y").add(5);
        assert_eq!(o.snapshot(0).get("x.y").unwrap().value(), 5);
        o.emit(0, "a", "l", "e", &[]);
        o.emit_snapshot(9); // no sink: nothing happens
    }

    #[test]
    fn buffered_obs_records_events_and_snapshot() {
        let (o, buf) = Obs::buffered();
        assert!(o.enabled());
        o.registry().counter("dafs.ops").inc();
        o.emit(
            5,
            "rank0",
            "dafs",
            "session.connect",
            &[("credits", Value::U64(8))],
        );
        o.emit_snapshot(10);
        let text = String::from_utf8(buf.contents()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"session.connect\""));
        assert!(lines[1].contains("\"type\":\"snapshot\""));
        assert!(lines[1].contains("\"dafs.ops\""));
    }
}
