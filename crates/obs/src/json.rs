//! Hand-rolled JSON emission (the build environment has no serde): enough
//! to write valid JSON-lines trace records and snapshot objects.

/// Append `s` to `out` as a JSON string literal (quoted, escaped).
pub fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON string literal for `s`.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    push_str(&mut out, s);
    out
}

/// Append a finite `f64` (JSON has no NaN/Inf; those become null).
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// Append a `[...]` array of pre-rendered JSON values.
pub fn push_array(out: &mut String, items: &[String]) {
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(item);
    }
    out.push(']');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(quote("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(quote("plain"), r#""plain""#);
    }

    #[test]
    fn control_chars_become_unicode_escapes() {
        assert_eq!(quote("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn f64_nonfinite_is_null() {
        let mut s = String::new();
        push_f64(&mut s, f64::INFINITY);
        assert_eq!(s, "null");
        s.clear();
        push_f64(&mut s, 1.5);
        assert_eq!(s, "1.5");
    }

    #[test]
    fn arrays_join_with_commas() {
        let mut s = String::new();
        push_array(&mut s, &["1".into(), "2".into()]);
        assert_eq!(s, "[1,2]");
    }
}
