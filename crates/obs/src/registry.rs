//! The hierarchical metrics registry: named, dot-separated metric handles
//! (`via.rdma.bytes`, `dafs.regcache.hits`, `mpiio.twophase.exchange_ns`)
//! backed by the primitive instruments in [`crate::stats`].
//!
//! Names are hierarchical by convention: the segment before the first `.` is
//! the *layer* (`sim`, `via`, `tcp`, `nfs`, `dafs`, `mpiio`), the rest the
//! instrument. Counters whose name ends in `_ns` hold accumulated virtual
//! nanoseconds and feed the per-layer time-breakdown tables in `bench`.
//!
//! Snapshots are deterministic: entries are emitted in lexicographic name
//! order with integer-only fields, so the same simulation produces a
//! byte-identical snapshot on every run.

use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;

use crate::json;
use crate::stats::{ByteMeter, Counter, Histogram};

/// One named instrument held by the registry.
#[derive(Clone)]
pub enum Metric {
    /// A monotone counter.
    Counter(Counter),
    /// Operation + byte totals.
    Bytes(ByteMeter),
    /// A log₂ histogram.
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Bytes(_) => "bytes",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// Interned `(layer, op)` key → (count, ns) counter-handle pair.
type SpanCache = HashMap<(&'static str, &'static str), (Counter, Counter)>;

/// A registry of named metrics, snapshotable at any virtual time.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
    /// Interned counter-handle pairs for [`Registry::span_counters`]: hot
    /// spans resolve their two counters with one map probe instead of
    /// formatting two metric names per drop.
    span_cache: Mutex<SpanCache>,
}

impl Registry {
    /// Create an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or create the counter named `name`.
    ///
    /// Panics if `name` is already registered as a different kind — metric
    /// names are a global contract between layers and reports.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric '{name}' is a {}, not a counter", other.kind()),
        }
    }

    /// Get or create the byte meter named `name`.
    pub fn byte_meter(&self, name: &str) -> ByteMeter {
        let mut m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Bytes(ByteMeter::new()))
        {
            Metric::Bytes(b) => b.clone(),
            other => panic!("metric '{name}' is a {}, not a byte meter", other.kind()),
        }
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric '{name}' is a {}, not a histogram", other.kind()),
        }
    }

    /// The `({layer}.{op}_ns, {layer}.{op}.calls)` counter pair backing a
    /// timed span, interned on first use. Metric names are identical to
    /// calling [`Registry::counter`] with the formatted names — this is
    /// purely an allocation-free fast path for per-event span drops.
    pub fn span_counters(&self, layer: &'static str, op: &'static str) -> (Counter, Counter) {
        let mut cache = self.span_cache.lock().unwrap_or_else(|e| e.into_inner());
        cache
            .entry((layer, op))
            .or_insert_with(|| {
                (
                    self.counter(&format!("{layer}.{op}_ns")),
                    self.counter(&format!("{layer}.{op}.calls")),
                )
            })
            .clone()
    }

    /// Freeze every registered metric at virtual time `t_ns`.
    pub fn snapshot(&self, t_ns: u64) -> Snapshot {
        let m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        let entries = m
            .iter()
            .map(|(name, metric)| {
                let (kind, fields) = match metric {
                    Metric::Counter(c) => ("counter", vec![("value", c.get())]),
                    Metric::Bytes(b) => (
                        "bytes",
                        vec![("ops", b.ops.get()), ("bytes", b.bytes.get())],
                    ),
                    Metric::Histogram(h) => (
                        "histogram",
                        vec![
                            ("count", h.count()),
                            ("sum", h.sum()),
                            ("max", h.max()),
                            ("p50", h.quantile(0.5)),
                            ("p99", h.quantile(0.99)),
                        ],
                    ),
                };
                SnapshotEntry {
                    name: name.clone(),
                    kind,
                    fields,
                }
            })
            .collect();
        Snapshot { t_ns, entries }
    }
}

/// One metric frozen at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotEntry {
    /// Full dotted metric name.
    pub name: String,
    /// Instrument kind ("counter" / "bytes" / "histogram").
    pub kind: &'static str,
    /// Field name → value pairs, in a fixed per-kind order.
    pub fields: Vec<(&'static str, u64)>,
}

impl SnapshotEntry {
    /// The metric's primary scalar (counter value / total bytes / sum).
    ///
    /// Panics if the entry carries no field for its kind's primary key —
    /// that is a malformed snapshot, and silently answering 0 (as this
    /// once did) turns an internal invariant break into a plausible-looking
    /// measurement.
    pub fn value(&self) -> u64 {
        let key = match self.kind {
            "bytes" => "bytes",
            "histogram" => "sum",
            _ => "value",
        };
        self.fields
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| {
                panic!(
                    "metric '{}' ({}) has no '{key}' field in snapshot",
                    self.name, self.kind
                )
            })
    }
}

/// The registry's state at one virtual instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Virtual time of the snapshot, nanoseconds.
    pub t_ns: u64,
    /// All metrics, in lexicographic name order.
    pub entries: Vec<SnapshotEntry>,
}

impl Snapshot {
    /// Look up a metric by full name.
    pub fn get(&self, name: &str) -> Option<&SnapshotEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Checked lookup for assert paths: like [`Snapshot::get`], but a
    /// missing name panics with the nearest registered names instead of
    /// letting the caller `unwrap_or(0)` a typo into a real-looking zero.
    pub fn expect(&self, name: &str) -> &SnapshotEntry {
        self.get(name).unwrap_or_else(|| {
            // A typo'd name almost always shares the metric's layer prefix;
            // list that subtree to make the panic actionable.
            let prefix = name.split('.').next().unwrap_or(name);
            let near: Vec<&str> = self.with_prefix(prefix).map(|e| e.name.as_str()).collect();
            panic!("metric '{name}' not in snapshot; '{prefix}.*' has: {near:?}")
        })
    }

    /// Entries whose name starts with `prefix` (a layer or subtree).
    pub fn with_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a SnapshotEntry> {
        self.entries
            .iter()
            .filter(move |e| e.name.starts_with(prefix))
    }

    /// Render as one JSON object (a single JSON-lines record).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(64 + self.entries.len() * 48);
        out.push_str("{\"type\":\"snapshot\",\"t_ns\":");
        out.push_str(&self.t_ns.to_string());
        out.push_str(",\"metrics\":{");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_str(&mut out, &e.name);
            out.push_str(":{\"kind\":");
            json::push_str(&mut out, e.kind);
            for (k, v) in &e.fields {
                out.push(',');
                json::push_str(&mut out, k);
                out.push(':');
                out.push_str(&v.to_string());
            }
            out.push('}');
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state_with_registry() {
        let r = Registry::new();
        let c = r.counter("via.doorbells");
        c.add(3);
        let again = r.counter("via.doorbells");
        assert_eq!(again.get(), 3);
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.byte_meter("x");
        r.counter("x");
    }

    #[test]
    fn snapshot_is_sorted_and_stable() {
        let r = Registry::new();
        r.counter("b.z").add(1);
        r.byte_meter("a.y").record(10);
        r.histogram("c.x").record(7);
        let s1 = r.snapshot(42);
        let s2 = r.snapshot(42);
        assert_eq!(s1, s2);
        let names: Vec<&str> = s1.entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["a.y", "b.z", "c.x"]);
        assert_eq!(s1.get("a.y").unwrap().value(), 10);
        assert_eq!(s1.to_json_line(), s2.to_json_line());
        assert!(s1
            .to_json_line()
            .starts_with("{\"type\":\"snapshot\",\"t_ns\":42,"));
    }

    #[test]
    fn expect_hits_and_misses() {
        let r = Registry::new();
        r.counter("dafs.sched.boosts").add(3);
        let s = r.snapshot(0);
        assert_eq!(s.expect("dafs.sched.boosts").value(), 3);
    }

    #[test]
    #[should_panic(expected = "not in snapshot")]
    fn expect_panics_on_typo() {
        let r = Registry::new();
        r.counter("dafs.sched.boosts").add(3);
        r.snapshot(0).expect("dafs.sched.bosts");
    }

    #[test]
    #[should_panic(expected = "has no 'value' field")]
    fn value_panics_on_field_mismatch() {
        let e = SnapshotEntry {
            name: "x.y".to_string(),
            kind: "counter",
            fields: vec![("coutn", 1)],
        };
        e.value();
    }

    #[test]
    fn prefix_filter() {
        let r = Registry::new();
        r.counter("dafs.regcache.hits").add(2);
        r.counter("via.doorbells").add(1);
        let s = r.snapshot(0);
        assert_eq!(s.with_prefix("dafs.").count(), 1);
    }
}
