//! A minimal, API-compatible stand-in for the `parking_lot` crate, built on
//! `std::sync`. The build environment has no access to crates.io, so the
//! workspace vendors the small slice of the API it actually uses:
//!
//! * [`Mutex`] / [`MutexGuard`] — `lock()` returns the guard directly
//!   (non-poisoning; a poisoned std lock is recovered transparently).
//! * [`RwLock`] with `read()` / `write()`.
//! * [`Condvar`] whose `wait` takes `&mut MutexGuard`.
//!
//! Semantics match `parking_lot` for the patterns used in this workspace:
//! panics while holding a lock do not poison it for other threads.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning interface.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`]; unlocks on drop.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

/// A condition variable compatible with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically release the guarded lock and wait for a notification; the
    /// lock is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning interface.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new lock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_one();
        }
        t.join().unwrap();
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = Arc::new(RwLock::new(vec![1, 2]));
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
