//! Property tests for the DAFS wire encoding (public surface: request/
//! response headers and attribute marshalling round-trip through real
//! client/server traffic, so we exercise them via the protocol enums).
//!
//! The input domain is a single byte, so these check all 256 values
//! exhaustively instead of sampling.

use dafs::{DafsOp, DafsStatus};

/// Every op value either parses to an op that re-encodes to itself, or
/// rejects — no aliasing.
#[test]
fn op_parse_is_partial_inverse() {
    for v in 0..=u8::MAX {
        match DafsOp::from_u8(v) {
            Some(op) => assert_eq!(op as u8, v),
            None => assert!(v == 0 || v >= 20, "unexpected reject for {v}"),
        }
    }
}

/// Status parsing is total and idempotent (unknown values collapse to
/// Inval, which re-parses to itself).
#[test]
fn status_parse_is_total_and_idempotent() {
    for v in 0..=u8::MAX {
        let s = DafsStatus::from_u8(v);
        assert_eq!(DafsStatus::from_u8(s as u8), s);
    }
}
