//! Property tests for the DAFS wire encoding (public surface: request/
//! response headers and attribute marshalling round-trip through real
//! client/server traffic, so we exercise them via the protocol enums).

use dafs::{DafsOp, DafsStatus};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every op value either parses to an op that re-encodes to itself, or
    /// rejects — no aliasing.
    #[test]
    fn op_parse_is_partial_inverse(v in any::<u8>()) {
        match DafsOp::from_u8(v) {
            Some(op) => prop_assert_eq!(op as u8, v),
            None => prop_assert!(v == 0 || v >= 20),
        }
    }

    /// Status parsing is total and idempotent (unknown values collapse to
    /// Inval, which re-parses to itself).
    #[test]
    fn status_parse_is_total_and_idempotent(v in any::<u8>()) {
        let s = DafsStatus::from_u8(v);
        prop_assert_eq!(DafsStatus::from_u8(s as u8), s);
    }
}
