//! DAFS protocol: operation codes, status codes, attribute marshalling,
//! request/response headers.
//!
//! Modeled on the DAFS Collaborative 1.0 procedure set (`DAP_PROC_*`),
//! reduced to the operations the MPI-IO stack and its evaluation exercise.
//! Every request carries a session-local request id so responses can be
//! matched out of order (batch I/O pipelines several requests per session).

use memfs::{FileAttr, FileType, FsError, NodeId};

use crate::wire::{Dec, Enc, WireError};

/// DAFS procedure numbers (subset; values are stable within this repo).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum DafsOp {
    /// Fetch attributes.
    GetAttr = 1,
    /// Set attributes (truncate).
    SetAttr = 2,
    /// Directory lookup.
    Lookup = 3,
    /// Create a regular file.
    Create = 4,
    /// Remove a regular file.
    Remove = 5,
    /// Create a directory.
    Mkdir = 6,
    /// Remove an empty directory.
    Rmdir = 7,
    /// Rename.
    Rename = 8,
    /// List a directory.
    ReadDir = 9,
    /// Read with data inline in the response message.
    ReadInline = 10,
    /// Write with data inline in the request message.
    WriteInline = 11,
    /// Read with server-initiated RDMA Write into the client buffer.
    ReadDirect = 12,
    /// Write with server-initiated RDMA Read from the client buffer.
    WriteDirect = 13,
    /// Flush to stable storage.
    Flush = 14,
    /// Acquire a whole-file exclusive lock (blocks until granted).
    Lock = 15,
    /// Release a lock.
    Unlock = 16,
    /// End the session.
    Disconnect = 17,
    /// Session setup: exchange capabilities (first request on a session).
    /// The request body carries the client's stable id (u64) — the VI id
    /// of its first session — so the server can key its replay cache to
    /// the client across session reconnects.
    Hello = 18,
    /// Atomic append: write inline data at the current end of file,
    /// returning the offset it landed at (DAFS's append mode).
    Append = 19,
    /// Vectored read: one request carries a sorted `(offset, len)` list;
    /// the server gathers every segment in one pass. Data returns inline
    /// (small totals) or via a single RDMA Write stream into one
    /// registered client buffer (large totals).
    ReadList = 20,
    /// Vectored write: the scatter analogue of [`DafsOp::ReadList`] —
    /// inline payload carries the segments back-to-back, direct transfers
    /// RDMA-Read them from one registered client buffer.
    WriteList = 21,
    /// Request a cache lease on a file (the DAFS delegation model):
    /// request carries `(fh, kind)` with kind 1 = read, 2 = write-back;
    /// the response carries `granted: u8` plus the file's current
    /// attributes, so a grant seeds the client attribute cache atomically.
    /// Not replay-cacheable: a replayed stale grant after the server
    /// reclaimed the lease would let the client cache incoherently.
    LeaseGrant = 22,
    /// Server→client recall push: an *unsolicited* frame on the session's
    /// response ring, sent when a conflicting writer appears. Encoded as a
    /// response with reqid 0 (client request ids start at 1) carrying
    /// `(op=23 marker u8, fh, recall_id)`.
    LeaseRecall = 23,
    /// Client→server recall acknowledgement: `(fh, recall_id)` after the
    /// client flushed dirty data and dropped the lease. `recall_id` 0
    /// means a voluntary release (no recall outstanding). Re-execution is
    /// a no-op on the server, so replayed acks after a reconnect are
    /// harmless (replay-idempotent).
    LeaseRecallAck = 24,
}

impl DafsOp {
    /// Parse from a wire value.
    pub fn from_u8(v: u8) -> Option<DafsOp> {
        Some(match v {
            1 => DafsOp::GetAttr,
            2 => DafsOp::SetAttr,
            3 => DafsOp::Lookup,
            4 => DafsOp::Create,
            5 => DafsOp::Remove,
            6 => DafsOp::Mkdir,
            7 => DafsOp::Rmdir,
            8 => DafsOp::Rename,
            9 => DafsOp::ReadDir,
            10 => DafsOp::ReadInline,
            11 => DafsOp::WriteInline,
            12 => DafsOp::ReadDirect,
            13 => DafsOp::WriteDirect,
            14 => DafsOp::Flush,
            15 => DafsOp::Lock,
            16 => DafsOp::Unlock,
            17 => DafsOp::Disconnect,
            18 => DafsOp::Hello,
            19 => DafsOp::Append,
            20 => DafsOp::ReadList,
            21 => DafsOp::WriteList,
            22 => DafsOp::LeaseGrant,
            23 => DafsOp::LeaseRecall,
            24 => DafsOp::LeaseRecallAck,
            _ => return None,
        })
    }
}

/// DAFS status codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum DafsStatus {
    /// Success.
    Ok = 0,
    /// No such entry.
    NoEnt = 1,
    /// Stale handle.
    Stale = 2,
    /// Not a directory.
    NotDir = 3,
    /// Is a directory.
    IsDir = 4,
    /// Exists.
    Exists = 5,
    /// Directory not empty.
    NotEmpty = 6,
    /// Invalid argument / malformed request.
    Inval = 7,
    /// Transfer failed (e.g. remote protection error on direct I/O).
    XferError = 8,
    /// Operation not supported by this server (e.g. WRITE_DIRECT without
    /// RDMA Read capability).
    NotSupported = 9,
}

impl DafsStatus {
    /// Parse from a wire value.
    pub fn from_u8(v: u8) -> DafsStatus {
        match v {
            0 => DafsStatus::Ok,
            1 => DafsStatus::NoEnt,
            2 => DafsStatus::Stale,
            3 => DafsStatus::NotDir,
            4 => DafsStatus::IsDir,
            5 => DafsStatus::Exists,
            6 => DafsStatus::NotEmpty,
            8 => DafsStatus::XferError,
            9 => DafsStatus::NotSupported,
            _ => DafsStatus::Inval,
        }
    }
}

impl From<FsError> for DafsStatus {
    fn from(e: FsError) -> DafsStatus {
        match e {
            FsError::NotFound => DafsStatus::NoEnt,
            FsError::Stale => DafsStatus::Stale,
            FsError::NotDirectory => DafsStatus::NotDir,
            FsError::IsDirectory => DafsStatus::IsDir,
            FsError::Exists => DafsStatus::Exists,
            FsError::NotEmpty => DafsStatus::NotEmpty,
            FsError::InvalidName => DafsStatus::Inval,
        }
    }
}

/// Lease kinds a client may request with [`DafsOp::LeaseGrant`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum LeaseKind {
    /// Shared read lease: cached pages/attrs may be served locally.
    Read = 1,
    /// Exclusive write-back lease: additionally, small writes may be
    /// buffered dirty at the client until flush or recall.
    Write = 2,
}

impl LeaseKind {
    /// Parse from a wire value.
    pub fn from_u8(v: u8) -> Option<LeaseKind> {
        match v {
            1 => Some(LeaseKind::Read),
            2 => Some(LeaseKind::Write),
            _ => None,
        }
    }
}

/// Encode the unsolicited server→client lease-recall push frame: a
/// response with reqid 0 (request ids start at 1), an op marker, the file
/// handle, and the recall id the client must echo in its
/// [`DafsOp::LeaseRecallAck`].
pub fn enc_recall_push(fh: NodeId, recall_id: u32) -> Enc {
    let mut e = Enc::new();
    enc_resp_header(&mut e, 0, DafsStatus::Ok);
    e.u8(DafsOp::LeaseRecall as u8);
    e.u64(fh.0);
    e.u32(recall_id);
    e
}

/// Decode a recall push payload (everything after the response header).
pub fn dec_recall_push(d: &mut Dec) -> Result<(NodeId, u32), WireError> {
    if d.u8()? != DafsOp::LeaseRecall as u8 {
        return Err(WireError);
    }
    Ok((NodeId(d.u64()?), d.u32()?))
}

/// Server capabilities advertised at session setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerCaps {
    /// Server NIC can perform RDMA Read (enables true WRITE_DIRECT).
    pub rdma_read: bool,
    /// Session credits granted.
    pub credits: u32,
    /// Largest inline payload the server accepts.
    pub inline_max: u64,
}

/// Encode a request header: (request id, op).
pub fn enc_req_header(e: &mut Enc, reqid: u32, op: DafsOp) {
    e.u32(reqid);
    e.u8(op as u8);
}

/// Decode a request header.
pub fn dec_req_header(d: &mut Dec) -> Result<(u32, DafsOp), WireError> {
    let reqid = d.u32()?;
    let op = DafsOp::from_u8(d.u8()?).ok_or(WireError)?;
    Ok((reqid, op))
}

/// Encode a response header: (request id, status).
pub fn enc_resp_header(e: &mut Enc, reqid: u32, status: DafsStatus) {
    e.u32(reqid);
    e.u8(status as u8);
}

/// Decode a response header.
pub fn dec_resp_header(d: &mut Dec) -> Result<(u32, DafsStatus), WireError> {
    Ok((d.u32()?, DafsStatus::from_u8(d.u8()?)))
}

/// Largest segment list one ReadList/WriteList request may carry. Long
/// lists are split into multiple list requests by the client (they ride
/// the same credit window as any other batch sub-request); the server
/// rejects oversized lists with [`DafsStatus::Inval`].
pub const LIST_MAX_SEGMENTS: usize = 256;

/// One vectored-I/O segment: `(file offset, length, client-buffer offset)`.
/// The third member places the segment inside the request's client buffer
/// — prefix sums for a packed list, `off - off0` for an offset-aligned
/// collective drain, or striping-layout positions for striped fragments.
pub type ListSeg = (u64, u64, u64);

/// Encode a segment list: `u32 count` then each segment as
/// `(u64 offset, u64 len, u64 buf_rel)`.
pub fn enc_seg_list(e: &mut Enc, segs: &[ListSeg]) {
    e.u32(segs.len() as u32);
    for &(off, len, rel) in segs {
        e.u64(off);
        e.u64(len);
        e.u64(rel);
    }
}

/// The list contract both vectored ops require: segments sorted by file
/// offset and by buffer position, non-overlapping on both axes, non-empty,
/// and free of u64 overflow. The server rejects violations with
/// [`DafsStatus::Inval`]; the ADIO layer falls back to sieving for lists
/// it cannot express this way instead of sending them.
pub fn list_well_formed(segs: &[ListSeg]) -> bool {
    let mut last_end = 0u64;
    let mut last_rel_end = 0u64;
    for (i, &(off, len, rel)) in segs.iter().enumerate() {
        if len == 0 {
            return false;
        }
        let (Some(end), Some(rel_end)) = (off.checked_add(len), rel.checked_add(len)) else {
            return false;
        };
        if i > 0 && (off < last_end || rel < last_rel_end) {
            return false;
        }
        last_end = end;
        last_rel_end = rel_end;
    }
    true
}

/// Lax client-side variant of [`list_well_formed`]: zero-length segments
/// are permitted (the client drops them before encoding requests).
pub fn list_acceptable(segs: &[ListSeg]) -> bool {
    let dense: Vec<ListSeg> = segs.iter().copied().filter(|s| s.1 > 0).collect();
    list_well_formed(&dense)
}

/// Decode a segment list. Enforces [`LIST_MAX_SEGMENTS`] so a malformed
/// count can't drive a huge allocation.
pub fn dec_seg_list(d: &mut Dec) -> Result<Vec<ListSeg>, WireError> {
    let n = d.u32()? as usize;
    if n > LIST_MAX_SEGMENTS {
        return Err(WireError);
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let off = d.u64()?;
        let len = d.u64()?;
        let rel = d.u64()?;
        out.push((off, len, rel));
    }
    Ok(out)
}

/// Encode file attributes.
pub fn enc_attr(e: &mut Enc, a: &FileAttr) {
    e.u8(match a.ftype {
        FileType::Regular => 0,
        FileType::Directory => 1,
    });
    e.u64(a.id.0);
    e.u64(a.size);
    e.u64(a.version);
    e.u32(a.nlink);
}

/// Decode file attributes.
pub fn dec_attr(d: &mut Dec) -> Result<FileAttr, WireError> {
    let ftype = if d.u8()? == 0 {
        FileType::Regular
    } else {
        FileType::Directory
    };
    Ok(FileAttr {
        id: NodeId(d.u64()?),
        size: d.u64()?,
        version: d.u64()?,
        nlink: d.u32()?,
        ftype,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use memfs::ROOT_ID;

    #[test]
    fn op_roundtrip() {
        for v in 1..=24u8 {
            let op = DafsOp::from_u8(v).unwrap();
            assert_eq!(op as u8, v);
        }
        assert_eq!(DafsOp::from_u8(0), None);
        assert_eq!(DafsOp::from_u8(25), None);
    }

    #[test]
    fn lease_kind_and_recall_roundtrip() {
        assert_eq!(LeaseKind::from_u8(1), Some(LeaseKind::Read));
        assert_eq!(LeaseKind::from_u8(2), Some(LeaseKind::Write));
        assert_eq!(LeaseKind::from_u8(0), None);
        assert_eq!(LeaseKind::from_u8(3), None);

        let b = enc_recall_push(NodeId(7), 42).finish();
        let mut d = Dec::new(&b);
        // The push frame reads as a reqid-0 Ok response...
        assert_eq!(dec_resp_header(&mut d).unwrap(), (0, DafsStatus::Ok));
        // ...whose payload names the file and the recall.
        assert_eq!(dec_recall_push(&mut d).unwrap(), (NodeId(7), 42));
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn seg_list_roundtrip() {
        let lists: Vec<Vec<ListSeg>> = vec![
            vec![],
            vec![(0, 1, 0)],
            vec![
                (0, 4096, 0),
                (8192, 4096, 4096),
                (1 << 40, u64::MAX / 2, 8192),
            ],
        ];
        for segs in lists {
            let mut e = Enc::new();
            enc_seg_list(&mut e, &segs);
            let b = e.finish();
            assert_eq!(b.len(), 4 + 24 * segs.len());
            let mut d = Dec::new(&b);
            assert_eq!(dec_seg_list(&mut d).unwrap(), segs);
            assert_eq!(d.remaining(), 0);
        }
    }

    #[test]
    fn seg_list_truncation_and_bounds() {
        let mut e = Enc::new();
        enc_seg_list(&mut e, &[(5, 10, 0), (20, 30, 10)]);
        let b = e.finish();
        // Every truncated prefix must decode to an error, never panic.
        for cut in 0..b.len() {
            assert!(
                dec_seg_list(&mut Dec::new(&b[..cut])).is_err(),
                "truncation at {cut} decoded"
            );
        }
        // A count past LIST_MAX_SEGMENTS is rejected up front.
        let mut e = Enc::new();
        e.u32(LIST_MAX_SEGMENTS as u32 + 1);
        let b = e.finish();
        assert!(dec_seg_list(&mut Dec::new(&b)).is_err());
    }

    #[test]
    fn status_roundtrip_and_mapping() {
        for s in [
            DafsStatus::Ok,
            DafsStatus::NoEnt,
            DafsStatus::Stale,
            DafsStatus::NotDir,
            DafsStatus::IsDir,
            DafsStatus::Exists,
            DafsStatus::NotEmpty,
            DafsStatus::Inval,
            DafsStatus::XferError,
            DafsStatus::NotSupported,
        ] {
            assert_eq!(DafsStatus::from_u8(s as u8), s);
        }
        assert_eq!(DafsStatus::from(FsError::Exists), DafsStatus::Exists);
    }

    #[test]
    fn headers_roundtrip() {
        let mut e = Enc::new();
        enc_req_header(&mut e, 42, DafsOp::ReadDirect);
        let b = e.finish();
        let mut d = Dec::new(&b);
        assert_eq!(dec_req_header(&mut d).unwrap(), (42, DafsOp::ReadDirect));

        let mut e = Enc::new();
        enc_resp_header(&mut e, 42, DafsStatus::Stale);
        let b = e.finish();
        let mut d = Dec::new(&b);
        assert_eq!(dec_resp_header(&mut d).unwrap(), (42, DafsStatus::Stale));
    }

    #[test]
    fn attr_roundtrip() {
        let a = FileAttr {
            id: ROOT_ID,
            ftype: FileType::Directory,
            size: 0,
            version: 3,
            nlink: 2,
        };
        let mut e = Enc::new();
        enc_attr(&mut e, &a);
        let b = e.finish();
        assert_eq!(dec_attr(&mut Dec::new(&b)).unwrap(), a);
    }
}
