//! DAFS protocol: operation codes, status codes, attribute marshalling,
//! request/response headers.
//!
//! Modeled on the DAFS Collaborative 1.0 procedure set (`DAP_PROC_*`),
//! reduced to the operations the MPI-IO stack and its evaluation exercise.
//! Every request carries a session-local request id so responses can be
//! matched out of order (batch I/O pipelines several requests per session).

use memfs::{FileAttr, FileType, FsError, NodeId};

use crate::wire::{Dec, Enc, WireError};

/// DAFS procedure numbers (subset; values are stable within this repo).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum DafsOp {
    /// Fetch attributes.
    GetAttr = 1,
    /// Set attributes (truncate).
    SetAttr = 2,
    /// Directory lookup.
    Lookup = 3,
    /// Create a regular file.
    Create = 4,
    /// Remove a regular file.
    Remove = 5,
    /// Create a directory.
    Mkdir = 6,
    /// Remove an empty directory.
    Rmdir = 7,
    /// Rename.
    Rename = 8,
    /// List a directory.
    ReadDir = 9,
    /// Read with data inline in the response message.
    ReadInline = 10,
    /// Write with data inline in the request message.
    WriteInline = 11,
    /// Read with server-initiated RDMA Write into the client buffer.
    ReadDirect = 12,
    /// Write with server-initiated RDMA Read from the client buffer.
    WriteDirect = 13,
    /// Flush to stable storage.
    Flush = 14,
    /// Acquire a whole-file exclusive lock (blocks until granted).
    Lock = 15,
    /// Release a lock.
    Unlock = 16,
    /// End the session.
    Disconnect = 17,
    /// Session setup: exchange capabilities (first request on a session).
    /// The request body carries the client's stable id (u64) — the VI id
    /// of its first session — so the server can key its replay cache to
    /// the client across session reconnects.
    Hello = 18,
    /// Atomic append: write inline data at the current end of file,
    /// returning the offset it landed at (DAFS's append mode).
    Append = 19,
}

impl DafsOp {
    /// Parse from a wire value.
    pub fn from_u8(v: u8) -> Option<DafsOp> {
        Some(match v {
            1 => DafsOp::GetAttr,
            2 => DafsOp::SetAttr,
            3 => DafsOp::Lookup,
            4 => DafsOp::Create,
            5 => DafsOp::Remove,
            6 => DafsOp::Mkdir,
            7 => DafsOp::Rmdir,
            8 => DafsOp::Rename,
            9 => DafsOp::ReadDir,
            10 => DafsOp::ReadInline,
            11 => DafsOp::WriteInline,
            12 => DafsOp::ReadDirect,
            13 => DafsOp::WriteDirect,
            14 => DafsOp::Flush,
            15 => DafsOp::Lock,
            16 => DafsOp::Unlock,
            17 => DafsOp::Disconnect,
            18 => DafsOp::Hello,
            19 => DafsOp::Append,
            _ => return None,
        })
    }
}

/// DAFS status codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum DafsStatus {
    /// Success.
    Ok = 0,
    /// No such entry.
    NoEnt = 1,
    /// Stale handle.
    Stale = 2,
    /// Not a directory.
    NotDir = 3,
    /// Is a directory.
    IsDir = 4,
    /// Exists.
    Exists = 5,
    /// Directory not empty.
    NotEmpty = 6,
    /// Invalid argument / malformed request.
    Inval = 7,
    /// Transfer failed (e.g. remote protection error on direct I/O).
    XferError = 8,
    /// Operation not supported by this server (e.g. WRITE_DIRECT without
    /// RDMA Read capability).
    NotSupported = 9,
}

impl DafsStatus {
    /// Parse from a wire value.
    pub fn from_u8(v: u8) -> DafsStatus {
        match v {
            0 => DafsStatus::Ok,
            1 => DafsStatus::NoEnt,
            2 => DafsStatus::Stale,
            3 => DafsStatus::NotDir,
            4 => DafsStatus::IsDir,
            5 => DafsStatus::Exists,
            6 => DafsStatus::NotEmpty,
            8 => DafsStatus::XferError,
            9 => DafsStatus::NotSupported,
            _ => DafsStatus::Inval,
        }
    }
}

impl From<FsError> for DafsStatus {
    fn from(e: FsError) -> DafsStatus {
        match e {
            FsError::NotFound => DafsStatus::NoEnt,
            FsError::Stale => DafsStatus::Stale,
            FsError::NotDirectory => DafsStatus::NotDir,
            FsError::IsDirectory => DafsStatus::IsDir,
            FsError::Exists => DafsStatus::Exists,
            FsError::NotEmpty => DafsStatus::NotEmpty,
            FsError::InvalidName => DafsStatus::Inval,
        }
    }
}

/// Server capabilities advertised at session setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerCaps {
    /// Server NIC can perform RDMA Read (enables true WRITE_DIRECT).
    pub rdma_read: bool,
    /// Session credits granted.
    pub credits: u32,
    /// Largest inline payload the server accepts.
    pub inline_max: u64,
}

/// Encode a request header: (request id, op).
pub fn enc_req_header(e: &mut Enc, reqid: u32, op: DafsOp) {
    e.u32(reqid);
    e.u8(op as u8);
}

/// Decode a request header.
pub fn dec_req_header(d: &mut Dec) -> Result<(u32, DafsOp), WireError> {
    let reqid = d.u32()?;
    let op = DafsOp::from_u8(d.u8()?).ok_or(WireError)?;
    Ok((reqid, op))
}

/// Encode a response header: (request id, status).
pub fn enc_resp_header(e: &mut Enc, reqid: u32, status: DafsStatus) {
    e.u32(reqid);
    e.u8(status as u8);
}

/// Decode a response header.
pub fn dec_resp_header(d: &mut Dec) -> Result<(u32, DafsStatus), WireError> {
    Ok((d.u32()?, DafsStatus::from_u8(d.u8()?)))
}

/// Encode file attributes.
pub fn enc_attr(e: &mut Enc, a: &FileAttr) {
    e.u8(match a.ftype {
        FileType::Regular => 0,
        FileType::Directory => 1,
    });
    e.u64(a.id.0);
    e.u64(a.size);
    e.u64(a.version);
    e.u32(a.nlink);
}

/// Decode file attributes.
pub fn dec_attr(d: &mut Dec) -> Result<FileAttr, WireError> {
    let ftype = if d.u8()? == 0 {
        FileType::Regular
    } else {
        FileType::Directory
    };
    Ok(FileAttr {
        id: NodeId(d.u64()?),
        size: d.u64()?,
        version: d.u64()?,
        nlink: d.u32()?,
        ftype,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use memfs::ROOT_ID;

    #[test]
    fn op_roundtrip() {
        for v in 1..=19u8 {
            let op = DafsOp::from_u8(v).unwrap();
            assert_eq!(op as u8, v);
        }
        assert_eq!(DafsOp::from_u8(0), None);
        assert_eq!(DafsOp::from_u8(20), None);
    }

    #[test]
    fn status_roundtrip_and_mapping() {
        for s in [
            DafsStatus::Ok,
            DafsStatus::NoEnt,
            DafsStatus::Stale,
            DafsStatus::NotDir,
            DafsStatus::IsDir,
            DafsStatus::Exists,
            DafsStatus::NotEmpty,
            DafsStatus::Inval,
            DafsStatus::XferError,
            DafsStatus::NotSupported,
        ] {
            assert_eq!(DafsStatus::from_u8(s as u8), s);
        }
        assert_eq!(DafsStatus::from(FsError::Exists), DafsStatus::Exists);
    }

    #[test]
    fn headers_roundtrip() {
        let mut e = Enc::new();
        enc_req_header(&mut e, 42, DafsOp::ReadDirect);
        let b = e.finish();
        let mut d = Dec::new(&b);
        assert_eq!(dec_req_header(&mut d).unwrap(), (42, DafsOp::ReadDirect));

        let mut e = Enc::new();
        enc_resp_header(&mut e, 42, DafsStatus::Stale);
        let b = e.finish();
        let mut d = Dec::new(&b);
        assert_eq!(dec_resp_header(&mut d).unwrap(), (42, DafsStatus::Stale));
    }

    #[test]
    fn attr_roundtrip() {
        let a = FileAttr {
            id: ROOT_ID,
            ftype: FileType::Directory,
            size: 0,
            version: 3,
            nlink: 2,
        };
        let mut e = Enc::new();
        enc_attr(&mut e, &a);
        let b = e.finish();
        assert_eq!(dec_attr(&mut Dec::new(&b)).unwrap(), a);
    }
}
