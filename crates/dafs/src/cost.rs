//! DAFS cost model and tunables.

use simnet::cost::HostCost;
use simnet::time::units::*;
use simnet::SimDuration;

/// Server-side cost constants.
#[derive(Debug, Clone, Copy)]
pub struct DafsServerCost {
    /// Fixed request dispatch + filesystem cost per operation. DAFS server
    /// prototypes ran a lean user-level event loop, well under the kernel
    /// RPC path's cost.
    pub per_op: SimDuration,
    /// Stable-storage flush (FLUSH op, synchronous creates). NVRAM-backed.
    pub sync: SimDuration,
    /// Whether the server's buffer cache is registered with the NIC. When
    /// true (NetApp-prototype style), direct transfers DMA straight from
    /// cache pages and the server pays no data copy; when false, the server
    /// pays one copy into a registered staging buffer.
    pub registered_buffer_cache: bool,
    /// Host primitives.
    pub host: HostCost,
}

impl Default for DafsServerCost {
    fn default() -> Self {
        DafsServerCost {
            per_op: us(9),
            sync: us(30),
            registered_buffer_cache: true,
            host: HostCost::default(),
        }
    }
}

/// Client-side configuration and cost constants.
#[derive(Debug, Clone, Copy)]
pub struct DafsClientConfig {
    /// Session credits: receive descriptors pre-posted per side; also the
    /// pipeline depth available to batch I/O.
    pub credits: u32,
    /// Largest payload carried inline in a single message (must fit the
    /// VI's 64 KiB MTU with headers).
    pub inline_max: u64,
    /// Requests strictly larger than this use direct (RDMA) transfer;
    /// smaller ones go inline. The paper-family's central tunable.
    pub direct_threshold: u64,
    /// Enable the client registration cache for direct-I/O buffers.
    pub use_regcache: bool,
    /// Registration cache capacity in bytes (evicts LRU beyond this).
    pub regcache_capacity: u64,
    /// Client CPU per request (build + parse, beyond VIA posting costs).
    pub per_op: SimDuration,
    /// Host primitives (the inline-path copies).
    pub host: HostCost,
    /// Session re-establishment attempts after a transport failure before
    /// the error surfaces to the caller. Only exercised when the fabric
    /// carries a fault plan — a lossless fabric never breaks a session.
    pub max_reconnects: u32,
    /// Delay before the first reconnect attempt; doubles on each
    /// subsequent attempt (so the default 1 ms rides out ~250 ms of server
    /// downtime across 8 attempts).
    pub reconnect_backoff: SimDuration,
    /// Page size of the lease-coherent client cache. The cache itself is
    /// strictly opt-in: only the `*_cached` entry points touch it, so a
    /// session that never calls them is byte-identical to one without it.
    pub cache_page: u64,
    /// Client cache capacity in pages; clean pages evict lowest-offset
    /// first beyond this.
    pub cache_capacity: usize,
    /// Request write-back leases for cached writes: dirty pages buffer at
    /// the client until flush, recall, or close. Off by default — cached
    /// writes then write through under the read lease.
    pub cache_write_back: bool,
    /// QoS tenant declaration `(tenant id, weight)` carried in the session
    /// `Hello`. `None` (default) declares nothing — the session schedules
    /// as best-effort and the Hello wire bytes are unchanged. Only a server
    /// running a fairness policy acts on the weight.
    pub tenant: Option<(u64, u32)>,
}

impl Default for DafsClientConfig {
    fn default() -> Self {
        DafsClientConfig {
            credits: 8,
            inline_max: 32 << 10,
            direct_threshold: 8 << 10,
            use_regcache: true,
            regcache_capacity: 64 << 20,
            per_op: us(4),
            host: HostCost::default(),
            max_reconnects: 8,
            reconnect_backoff: ms(1),
            cache_page: 4 << 10,
            cache_capacity: 1024,
            cache_write_back: false,
            tenant: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        let c = DafsClientConfig::default();
        assert!(c.direct_threshold <= c.inline_max);
        assert!(c.inline_max <= 64 << 10);
        assert!(c.credits >= 1);
        let s = DafsServerCost::default();
        assert!(s.per_op < us(20), "DAFS per-op must undercut NFS's 20us");
    }
}
