//! Round-robin striping of one logical file across several DAFS servers.
//!
//! The paper measures a single server; the striped driver is the scaling
//! step beyond it (ViPIOS-style data distribution over I/O server
//! processes). A [`DafsStripedFile`] holds one established session per
//! server plus the per-server piece file, and round-robin stripes fixed
//! `stripe_size` blocks of the logical byte stream across the servers:
//! logical block `g` (bytes `[g*stripe, (g+1)*stripe)`) lives on server
//! `g % n` at local block index `g / n`. Each server therefore stores a
//! dense local **piece file** — no holes — which keeps per-server space
//! accounting and truncation exact.
//!
//! Data ops decompose a contiguous logical range into per-server pieces
//! and fan them out through the per-session batch machinery
//! ([`DafsClient::read_batch_begin`] et al.), so every server's credit
//! window fills at issue time and the servers stream concurrently. A range
//! that lands on a single server (always the case for one server, since
//! the local offsets then equal the logical offsets) delegates straight to
//! the session's synchronous [`DafsClient::read`]/[`DafsClient::write`] —
//! byte- and timing-identical to the unstriped client.

use std::sync::Arc;

use memfs::NodeId;
use simnet::{ActorCtx, VirtAddr};

use crate::client::{DafsBatch, DafsClient, DafsResult, ListReq, ReadReq, WriteReq};
use crate::proto::ListSeg;

/// One contiguous fragment of a logical range on one server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Piece {
    /// Server index.
    server: usize,
    /// Offset in the server's local piece file.
    local: u64,
    /// Offset of this fragment within the caller's buffer.
    rel: u64,
    /// Fragment length in bytes.
    len: u64,
}

/// Decompose the contiguous logical range `[off, off+len)` over `n`
/// servers with `stripe`-byte blocks, in stream order. Adjacent fragments
/// that stay on one server with contiguous local and buffer offsets are
/// merged, so a single-server layout yields exactly one piece.
fn split_range(n: u64, stripe: u64, off: u64, len: u64) -> Vec<Piece> {
    let mut out: Vec<Piece> = Vec::new();
    let mut cur = off;
    let end = off + len;
    while cur < end {
        let g = cur / stripe;
        let within = cur % stripe;
        let take = (stripe - within).min(end - cur);
        let piece = Piece {
            server: (g % n) as usize,
            local: (g / n) * stripe + within,
            rel: cur - off,
            len: take,
        };
        match out.last_mut() {
            Some(p)
                if p.server == piece.server
                    && p.local + p.len == piece.local
                    && p.rel + p.len == piece.rel =>
            {
                p.len += take;
            }
            _ => out.push(piece),
        }
        cur += take;
    }
    out
}

/// Logical end of a `piece`-byte piece file on server `s`: its last byte
/// sits in logical block `((piece-1)/stripe)*n + s`, at offset
/// `(piece-1) % stripe` within it.
fn logical_end(n: u64, stripe: u64, s: u64, piece: u64) -> u64 {
    if piece == 0 {
        return 0;
    }
    let last = piece - 1;
    ((last / stripe) * n + s) * stripe + last % stripe + 1
}

/// Server `s`'s piece-file length for a logical file of `size` bytes: with
/// `full = size / stripe` whole blocks round-robined, server `s` holds
/// `full/n` of them (+1 when `s < full % n`), and the partial tail block
/// of `size % stripe` bytes lands on server `full % n`.
fn piece_len(n: u64, stripe: u64, s: u64, size: u64) -> u64 {
    let full = size / stripe;
    let rem = size % stripe;
    let mut piece = (full / n + u64::from(s < full % n)) * stripe;
    if rem > 0 && s == full % n {
        piece += rem;
    }
    piece
}

/// Split a sorted logical segment list over `n` servers with `stripe`-byte
/// blocks into per-server lists of `(local_off, len, buf_rel)` segments,
/// merging fragments contiguous on both axes. See
/// [`DafsStripedFile::split_list`] for the invariants.
fn split_seg_list(n: u64, stripe: u64, segs: &[ListSeg]) -> Vec<Vec<ListSeg>> {
    let mut per: Vec<Vec<ListSeg>> = vec![Vec::new(); n as usize];
    for &(off, len, rel) in segs {
        for p in split_range(n, stripe, off, len) {
            let frag = (p.local, p.len, rel + p.rel);
            match per[p.server].last_mut() {
                Some(prev) if prev.0 + prev.1 == frag.0 && prev.2 + prev.1 == frag.2 => {
                    prev.1 += frag.1;
                }
                _ => per[p.server].push(frag),
            }
        }
    }
    per
}

/// Packed-layout segment list for `(offset, len)` ranges: buffer offsets
/// are the running prefix sums, mirroring [`ListReq::packed`].
fn packed_segs(ranges: &[(u64, u64)]) -> Vec<ListSeg> {
    let mut rel = 0u64;
    ranges
        .iter()
        .map(|&(off, len)| {
            let s = (off, len, rel);
            rel += len;
            s
        })
        .collect()
}

/// An in-flight striped batch: at most one per [`DafsStripedFile`] (each
/// underlying session allows one outstanding [`DafsBatch`]).
pub struct DafsStripedBatch {
    per_server: Vec<Option<DafsBatch>>,
}

impl DafsStripedBatch {
    /// Sub-requests posted but not yet retired, across all servers.
    pub fn in_flight(&self) -> usize {
        self.per_server
            .iter()
            .flatten()
            .map(|b| b.in_flight())
            .sum()
    }
}

/// One logical file striped over N DAFS sessions.
pub struct DafsStripedFile {
    clients: Vec<Arc<DafsClient>>,
    /// Per-server piece file (same index as `clients`).
    fhs: Vec<NodeId>,
    stripe: u64,
}

impl DafsStripedFile {
    /// Assemble a striped file from established sessions and the
    /// per-server piece-file handles (one per server, same order).
    pub fn new(
        clients: Vec<Arc<DafsClient>>,
        fhs: Vec<NodeId>,
        stripe_size: u64,
    ) -> DafsStripedFile {
        assert!(
            !clients.is_empty(),
            "striped file needs at least one server"
        );
        assert_eq!(clients.len(), fhs.len(), "one piece file per server");
        assert!(stripe_size > 0, "stripe size must be nonzero");
        DafsStripedFile {
            clients,
            fhs,
            stripe: stripe_size,
        }
    }

    /// Number of servers the file stripes over.
    pub fn servers(&self) -> usize {
        self.clients.len()
    }

    /// The stripe (block) size in bytes.
    pub fn stripe_size(&self) -> u64 {
        self.stripe
    }

    /// The session for server `s` (bench harnesses use this for stats).
    pub fn client(&self, s: usize) -> &Arc<DafsClient> {
        &self.clients[s]
    }

    /// Decompose the contiguous logical range `[off, off+len)` into
    /// per-server pieces, in stream order.
    fn split(&self, off: u64, len: u64) -> Vec<Piece> {
        split_range(self.clients.len() as u64, self.stripe, off, len)
    }

    /// Group pieces into per-server request lists, preserving stream order
    /// within each server. Returns `(per-server indices into pieces)`.
    fn per_server<'a>(&self, pieces: &'a [Piece]) -> Vec<Vec<&'a Piece>> {
        let mut by_server: Vec<Vec<&Piece>> = vec![Vec::new(); self.clients.len()];
        for p in pieces {
            by_server[p.server].push(p);
        }
        by_server
    }

    /// Split a sorted logical segment list into per-server segment lists:
    /// each logical segment decomposes into stripe fragments whose local
    /// offsets index the server's piece file and whose buffer offsets are
    /// inherited from the logical segment. Fragments that stay contiguous
    /// on both axes (piece file and buffer) are merged, so a 1-server
    /// layout reproduces the logical list exactly. Per-server lists come
    /// out sorted on both axes because the logical→local map is monotone
    /// for a fixed server.
    fn split_list(&self, segs: &[ListSeg]) -> Vec<Vec<ListSeg>> {
        split_seg_list(self.clients.len() as u64, self.stripe, segs)
    }

    /// Read `len` logical bytes at `off` into `dst`. Returns bytes read in
    /// stream order (short at the logical EOF).
    pub fn read(&self, ctx: &ActorCtx, off: u64, dst: VirtAddr, len: u64) -> DafsResult<u64> {
        let pieces = self.split(off, len);
        if let [p] = pieces.as_slice() {
            // Single server: delegate — identical op stream to an
            // unstriped session.
            return self.clients[p.server].read(ctx, self.fhs[p.server], p.local, dst, p.len);
        }
        let mut counts = vec![0u64; pieces.len()];
        {
            let by_server = self.per_server(&pieces);
            let mut batches: Vec<Option<DafsBatch>> = Vec::with_capacity(self.clients.len());
            // Issue every server's batch before finishing any, so all
            // credit windows fill and the servers stream concurrently.
            for (s, ps) in by_server.iter().enumerate() {
                if ps.is_empty() {
                    batches.push(None);
                    continue;
                }
                let reqs: Vec<ReadReq> = ps
                    .iter()
                    .map(|p| ReadReq {
                        fh: self.fhs[s],
                        off: p.local,
                        dst: dst.offset(p.rel),
                        len: p.len,
                    })
                    .collect();
                batches.push(Some(self.clients[s].read_batch_begin(ctx, &reqs)));
            }
            for (s, b) in batches.into_iter().enumerate() {
                let Some(b) = b else { continue };
                let rs = self.clients[s].batch_finish(ctx, b);
                let mut it = rs.into_iter();
                for (pi, p) in pieces.iter().enumerate() {
                    if p.server == s {
                        counts[pi] = it.next().expect("one result per sub-request")?;
                    }
                }
            }
        }
        // Stream-order total: stop counting at the first short piece (a
        // hole past the logical EOF).
        let mut total = 0;
        for (pi, p) in pieces.iter().enumerate() {
            total += counts[pi];
            if counts[pi] < p.len {
                break;
            }
        }
        Ok(total)
    }

    /// Read `len` logical bytes at `off` through each server's
    /// lease-coherent client cache ([`DafsClient::read_cached`]). Pieces go
    /// out sequentially rather than through the batch machinery: the cached
    /// path targets small re-read traffic where hits are local memory
    /// copies, so there is no credit window worth overlapping. Returns
    /// bytes read in stream order (short at the logical EOF).
    pub fn read_cached(
        &self,
        ctx: &ActorCtx,
        off: u64,
        dst: VirtAddr,
        len: u64,
    ) -> DafsResult<u64> {
        let mut total = 0;
        for p in self.split(off, len) {
            let n = self.clients[p.server].read_cached(
                ctx,
                self.fhs[p.server],
                p.local,
                dst.offset(p.rel),
                p.len,
            )?;
            total += n;
            if n < p.len {
                break;
            }
        }
        Ok(total)
    }

    /// Write `len` logical bytes at `off` from `src` through each server's
    /// client cache ([`DafsClient::write_cached`]); with write-back off
    /// this writes through, only keeping the cache coherent.
    pub fn write_cached(
        &self,
        ctx: &ActorCtx,
        off: u64,
        src: VirtAddr,
        len: u64,
    ) -> DafsResult<()> {
        for p in self.split(off, len) {
            self.clients[p.server].write_cached(
                ctx,
                self.fhs[p.server],
                p.local,
                src.offset(p.rel),
                p.len,
            )?;
        }
        Ok(())
    }

    /// Write `len` logical bytes at `off` from `src`.
    pub fn write(&self, ctx: &ActorCtx, off: u64, src: VirtAddr, len: u64) -> DafsResult<()> {
        let pieces = self.split(off, len);
        if let [p] = pieces.as_slice() {
            return self.clients[p.server]
                .write(ctx, self.fhs[p.server], p.local, src, p.len)
                .map(|_| ());
        }
        let by_server = self.per_server(&pieces);
        let mut batches: Vec<Option<DafsBatch>> = Vec::with_capacity(self.clients.len());
        for (s, ps) in by_server.iter().enumerate() {
            if ps.is_empty() {
                batches.push(None);
                continue;
            }
            let reqs: Vec<WriteReq> = ps
                .iter()
                .map(|p| WriteReq {
                    fh: self.fhs[s],
                    off: p.local,
                    src: src.offset(p.rel),
                    len: p.len,
                })
                .collect();
            batches.push(Some(self.clients[s].write_batch_begin(ctx, &reqs)));
        }
        let mut first_err = None;
        for (s, b) in batches.into_iter().enumerate() {
            let Some(b) = b else { continue };
            for r in self.clients[s].batch_finish(ctx, b) {
                if let (Err(e), None) = (r, &first_err) {
                    first_err = Some(e);
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    // ----- split-phase batch path -----------------------------------------

    /// Issue a batch of logical-range reads across all servers and return
    /// immediately; every server's credit window is filled before the
    /// first completion is awaited, so window drains overlap across
    /// servers. At most one striped batch may be outstanding per file.
    pub fn read_batch_begin(
        &self,
        ctx: &ActorCtx,
        reqs: &[(u64, VirtAddr, u64)],
    ) -> DafsStripedBatch {
        let mut per: Vec<Vec<ReadReq>> = vec![Vec::new(); self.clients.len()];
        for (off, dst, len) in reqs {
            for p in self.split(*off, *len) {
                per[p.server].push(ReadReq {
                    fh: self.fhs[p.server],
                    off: p.local,
                    dst: dst.offset(p.rel),
                    len: p.len,
                });
            }
        }
        DafsStripedBatch {
            per_server: per
                .into_iter()
                .enumerate()
                .map(|(s, rs)| (!rs.is_empty()).then(|| self.clients[s].read_batch_begin(ctx, &rs)))
                .collect(),
        }
    }

    /// Issue a batch of logical-range writes across all servers; the
    /// split-phase write analogue of [`DafsStripedFile::read_batch_begin`].
    pub fn write_batch_begin(
        &self,
        ctx: &ActorCtx,
        reqs: &[(u64, VirtAddr, u64)],
    ) -> DafsStripedBatch {
        let mut per: Vec<Vec<WriteReq>> = vec![Vec::new(); self.clients.len()];
        for (off, src, len) in reqs {
            for p in self.split(*off, *len) {
                per[p.server].push(WriteReq {
                    fh: self.fhs[p.server],
                    off: p.local,
                    src: src.offset(p.rel),
                    len: p.len,
                });
            }
        }
        DafsStripedBatch {
            per_server: per
                .into_iter()
                .enumerate()
                .map(|(s, ws)| {
                    (!ws.is_empty()).then(|| self.clients[s].write_batch_begin(ctx, &ws))
                })
                .collect(),
        }
    }

    // ----- vectored (list) data path --------------------------------------

    /// Issue a batch of vectored reads: each request is a sorted logical
    /// segment list plus the client buffer its `rel` offsets index. The
    /// list splits into one per-server [`ListReq`] per request (stripe
    /// fragments merged where contiguous), and every server's credit
    /// window fills before any completion is awaited.
    pub fn read_list_batch_begin(
        &self,
        ctx: &ActorCtx,
        reqs: &[(Vec<ListSeg>, VirtAddr)],
    ) -> DafsStripedBatch {
        let mut per: Vec<Vec<ListReq>> = vec![Vec::new(); self.clients.len()];
        for (segs, buf) in reqs {
            for (s, local) in self.split_list(segs).into_iter().enumerate() {
                if !local.is_empty() {
                    per[s].push(ListReq {
                        fh: self.fhs[s],
                        segs: local,
                        buf: *buf,
                    });
                }
            }
        }
        DafsStripedBatch {
            per_server: per
                .into_iter()
                .enumerate()
                .map(|(s, rs)| {
                    (!rs.is_empty()).then(|| self.clients[s].read_list_batch_begin(ctx, &rs))
                })
                .collect(),
        }
    }

    /// Issue a batch of vectored writes; the write analogue of
    /// [`DafsStripedFile::read_list_batch_begin`].
    pub fn write_list_batch_begin(
        &self,
        ctx: &ActorCtx,
        reqs: &[(Vec<ListSeg>, VirtAddr)],
    ) -> DafsStripedBatch {
        let mut per: Vec<Vec<ListReq>> = vec![Vec::new(); self.clients.len()];
        for (segs, buf) in reqs {
            for (s, local) in self.split_list(segs).into_iter().enumerate() {
                if !local.is_empty() {
                    per[s].push(ListReq {
                        fh: self.fhs[s],
                        segs: local,
                        buf: *buf,
                    });
                }
            }
        }
        DafsStripedBatch {
            per_server: per
                .into_iter()
                .enumerate()
                .map(|(s, ws)| {
                    (!ws.is_empty()).then(|| self.clients[s].write_list_batch_begin(ctx, &ws))
                })
                .collect(),
        }
    }

    /// Vectored read of sorted logical `(offset, len)` ranges into `dst`,
    /// packed back to back. Returns total bytes read across all servers
    /// (at the logical EOF, the missing tail simply doesn't land).
    pub fn read_list(
        &self,
        ctx: &ActorCtx,
        ranges: &[(u64, u64)],
        dst: VirtAddr,
    ) -> DafsResult<u64> {
        let segs = packed_segs(ranges);
        let b = self.read_list_batch_begin(ctx, &[(segs, dst)]);
        self.batch_finish(ctx, b)
    }

    /// Vectored write of sorted logical `(offset, len)` ranges from `src`,
    /// packed back to back. Returns total bytes written.
    pub fn write_list(
        &self,
        ctx: &ActorCtx,
        ranges: &[(u64, u64)],
        src: VirtAddr,
    ) -> DafsResult<u64> {
        let segs = packed_segs(ranges);
        let b = self.write_list_batch_begin(ctx, &[(segs, src)]);
        self.batch_finish(ctx, b)
    }

    /// Nonblocking progress poll: retires completions that already arrived
    /// on every server (freeing credits for queued sub-requests) and
    /// returns true once the whole striped batch is drained.
    pub fn batch_test(&self, ctx: &ActorCtx, b: &mut DafsStripedBatch) -> bool {
        let mut done = true;
        for (s, ob) in b.per_server.iter_mut().enumerate() {
            if let Some(batch) = ob {
                if !self.clients[s].batch_test(ctx, batch) {
                    done = false;
                }
            }
        }
        done
    }

    /// Block until every server's half of the batch completes; returns
    /// total bytes transferred (first error wins). Finishing is sequential
    /// per server, but each server's window was posted at begin time, so
    /// waiting on server 0 overlaps with servers 1..N streaming.
    pub fn batch_finish(&self, ctx: &ActorCtx, b: DafsStripedBatch) -> DafsResult<u64> {
        let mut total = 0;
        let mut first_err = None;
        for (s, ob) in b.per_server.into_iter().enumerate() {
            let Some(batch) = ob else { continue };
            for r in self.clients[s].batch_finish(ctx, batch) {
                match (r, &first_err) {
                    (Ok(n), _) => total += n,
                    (Err(e), None) => first_err = Some(e),
                    (Err(_), Some(_)) => {}
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(total),
        }
    }

    // ----- metadata -------------------------------------------------------

    /// Logical file size: the inverse of the block map — the maximum
    /// logical end over the servers' piece files.
    pub fn get_size(&self, ctx: &ActorCtx) -> DafsResult<u64> {
        let n = self.clients.len() as u64;
        let mut size = 0u64;
        for (s, c) in self.clients.iter().enumerate() {
            let p = c.getattr(ctx, self.fhs[s])?.size;
            size = size.max(logical_end(n, self.stripe, s as u64, p));
        }
        Ok(size)
    }

    /// Logical file size via each server's lease-coherent attribute cache
    /// ([`DafsClient::getattr_cached`]): with leases held, a size poll is a
    /// pure local lookup on every server.
    pub fn get_size_cached(&self, ctx: &ActorCtx) -> DafsResult<u64> {
        let n = self.clients.len() as u64;
        let mut size = 0u64;
        for (s, c) in self.clients.iter().enumerate() {
            let p = c.getattr_cached(ctx, self.fhs[s])?.size;
            size = size.max(logical_end(n, self.stripe, s as u64, p));
        }
        Ok(size)
    }

    /// Flush every server's dirty write-back pages through its session's
    /// coalesced `WriteList` path ([`DafsClient::cache_sync`]); each
    /// server ships only its own stripe fragments, so the batching splits
    /// per server exactly like the raw striped write fan-out. Returns the
    /// total pages flushed across servers — zero means no wire traffic.
    pub fn cache_sync(&self, ctx: &ActorCtx) -> DafsResult<u64> {
        let mut flushed = 0;
        for c in &self.clients {
            flushed += c.cache_sync(ctx)?;
        }
        Ok(flushed)
    }

    /// Flush dirty cached pages and release every server's leases on this
    /// file (close-time hygiene for cached sessions).
    pub fn cache_release(&self, ctx: &ActorCtx) -> DafsResult<()> {
        for (s, c) in self.clients.iter().enumerate() {
            c.cache_release(ctx, self.fhs[s])?;
        }
        Ok(())
    }

    /// Truncate / extend the logical file to `size` bytes by truncating
    /// each server's piece file to its share of the block map.
    pub fn set_size(&self, ctx: &ActorCtx, size: u64) -> DafsResult<()> {
        let n = self.clients.len() as u64;
        for (s, c) in self.clients.iter().enumerate() {
            c.truncate(ctx, self.fhs[s], piece_len(n, self.stripe, s as u64, size))?;
        }
        Ok(())
    }

    /// Flush every server's piece file.
    pub fn flush(&self, ctx: &ActorCtx) -> DafsResult<()> {
        for (s, c) in self.clients.iter().enumerate() {
            c.flush(ctx, self.fhs[s])?;
        }
        Ok(())
    }

    /// Whole-file lock: server 0 is the lock authority (every client locks
    /// through the same server, so the lock is global).
    pub fn lock(&self, ctx: &ActorCtx) -> DafsResult<()> {
        self.clients[0].lock(ctx, self.fhs[0])
    }

    /// Release the whole-file lock.
    pub fn unlock(&self, ctx: &ActorCtx) -> DafsResult<()> {
        self.clients[0].unlock(ctx, self.fhs[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Stripe math only; the data paths are covered by the integration
    /// tests in `mpiio` and the R-F8 experiment.
    fn split_for(n: usize, stripe: u64, off: u64, len: u64) -> Vec<(usize, u64, u64, u64)> {
        split_range(n as u64, stripe, off, len)
            .into_iter()
            .map(|p| (p.server, p.local, p.rel, p.len))
            .collect()
    }

    #[test]
    fn single_server_is_one_identity_piece() {
        assert_eq!(split_for(1, 4096, 0, 20_000), vec![(0, 0, 0, 20_000)]);
        assert_eq!(split_for(1, 4096, 777, 5000), vec![(0, 777, 0, 5000)]);
    }

    #[test]
    fn two_servers_alternate_blocks() {
        // Blocks 0,2 → server 0 local blocks 0,1; blocks 1,3 → server 1.
        assert_eq!(
            split_for(2, 100, 0, 400),
            vec![
                (0, 0, 0, 100),
                (1, 0, 100, 100),
                (0, 100, 200, 100),
                (1, 100, 300, 100),
            ]
        );
        // Unaligned start and end.
        assert_eq!(
            split_for(2, 100, 150, 100),
            vec![(1, 50, 0, 50), (0, 100, 50, 50)]
        );
    }

    #[test]
    fn size_math_round_trips() {
        for n in 1u64..=4 {
            for stripe in [1u64, 7, 100, 4096] {
                for size in [0u64, 1, 99, 100, 101, 350, 4096, 12_345] {
                    let pieces: Vec<u64> = (0..n).map(|s| piece_len(n, stripe, s, size)).collect();
                    // Pieces partition the logical bytes exactly.
                    assert_eq!(
                        pieces.iter().sum::<u64>(),
                        size,
                        "n={n} stripe={stripe} size={size}"
                    );
                    // And the inverse map recovers the logical size.
                    let recovered = (0..n)
                        .map(|s| logical_end(n, stripe, s, pieces[s as usize]))
                        .max()
                        .unwrap();
                    assert_eq!(recovered, size, "n={n} stripe={stripe} size={size}");
                }
            }
        }
    }

    #[test]
    fn seg_list_split_merges_and_preserves_order() {
        // Two logical segments over 2 servers, stripe 100 (block g lives on
        // server g%2 at local block g/2):
        //   (50, 100, 0): logical 50..100 is block 0 → s0 local 50, rel 0;
        //                 100..150 is block 1 → s1 local 0, rel 50.
        //   (250, 150, 200): 250..300 is block 2 → s0 local 150, rel 200;
        //                    300..400 is block 3 → s1 local 100, rel 250.
        let per = split_seg_list(2, 100, &[(50, 100, 0), (250, 150, 200)]);
        assert_eq!(per[0], vec![(50, 50, 0), (150, 50, 200)]);
        assert_eq!(per[1], vec![(0, 50, 50), (100, 100, 250)]);
        // Single server: the logical list is reproduced exactly (identity),
        // including the merge of stripe-adjacent fragments.
        let per1 = split_seg_list(1, 100, &[(50, 100, 0), (250, 150, 200)]);
        assert_eq!(per1[0], vec![(50, 100, 0), (250, 150, 200)]);
        // A segment whose fragments land back on the same server with
        // contiguous local+buffer offsets merges into one wire segment.
        // n=2 stripe=100, logical [0,400): s0 gets blocks 0,2 → two
        // fragments (local 0..100, 100..200) with buffer rels 0 and 200 —
        // NOT merged (buffer gap). But over n=1 it's one segment.
        let per2 = split_seg_list(2, 100, &[(0, 400, 0)]);
        assert_eq!(per2[0], vec![(0, 100, 0), (100, 100, 200)]);
        assert_eq!(per2[1], vec![(0, 100, 100), (100, 100, 300)]);
    }

    #[test]
    fn seg_list_split_is_sorted_and_tiles() {
        // Randomized-ish strided lists: per-server output must stay sorted
        // ascending non-overlapping on both axes and tile the input bytes.
        for n in [1u64, 2, 3, 4] {
            for stripe in [64u64, 100, 4096] {
                let segs: Vec<ListSeg> = (0..40u64)
                    .map(|i| {
                        (
                            i * 3 * stripe / 2 + 13,
                            stripe / 2 + 7,
                            i * (stripe / 2 + 7),
                        )
                    })
                    .collect();
                let per = split_seg_list(n, stripe, &segs);
                let total_in: u64 = segs.iter().map(|s| s.1).sum();
                let mut total_out = 0u64;
                for (s, list) in per.iter().enumerate() {
                    assert!(
                        crate::proto::list_well_formed(list),
                        "server {s} list not sorted (n={n} stripe={stripe})"
                    );
                    total_out += list.iter().map(|s| s.1).sum::<u64>();
                }
                assert_eq!(total_out, total_in, "n={n} stripe={stripe}");
            }
        }
    }

    #[test]
    fn pieces_tile_the_range_exactly() {
        for n in [1usize, 2, 3, 4] {
            for (off, len) in [(0u64, 1000u64), (37, 1), (99, 301), (256, 4096)] {
                let ps = split_for(n, 128, off, len);
                let total: u64 = ps.iter().map(|p| p.3).sum();
                assert_eq!(total, len, "n={n} off={off} len={len}");
                // rel offsets are dense and in order.
                let mut rel = 0;
                for p in &ps {
                    assert_eq!(p.2, rel, "n={n} off={off} len={len}");
                    rel += p.3;
                }
            }
        }
    }
}
