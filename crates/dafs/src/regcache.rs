//! The client-side memory-registration cache.
//!
//! Registering memory with the VIA NIC costs tens of microseconds (pin +
//! translation-table update), which would dominate direct I/O if paid per
//! request. The cache keeps buffers registered across requests and evicts
//! least-recently-used registrations when the pinned-byte budget is
//! exceeded — the standard technique in VIA/InfiniBand middleware, and one
//! of the knobs the evaluation ablates (R-T5).

use std::collections::HashMap;

use parking_lot::Mutex;
use simnet::{ActorCtx, Counter, VirtAddr};
use via::{MemAttributes, MemHandle, ProtectionTag, ViaNic};

struct Entry {
    base: VirtAddr,
    len: u64,
    handle: MemHandle,
    last_use: u64,
}

struct CacheState {
    /// Keyed by base address; containment queries scan (few live buffers in
    /// practice — MPI-IO reuses its transfer buffers).
    entries: HashMap<u64, Entry>,
    pinned: u64,
    tick: u64,
}

/// An LRU cache of live NIC registrations.
pub struct RegCache {
    nic: ViaNic,
    /// The session's protection tag; swapped by [`RegCache::retarget`] when
    /// the session reconnects (the new VI carries a new tag).
    ptag: Mutex<ProtectionTag>,
    attrs_for: fn(ProtectionTag) -> MemAttributes,
    capacity: u64,
    enabled: bool,
    state: Mutex<CacheState>,
    /// Cache hits (no registration performed).
    pub hits: Counter,
    /// Cache misses (a registration was performed).
    pub misses: Counter,
    /// Evictions (a registration was torn down for capacity).
    pub evictions: Counter,
}

impl RegCache {
    /// Create a cache over `nic` registering with `ptag`. `attrs_for`
    /// selects the registration rights (DAFS clients register direct-I/O
    /// buffers as RDMA-write targets and, where supported, read sources).
    pub fn new(
        nic: ViaNic,
        ptag: ProtectionTag,
        attrs_for: fn(ProtectionTag) -> MemAttributes,
        capacity: u64,
        enabled: bool,
    ) -> RegCache {
        RegCache {
            nic,
            ptag: Mutex::new(ptag),
            attrs_for,
            capacity,
            enabled,
            state: Mutex::new(CacheState {
                entries: HashMap::new(),
                pinned: 0,
                tick: 0,
            }),
            hits: Counter::new(),
            misses: Counter::new(),
            evictions: Counter::new(),
        }
    }

    /// Obtain a registration covering `[addr, addr+len)`. Returns the
    /// handle and, when the cache is disabled, a token obliging the caller
    /// to [`release`](RegCache::release) it.
    pub fn acquire(&self, ctx: &ActorCtx, addr: VirtAddr, len: u64) -> (MemHandle, bool) {
        let ptag = *self.ptag.lock();
        if !self.enabled {
            self.misses.inc();
            ctx.metrics().counter("dafs.regcache.misses").inc();
            let h = self
                .nic
                .register_mem(ctx, addr, len, (self.attrs_for)(ptag));
            return (h, true);
        }
        let mut st = self.state.lock();
        st.tick += 1;
        let tick = st.tick;
        // Containment: any cached entry covering the range?
        for e in st.entries.values_mut() {
            if addr >= e.base && addr.as_u64() + len <= e.base.as_u64() + e.len {
                e.last_use = tick;
                self.hits.inc();
                ctx.metrics().counter("dafs.regcache.hits").inc();
                return (e.handle, false);
            }
        }
        self.misses.inc();
        ctx.metrics().counter("dafs.regcache.misses").inc();
        // Evict LRU entries until the new buffer fits.
        while st.pinned + len > self.capacity && !st.entries.is_empty() {
            let lru = *st
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_use)
                .map(|(k, _)| k)
                .unwrap();
            let e = st.entries.remove(&lru).unwrap();
            st.pinned -= e.len;
            self.evictions.inc();
            ctx.metrics().counter("dafs.regcache.evictions").inc();
            self.nic
                .deregister_mem(ctx, e.handle)
                .expect("cache entry must be live");
        }
        let handle = self
            .nic
            .register_mem(ctx, addr, len, (self.attrs_for)(ptag));
        st.pinned += len;
        st.entries.insert(
            addr.as_u64(),
            Entry {
                base: addr,
                len,
                handle,
                last_use: tick,
            },
        );
        (handle, false)
    }

    /// Release a transient (cache-disabled) registration.
    pub fn release(&self, ctx: &ActorCtx, handle: MemHandle, transient: bool) {
        if transient {
            self.nic
                .deregister_mem(ctx, handle)
                .expect("transient handle must be live");
        }
    }

    /// Drop every cached registration (session teardown).
    pub fn flush(&self, ctx: &ActorCtx) {
        let mut st = self.state.lock();
        for (_, e) in st.entries.drain() {
            let _ = self.nic.deregister_mem(ctx, e.handle);
        }
        st.pinned = 0;
    }

    /// Re-key the cache to a new protection tag after a session reconnect:
    /// every registration made under the old (dead) tag is dropped, and
    /// future acquisitions register under `tag`.
    pub fn retarget(&self, ctx: &ActorCtx, tag: ProtectionTag) {
        self.flush(ctx);
        *self.ptag.lock() = tag;
    }

    /// Bytes currently pinned by the cache.
    pub fn pinned(&self) -> u64 {
        self.state.lock().pinned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{Cluster, SimKernel};
    use via::ViaCost;

    fn attrs(ptag: ProtectionTag) -> MemAttributes {
        MemAttributes::rdma_write_target(ptag)
    }

    fn with_cache(capacity: u64, enabled: bool, f: impl Fn(&ActorCtx, &RegCache, &ViaNic) + Send + 'static) {
        let kernel = SimKernel::new();
        let cluster = Cluster::new();
        let host = cluster.add_host("h");
        let nic = ViaNic::open(host, ViaCost::default());
        kernel.spawn("t", move |ctx| {
            let ptag = nic.create_ptag();
            let cache = RegCache::new(nic.clone(), ptag, attrs, capacity, enabled);
            f(ctx, &cache, &nic);
        });
        kernel.run();
    }

    #[test]
    fn repeat_acquire_hits() {
        with_cache(1 << 20, true, |ctx, cache, nic| {
            let buf = nic.host().mem.alloc(64 << 10);
            let (h1, t1) = cache.acquire(ctx, buf, 64 << 10);
            assert!(!t1);
            let (h2, _) = cache.acquire(ctx, buf, 64 << 10);
            assert_eq!(h1, h2);
            assert_eq!((cache.hits.get(), cache.misses.get()), (1, 1));
            // Sub-range of a cached registration also hits.
            let (h3, _) = cache.acquire(ctx, buf.offset(4096), 4096);
            assert_eq!(h1, h3);
            assert_eq!(cache.hits.get(), 2);
        });
    }

    #[test]
    fn second_acquire_costs_no_cpu() {
        with_cache(1 << 20, true, |ctx, cache, nic| {
            let buf = nic.host().mem.alloc(256 << 10);
            cache.acquire(ctx, buf, 256 << 10);
            let busy = nic.host().cpu.busy();
            cache.acquire(ctx, buf, 256 << 10);
            assert_eq!(nic.host().cpu.busy(), busy, "hit must be free");
        });
    }

    #[test]
    fn lru_eviction_respects_capacity() {
        with_cache(128 << 10, true, |ctx, cache, nic| {
            let a = nic.host().mem.alloc(64 << 10);
            let b = nic.host().mem.alloc(64 << 10);
            let c = nic.host().mem.alloc(64 << 10);
            cache.acquire(ctx, a, 64 << 10);
            cache.acquire(ctx, b, 64 << 10);
            // Touch a so b is LRU.
            cache.acquire(ctx, a, 64 << 10);
            cache.acquire(ctx, c, 64 << 10); // evicts b
            assert_eq!(cache.evictions.get(), 1);
            assert_eq!(cache.pinned(), 128 << 10);
            // a still cached, b gone.
            cache.acquire(ctx, a, 64 << 10);
            assert_eq!(cache.hits.get(), 2);
            cache.acquire(ctx, b, 64 << 10); // miss again (re-registers, evicting LRU)
            assert_eq!(cache.misses.get(), 4);
        });
    }

    #[test]
    fn disabled_cache_registers_every_time() {
        with_cache(1 << 20, false, |ctx, cache, nic| {
            let buf = nic.host().mem.alloc(32 << 10);
            let (h1, t1) = cache.acquire(ctx, buf, 32 << 10);
            assert!(t1);
            cache.release(ctx, h1, t1);
            let (h2, t2) = cache.acquire(ctx, buf, 32 << 10);
            cache.release(ctx, h2, t2);
            assert_ne!(h1, h2);
            let (regs, _, deregs) = nic.registration_stats();
            assert_eq!((regs, deregs), (2, 2));
        });
    }

    #[test]
    fn flush_deregisters_everything() {
        with_cache(1 << 20, true, |ctx, cache, nic| {
            let a = nic.host().mem.alloc(4096);
            let b = nic.host().mem.alloc(4096);
            cache.acquire(ctx, a, 4096);
            cache.acquire(ctx, b, 4096);
            assert_eq!(nic.table().live_regions(), 2);
            cache.flush(ctx);
            assert_eq!(nic.table().live_regions(), 0);
            assert_eq!(cache.pinned(), 0);
        });
    }
}
