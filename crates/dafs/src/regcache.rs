//! The client-side memory-registration cache.
//!
//! Registering memory with the VIA NIC costs tens of microseconds (pin +
//! translation-table update), which would dominate direct I/O if paid per
//! request. The cache keeps buffers registered across requests and evicts
//! least-recently-used registrations when the pinned-byte budget is
//! exceeded — the standard technique in VIA/InfiniBand middleware, and one
//! of the knobs the evaluation ablates (R-T5).

use std::collections::HashMap;

use parking_lot::Mutex;
use simnet::{ActorCtx, Counter, VirtAddr};
use via::{MemAttributes, MemHandle, ProtectionTag, ViaNic};

struct Entry {
    base: VirtAddr,
    len: u64,
    handle: MemHandle,
    last_use: u64,
    /// Outstanding acquisitions (hits and fresh registrations both pin);
    /// [`RegCache::release`] unpins. Entries with `refs > 0` are never
    /// evicted — an in-flight RDMA op still holds the handle.
    refs: u64,
}

struct CacheState {
    /// Keyed by base address; containment queries scan (few live buffers in
    /// practice — MPI-IO reuses its transfer buffers).
    entries: HashMap<u64, Entry>,
    /// Registrations displaced by a same-base re-registration while an op
    /// still held them: no longer served to new acquires, deregistered on
    /// final release. Their bytes stay in `pinned` until then.
    retired: Vec<Entry>,
    pinned: u64,
    tick: u64,
}

/// A point-in-time snapshot of registration-cache counters, read with
/// [`RegCache::stats`]. Named fields replace the old positional tuple so
/// call sites can't transpose hits and misses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegCacheStats {
    /// Acquisitions served from a live registration.
    pub hits: u64,
    /// Acquisitions that performed a fresh registration.
    pub misses: u64,
    /// Registrations torn down for capacity.
    pub evictions: u64,
}

/// An LRU cache of live NIC registrations.
pub struct RegCache {
    nic: ViaNic,
    /// The session's protection tag; swapped by [`RegCache::retarget`] when
    /// the session reconnects (the new VI carries a new tag).
    ptag: Mutex<ProtectionTag>,
    attrs_for: fn(ProtectionTag) -> MemAttributes,
    capacity: u64,
    enabled: bool,
    state: Mutex<CacheState>,
    /// Cache hits (no registration performed).
    pub hits: Counter,
    /// Cache misses (a registration was performed).
    pub misses: Counter,
    /// Evictions (a registration was torn down for capacity).
    pub evictions: Counter,
}

impl RegCache {
    /// Create a cache over `nic` registering with `ptag`. `attrs_for`
    /// selects the registration rights (DAFS clients register direct-I/O
    /// buffers as RDMA-write targets and, where supported, read sources).
    pub fn new(
        nic: ViaNic,
        ptag: ProtectionTag,
        attrs_for: fn(ProtectionTag) -> MemAttributes,
        capacity: u64,
        enabled: bool,
    ) -> RegCache {
        RegCache {
            nic,
            ptag: Mutex::new(ptag),
            attrs_for,
            capacity,
            enabled,
            state: Mutex::new(CacheState {
                entries: HashMap::new(),
                retired: Vec::new(),
                pinned: 0,
                tick: 0,
            }),
            hits: Counter::new(),
            misses: Counter::new(),
            evictions: Counter::new(),
        }
    }

    /// Obtain a registration covering `[addr, addr+len)`. Returns the
    /// handle and, when the cache is disabled, a token marking it
    /// transient. Every acquisition — hit or fresh registration — pins the
    /// entry against eviction; the caller must [`release`](RegCache::release)
    /// the handle once the operation using it has completed.
    pub fn acquire(&self, ctx: &ActorCtx, addr: VirtAddr, len: u64) -> (MemHandle, bool) {
        let ptag = *self.ptag.lock();
        if !self.enabled {
            self.misses.inc();
            ctx.metrics().counter("dafs.regcache.misses").inc();
            let h = self
                .nic
                .register_mem(ctx, addr, len, (self.attrs_for)(ptag));
            return (h, true);
        }
        let mut st = self.state.lock();
        st.tick += 1;
        let tick = st.tick;
        // Containment: any cached entry covering the range?
        for e in st.entries.values_mut() {
            if addr >= e.base && addr.as_u64() + len <= e.base.as_u64() + e.len {
                e.last_use = tick;
                e.refs += 1;
                self.hits.inc();
                ctx.metrics().counter("dafs.regcache.hits").inc();
                return (e.handle, false);
            }
        }
        self.misses.inc();
        ctx.metrics().counter("dafs.regcache.misses").inc();
        // Same base, shorter registration: the insert below would orphan
        // the old entry's NIC registration and leak its bytes from the
        // accounting. Deregister it now (or park it on the retired list
        // until its in-flight ops release it) and register the longer one.
        if let Some(old) = st.entries.remove(&addr.as_u64()) {
            if old.refs > 0 {
                st.retired.push(old);
            } else {
                st.pinned -= old.len;
                self.nic
                    .deregister_mem(ctx, old.handle)
                    .expect("cache entry must be live");
            }
        }
        // Evict LRU entries until the new buffer fits. Entries with
        // outstanding acquisitions are skipped — deregistering under an
        // in-flight RDMA op would invalidate its handle. If only pinned
        // entries remain we register over budget rather than break a
        // live transfer.
        while st.pinned + len > self.capacity {
            let lru = st
                .entries
                .iter()
                .filter(|(_, e)| e.refs == 0)
                .min_by_key(|(_, e)| e.last_use)
                .map(|(k, _)| *k);
            let Some(lru) = lru else { break };
            let e = st.entries.remove(&lru).unwrap();
            st.pinned -= e.len;
            self.evictions.inc();
            ctx.metrics().counter("dafs.regcache.evictions").inc();
            self.nic
                .deregister_mem(ctx, e.handle)
                .expect("cache entry must be live");
        }
        let handle = self
            .nic
            .register_mem(ctx, addr, len, (self.attrs_for)(ptag));
        st.pinned += len;
        st.entries.insert(
            addr.as_u64(),
            Entry {
                base: addr,
                len,
                handle,
                last_use: tick,
                refs: 1,
            },
        );
        (handle, false)
    }

    /// Release one acquisition of `handle`. Transient (cache-disabled)
    /// registrations are deregistered outright; cached ones are unpinned,
    /// making them evictable again once no acquisition holds them. A
    /// retired registration (displaced by a same-base re-registration) is
    /// deregistered on its final release. Releasing a handle the cache no
    /// longer knows (flushed by a reconnect under an in-flight op) is a
    /// no-op — the registration died with the session.
    pub fn release(&self, ctx: &ActorCtx, handle: MemHandle, transient: bool) {
        if transient {
            self.nic
                .deregister_mem(ctx, handle)
                .expect("transient handle must be live");
            return;
        }
        let mut st = self.state.lock();
        if let Some(e) = st.entries.values_mut().find(|e| e.handle == handle) {
            e.refs = e.refs.saturating_sub(1);
            return;
        }
        if let Some(i) = st.retired.iter().position(|e| e.handle == handle) {
            st.retired[i].refs = st.retired[i].refs.saturating_sub(1);
            if st.retired[i].refs == 0 {
                let e = st.retired.swap_remove(i);
                st.pinned -= e.len;
                let _ = self.nic.deregister_mem(ctx, e.handle);
            }
        }
    }

    /// Drop every cached registration (session teardown). Pinned entries
    /// are dropped too: the session — and with it every in-flight op that
    /// held a handle — is already gone, and [`RegCache::release`] treats
    /// their late releases as no-ops.
    pub fn flush(&self, ctx: &ActorCtx) {
        let mut st = self.state.lock();
        for (_, e) in st.entries.drain() {
            let _ = self.nic.deregister_mem(ctx, e.handle);
        }
        for e in st.retired.drain(..) {
            let _ = self.nic.deregister_mem(ctx, e.handle);
        }
        st.pinned = 0;
    }

    /// Re-key the cache to a new protection tag after a session reconnect:
    /// every registration made under the old (dead) tag is dropped, and
    /// future acquisitions register under `tag`.
    pub fn retarget(&self, ctx: &ActorCtx, tag: ProtectionTag) {
        self.flush(ctx);
        *self.ptag.lock() = tag;
    }

    /// Bytes currently pinned by the cache.
    pub fn pinned(&self) -> u64 {
        self.state.lock().pinned
    }

    /// Snapshot the cache counters.
    pub fn stats(&self) -> RegCacheStats {
        RegCacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{Cluster, SimKernel};
    use via::ViaCost;

    fn attrs(ptag: ProtectionTag) -> MemAttributes {
        MemAttributes::rdma_write_target(ptag)
    }

    fn with_cache(
        capacity: u64,
        enabled: bool,
        f: impl Fn(&ActorCtx, &RegCache, &ViaNic) + Send + 'static,
    ) {
        let kernel = SimKernel::new();
        let cluster = Cluster::new();
        let host = cluster.add_host("h");
        let nic = ViaNic::open(host, ViaCost::default());
        kernel.spawn("t", move |ctx| {
            let ptag = nic.create_ptag();
            let cache = RegCache::new(nic.clone(), ptag, attrs, capacity, enabled);
            f(ctx, &cache, &nic);
        });
        kernel.run();
    }

    #[test]
    fn repeat_acquire_hits() {
        with_cache(1 << 20, true, |ctx, cache, nic| {
            let buf = nic.host().mem.alloc(64 << 10);
            let (h1, t1) = cache.acquire(ctx, buf, 64 << 10);
            assert!(!t1);
            let (h2, _) = cache.acquire(ctx, buf, 64 << 10);
            assert_eq!(h1, h2);
            assert_eq!((cache.hits.get(), cache.misses.get()), (1, 1));
            // Sub-range of a cached registration also hits.
            let (h3, _) = cache.acquire(ctx, buf.offset(4096), 4096);
            assert_eq!(h1, h3);
            assert_eq!(cache.hits.get(), 2);
        });
    }

    #[test]
    fn second_acquire_costs_no_cpu() {
        with_cache(1 << 20, true, |ctx, cache, nic| {
            let buf = nic.host().mem.alloc(256 << 10);
            cache.acquire(ctx, buf, 256 << 10);
            let busy = nic.host().cpu.busy();
            cache.acquire(ctx, buf, 256 << 10);
            assert_eq!(nic.host().cpu.busy(), busy, "hit must be free");
        });
    }

    /// Acquire and immediately release (the steady state between ops).
    fn touch(ctx: &ActorCtx, cache: &RegCache, addr: VirtAddr, len: u64) -> MemHandle {
        let (h, t) = cache.acquire(ctx, addr, len);
        cache.release(ctx, h, t);
        h
    }

    #[test]
    fn lru_eviction_respects_capacity() {
        with_cache(128 << 10, true, |ctx, cache, nic| {
            let a = nic.host().mem.alloc(64 << 10);
            let b = nic.host().mem.alloc(64 << 10);
            let c = nic.host().mem.alloc(64 << 10);
            touch(ctx, cache, a, 64 << 10);
            touch(ctx, cache, b, 64 << 10);
            // Touch a so b is LRU.
            touch(ctx, cache, a, 64 << 10);
            touch(ctx, cache, c, 64 << 10); // evicts b
            assert_eq!(cache.evictions.get(), 1);
            assert_eq!(cache.pinned(), 128 << 10);
            // a still cached, b gone.
            touch(ctx, cache, a, 64 << 10);
            assert_eq!(cache.hits.get(), 2);
            touch(ctx, cache, b, 64 << 10); // miss again (re-registers, evicting LRU)
            assert_eq!(cache.misses.get(), 4);
        });
    }

    #[test]
    fn same_base_regrow_keeps_pinned_exact() {
        // Re-acquiring the same base with a larger len used to orphan the
        // old registration: never deregistered, its bytes never subtracted
        // from `pinned`.
        with_cache(1 << 20, true, |ctx, cache, nic| {
            let buf = nic.host().mem.alloc(8 << 10);
            touch(ctx, cache, buf, 4 << 10);
            assert_eq!(cache.pinned(), 4 << 10);
            touch(ctx, cache, buf, 8 << 10); // same base, longer: replaces
            assert_eq!(cache.pinned(), 8 << 10, "old len must leave pinned");
            assert_eq!(
                nic.table().live_regions(),
                1,
                "old registration must be torn down"
            );
            let rs = nic.registration_stats();
            assert_eq!((rs.registrations, rs.deregistrations), (2, 1));
            // The longer registration serves sub-range hits.
            touch(ctx, cache, buf, 4 << 10);
            assert_eq!(cache.hits.get(), 1);
        });
    }

    #[test]
    fn overwrite_under_hold_defers_deregistration() {
        with_cache(1 << 20, true, |ctx, cache, nic| {
            let buf = nic.host().mem.alloc(8 << 10);
            let (h1, _) = cache.acquire(ctx, buf, 4 << 10); // held across the regrow
            let (h2, t2) = cache.acquire(ctx, buf, 8 << 10);
            assert_ne!(h1, h2);
            // Both registrations are live and accounted while h1 is held.
            assert_eq!(cache.pinned(), 12 << 10);
            assert_eq!(nic.table().live_regions(), 2);
            // Final release of the displaced registration tears it down.
            cache.release(ctx, h1, false);
            assert_eq!(cache.pinned(), 8 << 10);
            assert_eq!(nic.table().live_regions(), 1);
            cache.release(ctx, h2, t2);
            assert_eq!(cache.pinned(), 8 << 10);
        });
    }

    #[test]
    fn eviction_never_invalidates_held_handle() {
        // Capacity pressure while handles are outstanding: the cache must
        // not deregister a handle an in-flight op still uses. It registers
        // over budget instead and catches up once the holds drop.
        with_cache(128 << 10, true, |ctx, cache, nic| {
            let a = nic.host().mem.alloc(64 << 10);
            let b = nic.host().mem.alloc(64 << 10);
            let c = nic.host().mem.alloc(64 << 10);
            let (ha, ta) = cache.acquire(ctx, a, 64 << 10);
            let (hb, tb) = cache.acquire(ctx, b, 64 << 10);
            // Over-capacity acquire with every entry held by an op.
            let (hc, tc) = cache.acquire(ctx, c, 64 << 10);
            assert_eq!(cache.evictions.get(), 0, "held handles must not be evicted");
            assert_eq!(
                nic.table().live_regions(),
                3,
                "a and b must stay registered"
            );
            assert_eq!(cache.pinned(), 192 << 10, "temporarily over budget");
            cache.release(ctx, ha, ta);
            cache.release(ctx, hb, tb);
            cache.release(ctx, hc, tc);
            // With the holds gone, the next miss evicts back under budget.
            let d = nic.host().mem.alloc(64 << 10);
            touch(ctx, cache, d, 64 << 10);
            assert_eq!(cache.evictions.get(), 2);
            assert_eq!(cache.pinned(), 128 << 10);
        });
    }

    #[test]
    fn disabled_cache_registers_every_time() {
        with_cache(1 << 20, false, |ctx, cache, nic| {
            let buf = nic.host().mem.alloc(32 << 10);
            let (h1, t1) = cache.acquire(ctx, buf, 32 << 10);
            assert!(t1);
            cache.release(ctx, h1, t1);
            let (h2, t2) = cache.acquire(ctx, buf, 32 << 10);
            cache.release(ctx, h2, t2);
            assert_ne!(h1, h2);
            let rs = nic.registration_stats();
            assert_eq!((rs.registrations, rs.deregistrations), (2, 2));
        });
    }

    #[test]
    fn flush_deregisters_everything() {
        with_cache(1 << 20, true, |ctx, cache, nic| {
            let a = nic.host().mem.alloc(4096);
            let b = nic.host().mem.alloc(4096);
            cache.acquire(ctx, a, 4096);
            cache.acquire(ctx, b, 4096);
            assert_eq!(nic.table().live_regions(), 2);
            cache.flush(ctx);
            assert_eq!(nic.table().live_regions(), 0);
            assert_eq!(cache.pinned(), 0);
        });
    }
}
