//! # dafs — the Direct Access File System over VIA
//!
//! The file-access layer the paper's MPI-IO implementation sits on: a
//! session-based protocol (DAFS Collaborative 1.0 shape) designed for
//! direct-access transports. Small operations travel **inline** in VIA
//! messages; bulk reads are **direct** — the server RDMA-Writes file data
//! straight into client buffers the client registered and advertised, so
//! the client CPU does no per-byte work. Bulk writes go direct when the
//! NIC supports RDMA Read (optional in VIA; absent on the cLAN, present as
//! a configuration ablation here) and otherwise fall back to inline chunks.
//!
//! Components:
//! * [`DafsClient`] — `dap_*`-style session API with synchronous, batch
//!   (pipelined), and locking operations, plus the client-side
//!   [`RegCache`](regcache::RegCache) that amortizes VIA memory
//!   registration.
//! * [`spawn_dafs_server`] — a CQ-driven server event loop exporting a
//!   [`memfs`] filesystem.

#![warn(missing_docs)]

mod client;
mod proto;
mod server;
mod wire;

pub mod cost;
pub mod regcache;
pub mod sched;
pub mod striped;

pub use client::{
    DafsBatch, DafsCacheStats, DafsClient, DafsClientStats, DafsError, DafsResult, ListReq,
    ReadReq, WriteReq,
};
pub use cost::{DafsClientConfig, DafsServerCost};
pub use proto::{
    list_acceptable, list_well_formed, DafsOp, DafsStatus, LeaseKind, ListSeg, ServerCaps,
    LIST_MAX_SEGMENTS,
};
pub use regcache::RegCacheStats;
pub use sched::{SchedPolicy, WfqParams};
pub use server::{spawn_dafs_server, spawn_dafs_server_sched, DafsServerHandle, DafsServerStats};
pub use striped::{DafsStripedBatch, DafsStripedFile};

#[cfg(test)]
mod tests {
    use super::*;
    use memfs::{MemFs, ROOT_ID};
    use simnet::time::units::*;
    use simnet::{Cluster, SimKernel, VirtAddr};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use via::{ViaCost, ViaFabric, ViaNic};

    struct Bed {
        kernel: SimKernel,
        fabric: ViaFabric,
        cluster: Cluster,
        server: DafsServerHandle,
        fs: MemFs,
    }

    fn bed_with(cost: ViaCost) -> Bed {
        let kernel = SimKernel::new();
        let cluster = Cluster::new();
        let fabric = ViaFabric::new(cost);
        let server_nic = fabric.open_nic(cluster.add_host("dafs-server"));
        let fs = MemFs::new();
        let server = spawn_dafs_server(
            &kernel,
            &fabric,
            server_nic,
            fs.clone(),
            2049,
            DafsServerCost::default(),
        );
        Bed {
            kernel,
            fabric,
            cluster,
            server,
            fs,
        }
    }

    fn bed() -> Bed {
        bed_with(ViaCost::default())
    }

    fn client_config() -> DafsClientConfig {
        DafsClientConfig::default()
    }

    fn with_client(
        bed: &Bed,
        config: DafsClientConfig,
        f: impl FnOnce(&simnet::ActorCtx, &DafsClient, &ViaNic) + Send + 'static,
    ) {
        let fabric = bed.fabric.clone();
        let nic = fabric.open_nic(bed.cluster.add_host("dafs-client"));
        let sid = bed.server.host.id;
        bed.kernel.spawn("dafs-client", move |ctx| {
            let c = DafsClient::connect(ctx, &fabric, &nic, sid, 2049, config).unwrap();
            f(ctx, &c, &nic);
            c.disconnect(ctx);
        });
    }

    #[test]
    fn session_setup_exchanges_caps() {
        let b = bed();
        with_client(&b, client_config(), |_ctx, c, _nic| {
            let caps = c.caps();
            assert!(!caps.rdma_read, "default fabric is cLAN-like");
            assert_eq!(caps.credits, 8);
            assert_eq!(caps.inline_max, 32 << 10);
        });
        b.kernel.run();
        assert_eq!(b.server.stats.sessions.get(), 1);
    }

    #[test]
    fn namespace_roundtrip() {
        let b = bed();
        with_client(&b, client_config(), |ctx, c, _| {
            let d = c.mkdir(ctx, ROOT_ID, "dir").unwrap();
            let f = c.create(ctx, d.id, "file").unwrap();
            assert_eq!(c.lookup(ctx, d.id, "file").unwrap().id, f.id);
            assert_eq!(c.resolve(ctx, "/dir/file").unwrap().id, f.id);
            assert_eq!(
                c.lookup(ctx, d.id, "nope").unwrap_err(),
                DafsError::Status(DafsStatus::NoEnt)
            );
            let entries = c.readdir(ctx, d.id).unwrap();
            assert_eq!(entries.len(), 1);
            c.rename(ctx, d.id, "file", ROOT_ID, "moved").unwrap();
            c.remove(ctx, ROOT_ID, "moved").unwrap();
            c.rmdir(ctx, ROOT_ID, "dir").unwrap();
        });
        b.kernel.run();
    }

    #[test]
    fn inline_write_then_read_verifies_bytes() {
        let b = bed();
        with_client(&b, client_config(), |ctx, c, _| {
            let f = c.create(ctx, ROOT_ID, "small").unwrap();
            let data: Vec<u8> = (0..4096u32).map(|i| (i % 253) as u8).collect();
            let a = c.write_bytes(ctx, f.id, 0, &data).unwrap();
            assert_eq!(a.size, 4096);
            let back = c.read_to_vec(ctx, f.id, 0, 4096).unwrap();
            assert_eq!(back, data);
            // 4 KiB is under the 8 KiB threshold: all inline.
            assert_eq!(c.stats.inline_writes.bytes.get(), 4096);
            assert_eq!(c.stats.direct_reads.bytes.get(), 0);
        });
        b.kernel.run();
    }

    #[test]
    fn large_read_goes_direct_and_is_zero_copy() {
        let b = bed();
        const LEN: usize = 1 << 20;
        b.fs.create(ROOT_ID, "big").unwrap();
        let fh = b.fs.resolve("/big").unwrap().id;
        let payload: Vec<u8> = (0..LEN as u32).map(|i| (i % 241) as u8).collect();
        b.fs.write(fh, 0, &payload).unwrap();
        with_client(&b, client_config(), move |ctx, c, nic| {
            let f = c.lookup(ctx, ROOT_ID, "big").unwrap();
            let dst = nic.host().mem.alloc(LEN);
            let cpu_before = nic.host().cpu.busy();
            let n = c.read(ctx, f.id, 0, dst, LEN as u64).unwrap();
            assert_eq!(n, LEN as u64);
            assert_eq!(nic.host().mem.read_vec(dst, LEN), payload);
            assert_eq!(c.stats.direct_reads.bytes.get(), LEN as u64);
            // Client CPU: registration (first touch) + request/poll, but no
            // per-byte copy. A 1 MiB memcpy alone would be ~2.6 ms; allow a
            // generous 1 ms to catch any accidental copy.
            let spent = nic.host().cpu.busy() - cpu_before;
            assert!(
                spent.as_secs_f64() < 0.001,
                "client burned {spent} on a direct read"
            );
        });
        b.kernel.run();
    }

    #[test]
    fn large_write_falls_back_to_inline_without_rdma_read() {
        let b = bed();
        const LEN: usize = 256 << 10;
        with_client(&b, client_config(), move |ctx, c, nic| {
            let f = c.create(ctx, ROOT_ID, "w").unwrap();
            let src = nic.host().mem.alloc(LEN);
            nic.host().mem.fill(src, LEN, 0x5A);
            let a = c.write(ctx, f.id, 0, src, LEN as u64).unwrap();
            assert_eq!(a.size, LEN as u64);
            // No RDMA Read on the default fabric: inline chunks.
            assert_eq!(c.stats.direct_writes.bytes.get(), 0);
            assert_eq!(c.stats.inline_writes.bytes.get(), LEN as u64);
        });
        b.kernel.run();
        assert_eq!(b.fs.resolve("/w").unwrap().size, LEN as u64);
        let fh = b.fs.resolve("/w").unwrap().id;
        assert_eq!(b.fs.read(fh, 1000, 4).unwrap(), vec![0x5A; 4]);
    }

    #[test]
    fn large_write_goes_direct_with_rdma_read() {
        let b = bed_with(ViaCost {
            rdma_read_supported: true,
            ..ViaCost::default()
        });
        const LEN: usize = 256 << 10;
        with_client(&b, client_config(), move |ctx, c, nic| {
            assert!(c.caps().rdma_read);
            let f = c.create(ctx, ROOT_ID, "w").unwrap();
            let src = nic.host().mem.alloc(LEN);
            nic.host().mem.fill(src, LEN, 0xC3);
            c.write(ctx, f.id, 0, src, LEN as u64).unwrap();
            assert_eq!(c.stats.direct_writes.bytes.get(), LEN as u64);
            assert_eq!(c.stats.inline_writes.bytes.get(), 0);
        });
        b.kernel.run();
        let fh = b.fs.resolve("/w").unwrap().id;
        assert_eq!(b.fs.read(fh, LEN as u64 - 4, 4).unwrap(), vec![0xC3; 4]);
    }

    #[test]
    fn direct_transfer_spanning_staging_chunks() {
        // 9 MiB > the server's 4 MiB staging buffer: must chunk correctly.
        let b = bed();
        const LEN: usize = 9 << 20;
        b.fs.create(ROOT_ID, "huge").unwrap();
        let fh = b.fs.resolve("/huge").unwrap().id;
        let payload: Vec<u8> = (0..LEN).map(|i| (i / 4096) as u8).collect();
        b.fs.write(fh, 0, &payload).unwrap();
        with_client(&b, client_config(), move |ctx, c, nic| {
            let f = c.lookup(ctx, ROOT_ID, "huge").unwrap();
            let dst = nic.host().mem.alloc(LEN);
            let n = c.read(ctx, f.id, 0, dst, LEN as u64).unwrap();
            assert_eq!(n, LEN as u64);
            let got = nic.host().mem.read_vec(dst, LEN);
            assert_eq!(got, payload);
        });
        b.kernel.run();
    }

    #[test]
    fn read_past_eof_is_short() {
        let b = bed();
        with_client(&b, client_config(), |ctx, c, nic| {
            let f = c.create(ctx, ROOT_ID, "s").unwrap();
            c.write_bytes(ctx, f.id, 0, b"abc").unwrap();
            let dst = nic.host().mem.alloc(64 << 10);
            // Inline short read.
            assert_eq!(c.read(ctx, f.id, 1, dst, 100).unwrap(), 2);
            // Direct short read (len > threshold).
            assert_eq!(c.read(ctx, f.id, 0, dst, 64 << 10).unwrap(), 3);
        });
        b.kernel.run();
    }

    #[test]
    fn small_op_latency_beats_nfs_by_multiples() {
        let b = bed();
        let lat = Arc::new(AtomicU64::new(0));
        let l2 = lat.clone();
        with_client(&b, client_config(), move |ctx, c, _| {
            let t0 = ctx.now();
            const N: u64 = 20;
            for _ in 0..N {
                c.getattr(ctx, ROOT_ID).unwrap();
            }
            l2.store(ctx.now().since(t0).as_nanos() / N, Ordering::Relaxed);
        });
        b.kernel.run();
        let us_ = lat.load(Ordering::Relaxed) as f64 / 1000.0;
        // VIA round trip + lean server: tens of microseconds, not hundreds.
        assert!((20.0..60.0).contains(&us_), "DAFS getattr = {us_}us");
    }

    #[test]
    fn direct_read_bandwidth_approaches_wire() {
        let b = bed();
        const LEN: usize = 16 << 20;
        b.fs.create(ROOT_ID, "stream").unwrap();
        let fh = b.fs.resolve("/stream").unwrap().id;
        b.fs.write(fh, 0, &vec![9u8; LEN]).unwrap();
        let dur = Arc::new(AtomicU64::new(0));
        let d2 = dur.clone();
        with_client(&b, client_config(), move |ctx, c, nic| {
            let f = c.lookup(ctx, ROOT_ID, "stream").unwrap();
            let dst = nic.host().mem.alloc(LEN);
            // Warm the registration cache so we measure steady state.
            c.read(ctx, f.id, 0, dst, LEN as u64).unwrap();
            let t0 = ctx.now();
            c.read(ctx, f.id, 0, dst, LEN as u64).unwrap();
            d2.store(ctx.now().since(t0).as_nanos(), Ordering::Relaxed);
        });
        b.kernel.run();
        let mb_s = LEN as f64 / (dur.load(Ordering::Relaxed) as f64 / 1e9) / 1e6;
        assert!(
            (85.0..110.5).contains(&mb_s),
            "DAFS direct read = {mb_s} MB/s, want near the 110 MB/s wire"
        );
    }

    #[test]
    fn regcache_avoids_repeat_registration() {
        let b = bed();
        const LEN: usize = 1 << 20;
        b.fs.create(ROOT_ID, "f").unwrap();
        let fh = b.fs.resolve("/f").unwrap().id;
        b.fs.write(fh, 0, &vec![1u8; LEN]).unwrap();
        with_client(&b, client_config(), move |ctx, c, nic| {
            let f = c.lookup(ctx, ROOT_ID, "f").unwrap();
            let dst = nic.host().mem.alloc(LEN);
            for _ in 0..10 {
                c.read(ctx, f.id, 0, dst, LEN as u64).unwrap();
            }
            let rc = c.regcache_stats();
            assert_eq!(rc.misses, 1, "only the first read registers");
            assert_eq!(rc.hits, 9);
        });
        b.kernel.run();
    }

    #[test]
    fn regcache_disabled_registers_every_time() {
        let b = bed();
        const LEN: usize = 1 << 20;
        b.fs.create(ROOT_ID, "f").unwrap();
        let fh = b.fs.resolve("/f").unwrap().id;
        b.fs.write(fh, 0, &vec![1u8; LEN]).unwrap();
        let cfg = DafsClientConfig {
            use_regcache: false,
            ..client_config()
        };
        with_client(&b, cfg, move |ctx, c, nic| {
            let f = c.lookup(ctx, ROOT_ID, "f").unwrap();
            let dst = nic.host().mem.alloc(LEN);
            for _ in 0..5 {
                c.read(ctx, f.id, 0, dst, LEN as u64).unwrap();
            }
            let rc = c.regcache_stats();
            assert_eq!((rc.hits, rc.misses), (0, 5));
            // All transient registrations were torn down again.
            let rs = nic.registration_stats();
            // 16 session buffers + 5 transient.
            assert_eq!(rs.registrations, 16 + 5);
            assert_eq!(rs.deregistrations, 5);
        });
        b.kernel.run();
    }

    #[test]
    fn batch_read_pipelines_and_verifies() {
        let b = bed();
        const CHUNK: usize = 64 << 10;
        const COUNT: usize = 16;
        b.fs.create(ROOT_ID, "b").unwrap();
        let fh = b.fs.resolve("/b").unwrap().id;
        let mut payload = Vec::new();
        for i in 0..COUNT {
            payload.extend(std::iter::repeat_n(i as u8, CHUNK));
        }
        b.fs.write(fh, 0, &payload).unwrap();
        with_client(&b, client_config(), move |ctx, c, nic| {
            let f = c.lookup(ctx, ROOT_ID, "b").unwrap();
            let dsts: Vec<VirtAddr> = (0..COUNT).map(|_| nic.host().mem.alloc(CHUNK)).collect();
            let reqs: Vec<ReadReq> = (0..COUNT)
                .map(|i| ReadReq {
                    fh: f.id,
                    off: (i * CHUNK) as u64,
                    dst: dsts[i],
                    len: CHUNK as u64,
                })
                .collect();
            let batch_t0 = ctx.now();
            let results = c.read_batch(ctx, &reqs);
            let batch_time = ctx.now().since(batch_t0);
            for (i, r) in results.iter().enumerate() {
                assert_eq!(*r, Ok(CHUNK as u64), "req {i}");
                assert_eq!(
                    nic.host().mem.read_vec(dsts[i], CHUNK),
                    vec![i as u8; CHUNK]
                );
            }
            // Sequential comparison: same reads one at a time.
            let seq_t0 = ctx.now();
            for r in &reqs {
                c.read(ctx, r.fh, r.off, r.dst, r.len).unwrap();
            }
            let seq_time = ctx.now().since(seq_t0);
            assert!(
                batch_time < seq_time,
                "pipelined batch ({batch_time}) should beat sequential ({seq_time})"
            );
        });
        b.kernel.run();
    }

    #[test]
    fn batch_write_inline_chunking_correct() {
        let b = bed();
        // 100 KiB inline-fallback write inside a batch must be chunked.
        const LEN: usize = 100 << 10;
        with_client(&b, client_config(), move |ctx, c, nic| {
            let f = c.create(ctx, ROOT_ID, "bw").unwrap();
            let src = nic.host().mem.alloc(LEN);
            let payload: Vec<u8> = (0..LEN).map(|i| (i % 127) as u8).collect();
            nic.host().mem.write(src, &payload);
            let results = c.write_batch(
                ctx,
                &[WriteReq {
                    fh: f.id,
                    off: 0,
                    src,
                    len: LEN as u64,
                }],
            );
            assert_eq!(results, vec![Ok(LEN as u64)]);
        });
        b.kernel.run();
        let fh = b.fs.resolve("/bw").unwrap().id;
        let got = b.fs.read(fh, 0, LEN as u64).unwrap();
        let expect: Vec<u8> = (0..LEN).map(|i| (i % 127) as u8).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn locks_serialize_two_sessions() {
        let b = bed();
        b.fs.create(ROOT_ID, "locked").unwrap();
        let order: Arc<parking_lot::Mutex<Vec<(u64, &'static str)>>> =
            Arc::new(parking_lot::Mutex::new(Vec::new()));
        for (name, delay, hold) in [("first", 0u64, 500u64), ("second", 100u64, 0u64)] {
            let fabric = b.fabric.clone();
            let nic = fabric.open_nic(b.cluster.add_host(name));
            let sid = b.server.host.id;
            let order = order.clone();
            b.kernel.spawn(name, move |ctx| {
                ctx.advance(us(delay));
                let c =
                    DafsClient::connect(ctx, &fabric, &nic, sid, 2049, client_config()).unwrap();
                let f = c.lookup(ctx, ROOT_ID, "locked").unwrap();
                c.lock(ctx, f.id).unwrap();
                order.lock().push((ctx.now().as_nanos(), name));
                ctx.advance(us(hold));
                c.unlock(ctx, f.id).unwrap();
                c.disconnect(ctx);
            });
        }
        b.kernel.run();
        let o = order.lock().clone();
        assert_eq!(o.len(), 2);
        assert_eq!(o[0].1, "first");
        assert_eq!(o[1].1, "second");
        // Second acquired only after first's 500us hold.
        assert!(o[1].0 > o[0].0 + 500_000, "{o:?}");
    }

    #[test]
    fn concurrent_appends_tile_without_tears() {
        // Six sessions race variable-size appends; the records must tile
        // the file exactly — atomicity comes from the serial server worker,
        // not client-side locks.
        let b = bed();
        b.fs.create(ROOT_ID, "log").unwrap();
        const PER_CLIENT: usize = 8;
        for i in 0..6usize {
            let fabric = b.fabric.clone();
            let nic = fabric.open_nic(b.cluster.add_host(&format!("a{i}")));
            let sid = b.server.host.id;
            b.kernel.spawn(&format!("appender{i}"), move |ctx| {
                let c =
                    DafsClient::connect(ctx, &fabric, &nic, sid, 2049, client_config()).unwrap();
                let f = c.lookup(ctx, ROOT_ID, "log").unwrap();
                for seq in 0..PER_CLIENT {
                    let len = (seq % 3 + 1) * 100;
                    let mut rec = vec![(i * PER_CLIENT + seq) as u8; len];
                    // Header: record length, so the scanner can walk it.
                    rec[0] = (len / 100) as u8;
                    let off = c.append(ctx, f.id, &rec).unwrap();
                    assert!(
                        (off as usize).is_multiple_of(100),
                        "records are 100-byte multiples"
                    );
                }
                c.disconnect(ctx);
            });
        }
        b.kernel.run();
        let attr = b.fs.resolve("/log").unwrap();
        let data = b.fs.read(attr.id, 0, attr.size).unwrap();
        let mut pos = 0usize;
        let mut records = 0;
        while pos < data.len() {
            let len = data[pos] as usize * 100;
            assert!((100..=300).contains(&len), "corrupt header at {pos}");
            // The body (after the header byte) must be uniform: no tears.
            let body = &data[pos + 1..pos + len];
            assert!(body.iter().all(|&x| x == body[0]), "torn record at {pos}");
            pos += len;
            records += 1;
        }
        assert_eq!(pos, data.len());
        assert_eq!(records, 6 * PER_CLIENT);
    }

    #[test]
    fn append_offsets_are_monotone_per_session() {
        let b = bed();
        b.fs.create(ROOT_ID, "log").unwrap();
        with_client(&b, client_config(), |ctx, c, _| {
            let f = c.lookup(ctx, ROOT_ID, "log").unwrap();
            let mut last = 0;
            for i in 0..5u8 {
                let off = c.append(ctx, f.id, &[i; 64]).unwrap();
                assert_eq!(off, last);
                last += 64;
            }
            assert_eq!(c.getattr(ctx, f.id).unwrap().size, 320);
        });
        b.kernel.run();
    }

    #[test]
    fn flush_and_truncate() {
        let b = bed();
        with_client(&b, client_config(), |ctx, c, _| {
            let f = c.create(ctx, ROOT_ID, "t").unwrap();
            c.write_bytes(ctx, f.id, 0, &[1u8; 100]).unwrap();
            c.flush(ctx, f.id).unwrap();
            let a = c.truncate(ctx, f.id, 10).unwrap();
            assert_eq!(a.size, 10);
            assert_eq!(c.getattr(ctx, f.id).unwrap().size, 10);
        });
        b.kernel.run();
    }

    #[test]
    fn lock_released_on_clean_disconnect_of_holder() {
        // A locks and disconnects WITHOUT unlocking; B's pending lock must
        // be granted when the server tears A's session down.
        let b = bed();
        b.fs.create(ROOT_ID, "l").unwrap();
        let got_lock = Arc::new(AtomicU64::new(0));
        {
            let fabric = b.fabric.clone();
            let nic = fabric.open_nic(b.cluster.add_host("holder"));
            let sid = b.server.host.id;
            b.kernel.spawn("holder", move |ctx| {
                let c =
                    DafsClient::connect(ctx, &fabric, &nic, sid, 2049, client_config()).unwrap();
                let f = c.lookup(ctx, ROOT_ID, "l").unwrap();
                c.lock(ctx, f.id).unwrap();
                ctx.advance(us(500));
                // Disconnect while still holding the lock.
                c.disconnect(ctx);
            });
        }
        {
            let fabric = b.fabric.clone();
            let nic = fabric.open_nic(b.cluster.add_host("waiter"));
            let sid = b.server.host.id;
            let gl = got_lock.clone();
            b.kernel.spawn("waiter", move |ctx| {
                ctx.advance(us(100)); // let the holder win the race
                let c =
                    DafsClient::connect(ctx, &fabric, &nic, sid, 2049, client_config()).unwrap();
                let f = c.lookup(ctx, ROOT_ID, "l").unwrap();
                c.lock(ctx, f.id).unwrap();
                gl.store(ctx.now().as_nanos(), Ordering::Relaxed);
                c.unlock(ctx, f.id).unwrap();
                c.disconnect(ctx);
            });
        }
        b.kernel.run();
        let t = got_lock.load(Ordering::Relaxed);
        assert!(
            t > 500_000,
            "waiter must block until the holder vanished: {t}"
        );
    }

    #[test]
    fn abrupt_vi_disconnect_tears_session_and_releases_locks() {
        // The holder drops the VIA connection without a DAFS Disconnect;
        // the server's ConnectionLost path must clean up and grant the
        // waiter.
        let b = bed();
        b.fs.create(ROOT_ID, "l").unwrap();
        let got_lock = Arc::new(AtomicU64::new(0));
        {
            let fabric = b.fabric.clone();
            let nic = fabric.open_nic(b.cluster.add_host("crasher"));
            let sid = b.server.host.id;
            b.kernel.spawn("crasher", move |ctx| {
                let c =
                    DafsClient::connect(ctx, &fabric, &nic, sid, 2049, client_config()).unwrap();
                let f = c.lookup(ctx, ROOT_ID, "l").unwrap();
                c.lock(ctx, f.id).unwrap();
                ctx.advance(us(400));
                // Simulate a crash: raw VIA disconnect, no protocol goodbye.
                c.abort(ctx);
            });
        }
        {
            let fabric = b.fabric.clone();
            let nic = fabric.open_nic(b.cluster.add_host("waiter"));
            let sid = b.server.host.id;
            let gl = got_lock.clone();
            b.kernel.spawn("waiter", move |ctx| {
                ctx.advance(us(100));
                let c =
                    DafsClient::connect(ctx, &fabric, &nic, sid, 2049, client_config()).unwrap();
                let f = c.lookup(ctx, ROOT_ID, "l").unwrap();
                c.lock(ctx, f.id).unwrap();
                gl.store(ctx.now().as_nanos(), Ordering::Relaxed);
                c.unlock(ctx, f.id).unwrap();
                c.disconnect(ctx);
            });
        }
        b.kernel.run();
        let t = got_lock.load(Ordering::Relaxed);
        assert!(t > 400_000, "waiter must be granted after the crash: {t}");
    }

    #[test]
    fn list_read_inline_scatters_segments() {
        let b = bed();
        const LEN: usize = 64 << 10;
        b.fs.create(ROOT_ID, "lf").unwrap();
        let fh = b.fs.resolve("/lf").unwrap().id;
        let payload: Vec<u8> = (0..LEN).map(|i| (i % 251) as u8).collect();
        b.fs.write(fh, 0, &payload).unwrap();
        with_client(&b, client_config(), move |ctx, c, nic| {
            let f = c.lookup(ctx, ROOT_ID, "lf").unwrap();
            // 8 strided 512-byte holes: total 4 KiB, well under the direct
            // threshold, so the whole list travels inline in one request.
            let ranges: Vec<(u64, u64)> = (0..8).map(|i| (i * 8192, 512)).collect();
            let total: u64 = ranges.iter().map(|r| r.1).sum();
            let dst = nic.host().mem.alloc(total as usize);
            let n = c.read_list(ctx, f.id, &ranges, dst).unwrap();
            assert_eq!(n, total);
            let got = nic.host().mem.read_vec(dst, total as usize);
            let mut expect = Vec::new();
            for &(off, len) in &ranges {
                expect.extend_from_slice(&payload[off as usize..(off + len) as usize]);
            }
            assert_eq!(got, expect);
            assert_eq!(c.stats.inline_reads.bytes.get(), total);
            assert_eq!(c.stats.direct_reads.bytes.get(), 0);
            assert_eq!(ctx.metrics().counter("dafs.list.reqs").get(), 1);
            assert_eq!(ctx.metrics().counter("dafs.list.segs").get(), 8);
        });
        b.kernel.run();
    }

    #[test]
    fn list_read_direct_single_rdma_transfer() {
        let b = bed();
        const LEN: usize = 2 << 20;
        b.fs.create(ROOT_ID, "lf").unwrap();
        let fh = b.fs.resolve("/lf").unwrap().id;
        let payload: Vec<u8> = (0..LEN).map(|i| (i / 997) as u8).collect();
        b.fs.write(fh, 0, &payload).unwrap();
        with_client(&b, client_config(), move |ctx, c, nic| {
            let f = c.lookup(ctx, ROOT_ID, "lf").unwrap();
            // 16 strided 64 KiB segments: 1 MiB total goes direct, and a
            // packed destination means one buffer-contiguous run — a single
            // RDMA stream server-side.
            let ranges: Vec<(u64, u64)> = (0..16).map(|i| (i * 128 * 1024, 64 << 10)).collect();
            let total: u64 = ranges.iter().map(|r| r.1).sum();
            let dst = nic.host().mem.alloc(total as usize);
            let cpu_before = nic.host().cpu.busy();
            let n = c.read_list(ctx, f.id, &ranges, dst).unwrap();
            assert_eq!(n, total);
            let got = nic.host().mem.read_vec(dst, total as usize);
            let mut expect = Vec::new();
            for &(off, len) in &ranges {
                expect.extend_from_slice(&payload[off as usize..(off + len) as usize]);
            }
            assert_eq!(got, expect);
            assert_eq!(c.stats.direct_reads.bytes.get(), total);
            // Zero-copy on the client: data landed via RDMA Write.
            let spent = nic.host().cpu.busy() - cpu_before;
            assert!(
                spent.as_secs_f64() < 0.001,
                "client burned {spent} on a direct list read"
            );
        });
        b.kernel.run();
    }

    #[test]
    fn list_write_inline_and_direct_place_bytes() {
        for rdma_read in [false, true] {
            let b = bed_with(ViaCost {
                rdma_read_supported: rdma_read,
                ..ViaCost::default()
            });
            const SEG: u64 = 40 << 10;
            with_client(&b, client_config(), move |ctx, c, nic| {
                let f = c.create(ctx, ROOT_ID, "lw").unwrap();
                let ranges: Vec<(u64, u64)> = (0..4).map(|i| (i * 3 * SEG, SEG)).collect();
                let total: u64 = ranges.iter().map(|r| r.1).sum();
                let src = nic.host().mem.alloc(total as usize);
                let payload: Vec<u8> = (0..total).map(|i| (i % 199) as u8).collect();
                nic.host().mem.write(src, &payload);
                let n = c.write_list(ctx, f.id, &ranges, src).unwrap();
                assert_eq!(n, total);
                if rdma_read {
                    assert_eq!(c.stats.direct_writes.bytes.get(), total);
                } else {
                    // 160 KiB total with no RDMA Read: inline chunks.
                    assert_eq!(c.stats.direct_writes.bytes.get(), 0);
                    assert_eq!(c.stats.inline_writes.bytes.get(), total);
                }
            });
            b.kernel.run();
            let attr = b.fs.resolve("/lw").unwrap();
            assert_eq!(attr.size, 3 * 3 * SEG + SEG);
            let mut pos = 0u64;
            for i in 0..4u64 {
                let got = b.fs.read(attr.id, i * 3 * SEG, SEG).unwrap();
                let expect: Vec<u8> = (pos..pos + SEG).map(|j| (j % 199) as u8).collect();
                assert_eq!(got, expect, "segment {i} (rdma_read={rdma_read})");
                pos += SEG;
                if i < 3 {
                    // The strided gap must be zero-filled, not garbage.
                    let gap = b.fs.read(attr.id, i * 3 * SEG + SEG, 2 * SEG).unwrap();
                    assert!(gap.iter().all(|&x| x == 0), "gap {i} not zero");
                }
            }
        }
    }

    #[test]
    fn list_read_short_at_eof() {
        let b = bed();
        b.fs.create(ROOT_ID, "s").unwrap();
        let fh = b.fs.resolve("/s").unwrap().id;
        b.fs.write(fh, 0, &[7u8; 1000]).unwrap();
        with_client(&b, client_config(), move |ctx, c, nic| {
            let f = c.lookup(ctx, ROOT_ID, "s").unwrap();
            // Second segment truncated by EOF, third entirely past it.
            let ranges = [(0u64, 500u64), (800, 500), (2000, 100)];
            let dst = nic.host().mem.alloc(1100);
            nic.host().mem.fill(dst, 1100, 0xEE);
            let n = c.read_list(ctx, f.id, &ranges, dst).unwrap();
            assert_eq!(n, 500 + 200);
            assert_eq!(nic.host().mem.read_vec(dst, 500), vec![7u8; 500]);
            assert_eq!(
                nic.host().mem.read_vec(dst.offset(500), 200),
                vec![7u8; 200]
            );
            // Bytes past EOF were never touched.
            assert_eq!(
                nic.host().mem.read_vec(dst.offset(700), 400),
                vec![0xEE; 400]
            );
        });
        b.kernel.run();
    }

    #[test]
    fn list_longer_than_segment_cap_splits_across_requests() {
        let b = bed();
        const N: usize = 600; // > 2x LIST_MAX_SEGMENTS
        b.fs.create(ROOT_ID, "many").unwrap();
        let fh = b.fs.resolve("/many").unwrap().id;
        let payload: Vec<u8> = (0..N * 64).map(|i| (i % 243) as u8).collect();
        b.fs.write(fh, 0, &payload).unwrap();
        with_client(&b, client_config(), move |ctx, c, nic| {
            let f = c.lookup(ctx, ROOT_ID, "many").unwrap();
            // Every other 32-byte slice of the file.
            let ranges: Vec<(u64, u64)> = (0..N).map(|i| ((i * 64) as u64, 32)).collect();
            let total: u64 = 32 * N as u64;
            let dst = nic.host().mem.alloc(total as usize);
            let n = c.read_list(ctx, f.id, &ranges, dst).unwrap();
            assert_eq!(n, total);
            let got = nic.host().mem.read_vec(dst, total as usize);
            let mut expect = Vec::new();
            for &(off, len) in &ranges {
                expect.extend_from_slice(&payload[off as usize..(off + len) as usize]);
            }
            assert_eq!(got, expect);
            // 600 segments over a 256-per-request cap: at least 3 wire
            // requests, every segment accounted for.
            assert!(ctx.metrics().counter("dafs.list.reqs").get() >= 3);
            assert_eq!(ctx.metrics().counter("dafs.list.segs").get(), N as u64);
        });
        b.kernel.run();
    }

    #[test]
    fn many_sessions_one_server() {
        let b = bed();
        b.fs.create(ROOT_ID, "shared").unwrap();
        const N: usize = 8;
        for i in 0..N {
            let fabric = b.fabric.clone();
            let nic = fabric.open_nic(b.cluster.add_host(&format!("c{i}")));
            let sid = b.server.host.id;
            b.kernel.spawn(&format!("client{i}"), move |ctx| {
                let c =
                    DafsClient::connect(ctx, &fabric, &nic, sid, 2049, client_config()).unwrap();
                let f = c.lookup(ctx, ROOT_ID, "shared").unwrap();
                let data = vec![i as u8 + 1; 32 << 10];
                c.write_bytes(ctx, f.id, (i * (32 << 10)) as u64, &data)
                    .unwrap();
                c.disconnect(ctx);
            });
        }
        b.kernel.run();
        assert_eq!(b.server.stats.sessions.get(), N as u64);
        let fh = b.fs.resolve("/shared").unwrap().id;
        for i in 0..N {
            let got = b.fs.read(fh, (i * (32 << 10)) as u64, 2).unwrap();
            assert_eq!(got, vec![i as u8 + 1; 2]);
        }
    }

    #[test]
    fn zero_dirty_cache_sync_is_wire_free() {
        let b = bed();
        b.fs.create(ROOT_ID, "clean").unwrap();
        let fh = b.fs.resolve("/clean").unwrap().id;
        let payload: Vec<u8> = (0..4096u32).map(|i| (i * 31 % 251) as u8).collect();
        b.fs.write(fh, 0, &payload).unwrap();
        let cfg = DafsClientConfig {
            cache_write_back: true,
            ..client_config()
        };
        let want = payload.clone();
        with_client(&b, cfg, move |ctx, c, nic| {
            // Nothing cached at all: sync must not touch the wire.
            let ops = c.stats.ops.get();
            assert_eq!(c.cache_sync(ctx).unwrap(), 0);
            assert_eq!(c.stats.ops.get(), ops, "empty-cache sync sent a request");
            // Holding a clean lease: still nothing to flush, still no wire.
            let f = c.lookup(ctx, ROOT_ID, "clean").unwrap();
            let dst = nic.host().mem.alloc(4096);
            assert_eq!(c.read_cached(ctx, f.id, 0, dst, 4096).unwrap(), 4096);
            assert_eq!(nic.host().mem.read_vec(dst, 4096), want);
            let ops = c.stats.ops.get();
            assert_eq!(c.cache_sync(ctx).unwrap(), 0);
            assert_eq!(c.stats.ops.get(), ops, "clean-lease sync sent a request");
            // Dirty → one flush; the immediate second sync is a no-op again.
            let src = nic.host().mem.alloc(4096);
            nic.host().mem.fill(src, 4096, 0x3C);
            c.write_cached(ctx, f.id, 0, src, 4096).unwrap();
            assert_eq!(c.cache_sync(ctx).unwrap(), 1);
            let ops = c.stats.ops.get();
            assert_eq!(c.cache_sync(ctx).unwrap(), 0);
            assert_eq!(c.stats.ops.get(), ops, "back-to-back sync sent a request");
        });
        b.kernel.run();
        assert_eq!(b.fs.read(fh, 0, 4096).unwrap(), vec![0x3C; 4096]);
    }

    #[test]
    fn cached_reread_is_wire_free() {
        let b = bed();
        b.fs.create(ROOT_ID, "hot").unwrap();
        let fh = b.fs.resolve("/hot").unwrap().id;
        let payload: Vec<u8> = (0..8192u32).map(|i| (i % 251) as u8).collect();
        b.fs.write(fh, 0, &payload).unwrap();
        with_client(&b, client_config(), move |ctx, c, nic| {
            let f = c.lookup(ctx, ROOT_ID, "hot").unwrap();
            let dst = nic.host().mem.alloc(8192);
            let n = c.read_cached(ctx, f.id, 0, dst, 8192).unwrap();
            assert_eq!(n, 8192);
            assert_eq!(nic.host().mem.read_vec(dst, 8192), payload);
            assert_eq!(c.cache_stats.misses.get(), 1);
            assert_eq!(c.cache_stats.hits.get(), 0);
            // Re-read: served from cached pages, nothing on the wire.
            let wire = c.stats.inline_reads.bytes.get() + c.stats.direct_reads.bytes.get();
            let ops = c.stats.ops.get();
            nic.host().mem.fill(dst, 8192, 0);
            let n = c.read_cached(ctx, f.id, 0, dst, 8192).unwrap();
            assert_eq!(n, 8192);
            assert_eq!(nic.host().mem.read_vec(dst, 8192), payload);
            assert_eq!(c.cache_stats.hits.get(), 1);
            assert_eq!(
                c.stats.inline_reads.bytes.get() + c.stats.direct_reads.bytes.get(),
                wire,
                "cache hit moved bytes over the wire"
            );
            assert_eq!(c.stats.ops.get(), ops, "cache hit issued a request");
            // Attributes ride the same lease: getattr is now free too.
            let a = c.getattr_cached(ctx, f.id).unwrap();
            assert_eq!(a.size, 8192);
            assert_eq!(c.cache_stats.attr_hits.get(), 1);
            assert_eq!(c.stats.ops.get(), ops);
        });
        b.kernel.run();
    }

    #[test]
    fn conflicting_write_recalls_lease_and_reader_sees_new_bytes() {
        let b = bed();
        b.fs.create(ROOT_ID, "shared").unwrap();
        let fh = b.fs.resolve("/shared").unwrap().id;
        b.fs.write(fh, 0, &[0xAA; 4096]).unwrap();
        let wrote = Arc::new(AtomicU64::new(0));
        {
            let fabric = b.fabric.clone();
            let nic = fabric.open_nic(b.cluster.add_host("reader"));
            let sid = b.server.host.id;
            b.kernel.spawn("reader", move |ctx| {
                let c =
                    DafsClient::connect(ctx, &fabric, &nic, sid, 2049, client_config()).unwrap();
                let f = c.lookup(ctx, ROOT_ID, "shared").unwrap();
                let dst = nic.host().mem.alloc(4096);
                c.read_cached(ctx, f.id, 0, dst, 4096).unwrap();
                assert_eq!(nic.host().mem.read_vec(dst, 4096), vec![0xAA; 4096]);
                // The writer shows up at ms(2); its WRITE parks behind our
                // lease until the next cache entry point services the recall.
                ctx.advance(ms(5));
                let n = c.read_cached(ctx, f.id, 0, dst, 4096).unwrap();
                assert_eq!(n, 4096);
                assert_eq!(
                    nic.host().mem.read_vec(dst, 4096),
                    vec![0xBB; 4096],
                    "recalled reader still served stale bytes"
                );
                assert_eq!(c.cache_stats.recalls.get(), 1);
                assert!(c.cache_stats.invalidations.get() > 0);
                c.disconnect(ctx);
            });
        }
        {
            let fabric = b.fabric.clone();
            let nic = fabric.open_nic(b.cluster.add_host("writer"));
            let sid = b.server.host.id;
            let wrote = wrote.clone();
            b.kernel.spawn("writer", move |ctx| {
                ctx.advance(ms(2));
                let c =
                    DafsClient::connect(ctx, &fabric, &nic, sid, 2049, client_config()).unwrap();
                let f = c.lookup(ctx, ROOT_ID, "shared").unwrap();
                c.write_bytes(ctx, f.id, 0, &[0xBB; 4096]).unwrap();
                wrote.store(ctx.now().as_nanos(), Ordering::SeqCst);
                c.disconnect(ctx);
            });
        }
        b.kernel.run();
        // The write was deferred until the reader acked at ms(5).
        assert!(wrote.load(Ordering::SeqCst) >= ms(5).as_nanos());
        assert_eq!(b.fs.read(fh, 0, 4).unwrap(), vec![0xBB; 4]);
    }

    #[test]
    fn write_back_holder_flushes_on_recall_before_reader_proceeds() {
        let b = bed();
        b.fs.create(ROOT_ID, "wb").unwrap();
        {
            let fabric = b.fabric.clone();
            let nic = fabric.open_nic(b.cluster.add_host("wb-holder"));
            let sid = b.server.host.id;
            let fs = b.fs.clone();
            let cfg = DafsClientConfig {
                cache_write_back: true,
                ..client_config()
            };
            b.kernel.spawn("wb-holder", move |ctx| {
                let c = DafsClient::connect(ctx, &fabric, &nic, sid, 2049, cfg).unwrap();
                let f = c.lookup(ctx, ROOT_ID, "wb").unwrap();
                let src = nic.host().mem.alloc(4096);
                nic.host().mem.fill(src, 4096, 0x5A);
                let a = c.write_cached(ctx, f.id, 0, src, 4096).unwrap();
                assert_eq!(a.size, 4096, "buffered write must report new EOF");
                assert_eq!(
                    fs.resolve("/wb").unwrap().size,
                    0,
                    "write-back data reached the server before any flush"
                );
                // A reader connects at ms(2); servicing its recall flushes
                // the dirty pages before the ack releases the lease.
                ctx.advance(ms(5));
                c.getattr_cached(ctx, f.id).unwrap();
                assert_eq!(c.cache_stats.recalls.get(), 1);
                assert_eq!(fs.resolve("/wb").unwrap().size, 4096);
                c.disconnect(ctx);
            });
        }
        {
            let fabric = b.fabric.clone();
            let nic = fabric.open_nic(b.cluster.add_host("wb-reader"));
            let sid = b.server.host.id;
            b.kernel.spawn("wb-reader", move |ctx| {
                ctx.advance(ms(2));
                let c =
                    DafsClient::connect(ctx, &fabric, &nic, sid, 2049, client_config()).unwrap();
                let f = c.lookup(ctx, ROOT_ID, "wb").unwrap();
                // Parked behind the write lease; must observe the flushed
                // image, never the pre-write hole.
                let got = c.read_to_vec(ctx, f.id, 0, 4096).unwrap();
                assert_eq!(got, vec![0x5A; 4096]);
                assert!(ctx.now().as_nanos() >= ms(5).as_nanos());
                c.disconnect(ctx);
            });
        }
        b.kernel.run();
    }

    #[test]
    fn voluntary_release_lets_writers_through_without_recall() {
        let b = bed();
        b.fs.create(ROOT_ID, "rel").unwrap();
        let fh = b.fs.resolve("/rel").unwrap().id;
        b.fs.write(fh, 0, &[1u8; 4096]).unwrap();
        {
            let fabric = b.fabric.clone();
            let nic = fabric.open_nic(b.cluster.add_host("releaser"));
            let sid = b.server.host.id;
            b.kernel.spawn("releaser", move |ctx| {
                let c =
                    DafsClient::connect(ctx, &fabric, &nic, sid, 2049, client_config()).unwrap();
                let f = c.lookup(ctx, ROOT_ID, "rel").unwrap();
                let dst = nic.host().mem.alloc(4096);
                c.read_cached(ctx, f.id, 0, dst, 4096).unwrap();
                c.cache_release(ctx, f.id).unwrap();
                // Idle well past the writer; with the lease returned, no
                // recall ever reaches us.
                ctx.advance(ms(20));
                assert_eq!(c.cache_stats.recalls.get(), 0);
                c.disconnect(ctx);
            });
        }
        let wrote = Arc::new(AtomicU64::new(u64::MAX));
        {
            let fabric = b.fabric.clone();
            let nic = fabric.open_nic(b.cluster.add_host("late-writer"));
            let sid = b.server.host.id;
            let wrote = wrote.clone();
            b.kernel.spawn("late-writer", move |ctx| {
                ctx.advance(ms(2));
                let c =
                    DafsClient::connect(ctx, &fabric, &nic, sid, 2049, client_config()).unwrap();
                let f = c.lookup(ctx, ROOT_ID, "rel").unwrap();
                c.write_bytes(ctx, f.id, 0, &[2u8; 4096]).unwrap();
                wrote.store(ctx.now().as_nanos(), Ordering::SeqCst);
                c.disconnect(ctx);
            });
        }
        b.kernel.run();
        // The write sailed through at ~ms(2): it never waited for the
        // releaser's ms(20) wakeup.
        assert!(wrote.load(Ordering::SeqCst) < ms(10).as_nanos());
        assert_eq!(b.fs.read(fh, 0, 4).unwrap(), vec![2u8; 4]);
    }

    #[test]
    fn holder_disconnect_releases_leases_for_waiters() {
        let b = bed();
        b.fs.create(ROOT_ID, "gone").unwrap();
        let fh = b.fs.resolve("/gone").unwrap().id;
        b.fs.write(fh, 0, &[7u8; 1024]).unwrap();
        {
            let fabric = b.fabric.clone();
            let nic = fabric.open_nic(b.cluster.add_host("leaver"));
            let sid = b.server.host.id;
            b.kernel.spawn("leaver", move |ctx| {
                let c =
                    DafsClient::connect(ctx, &fabric, &nic, sid, 2049, client_config()).unwrap();
                let f = c.lookup(ctx, ROOT_ID, "gone").unwrap();
                let dst = nic.host().mem.alloc(1024);
                c.read_cached(ctx, f.id, 0, dst, 1024).unwrap();
                // Disconnect with the lease held: the shutdown path must
                // release it so waiting writers are replayed.
                c.disconnect(ctx);
            });
        }
        {
            let fabric = b.fabric.clone();
            let nic = fabric.open_nic(b.cluster.add_host("after"));
            let sid = b.server.host.id;
            b.kernel.spawn("after", move |ctx| {
                ctx.advance(ms(2));
                let c =
                    DafsClient::connect(ctx, &fabric, &nic, sid, 2049, client_config()).unwrap();
                let f = c.lookup(ctx, ROOT_ID, "gone").unwrap();
                c.write_bytes(ctx, f.id, 0, &[8u8; 1024]).unwrap();
                c.disconnect(ctx);
            });
        }
        b.kernel.run();
        assert_eq!(b.fs.read(fh, 0, 4).unwrap(), vec![8u8; 4]);
    }
}
