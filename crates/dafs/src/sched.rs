//! Pluggable request scheduling for the DAFS server worker.
//!
//! The server's historical dispatch is FIFO-by-completion: whatever frame
//! the CQ surfaces next is served next. That is the right default (and
//! [`FifoSched`] preserves it byte-for-byte in virtual time), but it lets a
//! checkpoint burst from one tenant monopolize the single worker while an
//! interactive tenant's getattrs sit behind megabytes of queued bulk I/O.
//!
//! [`WfqSched`] adds weighted fair queueing in the spirit of
//! server-directed I/O (ViPIOS) and DAOS-style tenant separation:
//!
//! * **Deficit round-robin over byte cost** — each tenant owns a FIFO of
//!   its queued frames; tenants are visited round-robin and may dispatch
//!   while their deficit counter covers the head frame's byte cost, the
//!   counter refilling by `quantum × weight` per visit. Service converges
//!   to weight-proportional byte shares without ever preempting a frame.
//! * **Deadline boost for small ops** — getattrs and ≤inline reads carry an
//!   implicit deadline (`boost_deadline` past arrival). An expired small op
//!   at the head of any tenant queue jumps the round-robin entirely
//!   (earliest arrival first), bounding small-op tail latency under bulk
//!   load. Boosted bytes still drain the tenant's deficit, so the boost is
//!   a latency lever, not a bandwidth cheat.
//! * **Credit-window backpressure** — the admission-side knob lives in the
//!   server's `Hello` handler: an over-share tenant has its advertised
//!   credit window shrunk in proportion to its weight share, so excess load
//!   queues at the client instead of unboundedly in the scheduler.
//!
//! Scheduling state is plain deterministic data (`BTreeMap` + `VecDeque`);
//! neither queueing nor dispatch charges virtual time. All reordering
//! happens between *complete received frames*, so per-frame costs are
//! identical under either policy — only the order (and thus waiting time)
//! changes.

use std::collections::{BTreeMap, VecDeque};

use simnet::{ActorCtx, Bytes, Counter, SimDuration, SimTime};
use via::ViId;

use crate::proto::{self, DafsOp};
use crate::wire::Dec;

/// Tenant id for sessions that never declared one (legacy clients, QoS
/// hint off). They share one best-effort bucket at weight 1.
pub const DEFAULT_TENANT: u64 = 0;

/// Scheduler selection for [`crate::spawn_dafs_server_sched`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Historical FIFO-by-completion dispatch; byte-identical in virtual
    /// time to servers that predate the scheduler.
    Fifo,
    /// Weighted fair queueing across tenants with small-op deadline boost.
    Wfq(WfqParams),
}

/// Tunables for [`WfqSched`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WfqParams {
    /// Deficit refill per round-robin visit, in bytes, scaled by the
    /// tenant's weight. One quantum covers a couple of inline ops; bulk
    /// frames spanning several quanta simply accumulate deficit across
    /// rounds (DRR's starvation-freedom argument).
    pub quantum: u64,
    /// Queueing delay after which a small op (getattr, ≤inline read) jumps
    /// the round-robin.
    pub boost_deadline: SimDuration,
}

impl Default for WfqParams {
    fn default() -> Self {
        WfqParams {
            quantum: 64 << 10,
            boost_deadline: SimDuration::from_micros(50),
        }
    }
}

/// The scheduler policy named by the `MPIO_DAFS_SCHED` environment
/// variable: `wfq`/`enable`/`true` turn weighted fair queueing on;
/// anything else — including unset and `disable` — keeps the historical
/// FIFO dispatch.
pub fn policy_from_env() -> SchedPolicy {
    match std::env::var("MPIO_DAFS_SCHED").ok().as_deref() {
        Some("wfq") | Some("enable") | Some("true") => SchedPolicy::Wfq(WfqParams::default()),
        _ => SchedPolicy::Fifo,
    }
}

/// One received request frame waiting for dispatch.
pub struct QueuedReq {
    /// Session the frame arrived on.
    pub vi: ViId,
    /// Tenant the session belongs to ([`DEFAULT_TENANT`] if undeclared).
    pub tenant: u64,
    /// Scheduling weight of the tenant at enqueue time.
    pub weight: u32,
    /// Byte cost charged against the tenant's deficit (payload bytes the
    /// op will move, plus the frame itself).
    pub cost: u64,
    /// Deadline-boost eligible (getattr / ≤inline read).
    pub small: bool,
    /// Virtual time the frame was taken off the wire.
    pub arrival: SimTime,
    /// The raw request frame (zero-copy view of the received message).
    pub frame: Bytes,
}

/// Byte cost and small-op classification of a raw request frame.
///
/// The cost drives DRR fairness, so it counts the bytes the op will move
/// (decoded lengths for reads and direct transfers; the frame itself
/// already carries inline write payloads). Malformed frames cost their
/// own length and are left for `serve_one` to reject.
pub fn classify(req: &[u8]) -> (u64, bool) {
    let flen = req.len() as u64;
    let mut d = Dec::new(req);
    let Ok((_reqid, op)) = proto::dec_req_header(&mut d) else {
        return (flen, false);
    };
    match op {
        DafsOp::GetAttr => (flen, true),
        DafsOp::ReadInline => {
            let len = skip2_len(&mut d).unwrap_or(0);
            (flen + len, true)
        }
        DafsOp::ReadDirect | DafsOp::WriteDirect => {
            let len = skip2_len(&mut d).unwrap_or(0);
            (flen + len, false)
        }
        DafsOp::ReadList | DafsOp::WriteList => {
            // fh, mode, optional remote segment, then the list itself.
            let total = (|| -> Result<u64, crate::wire::WireError> {
                d.u64()?;
                let mode = d.u8()?;
                if mode != 0 {
                    d.u64()?;
                    d.u64()?;
                }
                let segs = proto::dec_seg_list(&mut d)?;
                Ok(segs.iter().map(|s| s.1).sum())
            })()
            .unwrap_or(0);
            // Inline lists already carry their payload in the frame; direct
            // lists move `total` beyond it. Charging both for either mode
            // over-counts by at most one frame length.
            (flen + total, false)
        }
        // Metadata, control, and inline-payload ops: the frame length is
        // the work (inline write payloads ride in the frame).
        _ => (flen, false),
    }
}

/// Skip two u64 body fields (fh, offset) and return the third (len) —
/// the common prefix of every single-extent I/O request.
fn skip2_len(d: &mut Dec) -> Result<u64, crate::wire::WireError> {
    d.u64()?;
    d.u64()?;
    d.u64()
}

/// Whether an op must bypass queueing entirely under a reordering policy.
///
/// `Hello` (session/tenant binding), `Disconnect`, and `LeaseRecallAck`
/// are control traffic: parking a recall ack behind a bulk queue would
/// wedge every request blocked on that recall behind the very tenant the
/// scheduler is throttling (a priority inversion). FIFO mode never calls
/// this — nothing is reordered there.
pub fn control_op(req: &[u8]) -> bool {
    let mut d = Dec::new(req);
    matches!(
        proto::dec_req_header(&mut d),
        Ok((_, DafsOp::Hello)) | Ok((_, DafsOp::Disconnect)) | Ok((_, DafsOp::LeaseRecallAck))
    )
}

/// The pluggable dispatch-order policy sitting between session receive
/// and op dispatch in the server worker.
pub trait RequestSched: Send {
    /// Whether this policy may emit frames in a different order than they
    /// were pushed. `false` promises push→pop is an identity queue, which
    /// the worker relies on to keep the historical single-frame serve path
    /// (and its virtual-time trace) unchanged.
    fn reorders(&self) -> bool;
    /// Enqueue one received frame.
    fn push(&mut self, ctx: &ActorCtx, req: QueuedReq);
    /// Next frame to serve, or `None` when idle.
    fn pop(&mut self, ctx: &ActorCtx) -> Option<QueuedReq>;
    /// Whether any frame is queued.
    fn is_empty(&self) -> bool;
    /// Drop every queued frame of a dead session (its VI is gone; serving
    /// its frames would panic on the missing session state).
    fn drop_session(&mut self, vi: ViId);
    /// Record a tenant's declared weight (from `Hello`).
    fn set_weight(&mut self, tenant: u64, weight: u32);
}

/// The historical dispatch order: frames serve strictly in arrival order.
#[derive(Default)]
pub struct FifoSched {
    queue: VecDeque<QueuedReq>,
}

impl FifoSched {
    /// Create an empty FIFO scheduler.
    pub fn new() -> FifoSched {
        FifoSched::default()
    }
}

impl RequestSched for FifoSched {
    fn reorders(&self) -> bool {
        false
    }

    fn push(&mut self, _ctx: &ActorCtx, req: QueuedReq) {
        self.queue.push_back(req);
    }

    fn pop(&mut self, _ctx: &ActorCtx) -> Option<QueuedReq> {
        self.queue.pop_front()
    }

    fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    fn drop_session(&mut self, vi: ViId) {
        self.queue.retain(|q| q.vi != vi);
    }

    fn set_weight(&mut self, _tenant: u64, _weight: u32) {}
}

/// Per-tenant queue state inside [`WfqSched`].
struct TenantQ {
    queue: VecDeque<QueuedReq>,
    /// DRR deficit counter, bytes.
    deficit: u64,
    weight: u32,
    /// Whether the current head-of-round visit already refilled `deficit`.
    topped_up: bool,
    /// Membership in the active round-robin ring.
    in_ring: bool,
    /// `dafs.sched.t{id}.queued_ns` — virtual ns frames of this tenant
    /// spent queued before dispatch.
    queued_ns: Counter,
    /// `dafs.sched.t{id}.boosts` — deadline-boost dispatches.
    boosts: Counter,
}

/// Weighted fair queueing across tenants: deficit round-robin over byte
/// cost with an earliest-deadline boost lane for small ops.
pub struct WfqSched {
    params: WfqParams,
    tenants: BTreeMap<u64, TenantQ>,
    /// Round-robin ring of tenant ids with queued work, in visit order.
    ring: VecDeque<u64>,
    len: usize,
}

impl WfqSched {
    /// Create an empty WFQ scheduler with the given tunables.
    pub fn new(params: WfqParams) -> WfqSched {
        WfqSched {
            params,
            tenants: BTreeMap::new(),
            ring: VecDeque::new(),
            len: 0,
        }
    }

    fn tenant_entry<'a>(
        tenants: &'a mut BTreeMap<u64, TenantQ>,
        ctx: &ActorCtx,
        tenant: u64,
        weight: u32,
    ) -> &'a mut TenantQ {
        tenants.entry(tenant).or_insert_with(|| TenantQ {
            queue: VecDeque::new(),
            deficit: 0,
            weight: weight.max(1),
            topped_up: false,
            in_ring: false,
            queued_ns: ctx
                .metrics()
                .counter(&format!("dafs.sched.t{tenant}.queued_ns")),
            boosts: ctx
                .metrics()
                .counter(&format!("dafs.sched.t{tenant}.boosts")),
        })
    }

    fn finish_pop(&mut self, ctx: &ActorCtx, tenant: u64, req: QueuedReq) -> Option<QueuedReq> {
        let tq = self.tenants.get_mut(&tenant).expect("tenant present");
        tq.queued_ns.add(ctx.now().since(req.arrival).as_nanos());
        self.len -= 1;
        Some(req)
    }
}

impl RequestSched for WfqSched {
    fn reorders(&self) -> bool {
        true
    }

    fn push(&mut self, ctx: &ActorCtx, req: QueuedReq) {
        let tenant = req.tenant;
        let tq = Self::tenant_entry(&mut self.tenants, ctx, tenant, req.weight);
        tq.queue.push_back(req);
        if !tq.in_ring {
            tq.in_ring = true;
            self.ring.push_back(tenant);
        }
        self.len += 1;
    }

    fn pop(&mut self, ctx: &ActorCtx) -> Option<QueuedReq> {
        if self.len == 0 {
            return None;
        }
        let now = ctx.now();
        // Deadline lane: the earliest-arrived small op whose deadline has
        // expired jumps the ring. Only queue heads are eligible so each
        // tenant's own frames never reorder against each other.
        let mut boost: Option<(u64, u64)> = None; // (arrival_ns, tenant)
        for (tid, tq) in &self.tenants {
            if let Some(head) = tq.queue.front() {
                if head.small && now.since(head.arrival) >= self.params.boost_deadline {
                    let a = head.arrival.as_nanos();
                    if boost.is_none_or(|(ba, _)| a < ba) {
                        boost = Some((a, *tid));
                    }
                }
            }
        }
        if let Some((_, tid)) = boost {
            let tq = self.tenants.get_mut(&tid).expect("boost tenant");
            let req = tq.queue.pop_front().expect("boost head");
            tq.boosts.inc();
            // Boosted bytes still drain the deficit: the boost buys
            // latency, never extra bandwidth share.
            tq.deficit = tq.deficit.saturating_sub(req.cost);
            return self.finish_pop(ctx, tid, req);
        }
        // DRR main lane.
        loop {
            let tid = *self.ring.front()?;
            let tq = self.tenants.get_mut(&tid).expect("ring tenant");
            if tq.queue.is_empty() {
                tq.in_ring = false;
                tq.topped_up = false;
                tq.deficit = 0;
                self.ring.pop_front();
                continue;
            }
            if !tq.topped_up {
                tq.deficit = tq
                    .deficit
                    .saturating_add(self.params.quantum.saturating_mul(tq.weight as u64));
                tq.topped_up = true;
            }
            let cost = tq.queue.front().expect("head").cost;
            if tq.deficit >= cost {
                let req = tq.queue.pop_front().expect("head");
                tq.deficit -= cost;
                return self.finish_pop(ctx, tid, req);
            }
            // Deficit exhausted: yield the round to the next tenant. The
            // deficit carries over, so a frame wider than one quantum is
            // reached after finitely many rounds (starvation freedom).
            tq.topped_up = false;
            let front = self.ring.pop_front().expect("ring front");
            self.ring.push_back(front);
        }
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn drop_session(&mut self, vi: ViId) {
        for tq in self.tenants.values_mut() {
            let before = tq.queue.len();
            tq.queue.retain(|q| q.vi != vi);
            self.len -= before - tq.queue.len();
        }
        // Emptied tenants fall out of the ring lazily in `pop`.
    }

    fn set_weight(&mut self, tenant: u64, weight: u32) {
        if let Some(tq) = self.tenants.get_mut(&tenant) {
            tq.weight = weight.max(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::SimKernel;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    fn req(vi: u64, tenant: u64, weight: u32, cost: u64, small: bool, at: SimTime) -> QueuedReq {
        QueuedReq {
            vi: ViId(vi),
            tenant,
            weight,
            cost,
            small,
            arrival: at,
            frame: Bytes::from_vec(vec![0u8; 8]),
        }
    }

    fn in_kernel(f: impl FnOnce(&ActorCtx) + Send + 'static) {
        let k = SimKernel::new();
        let done = Arc::new(AtomicBool::new(false));
        let d = done.clone();
        k.spawn("sched-test", move |ctx| {
            f(ctx);
            d.store(true, Ordering::Relaxed);
        });
        k.run();
        assert!(done.load(Ordering::Relaxed));
    }

    #[test]
    fn fifo_is_an_identity_queue() {
        in_kernel(|ctx| {
            let mut s = FifoSched::new();
            assert!(!s.reorders());
            for i in 0..5u64 {
                s.push(ctx, req(i, i % 2, 1, 1000 * (i + 1), false, ctx.now()));
            }
            for i in 0..5u64 {
                assert_eq!(s.pop(ctx).unwrap().vi, ViId(i));
            }
            assert!(s.is_empty());
        });
    }

    #[test]
    fn drr_shares_follow_weights() {
        in_kernel(|ctx| {
            let mut s = WfqSched::new(WfqParams {
                quantum: 4096,
                boost_deadline: SimDuration::from_micros(1_000_000),
            });
            // Two backlogged tenants, weight 3:1, equal-cost frames.
            for i in 0..64u64 {
                s.push(ctx, req(1, 1, 3, 4096, false, ctx.now()));
                s.push(ctx, req(2, 2, 1, 4096, false, ctx.now()));
                let _ = i;
            }
            let mut served = [0u64; 3];
            for _ in 0..32 {
                let q = s.pop(ctx).unwrap();
                served[q.tenant as usize] += q.cost;
            }
            let ratio = served[1] as f64 / served[2] as f64;
            assert!(
                (2.0..4.5).contains(&ratio),
                "weight-3 tenant got {ratio}x the bytes, want ~3x"
            );
        });
    }

    #[test]
    fn expired_small_op_jumps_the_ring() {
        in_kernel(|ctx| {
            let mut s = WfqSched::new(WfqParams {
                quantum: 1 << 20,
                boost_deadline: SimDuration::from_micros(10),
            });
            // Bulk tenant backlog first, then a small op from another
            // tenant that has already waited past its deadline.
            for _ in 0..8 {
                s.push(ctx, req(1, 1, 1, 1 << 20, false, ctx.now()));
            }
            let early = ctx.now();
            ctx.advance(SimDuration::from_micros(50));
            s.push(ctx, req(2, 2, 1, 64, true, early));
            let first = s.pop(ctx).unwrap();
            assert_eq!(first.tenant, 2, "expired small op must dispatch first");
            assert_eq!(ctx.metrics().counter("dafs.sched.t2.boosts").get(), 1);
        });
    }

    #[test]
    fn unexpired_small_op_waits_its_turn() {
        in_kernel(|ctx| {
            let mut s = WfqSched::new(WfqParams {
                quantum: 1 << 20,
                boost_deadline: SimDuration::from_micros(10_000),
            });
            s.push(ctx, req(1, 1, 1, 1 << 20, false, ctx.now()));
            s.push(ctx, req(2, 2, 1, 64, true, ctx.now()));
            // No deadline has expired: plain DRR order (tenant 1 first).
            assert_eq!(s.pop(ctx).unwrap().tenant, 1);
            assert_eq!(s.pop(ctx).unwrap().tenant, 2);
        });
    }

    #[test]
    fn oversize_frame_is_reached_across_rounds() {
        in_kernel(|ctx| {
            let mut s = WfqSched::new(WfqParams {
                quantum: 4096,
                boost_deadline: SimDuration::from_micros(1_000_000),
            });
            // A frame 8 quanta wide must still dispatch (deficit carries
            // over), even while a second tenant keeps its queue hot.
            s.push(ctx, req(1, 1, 1, 8 * 4096, false, ctx.now()));
            for _ in 0..32 {
                s.push(ctx, req(2, 2, 1, 4096, false, ctx.now()));
            }
            let mut seen_big = false;
            for _ in 0..20 {
                if let Some(q) = s.pop(ctx) {
                    if q.tenant == 1 {
                        seen_big = true;
                        break;
                    }
                }
            }
            assert!(seen_big, "wide frame starved");
        });
    }

    #[test]
    fn drop_session_removes_only_that_vi() {
        in_kernel(|ctx| {
            let mut s = WfqSched::new(WfqParams::default());
            s.push(ctx, req(1, 1, 1, 100, false, ctx.now()));
            s.push(ctx, req(2, 1, 1, 100, false, ctx.now()));
            s.push(ctx, req(3, 2, 1, 100, false, ctx.now()));
            s.drop_session(ViId(1));
            let mut vis = Vec::new();
            while let Some(q) = s.pop(ctx) {
                vis.push(q.vi.0);
            }
            vis.sort_unstable();
            assert_eq!(vis, vec![2, 3]);
            assert!(s.is_empty());
        });
    }

    #[test]
    fn policy_env_mapping() {
        // Pure mapping check (no env mutation): default is FIFO.
        assert_eq!(policy_from_env(), SchedPolicy::Fifo);
        assert_eq!(
            SchedPolicy::Wfq(WfqParams::default()),
            SchedPolicy::Wfq(WfqParams {
                quantum: 64 << 10,
                boost_deadline: SimDuration::from_micros(50),
            })
        );
    }
}
