//! DAFS wire encoding: a compact little-endian TLV-free format.
//!
//! DAFS defined its own marshalling (not XDR); we keep the same spirit:
//! fixed-width little-endian integers, length-prefixed byte strings, no
//! padding. Request and response payloads are built with [`Enc`] and parsed
//! with [`Dec`].

/// Wire encoder.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Fresh encoder.
    pub fn new() -> Enc {
        Enc::default()
    }

    /// Append a u8.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Append a little-endian u32.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a little-endian u64.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
        self
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.bytes(s.as_bytes())
    }

    /// Append already-encoded wire bytes verbatim (no length prefix).
    pub fn raw(&mut self, v: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(v);
        self
    }

    /// Finish, returning the wire bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes encoded so far.
    #[allow(dead_code)]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been encoded.
    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Decode failure (truncated or malformed message).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireError;

/// Wire decoder.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Decode from `buf`.
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(WireError);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a u8.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a u32.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a u64.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let n = self.u32()? as usize;
        if n > self.buf.len() - self.pos {
            return Err(WireError);
        }
        Ok(self.take(n)?.to_vec())
    }

    /// Read a length-prefixed string.
    pub fn str(&mut self) -> Result<String, WireError> {
        String::from_utf8(self.bytes()?).map_err(|_| WireError)
    }

    /// Bytes not yet consumed.
    #[allow(dead_code)]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed() {
        let mut e = Enc::new();
        e.u8(7)
            .u32(0xABCD)
            .u64(1 << 40)
            .str("file.dat")
            .bytes(b"xyz");
        let b = e.finish();
        let mut d = Dec::new(&b);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xABCD);
        assert_eq!(d.u64().unwrap(), 1 << 40);
        assert_eq!(d.str().unwrap(), "file.dat");
        assert_eq!(d.bytes().unwrap(), b"xyz");
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn truncation_detected() {
        let mut e = Enc::new();
        e.u32(10).u8(1);
        let b = e.finish();
        let mut d = Dec::new(&b);
        assert_eq!(d.bytes(), Err(WireError));
        let mut d2 = Dec::new(&[1, 2]);
        assert_eq!(d2.u32(), Err(WireError));
    }

    #[test]
    fn empty_bytes_ok() {
        let mut e = Enc::new();
        e.bytes(b"");
        let b = e.finish();
        assert_eq!(Dec::new(&b).bytes().unwrap(), b"");
    }
}
