//! The DAFS client (`dap_*`-style API).
//!
//! One VI per session; `credits` pre-posted receive descriptors double as
//! the response buffers and the pipeline depth for batch I/O. Requests
//! carry session-local ids so responses can be matched out of order.
//!
//! Transfer strategy (the `direct_threshold` knob):
//! * requests ≤ threshold go **inline** — one copy on each host, lowest
//!   latency for small transfers;
//! * larger reads use **READ_DIRECT** — the server RDMA-Writes into the
//!   (cached-registered) user buffer; the client CPU does nothing per byte;
//! * larger writes use **WRITE_DIRECT** when the fabric supports RDMA Read,
//!   else fall back to inline chunks (the cLAN configuration).

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::atomic::{AtomicU32, Ordering};

use memfs::{FileAttr, NodeId};
use parking_lot::Mutex;
use simnet::{ActorCtx, ByteMeter, Bytes, Counter, HostId, VirtAddr};
use via::{
    Completion, ConnectError, DataSegment, MemAttributes, MemHandle, ProtectionTag, RecvDesc,
    SendDesc, Vi, ViAttributes, ViState, ViaFabric, ViaNic, ViaStatus,
};

use crate::cost::DafsClientConfig;
use crate::proto::{self, DafsOp, DafsStatus, LeaseKind, ServerCaps};
use crate::regcache::{RegCache, RegCacheStats};
use crate::server::SLOT;
use crate::wire::{Dec, Enc};

/// DAFS client errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DafsError {
    /// Server returned a non-OK status.
    Status(DafsStatus),
    /// The session's VI broke or disconnected; carries the VIA completion
    /// status that killed it.
    Transport(ViaStatus),
    /// Malformed response.
    Protocol,
    /// Connection could not be established.
    Connect(ConnectError),
}

impl From<ConnectError> for DafsError {
    fn from(e: ConnectError) -> DafsError {
        DafsError::Connect(e)
    }
}

impl std::fmt::Display for DafsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DafsError::Status(s) => write!(f, "DAFS server returned {s:?}"),
            DafsError::Transport(s) => write!(f, "DAFS session transport failure: {s}"),
            DafsError::Protocol => write!(f, "malformed DAFS response"),
            DafsError::Connect(e) => write!(f, "DAFS session setup failed: {e}"),
        }
    }
}

impl std::error::Error for DafsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DafsError::Transport(s) => Some(s),
            DafsError::Connect(e) => Some(e),
            _ => None,
        }
    }
}

/// Convenience alias.
pub type DafsResult<T> = Result<T, DafsError>;

/// Client-side counters.
#[derive(Clone, Default)]
pub struct DafsClientStats {
    /// Requests issued.
    pub ops: Counter,
    /// Inline READ traffic.
    pub inline_reads: ByteMeter,
    /// Inline WRITE traffic.
    pub inline_writes: ByteMeter,
    /// Direct READ traffic.
    pub direct_reads: ByteMeter,
    /// Direct WRITE traffic.
    pub direct_writes: ByteMeter,
}

/// Named counters for the lease-coherent client cache — the same objects
/// back the `dafs.cache.*` metrics in the obs registry, so bench reports
/// and live metrics can never disagree.
#[derive(Clone, Default)]
pub struct DafsCacheStats {
    /// Cached reads served without touching the server.
    pub hits: Counter,
    /// Cached reads that had to fetch at least one page.
    pub misses: Counter,
    /// Attribute fetches served from the cache.
    pub attr_hits: Counter,
    /// Attribute fetches that went to the server.
    pub attr_misses: Counter,
    /// Lease recalls processed (flush + ack).
    pub recalls: Counter,
    /// Cached pages dropped (recall, eviction, overwrite, reconnect).
    pub invalidations: Counter,
    /// Wire requests carrying coalesced write-back flushes. Together with
    /// `flush_pages` this is the flush amortization ratio: pages per wire
    /// request, ≥1 once runs coalesce.
    pub flush_batches: Counter,
    /// Dirty pages retired through those flush requests.
    pub flush_pages: Counter,
}

/// Lease-coherent cache state: pages and attributes the client may serve
/// locally while it holds a lease, plus the recalls queued for service.
/// All maps are ordered so flush/eviction sweeps are deterministic.
#[derive(Default)]
struct ClientCache {
    /// Leases this session believes it holds.
    leases: BTreeMap<u64, LeaseKind>,
    /// Cached attributes, keyed by file handle.
    attrs: BTreeMap<u64, FileAttr>,
    /// Cached pages: `(fh, page index)` → bytes (full pages except at EOF).
    pages: BTreeMap<(u64, u64), Vec<u8>>,
    /// Write-back pages not yet flushed to the server.
    dirty: BTreeSet<(u64, u64)>,
    /// Recall pushes received but not yet serviced: `(fh, recall id)`.
    recalls: VecDeque<(u64, u32)>,
}

/// One read request in a batch.
#[derive(Debug, Clone, Copy)]
pub struct ReadReq {
    /// File to read.
    pub fh: NodeId,
    /// Byte offset.
    pub off: u64,
    /// Destination buffer (simulated memory on the client host).
    pub dst: VirtAddr,
    /// Bytes requested.
    pub len: u64,
}

/// One write request in a batch.
#[derive(Debug, Clone, Copy)]
pub struct WriteReq {
    /// File to write.
    pub fh: NodeId,
    /// Byte offset.
    pub off: u64,
    /// Source buffer.
    pub src: VirtAddr,
    /// Bytes to write.
    pub len: u64,
}

/// One vectored request in a list batch: sorted non-overlapping file
/// segments mapping into one client buffer. Segments are
/// `(file offset, len, buffer offset)`; the buffer offsets let one list
/// express a packed layout (prefix sums), an offset-aligned collective
/// drain (`off - off0`), or striped fragment positions.
#[derive(Debug, Clone)]
pub struct ListReq {
    /// File to access.
    pub fh: NodeId,
    /// Segments, ascending on both the file and the buffer axis.
    pub segs: Vec<proto::ListSeg>,
    /// Base buffer; segment `i` lives at `buf + segs[i].2`.
    pub buf: VirtAddr,
}

impl ListReq {
    /// A packed list: `ranges` consume `buf` back-to-back in list order.
    pub fn packed(fh: NodeId, ranges: &[(u64, u64)], buf: VirtAddr) -> ListReq {
        let mut rel = 0u64;
        let segs = ranges
            .iter()
            .map(|&(off, len)| {
                let s = (off, len, rel);
                rel += len;
                s
            })
            .collect();
        ListReq { fh, segs, buf }
    }

    /// Total bytes the list covers.
    pub fn total(&self) -> u64 {
        self.segs.iter().map(|s| s.1).sum()
    }
}

/// One expanded sub-operation of a batch: a whole direct transfer, one
/// inline-sized chunk of a larger request, or one segment-capped slice of
/// a vectored list request.
struct Sub {
    owner: usize,
    fh: NodeId,
    off: u64,
    addr: VirtAddr,
    len: u64,
    direct: bool,
    /// List sub: segments with buffer offsets rebased onto `addr`. `off`
    /// is unused then; `len` is the segments' total byte count.
    segs: Option<Vec<proto::ListSeg>>,
}

/// Which way a batch moves data.
#[derive(Clone, Copy, PartialEq, Eq)]
enum BatchDir {
    Read,
    Write,
}

/// A split-phase pipelined batch.
///
/// The issue half ([`DafsClient::read_batch_begin`] /
/// [`DafsClient::write_batch_begin`]) posts as many sub-requests as the
/// session's credit window allows and returns immediately, so the server
/// processes them while the caller overlaps other work.
/// [`DafsClient::batch_test`] opportunistically retires completions that
/// already arrived without blocking; [`DafsClient::batch_finish`] blocks
/// for the remainder and runs the transport-failure recovery pass.
///
/// The credit window is a hard invariant: the client owns exactly
/// `credits` pre-posted receive descriptors, so at most one batch may be
/// outstanding per session — finish one before beginning the next.
pub struct DafsBatch {
    dir: BatchDir,
    subs: Vec<Sub>,
    results: Vec<DafsResult<u64>>,
    inflight: VecDeque<(u32, usize, MemHandle, bool)>,
    next: usize,
    read_reqs: Vec<ReadReq>,
    write_reqs: Vec<WriteReq>,
    list_reqs: Vec<ListReq>,
    /// Transport failure observed by the nonblocking poll; the finish half
    /// fails the remaining in-flight subs with it instead of waiting on a
    /// session that already died.
    failed: Option<DafsError>,
}

impl DafsBatch {
    /// Sub-requests posted but not yet retired.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }
}

fn rw_attrs(ptag: ProtectionTag) -> MemAttributes {
    MemAttributes {
        ptag,
        enable_rdma_write: true,
        enable_rdma_read: true,
    }
}

/// A DAFS session.
///
/// The session survives transport failures: when the VI breaks, operations
/// routed through the retryable request path re-establish the session
/// (bounded by `max_reconnects`) and replay the in-flight request under
/// its **original** request id, which the server's replay cache uses to
/// make non-idempotent operations exactly-once.
pub struct DafsClient {
    /// The live VI; swapped wholesale on reconnect.
    vi: Mutex<Vi>,
    nic: ViaNic,
    fabric: ViaFabric,
    server: HostId,
    port: u16,
    config: DafsClientConfig,
    caps: Mutex<ServerCaps>,
    /// QoS tenant binding declared to the server (config, or a later
    /// [`DafsClient::declare_tenant`]); re-declared on every reconnect.
    tenant: Mutex<Option<(u64, u32)>>,
    /// Stable client identity across reconnects: the VI id of the first
    /// session (fabric-scoped, so identical runs get identical ids).
    client_id: u64,
    reqid: AtomicU32,
    req_ring: Mutex<Vec<(VirtAddr, MemHandle)>>,
    req_next: Mutex<usize>,
    recv_ring: Mutex<VecDeque<(VirtAddr, MemHandle)>>,
    regcache: RegCache,
    pending: Mutex<HashMap<u32, Bytes>>,
    scratch: Mutex<Option<(VirtAddr, usize)>>,
    cache: Mutex<ClientCache>,
    /// Client counters.
    pub stats: DafsClientStats,
    /// Lease-coherent cache counters.
    pub cache_stats: DafsCacheStats,
}

impl DafsClient {
    /// Establish a session with the DAFS server at `(server, port)`.
    pub fn connect(
        ctx: &ActorCtx,
        fabric: &ViaFabric,
        nic: &ViaNic,
        server: HostId,
        port: u16,
        config: DafsClientConfig,
    ) -> DafsResult<DafsClient> {
        let vi = fabric
            .connect(ctx, nic, server, port, ViAttributes::default())
            .map_err(DafsError::Connect)?;
        let tag = vi.ptag();
        let mut req_ring = Vec::new();
        let mut recv_ring = VecDeque::new();
        for _ in 0..config.credits {
            let buf = nic.host().mem.alloc(SLOT as usize);
            let h = nic.register_mem(ctx, buf, SLOT, MemAttributes::local(tag));
            req_ring.push((buf, h));
        }
        for _ in 0..config.credits {
            let buf = nic.host().mem.alloc(SLOT as usize);
            let h = nic.register_mem(ctx, buf, SLOT, MemAttributes::local(tag));
            vi.post_recv(
                ctx,
                RecvDesc::new(vec![DataSegment::new(buf, SLOT as u32, h)]),
            );
            recv_ring.push_back((buf, h));
        }
        let regcache = RegCache::new(
            nic.clone(),
            tag,
            rw_attrs,
            config.regcache_capacity,
            config.use_regcache,
        );
        let client_id = vi.id().0;
        let client = DafsClient {
            vi: Mutex::new(vi),
            nic: nic.clone(),
            fabric: fabric.clone(),
            server,
            port,
            config,
            caps: Mutex::new(ServerCaps {
                rdma_read: false,
                credits: config.credits,
                inline_max: config.inline_max,
            }),
            tenant: Mutex::new(config.tenant),
            client_id,
            reqid: AtomicU32::new(1),
            req_ring: Mutex::new(req_ring),
            req_next: Mutex::new(0),
            recv_ring: Mutex::new(recv_ring),
            regcache,
            pending: Mutex::new(HashMap::new()),
            scratch: Mutex::new(None),
            cache: Mutex::new(ClientCache::default()),
            stats: DafsClientStats::default(),
            cache_stats: DafsCacheStats::default(),
        };
        // Capability exchange; carries our stable client id. The handshake
        // itself rides the faulted fabric, so it gets the same bounded
        // reconnect treatment as any other request.
        let mut attempt = 0u32;
        let resp = loop {
            let mut e = Self::hello_args(client_id, config.tenant);
            let reqid = client.post_request(ctx, DafsOp::Hello, &mut e);
            match client.wait_response(ctx, reqid) {
                Ok(r) => break r,
                Err(DafsError::Transport(_) | DafsError::Connect(_))
                    if attempt < client.config.max_reconnects =>
                {
                    attempt += 1;
                    let _ = client.reconnect(ctx, attempt);
                }
                Err(e) => return Err(e),
            }
        };
        let payload = Self::decode_resp(&resp)?;
        let caps = client.apply_hello_caps(&payload)?;
        ctx.metrics().counter("dafs.sessions").inc();
        // Pre-register the event counters benches read back, so a run where
        // the event never fires still snapshots an explicit zero and checked
        // lookups (`Snapshot::expect`) can tell "never happened" from a typo.
        for name in [
            "dafs.reconnects",
            "dafs.direct_fallbacks",
            "dafs.list.reqs",
            "dafs.regcache.hits",
            "dafs.regcache.misses",
            "dafs.regcache.evictions",
            "dafs.cache.hits",
            "dafs.cache.attr_hits",
            "dafs.cache.flush_batches",
            "dafs.cache.flush_pages",
        ] {
            let _ = ctx.metrics().counter(name);
        }
        ctx.trace(
            "dafs",
            "session.connect",
            &[
                ("server", obs::Value::U64(server.0 as u64)),
                ("rdma_read", obs::Value::Bool(caps.rdma_read)),
                ("credits", obs::Value::U64(caps.credits as u64)),
                ("inline_max", obs::Value::U64(caps.inline_max)),
            ],
        );
        Ok(client)
    }

    /// Encode a `Hello` body: the stable client id plus the optional QoS
    /// tenant extension `(tenant id u64, weight u32)`.
    fn hello_args(client_id: u64, tenant: Option<(u64, u32)>) -> Enc {
        let mut e = Enc::new();
        e.u64(client_id);
        if let Some((t, w)) = tenant {
            e.u64(t);
            e.u32(w);
        }
        e
    }

    /// Decode a `Hello` reply payload (after the response header) and
    /// install the negotiated capabilities.
    fn apply_hello_caps(&self, payload: &[u8]) -> DafsResult<ServerCaps> {
        let mut d = Dec::new(payload);
        let rdma_read = d.u8().map_err(|_| DafsError::Protocol)? != 0;
        let credits = d.u32().map_err(|_| DafsError::Protocol)?;
        let inline_max = d.u64().map_err(|_| DafsError::Protocol)?;
        let caps = ServerCaps {
            rdma_read,
            credits,
            inline_max: inline_max.min(self.config.inline_max),
        };
        *self.caps.lock() = caps;
        Ok(caps)
    }

    /// The capabilities negotiated at session setup (and re-negotiated by
    /// [`DafsClient::declare_tenant`] or a reconnect).
    pub fn caps(&self) -> ServerCaps {
        *self.caps.lock()
    }

    /// The stable client id the server keys its replay cache by.
    pub fn client_id(&self) -> u64 {
        self.client_id
    }

    /// Declare this session's QoS tenant binding (the `dafs_qos` hint
    /// path): a fresh `Hello` carries `(tenant, weight)`, and the reply's —
    /// possibly throttled — credit window replaces the session's negotiated
    /// caps. The binding sticks for the life of the client and is
    /// re-declared on every reconnect.
    pub fn declare_tenant(
        &self,
        ctx: &ActorCtx,
        tenant: u64,
        weight: u32,
    ) -> DafsResult<ServerCaps> {
        *self.tenant.lock() = Some((tenant, weight));
        // Ride the retryable path: a declaration must survive the same
        // transport faults any other control op does (Hello re-executes
        // idempotently, so replays are harmless).
        let mut e = Self::hello_args(self.client_id, Some((tenant, weight)));
        let payload = self.call(ctx, DafsOp::Hello, &mut e)?;
        self.apply_hello_caps(&payload)
    }

    /// The session's configuration.
    pub fn config(&self) -> &DafsClientConfig {
        &self.config
    }

    /// Registration-cache counters, snapshotted by name.
    pub fn regcache_stats(&self) -> RegCacheStats {
        self.regcache.stats()
    }

    /// Bytes currently pinned by the registration cache. With the cache
    /// enabled this stays at the cached working-set size between
    /// operations; it must return to zero after [`DafsClient::regcache_flush`].
    pub fn regcache_pinned(&self) -> u64 {
        self.regcache.pinned()
    }

    /// Deregister every cached registration now (also done on disconnect).
    pub fn regcache_flush(&self, ctx: &ActorCtx) {
        self.regcache.flush(ctx);
    }

    /// The client NIC.
    pub fn nic(&self) -> &ViaNic {
        &self.nic
    }

    /// Allocate the next request id.
    fn next_reqid(&self) -> u32 {
        self.reqid.fetch_add(1, Ordering::Relaxed)
    }

    /// Build and post one request; returns its id. `body` receives the
    /// header; the caller must have appended the op arguments already —
    /// so this takes the op and an `Enc` holding only the arguments.
    fn post_request(&self, ctx: &ActorCtx, op: DafsOp, args: &mut Enc) -> u32 {
        let reqid = self.next_reqid();
        self.post_request_raw(ctx, reqid, op, &std::mem::take(args).finish());
        reqid
    }

    /// Post a request under a caller-chosen id — the replay path reuses an
    /// id so the server can recognize a retransmitted operation.
    fn post_request_raw(&self, ctx: &ActorCtx, reqid: u32, op: DafsOp, args: &[u8]) {
        self.stats.ops.inc();
        ctx.metrics().counter("dafs.ops").inc();
        self.nic.host().compute(ctx, self.config.per_op);
        let mut e = Enc::new();
        proto::enc_req_header(&mut e, reqid, op);
        let mut bytes = e.finish();
        bytes.extend_from_slice(args);
        assert!(bytes.len() as u64 <= SLOT, "request overflows message slot");
        // Copy into the next registered request slot.
        self.nic
            .host()
            .compute(ctx, self.config.host.copy(bytes.len() as u64));
        let ring = self.req_ring.lock();
        let slot = {
            let mut next = self.req_next.lock();
            let s = *next;
            *next = (s + 1) % ring.len();
            s
        };
        let (buf, h) = ring[slot];
        drop(ring);
        self.nic.host().mem.write(buf, &bytes);
        let vi = self.vi.lock();
        // Drain stale send completions to keep the port bounded.
        while vi.send_done(ctx).is_some() {}
        vi.post_send(
            ctx,
            SendDesc::send(vec![DataSegment::new(buf, bytes.len() as u32, h)]),
        );
    }

    /// Pop the front recv-ring slot, take a zero-copy view of the arrived
    /// response, re-post the descriptor, and stash the view under its
    /// request id. The completion carries the delivered frame, so the
    /// posted buffer is never re-read.
    fn stash_response(&self, ctx: &ActorCtx, vi: &Vi, completion: Completion) -> DafsResult<()> {
        let len = completion.len as usize;
        let (buf, h) = {
            let mut ring = self.recv_ring.lock();
            let slot = ring.pop_front().expect("recv ring");
            ring.push_back(slot);
            slot
        };
        let resp = completion
            .payload
            .unwrap_or_else(|| self.nic.host().mem.read_bytes(buf, len));
        vi.post_recv(
            ctx,
            RecvDesc::new(vec![DataSegment::new(buf, SLOT as u32, h)]),
        );
        let mut d = Dec::new(&resp);
        let (rid, _) = proto::dec_resp_header(&mut d).map_err(|_| DafsError::Protocol)?;
        if rid == 0 {
            // Unsolicited server push (request ids start at 1): a lease
            // recall. Only queue it here — this runs under the VI lock, and
            // servicing means flushing and acking over that same VI.
            if let Ok((fh, recall_id)) = proto::dec_recall_push(&mut d) {
                self.cache.lock().recalls.push_back((fh.0, recall_id));
            }
            return Ok(());
        }
        self.pending.lock().insert(rid, resp);
        Ok(())
    }

    /// Await the response for `reqid`, stashing any other responses that
    /// arrive first.
    fn wait_response(&self, ctx: &ActorCtx, reqid: u32) -> DafsResult<Bytes> {
        loop {
            if let Some(resp) = self.pending.lock().remove(&reqid) {
                return Ok(resp);
            }
            let vi = self.vi.lock();
            if vi.state() != ViState::Connected {
                return Err(DafsError::Transport(ViaStatus::ConnectionLost));
            }
            let completion = vi.recv_wait(ctx);
            match completion.status {
                ViaStatus::Success => {}
                status => return Err(DafsError::Transport(status)),
            }
            self.stash_response(ctx, &vi, completion)?;
        }
    }

    /// Drain every response completion that has already arrived, without
    /// blocking (the split-phase `test` path). Each VIA poll charges the
    /// NIC's poll cost, so this is **not** virtual-time-free.
    fn poll_responses(&self, ctx: &ActorCtx) -> DafsResult<()> {
        let vi = self.vi.lock();
        if vi.state() != ViState::Connected {
            return Err(DafsError::Transport(ViaStatus::ConnectionLost));
        }
        while let Some(completion) = vi.recv_done(ctx) {
            match completion.status {
                ViaStatus::Success => {}
                status => return Err(DafsError::Transport(status)),
            }
            self.stash_response(ctx, &vi, completion)?;
        }
        Ok(())
    }

    /// Decode a response: check the status, return a view of the payload.
    fn decode_resp(resp: &Bytes) -> DafsResult<Bytes> {
        let mut d = Dec::new(resp);
        let (_, status) = proto::dec_resp_header(&mut d).map_err(|_| DafsError::Protocol)?;
        if status != DafsStatus::Ok {
            return Err(DafsError::Status(status));
        }
        Ok(resp.slice(5..))
    }

    /// Synchronous request/response with session recovery: a transport
    /// failure re-establishes the session (bounded backoff) and replays the
    /// request under its original id, so the server-side replay cache makes
    /// non-idempotent operations exactly-once.
    fn call(&self, ctx: &ActorCtx, op: DafsOp, args: &mut Enc) -> DafsResult<Bytes> {
        let args = std::mem::take(args).finish();
        let reqid = self.next_reqid();
        let mut attempt = 0u32;
        loop {
            self.post_request_raw(ctx, reqid, op, &args);
            match self.wait_response(ctx, reqid) {
                Ok(resp) => return Self::decode_resp(&resp),
                Err(DafsError::Transport(_) | DafsError::Connect(_))
                    if attempt < self.config.max_reconnects =>
                {
                    attempt += 1;
                    // A failed redial falls through: the next iteration's
                    // post fails fast on the dead VI and we land here again
                    // with a longer backoff, until attempts are exhausted.
                    let _ = self.reconnect(ctx, attempt);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Synchronous request/response with **no** recovery: used by the
    /// direct-I/O paths, whose requests embed registration handles that die
    /// with the session (the caller falls back to inline instead).
    fn call_once(&self, ctx: &ActorCtx, op: DafsOp, args: &mut Enc) -> DafsResult<Bytes> {
        let reqid = self.post_request(ctx, op, args);
        let resp = self.wait_response(ctx, reqid)?;
        Self::decode_resp(&resp)
    }

    /// Tear down all old-session state and dial a fresh session. On
    /// success the VI, rings, registration cache, and server-side client
    /// binding (via Hello) are all re-established; `pending` responses from
    /// the dead session are discarded.
    fn reconnect(&self, ctx: &ActorCtx, attempt: u32) -> DafsResult<()> {
        ctx.metrics().counter("dafs.reconnects").inc();
        ctx.trace(
            "dafs",
            "session.reconnect",
            &[("attempt", obs::Value::U64(attempt as u64))],
        );
        // Exponential backoff rides out transient outages (link flaps,
        // server crash windows) without hammering the connection manager.
        let backoff = self
            .config
            .reconnect_backoff
            .saturating_mul(1u64 << (attempt - 1).min(20));
        ctx.advance(backoff);
        let vi = self
            .fabric
            .connect(
                ctx,
                &self.nic,
                self.server,
                self.port,
                ViAttributes::default(),
            )
            .map_err(DafsError::Connect)?;
        let tag = vi.ptag();
        // Responses from the dead session can never arrive.
        self.pending.lock().clear();
        // Revalidate-on-reconnect: the server reclaimed our leases the
        // moment it saw ConnectionLost, so every cached object is suspect.
        // Clean state is dropped; dirty write-back pages survive and are
        // re-flushed through the new session by the next cache entry point
        // (those writes carry fresh request ids, so the replay cache keeps
        // them exactly-once even if this session dies too).
        {
            let mut c = self.cache.lock();
            c.leases.clear();
            c.attrs.clear();
            c.recalls.clear(); // acked implicitly by the session teardown
            let dirty = std::mem::take(&mut c.dirty);
            let before = c.pages.len();
            c.pages.retain(|k, _| dirty.contains(k));
            let dropped = (before - c.pages.len()) as u64;
            c.dirty = dirty;
            if dropped > 0 {
                self.cache_stats.invalidations.add(dropped);
            }
        }
        // Ring registrations were made under the old protection tag;
        // re-register fresh buffers under the new one.
        {
            let mut ring = self.req_ring.lock();
            for (_, h) in ring.drain(..) {
                let _ = self.nic.deregister_mem(ctx, h);
            }
            for _ in 0..self.config.credits {
                let buf = self.nic.host().mem.alloc(SLOT as usize);
                let h = self
                    .nic
                    .register_mem(ctx, buf, SLOT, MemAttributes::local(tag));
                ring.push((buf, h));
            }
        }
        *self.req_next.lock() = 0;
        {
            let mut ring = self.recv_ring.lock();
            for (_, h) in ring.drain(..) {
                let _ = self.nic.deregister_mem(ctx, h);
            }
            for _ in 0..self.config.credits {
                let buf = self.nic.host().mem.alloc(SLOT as usize);
                let h = self
                    .nic
                    .register_mem(ctx, buf, SLOT, MemAttributes::local(tag));
                vi.post_recv(
                    ctx,
                    RecvDesc::new(vec![DataSegment::new(buf, SLOT as u32, h)]),
                );
                ring.push_back((buf, h));
            }
        }
        self.regcache.retarget(ctx, tag);
        *self.vi.lock() = vi;
        // Re-introduce ourselves so the server re-keys its replay cache to
        // this client's stable id; a declared tenant binding rides along so
        // the scheduler keeps treating the new session as the same tenant.
        let mut e = Self::hello_args(self.client_id, *self.tenant.lock());
        let hello = std::mem::take(&mut e).finish();
        let reqid = self.next_reqid();
        self.post_request_raw(ctx, reqid, DafsOp::Hello, &hello);
        let resp = self.wait_response(ctx, reqid)?;
        let payload = Self::decode_resp(&resp)?;
        self.apply_hello_caps(&payload).map(|_| ())
    }

    fn call_attr(&self, ctx: &ActorCtx, op: DafsOp, args: &mut Enc) -> DafsResult<FileAttr> {
        let payload = self.call(ctx, op, args)?;
        proto::dec_attr(&mut Dec::new(&payload)).map_err(|_| DafsError::Protocol)
    }

    /// Fetch attributes.
    pub fn getattr(&self, ctx: &ActorCtx, fh: NodeId) -> DafsResult<FileAttr> {
        let mut e = Enc::new();
        e.u64(fh.0);
        self.call_attr(ctx, DafsOp::GetAttr, &mut e)
    }

    /// Truncate / extend.
    pub fn truncate(&self, ctx: &ActorCtx, fh: NodeId, size: u64) -> DafsResult<FileAttr> {
        let mut e = Enc::new();
        e.u64(fh.0).u8(1).u64(size);
        let a = self.call_attr(ctx, DafsOp::SetAttr, &mut e)?;
        // Resizing invalidates every cached page of the file.
        self.cache_note_write(ctx, fh, 0, u64::MAX, Some(&a));
        Ok(a)
    }

    /// Directory lookup.
    pub fn lookup(&self, ctx: &ActorCtx, dir: NodeId, name: &str) -> DafsResult<FileAttr> {
        let mut e = Enc::new();
        e.u64(dir.0).str(name);
        self.call_attr(ctx, DafsOp::Lookup, &mut e)
    }

    /// Create a regular file.
    pub fn create(&self, ctx: &ActorCtx, dir: NodeId, name: &str) -> DafsResult<FileAttr> {
        let mut e = Enc::new();
        e.u64(dir.0).str(name);
        self.call_attr(ctx, DafsOp::Create, &mut e)
    }

    /// Create a directory.
    pub fn mkdir(&self, ctx: &ActorCtx, dir: NodeId, name: &str) -> DafsResult<FileAttr> {
        let mut e = Enc::new();
        e.u64(dir.0).str(name);
        self.call_attr(ctx, DafsOp::Mkdir, &mut e)
    }

    /// Remove a regular file.
    pub fn remove(&self, ctx: &ActorCtx, dir: NodeId, name: &str) -> DafsResult<()> {
        let mut e = Enc::new();
        e.u64(dir.0).str(name);
        self.call(ctx, DafsOp::Remove, &mut e).map(|_| ())
    }

    /// Remove an empty directory.
    pub fn rmdir(&self, ctx: &ActorCtx, dir: NodeId, name: &str) -> DafsResult<()> {
        let mut e = Enc::new();
        e.u64(dir.0).str(name);
        self.call(ctx, DafsOp::Rmdir, &mut e).map(|_| ())
    }

    /// Rename.
    pub fn rename(
        &self,
        ctx: &ActorCtx,
        from: NodeId,
        name: &str,
        to: NodeId,
        to_name: &str,
    ) -> DafsResult<()> {
        let mut e = Enc::new();
        e.u64(from.0).str(name).u64(to.0).str(to_name);
        self.call(ctx, DafsOp::Rename, &mut e).map(|_| ())
    }

    /// List a directory.
    pub fn readdir(&self, ctx: &ActorCtx, dir: NodeId) -> DafsResult<Vec<(String, NodeId)>> {
        let mut e = Enc::new();
        e.u64(dir.0);
        let payload = self.call(ctx, DafsOp::ReadDir, &mut e)?;
        let mut d = Dec::new(&payload);
        let n = d.u32().map_err(|_| DafsError::Protocol)?;
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let id = NodeId(d.u64().map_err(|_| DafsError::Protocol)?);
            let name = d.str().map_err(|_| DafsError::Protocol)?;
            out.push((name, id));
        }
        Ok(out)
    }

    /// Atomic append: write `data` at the current end of file in one
    /// server-side operation; returns the offset the record landed at.
    /// Bounded by the session's inline limit (protocol message size).
    pub fn append(&self, ctx: &ActorCtx, fh: NodeId, data: &[u8]) -> DafsResult<u64> {
        assert!(
            data.len() as u64 <= self.caps().inline_max,
            "append record exceeds the inline limit"
        );
        let mut e = Enc::new();
        e.u64(fh.0).bytes(data);
        let payload = self.call(ctx, DafsOp::Append, &mut e)?;
        self.stats.inline_writes.record(data.len() as u64);
        ctx.metrics()
            .byte_meter("dafs.inline.bytes")
            .record(data.len() as u64);
        let mut d = Dec::new(&payload);
        let at = d.u64().map_err(|_| DafsError::Protocol)?;
        if let Ok(a) = proto::dec_attr(&mut d) {
            self.cache_note_write(ctx, fh, at, data.len() as u64, Some(&a));
        }
        Ok(at)
    }

    /// Flush to stable storage (MPI_File_sync bottom half).
    pub fn flush(&self, ctx: &ActorCtx, fh: NodeId) -> DafsResult<()> {
        let mut e = Enc::new();
        e.u64(fh.0);
        self.call(ctx, DafsOp::Flush, &mut e).map(|_| ())
    }

    /// Acquire the whole-file exclusive lock (blocks until granted).
    pub fn lock(&self, ctx: &ActorCtx, fh: NodeId) -> DafsResult<()> {
        let mut e = Enc::new();
        e.u64(fh.0);
        self.call(ctx, DafsOp::Lock, &mut e).map(|_| ())
    }

    /// Release the whole-file lock.
    pub fn unlock(&self, ctx: &ActorCtx, fh: NodeId) -> DafsResult<()> {
        let mut e = Enc::new();
        e.u64(fh.0);
        self.call(ctx, DafsOp::Unlock, &mut e).map(|_| ())
    }

    /// End the session.
    pub fn disconnect(&self, ctx: &ActorCtx) {
        // Flush write-back data and hand leases back before the goodbye.
        // A session that never cached skips this without touching the
        // clock or the wire.
        let _ = self.cache_shutdown(ctx);
        let mut e = Enc::new();
        let _ = self.call_once(ctx, DafsOp::Disconnect, &mut e);
        self.regcache.flush(ctx);
        self.vi.lock().disconnect(ctx);
        ctx.trace("dafs", "session.disconnect", &[]);
    }

    /// Abruptly drop the VIA connection with no protocol goodbye — the
    /// client-crash path. The server observes `ConnectionLost` on the
    /// session's VI and must tear the session down (releasing its locks).
    pub fn abort(&self, ctx: &ActorCtx) {
        self.vi.lock().disconnect(ctx);
        self.regcache.flush(ctx);
        ctx.trace("dafs", "session.abort", &[]);
    }

    /// Resolve a slash-separated path from the root.
    pub fn resolve(&self, ctx: &ActorCtx, path: &str) -> DafsResult<FileAttr> {
        let mut cur = memfs::ROOT_ID;
        let mut attr = self.getattr(ctx, cur)?;
        for part in path.split('/').filter(|p| !p.is_empty()) {
            attr = self.lookup(ctx, cur, part)?;
            cur = attr.id;
        }
        Ok(attr)
    }

    // ----- lease-coherent cache -------------------------------------------
    //
    // Strictly opt-in: only the `*_cached` entry points (and the coherence
    // hooks they arm) touch this machinery, so a session that never calls
    // them runs byte-identically to one built before the cache existed.

    /// Acquire (or refresh/upgrade) a `kind` lease on `fh`. Returns the
    /// attr that rode along with a grant, `None` on denial. Routed through
    /// the non-replaying path: grants are session state, so replaying one
    /// across a reconnect would resurrect a lease the server already
    /// reclaimed.
    fn lease_acquire(
        &self,
        ctx: &ActorCtx,
        fh: NodeId,
        kind: LeaseKind,
    ) -> DafsResult<Option<FileAttr>> {
        let mut e = Enc::new();
        e.u64(fh.0).u8(kind as u8);
        let payload = self.call_once(ctx, DafsOp::LeaseGrant, &mut e)?;
        let mut d = Dec::new(&payload);
        let granted = d.u8().map_err(|_| DafsError::Protocol)? != 0;
        let attr = proto::dec_attr(&mut d).map_err(|_| DafsError::Protocol)?;
        if !granted {
            return Ok(None);
        }
        let mut c = self.cache.lock();
        let slot = c.leases.entry(fh.0).or_insert(kind);
        *slot = (*slot).max(kind);
        c.attrs.insert(fh.0, attr);
        Ok(Some(attr))
    }

    /// Cache entry-point prologue: flush write-back data orphaned by a
    /// reconnect, then notice and service any recalls the server pushed
    /// since the last operation. A session with nothing cached returns
    /// immediately without touching the clock or the wire.
    fn cache_service(&self, ctx: &ActorCtx) -> DafsResult<()> {
        {
            let c = self.cache.lock();
            if c.leases.is_empty() && c.recalls.is_empty() && c.dirty.is_empty() {
                return Ok(());
            }
        }
        // Dirty pages whose write-back lease died with a previous session
        // get re-flushed through the new one before anything is served.
        let orphans: Vec<u64> = {
            let c = self.cache.lock();
            let mut fhs: Vec<u64> = c.dirty.iter().map(|(fh, _)| *fh).collect();
            fhs.dedup();
            fhs.retain(|fh| c.leases.get(fh) != Some(&LeaseKind::Write));
            fhs
        };
        for fh in orphans {
            self.cache_flush_fh(ctx, NodeId(fh))?;
        }
        // Recall pushes land in the recv ring; drain it without blocking.
        // A dead session surfaces on the next real request, not here.
        self.poll_responses(ctx).ok();
        loop {
            let next = self.cache.lock().recalls.pop_front();
            let Some((fh, recall_id)) = next else { break };
            self.cache_recall_one(ctx, fh, recall_id)?;
        }
        Ok(())
    }

    /// Service one recall: flush the file's dirty pages, drop everything
    /// cached under the lease, ack. The ack rides the replayable request
    /// path — if the session dies mid-ack, the replayed ack re-drops an
    /// already-absent lease on the server, a no-op, so recalls racing loss
    /// stay exactly-once.
    fn cache_recall_one(&self, ctx: &ActorCtx, fh: u64, recall_id: u32) -> DafsResult<()> {
        self.cache_stats.recalls.inc();
        ctx.metrics().counter("dafs.cache.recalls").inc();
        ctx.trace(
            "dafs",
            "cache.recall",
            &[
                ("fh", obs::Value::U64(fh)),
                ("recall", obs::Value::U64(recall_id as u64)),
            ],
        );
        self.cache_flush_fh(ctx, NodeId(fh))?;
        self.cache_drop_fh(ctx, fh);
        let mut e = Enc::new();
        e.u64(fh).u32(recall_id);
        self.call(ctx, DafsOp::LeaseRecallAck, &mut e).map(|_| ())
    }

    /// Drop every cached object for `fh`: lease, attr, pages, dirty marks.
    fn cache_drop_fh(&self, ctx: &ActorCtx, fh: u64) {
        let mut c = self.cache.lock();
        c.leases.remove(&fh);
        c.attrs.remove(&fh);
        let before = c.pages.len();
        c.pages.retain(|(f, _), _| *f != fh);
        c.dirty.retain(|(f, _)| *f != fh);
        let dropped = (before - c.pages.len()) as u64;
        drop(c);
        if dropped > 0 {
            self.cache_stats.invalidations.add(dropped);
            ctx.metrics()
                .counter("dafs.cache.invalidations")
                .add(dropped);
        }
    }

    /// Flush `fh`'s dirty write-back pages in one coalesced pass: snapshot
    /// every dirty run (contiguous full pages merge into one segment; a
    /// short page is the file's tail, and since it ends before the next
    /// page boundary it ends its run naturally), gather the bytes into a
    /// staging buffer, and ship the whole sorted run set as a vectored
    /// `WriteList` batch — one wire request per credit-window chunk
    /// instead of one per extent. A flush interrupted by session death
    /// falls back per segment through the replayable inline path inside
    /// [`Self::batch_finish`], so the bytes still land exactly once.
    /// Returns the number of dirty pages flushed.
    fn cache_flush_fh(&self, ctx: &ActorCtx, fh: NodeId) -> DafsResult<u64> {
        let page = self.config.cache_page.max(1);
        let (segs, data, pages_n, attr) = {
            let c = self.cache.lock();
            let mut segs: Vec<proto::ListSeg> = Vec::new();
            let mut data: Vec<u8> = Vec::new();
            let mut pages_n = 0u64;
            for &(_, p) in c.dirty.range((fh.0, 0)..=(fh.0, u64::MAX)) {
                let bytes = c.pages.get(&(fh.0, p)).expect("dirty page cached");
                let off = p * page;
                match segs.last_mut() {
                    Some(s) if s.0 + s.1 == off => s.1 += bytes.len() as u64,
                    _ => segs.push((off, bytes.len() as u64, data.len() as u64)),
                }
                data.extend_from_slice(bytes);
                pages_n += 1;
            }
            (segs, data, pages_n, c.attrs.get(&fh.0).copied())
        };
        if segs.is_empty() {
            return Ok(0);
        }
        let sb = self.scratch(data.len());
        self.nic.host().mem.write(sb, &data);
        let ops = ctx.metrics().counter("dafs.ops");
        let before = ops.get();
        let req = ListReq { fh, segs, buf: sb };
        let b = self.write_list_batch_begin(ctx, std::slice::from_ref(&req));
        let res = self.batch_finish(ctx, b).remove(0);
        // Wire requests this flush cost, fallback replays included — the
        // amortization numerator benches assert against flush_pages.
        let wire = ops.get() - before;
        self.cache_stats.flush_batches.add(wire);
        ctx.metrics().counter("dafs.cache.flush_batches").add(wire);
        self.cache_stats.flush_pages.add(pages_n);
        ctx.metrics().counter("dafs.cache.flush_pages").add(pages_n);
        res?;
        // The batch's self-coherence hook retired the flushed span but
        // also forgot the cached attr (a raw list write carries no attr
        // reply). The write lease still vouches for the size this client
        // tracked while buffering, so restore it rather than paying a
        // wire GETATTR on the next cached access.
        if let Some(a) = attr {
            let mut c = self.cache.lock();
            if c.leases.contains_key(&fh.0) {
                c.attrs.insert(fh.0, a);
            }
        }
        Ok(pages_n)
    }

    /// Self-coherence hook on every server-bound write: drop cached pages
    /// the write covers (the cache would otherwise shadow newer server
    /// state) and keep the cached attr in step. Pure map surgery — no
    /// clock, no wire — so cache-less sessions are untouched.
    fn cache_note_write(
        &self,
        ctx: &ActorCtx,
        fh: NodeId,
        off: u64,
        len: u64,
        attr: Option<&FileAttr>,
    ) {
        let mut c = self.cache.lock();
        if c.attrs.is_empty() && c.pages.is_empty() {
            return;
        }
        let mut dropped = 0u64;
        if len > 0 {
            let page = self.config.cache_page.max(1);
            let p0 = off / page;
            let p1 = (off.saturating_add(len) - 1) / page;
            let keys: Vec<(u64, u64)> = c
                .pages
                .range((fh.0, p0)..=(fh.0, p1))
                .map(|(k, _)| *k)
                .collect();
            for k in keys {
                c.pages.remove(&k);
                c.dirty.remove(&k);
                dropped += 1;
            }
        }
        match attr {
            // Keep the attr only while a lease vouches for it.
            Some(a) if c.leases.contains_key(&fh.0) => {
                c.attrs.insert(fh.0, *a);
            }
            _ => {
                c.attrs.remove(&fh.0);
            }
        }
        drop(c);
        if dropped > 0 {
            self.cache_stats.invalidations.add(dropped);
            ctx.metrics()
                .counter("dafs.cache.invalidations")
                .add(dropped);
        }
    }

    /// Evict clean pages (lowest key first) beyond the configured
    /// capacity. Dirty pages are never evicted — they hold unflushed data.
    fn cache_evict_excess(&self, ctx: &ActorCtx) {
        let cap = self.config.cache_capacity;
        let mut c = self.cache.lock();
        let mut dropped = 0u64;
        while c.pages.len() > cap {
            let victim = c.pages.keys().find(|k| !c.dirty.contains(k)).copied();
            let Some(k) = victim else { break };
            c.pages.remove(&k);
            dropped += 1;
        }
        drop(c);
        if dropped > 0 {
            self.cache_stats.invalidations.add(dropped);
            ctx.metrics()
                .counter("dafs.cache.invalidations")
                .add(dropped);
        }
    }

    /// Fetch attributes through the cache: free while a lease is held,
    /// one lease acquisition (which seeds the cache) otherwise, falling
    /// back to a plain GETATTR when the server denies the lease.
    pub fn getattr_cached(&self, ctx: &ActorCtx, fh: NodeId) -> DafsResult<FileAttr> {
        self.cache_service(ctx)?;
        let cached = {
            let c = self.cache.lock();
            if c.leases.contains_key(&fh.0) {
                c.attrs.get(&fh.0).copied()
            } else {
                None
            }
        };
        if let Some(a) = cached {
            self.cache_stats.attr_hits.inc();
            ctx.metrics().counter("dafs.cache.attr_hits").inc();
            return Ok(a);
        }
        self.cache_stats.attr_misses.inc();
        ctx.metrics().counter("dafs.cache.attr_misses").inc();
        match self.lease_acquire(ctx, fh, LeaseKind::Read) {
            Ok(Some(a)) => Ok(a),
            // Denied (conflicting writer) or session trouble: stay coherent
            // by asking the server directly.
            Ok(None) => self.getattr(ctx, fh),
            Err(DafsError::Transport(_) | DafsError::Connect(_)) => self.getattr(ctx, fh),
            Err(e) => Err(e),
        }
    }

    /// Read through the cache: pages already under a valid lease are
    /// served with one local copy; missing pages are fetched from the
    /// server in contiguous page-aligned runs and kept. Falls back to the
    /// plain read path when the server denies a lease.
    pub fn read_cached(
        &self,
        ctx: &ActorCtx,
        fh: NodeId,
        off: u64,
        dst: VirtAddr,
        len: u64,
    ) -> DafsResult<u64> {
        self.cache_service(ctx)?;
        if len == 0 {
            return Ok(0);
        }
        let attr = {
            let c = self.cache.lock();
            if c.leases.contains_key(&fh.0) {
                c.attrs.get(&fh.0).copied()
            } else {
                None
            }
        };
        let attr = match attr {
            Some(a) => a,
            None => match self.lease_acquire(ctx, fh, LeaseKind::Read) {
                Ok(Some(a)) => a,
                Ok(None) | Err(DafsError::Transport(_) | DafsError::Connect(_)) => {
                    self.cache_stats.misses.inc();
                    ctx.metrics().counter("dafs.cache.misses").inc();
                    return self.read(ctx, fh, off, dst, len);
                }
                Err(e) => return Err(e),
            },
        };
        let end = (off + len).min(attr.size);
        if off >= end {
            // Fully past EOF: answered from the cached attr alone.
            self.cache_stats.hits.inc();
            ctx.metrics().counter("dafs.cache.hits").inc();
            return Ok(0);
        }
        let page = self.config.cache_page.max(1);
        let p0 = off / page;
        let p1 = (end - 1) / page;
        let expected = |p: u64| ((attr.size - p * page).min(page)) as usize;
        let missing: Vec<u64> = {
            let c = self.cache.lock();
            (p0..=p1)
                .filter(|&p| {
                    c.pages
                        .get(&(fh.0, p))
                        .is_none_or(|b| b.len() < expected(p))
                })
                .collect()
        };
        let served_locally = missing.is_empty();
        // Fetch each contiguous missing run with one server read.
        let mut i = 0usize;
        while i < missing.len() {
            let start = missing[i];
            let mut stop = start;
            while i + 1 < missing.len() && missing[i + 1] == stop + 1 {
                i += 1;
                stop = missing[i];
            }
            i += 1;
            let foff = start * page;
            let flen = ((stop + 1) * page).min(attr.size) - foff;
            let sb = self.scratch(flen as usize);
            let n = self.read(ctx, fh, foff, sb, flen)?;
            let data = self.nic.host().mem.read_vec(sb, n as usize);
            let mut c = self.cache.lock();
            for p in start..=stop {
                let lo = ((p - start) * page) as usize;
                if lo >= data.len() {
                    break;
                }
                let hi = data.len().min(lo + page as usize);
                c.pages.insert((fh.0, p), data[lo..hi].to_vec());
            }
        }
        if served_locally {
            self.cache_stats.hits.inc();
            ctx.metrics().counter("dafs.cache.hits").inc();
        } else {
            self.cache_stats.misses.inc();
            ctx.metrics().counter("dafs.cache.misses").inc();
        }
        // Assemble into the user buffer: the one copy a local hit costs.
        self.nic
            .host()
            .compute(ctx, self.config.host.copy(end - off));
        {
            let c = self.cache.lock();
            for p in p0..=p1 {
                let Some(bytes) = c.pages.get(&(fh.0, p)) else {
                    continue;
                };
                let pstart = p * page;
                let lo = off.max(pstart);
                let hi = end.min(pstart + bytes.len() as u64);
                if lo >= hi {
                    continue;
                }
                let slice = &bytes[(lo - pstart) as usize..(hi - pstart) as usize];
                self.nic.host().mem.write(dst.offset(lo - off), slice);
            }
        }
        self.cache_evict_excess(ctx);
        Ok(end - off)
    }

    /// Write through the cache. Under a write-back lease (opt-in via
    /// [`DafsClientConfig::cache_write_back`]) the bytes buffer dirty at
    /// the client — one local copy now, flushed on recall, sync, or close.
    /// Otherwise this writes through, keeping the cached attr in step.
    pub fn write_cached(
        &self,
        ctx: &ActorCtx,
        fh: NodeId,
        off: u64,
        src: VirtAddr,
        len: u64,
    ) -> DafsResult<FileAttr> {
        self.cache_service(ctx)?;
        if self.config.cache_write_back && len > 0 {
            let held = self.cache.lock().leases.get(&fh.0) == Some(&LeaseKind::Write);
            let granted =
                held || matches!(self.lease_acquire(ctx, fh, LeaseKind::Write), Ok(Some(_)));
            if granted {
                return self.write_buffered(ctx, fh, off, src, len);
            }
        }
        self.write(ctx, fh, off, src, len)
    }

    /// Buffer a write into dirty pages under an already-held write lease.
    fn write_buffered(
        &self,
        ctx: &ActorCtx,
        fh: NodeId,
        off: u64,
        src: VirtAddr,
        len: u64,
    ) -> DafsResult<FileAttr> {
        let page = self.config.cache_page.max(1);
        // The attr is the EOF authority; the write lease guarantees nobody
        // else can move it underneath us.
        let attr = self.getattr_cached(ctx, fh)?;
        // Pre-fault partial edge pages that overlap existing file data, so
        // overlaying the write can't lose the bytes beside it.
        let end = off + len;
        let head = off / page;
        let tail = (end - 1) / page;
        if !off.is_multiple_of(page) && head * page < attr.size {
            self.cache_fill_page(ctx, fh, head, attr.size)?;
        }
        if !end.is_multiple_of(page) && tail != head && tail * page < attr.size {
            self.cache_fill_page(ctx, fh, tail, attr.size)?;
        }
        let data = self.nic.host().mem.read_vec(src, len as usize);
        self.nic.host().compute(ctx, self.config.host.copy(len));
        let out = {
            let mut c = self.cache.lock();
            let mut pos = 0usize;
            let mut p = head;
            while pos < data.len() {
                let pstart = p * page;
                let in_off = ((off + pos as u64) - pstart) as usize;
                let take = (page as usize - in_off).min(data.len() - pos);
                let entry = c.pages.entry((fh.0, p)).or_default();
                if entry.len() < in_off + take {
                    entry.resize(in_off + take, 0);
                }
                entry[in_off..in_off + take].copy_from_slice(&data[pos..pos + take]);
                c.dirty.insert((fh.0, p));
                pos += take;
                p += 1;
            }
            let a = c.attrs.entry(fh.0).or_insert(attr);
            a.size = a.size.max(end);
            *a
        };
        self.cache_evict_excess(ctx);
        Ok(out)
    }

    /// Ensure page `p` of `fh` is cached (fetching it if absent); `size`
    /// is the current file size. Internal RMW helper — not a cache hit or
    /// miss from the caller's point of view.
    fn cache_fill_page(&self, ctx: &ActorCtx, fh: NodeId, p: u64, size: u64) -> DafsResult<()> {
        let page = self.config.cache_page.max(1);
        let plen = (size - p * page).min(page);
        let have = self
            .cache
            .lock()
            .pages
            .get(&(fh.0, p))
            .is_some_and(|b| b.len() as u64 >= plen);
        if have {
            return Ok(());
        }
        let sb = self.scratch(plen as usize);
        let n = self.read(ctx, fh, p * page, sb, plen)?;
        let bytes = self.nic.host().mem.read_vec(sb, n as usize);
        self.cache.lock().pages.insert((fh.0, p), bytes);
        Ok(())
    }

    /// Flush every dirty write-back page to the server (the cache half of
    /// MPI_File_sync). Leases stay held. Returns the number of pages
    /// flushed — zero means the sync cost no wire traffic at all, which
    /// callers use to skip the server-side `Flush` commit round trip.
    pub fn cache_sync(&self, ctx: &ActorCtx) -> DafsResult<u64> {
        self.cache_service(ctx)?;
        let fhs: Vec<u64> = {
            let c = self.cache.lock();
            let set: BTreeSet<u64> = c.dirty.iter().map(|(f, _)| *f).collect();
            set.into_iter().collect()
        };
        let mut flushed = 0;
        for fh in fhs {
            flushed += self.cache_flush_fh(ctx, NodeId(fh))?;
        }
        Ok(flushed)
    }

    /// Voluntarily hand the lease on `fh` back after flushing it — the
    /// recall-ack wire path with the reserved recall id 0.
    pub fn cache_release(&self, ctx: &ActorCtx, fh: NodeId) -> DafsResult<()> {
        if !self.cache.lock().leases.contains_key(&fh.0) {
            return Ok(());
        }
        self.cache_flush_fh(ctx, fh)?;
        self.cache_drop_fh(ctx, fh.0);
        let mut e = Enc::new();
        e.u64(fh.0).u32(0);
        self.call(ctx, DafsOp::LeaseRecallAck, &mut e).map(|_| ())
    }

    /// Flush and release everything cached; runs ahead of `disconnect`.
    fn cache_shutdown(&self, ctx: &ActorCtx) -> DafsResult<()> {
        {
            let c = self.cache.lock();
            if c.leases.is_empty() && c.recalls.is_empty() && c.dirty.is_empty() {
                return Ok(());
            }
        }
        self.cache_service(ctx)?;
        let fhs: Vec<u64> = self.cache.lock().leases.keys().copied().collect();
        for fh in fhs {
            self.cache_release(ctx, NodeId(fh))?;
        }
        // Dirty data without a lease was already flushed by cache_service.
        Ok(())
    }

    // ----- data path ------------------------------------------------------

    /// True if a transfer of `len` goes direct rather than inline.
    pub fn is_direct(&self, len: u64) -> bool {
        len > self.config.direct_threshold
    }

    /// Read `len` bytes at `off` into the user buffer `dst`.
    /// Returns bytes actually read (short at EOF).
    pub fn read(
        &self,
        ctx: &ActorCtx,
        fh: NodeId,
        off: u64,
        dst: VirtAddr,
        len: u64,
    ) -> DafsResult<u64> {
        let _span = ctx.span("dafs", "read");
        let direct = self.is_direct(len);
        ctx.trace(
            "dafs",
            "xfer",
            &[
                ("op", obs::Value::Str("read")),
                (
                    "mode",
                    obs::Value::Str(if direct { "direct" } else { "inline" }),
                ),
                ("len", obs::Value::U64(len)),
            ],
        );
        if !direct {
            return self.read_inline(ctx, fh, off, dst, len);
        }
        let (handle, transient) = self.regcache.acquire(ctx, dst, len);
        let mut e = Enc::new();
        e.u64(fh.0)
            .u64(off)
            .u64(len)
            .u64(dst.as_u64())
            .u64(handle.0);
        let r = self.call_once(ctx, DafsOp::ReadDirect, &mut e);
        self.regcache.release(ctx, handle, transient);
        let payload = match r {
            Ok(p) => p,
            // The registration handle in the request died with the session;
            // recover the transfer through the (replayable) inline path.
            Err(DafsError::Transport(_) | DafsError::Connect(_)) => {
                ctx.metrics().counter("dafs.direct_fallbacks").inc();
                return self.read_inline(ctx, fh, off, dst, len);
            }
            Err(e) => return Err(e),
        };
        let count = Dec::new(&payload).u64().map_err(|_| DafsError::Protocol)?;
        self.stats.direct_reads.record(count);
        ctx.metrics().byte_meter("dafs.direct.bytes").record(count);
        Ok(count)
    }

    fn read_inline(
        &self,
        ctx: &ActorCtx,
        fh: NodeId,
        mut off: u64,
        dst: VirtAddr,
        len: u64,
    ) -> DafsResult<u64> {
        let mut done = 0u64;
        while done < len {
            let n = (len - done).min(self.caps().inline_max);
            let mut e = Enc::new();
            e.u64(fh.0).u64(off).u64(n);
            let payload = self.call(ctx, DafsOp::ReadInline, &mut e)?;
            let data = Dec::new(&payload)
                .bytes()
                .map_err(|_| DafsError::Protocol)?;
            // Copy out of the message buffer into the user buffer.
            self.nic
                .host()
                .compute(ctx, self.config.host.copy(data.len() as u64));
            self.nic.host().mem.write(dst.offset(done), &data);
            self.stats.inline_reads.record(data.len() as u64);
            ctx.metrics()
                .byte_meter("dafs.inline.bytes")
                .record(data.len() as u64);
            let got = data.len() as u64;
            done += got;
            off += got;
            if got < n {
                break; // EOF
            }
        }
        Ok(done)
    }

    /// Write `len` bytes at `off` from the user buffer `src`.
    pub fn write(
        &self,
        ctx: &ActorCtx,
        fh: NodeId,
        off: u64,
        src: VirtAddr,
        len: u64,
    ) -> DafsResult<FileAttr> {
        let _span = ctx.span("dafs", "write");
        let direct = self.is_direct(len) && self.caps().rdma_read;
        ctx.trace(
            "dafs",
            "xfer",
            &[
                ("op", obs::Value::Str("write")),
                (
                    "mode",
                    obs::Value::Str(if direct { "direct" } else { "inline" }),
                ),
                ("len", obs::Value::U64(len)),
            ],
        );
        if direct {
            let (handle, transient) = self.regcache.acquire(ctx, src, len);
            let mut e = Enc::new();
            e.u64(fh.0)
                .u64(off)
                .u64(len)
                .u64(src.as_u64())
                .u64(handle.0);
            let r = self.call_once(ctx, DafsOp::WriteDirect, &mut e);
            self.regcache.release(ctx, handle, transient);
            let a = match r {
                Ok(payload) => {
                    proto::dec_attr(&mut Dec::new(&payload)).map_err(|_| DafsError::Protocol)?
                }
                // Re-writing the same bytes at the same offsets is
                // idempotent, so recovering a broken direct write through
                // inline chunks cannot corrupt the file even if the RDMA
                // transfer partially (or fully) landed.
                Err(DafsError::Transport(_) | DafsError::Connect(_)) => {
                    ctx.metrics().counter("dafs.direct_fallbacks").inc();
                    self.write_inline_chunks(ctx, fh, off, src, len)?;
                    let a = self.getattr(ctx, fh)?;
                    self.cache_note_write(ctx, fh, off, len, Some(&a));
                    return Ok(a);
                }
                Err(e) => return Err(e),
            };
            self.stats.direct_writes.record(len);
            ctx.metrics().byte_meter("dafs.direct.bytes").record(len);
            self.cache_note_write(ctx, fh, off, len, Some(&a));
            return Ok(a);
        }
        // Inline path (small writes, or the cLAN no-RDMA-Read fallback).
        if len <= self.caps().inline_max {
            let data = self.nic.host().mem.read_bytes(src, len as usize);
            // App buffer into the message buffer (charged in post_request as
            // part of the body copy).
            let mut e = Enc::new();
            e.u64(fh.0).u64(off).bytes(&data);
            let a = self.call_attr(ctx, DafsOp::WriteInline, &mut e)?;
            self.stats.inline_writes.record(len);
            ctx.metrics().byte_meter("dafs.inline.bytes").record(len);
            self.cache_note_write(ctx, fh, off, len, Some(&a));
            return Ok(a);
        }
        // Multi-chunk: pipeline the chunks over the session credits rather
        // than paying a round trip per chunk.
        let results = self.write_batch(ctx, &[WriteReq { fh, off, src, len }]);
        results.into_iter().next().unwrap()?;
        self.getattr(ctx, fh)
    }

    /// Convenience: read into a fresh vector (stages through an internal
    /// scratch buffer; costs one extra mechanical copy, uncharged).
    pub fn read_to_vec(
        &self,
        ctx: &ActorCtx,
        fh: NodeId,
        off: u64,
        len: u64,
    ) -> DafsResult<Vec<u8>> {
        let dst = self.scratch(len as usize);
        let n = self.read(ctx, fh, off, dst, len)?;
        Ok(self.nic.host().mem.read_vec(dst, n as usize))
    }

    /// Convenience: write from a byte slice.
    pub fn write_bytes(
        &self,
        ctx: &ActorCtx,
        fh: NodeId,
        off: u64,
        data: &[u8],
    ) -> DafsResult<FileAttr> {
        let src = self.scratch(data.len());
        self.nic.host().mem.write(src, data);
        self.write(ctx, fh, off, src, data.len() as u64)
    }

    /// Write `[src, src+len)` to `(fh, off)` as sequential inline chunks,
    /// each routed through the replayable request path. This is the
    /// recovery route for broken direct writes and failed batch writes:
    /// slow, but exactly-once per chunk and immune to dead registration
    /// handles.
    fn write_inline_chunks(
        &self,
        ctx: &ActorCtx,
        fh: NodeId,
        off: u64,
        src: VirtAddr,
        len: u64,
    ) -> DafsResult<u64> {
        let mut done = 0u64;
        while done < len {
            let n = (len - done).min(self.caps().inline_max);
            let data = self.nic.host().mem.read_bytes(src.offset(done), n as usize);
            let mut e = Enc::new();
            e.u64(fh.0).u64(off + done).bytes(&data);
            self.call(ctx, DafsOp::WriteInline, &mut e)?;
            self.stats.inline_writes.record(n);
            ctx.metrics().byte_meter("dafs.inline.bytes").record(n);
            done += n;
        }
        Ok(done)
    }

    fn scratch(&self, len: usize) -> VirtAddr {
        let mut s = self.scratch.lock();
        match *s {
            Some((addr, cap)) if cap >= len => addr,
            _ => {
                let cap = len.next_power_of_two().max(64 << 10);
                let addr = self.nic.host().mem.alloc(cap);
                *s = Some((addr, cap));
                addr
            }
        }
    }

    /// Expand batch requests into sub-operations: direct transfers go
    /// whole; inline requests that exceed one message split into chunks,
    /// each remembering which original request it belongs to.
    fn expand_read_subs(&self, reqs: &[ReadReq]) -> Vec<Sub> {
        let mut subs = Vec::new();
        for (i, r) in reqs.iter().enumerate() {
            if self.is_direct(r.len) {
                subs.push(Sub {
                    owner: i,
                    fh: r.fh,
                    off: r.off,
                    addr: r.dst,
                    len: r.len,
                    direct: true,
                    segs: None,
                });
            } else {
                let mut done = 0u64;
                loop {
                    let n = (r.len - done).min(self.caps().inline_max);
                    subs.push(Sub {
                        owner: i,
                        fh: r.fh,
                        off: r.off + done,
                        addr: r.dst.offset(done),
                        len: n,
                        direct: false,
                        segs: None,
                    });
                    done += n;
                    if done >= r.len {
                        break;
                    }
                }
            }
        }
        subs
    }

    fn expand_write_subs(&self, reqs: &[WriteReq]) -> Vec<Sub> {
        let direct_ok = self.caps().rdma_read;
        let mut subs = Vec::new();
        for (i, r) in reqs.iter().enumerate() {
            if self.is_direct(r.len) && direct_ok {
                subs.push(Sub {
                    owner: i,
                    fh: r.fh,
                    off: r.off,
                    addr: r.src,
                    len: r.len,
                    direct: true,
                    segs: None,
                });
            } else {
                let mut done = 0u64;
                loop {
                    let n = (r.len - done).min(self.caps().inline_max);
                    subs.push(Sub {
                        owner: i,
                        fh: r.fh,
                        off: r.off + done,
                        addr: r.src.offset(done),
                        len: n,
                        direct: false,
                        segs: None,
                    });
                    done += n;
                    if done >= r.len {
                        break;
                    }
                }
            }
        }
        subs
    }

    /// Split a segment list into per-request groups honoring the wire
    /// segment cap and a byte cap (inline message size); individual
    /// segments may split across groups. Zero-length segments are dropped.
    fn chunk_segs(
        segs: &[proto::ListSeg],
        seg_cap: usize,
        byte_cap: u64,
    ) -> Vec<Vec<proto::ListSeg>> {
        let mut groups = Vec::new();
        let mut cur: Vec<proto::ListSeg> = Vec::new();
        let mut cur_bytes = 0u64;
        for &(mut off, mut len, mut rel) in segs {
            while len > 0 {
                if cur.len() >= seg_cap || cur_bytes >= byte_cap {
                    groups.push(std::mem::take(&mut cur));
                    cur_bytes = 0;
                }
                let take = len.min(byte_cap - cur_bytes);
                cur.push((off, take, rel));
                cur_bytes += take;
                off += take;
                rel += take;
                len -= take;
            }
        }
        if !cur.is_empty() {
            groups.push(cur);
        }
        groups
    }

    fn list_sub(
        owner: usize,
        r: &ListReq,
        mut segs: Vec<proto::ListSeg>,
        total: u64,
        direct: bool,
    ) -> Sub {
        // Rebase buffer offsets onto the group's first segment so the
        // registered region spans exactly the bytes this sub touches.
        let base = segs[0].2;
        for s in &mut segs {
            s.2 -= base;
        }
        Sub {
            owner,
            fh: r.fh,
            off: 0,
            addr: r.buf.offset(base),
            len: total,
            direct,
            segs: Some(segs),
        }
    }

    /// Expand list requests into segment-capped sub-requests: groups whose
    /// total clears the direct threshold go as one RDMA list op against a
    /// single registration; the rest split further into inline-sized list
    /// messages (the no-RDMA-Read write fallback also lands here).
    fn expand_list_subs(&self, reqs: &[ListReq], write: bool) -> Vec<Sub> {
        let direct_ok = !write || self.caps().rdma_read;
        let mut subs = Vec::new();
        for (i, r) in reqs.iter().enumerate() {
            for group in Self::chunk_segs(&r.segs, proto::LIST_MAX_SEGMENTS, u64::MAX) {
                let total: u64 = group.iter().map(|s| s.1).sum();
                if direct_ok && self.is_direct(total) {
                    subs.push(Self::list_sub(i, r, group, total, true));
                } else {
                    for g in
                        Self::chunk_segs(&group, proto::LIST_MAX_SEGMENTS, self.caps().inline_max)
                    {
                        let t: u64 = g.iter().map(|s| s.1).sum();
                        subs.push(Self::list_sub(i, r, g, t, false));
                    }
                }
            }
        }
        subs
    }

    /// Post one list sub-request.
    fn post_list_sub(&self, ctx: &ActorCtx, dir: BatchDir, sb: &Sub) -> (u32, MemHandle, bool) {
        let segs = sb.segs.as_ref().expect("list sub");
        ctx.metrics().counter("dafs.list.reqs").inc();
        ctx.metrics()
            .counter("dafs.list.segs")
            .add(segs.len() as u64);
        // The one registered region a direct list op transfers against:
        // from the sub's base to the end of its last segment.
        let span = segs.last().map(|s| s.2 + s.1).unwrap_or(0);
        match (dir, sb.direct) {
            (BatchDir::Read, true) => {
                let (handle, transient) = self.regcache.acquire(ctx, sb.addr, span);
                let mut e = Enc::new();
                e.u64(sb.fh.0).u8(1).u64(sb.addr.as_u64()).u64(handle.0);
                proto::enc_seg_list(&mut e, segs);
                let id = self.post_request(ctx, DafsOp::ReadList, &mut e);
                (id, handle, transient)
            }
            (BatchDir::Read, false) => {
                let mut e = Enc::new();
                e.u64(sb.fh.0).u8(0);
                proto::enc_seg_list(&mut e, segs);
                let id = self.post_request(ctx, DafsOp::ReadList, &mut e);
                (id, MemHandle(0), false)
            }
            (BatchDir::Write, true) => {
                let (handle, transient) = self.regcache.acquire(ctx, sb.addr, span);
                let mut e = Enc::new();
                e.u64(sb.fh.0).u8(1).u64(sb.addr.as_u64()).u64(handle.0);
                proto::enc_seg_list(&mut e, segs);
                let id = self.post_request(ctx, DafsOp::WriteList, &mut e);
                self.stats.direct_writes.record(sb.len);
                ctx.metrics().byte_meter("dafs.direct.bytes").record(sb.len);
                (id, handle, transient)
            }
            (BatchDir::Write, false) => {
                // Gather the segments into the packed inline payload.
                let mut data = Vec::with_capacity(sb.len as usize);
                for &(_, len, rel) in segs {
                    let piece = self
                        .nic
                        .host()
                        .mem
                        .read_bytes(sb.addr.offset(rel), len as usize);
                    data.extend_from_slice(&piece);
                }
                let mut e = Enc::new();
                e.u64(sb.fh.0).u8(0);
                proto::enc_seg_list(&mut e, segs);
                e.bytes(&data);
                let id = self.post_request(ctx, DafsOp::WriteList, &mut e);
                self.stats.inline_writes.record(sb.len);
                ctx.metrics().byte_meter("dafs.inline.bytes").record(sb.len);
                (id, MemHandle(0), false)
            }
        }
    }

    /// Post one expanded sub-request; returns its id plus the registration
    /// handle (direct subs only).
    fn post_sub(&self, ctx: &ActorCtx, dir: BatchDir, sb: &Sub) -> (u32, MemHandle, bool) {
        if sb.segs.is_some() {
            return self.post_list_sub(ctx, dir, sb);
        }
        match (dir, sb.direct) {
            (BatchDir::Read, true) => {
                let (handle, transient) = self.regcache.acquire(ctx, sb.addr, sb.len);
                let mut e = Enc::new();
                e.u64(sb.fh.0)
                    .u64(sb.off)
                    .u64(sb.len)
                    .u64(sb.addr.as_u64())
                    .u64(handle.0);
                let id = self.post_request(ctx, DafsOp::ReadDirect, &mut e);
                (id, handle, transient)
            }
            (BatchDir::Read, false) => {
                let mut e = Enc::new();
                e.u64(sb.fh.0).u64(sb.off).u64(sb.len);
                let id = self.post_request(ctx, DafsOp::ReadInline, &mut e);
                (id, MemHandle(0), false)
            }
            (BatchDir::Write, true) => {
                let (handle, transient) = self.regcache.acquire(ctx, sb.addr, sb.len);
                let mut e = Enc::new();
                e.u64(sb.fh.0)
                    .u64(sb.off)
                    .u64(sb.len)
                    .u64(sb.addr.as_u64())
                    .u64(handle.0);
                let id = self.post_request(ctx, DafsOp::WriteDirect, &mut e);
                self.stats.direct_writes.record(sb.len);
                ctx.metrics().byte_meter("dafs.direct.bytes").record(sb.len);
                (id, handle, transient)
            }
            (BatchDir::Write, false) => {
                let data = self.nic.host().mem.read_bytes(sb.addr, sb.len as usize);
                let mut e = Enc::new();
                e.u64(sb.fh.0).u64(sb.off).bytes(&data);
                let id = self.post_request(ctx, DafsOp::WriteInline, &mut e);
                self.stats.inline_writes.record(sb.len);
                ctx.metrics().byte_meter("dafs.inline.bytes").record(sb.len);
                (id, MemHandle(0), false)
            }
        }
    }

    /// Top up the posted window from the batch's unposted sub list.
    fn batch_fill(&self, ctx: &ActorCtx, b: &mut DafsBatch) {
        let window = self.caps().credits.max(1) as usize;
        while b.next < b.subs.len() && b.inflight.len() < window {
            let (id, handle, transient) = self.post_sub(ctx, b.dir, &b.subs[b.next]);
            b.inflight.push_back((id, b.next, handle, transient));
            b.next += 1;
        }
    }

    /// Decode one sub-response and perform its client-side completion work
    /// (inline-read copy into the destination buffer, transfer stats).
    fn sub_payload(&self, ctx: &ActorCtx, dir: BatchDir, sb: &Sub, resp: &[u8]) -> DafsResult<u64> {
        let mut d = Dec::new(resp);
        let (_, status) = proto::dec_resp_header(&mut d).map_err(|_| DafsError::Protocol)?;
        if status != DafsStatus::Ok {
            return Err(DafsError::Status(status));
        }
        if let Some(segs) = &sb.segs {
            if dir == BatchDir::Write {
                return Ok(sb.len);
            }
            // List read reply: per-segment counts, plus the packed payload
            // in inline mode (direct data already landed via RDMA).
            let n = d.u32().map_err(|_| DafsError::Protocol)? as usize;
            if n != segs.len() {
                return Err(DafsError::Protocol);
            }
            let mut counts = Vec::with_capacity(n);
            for _ in 0..n {
                counts.push(d.u64().map_err(|_| DafsError::Protocol)?);
            }
            let total: u64 = counts.iter().sum();
            if sb.direct {
                self.stats.direct_reads.record(total);
                ctx.metrics().byte_meter("dafs.direct.bytes").record(total);
            } else {
                let data = d.bytes().map_err(|_| DafsError::Protocol)?;
                self.nic
                    .host()
                    .compute(ctx, self.config.host.copy(data.len() as u64));
                let mut pos = 0usize;
                for (i, &(_, _, rel)) in segs.iter().enumerate() {
                    let c = counts[i] as usize;
                    if pos + c > data.len() {
                        return Err(DafsError::Protocol);
                    }
                    self.nic
                        .host()
                        .mem
                        .write(sb.addr.offset(rel), &data[pos..pos + c]);
                    pos += c;
                }
                self.stats.inline_reads.record(total);
                ctx.metrics().byte_meter("dafs.inline.bytes").record(total);
            }
            return Ok(total);
        }
        match (dir, sb.direct) {
            (BatchDir::Read, true) => {
                let count = d.u64().map_err(|_| DafsError::Protocol)?;
                self.stats.direct_reads.record(count);
                ctx.metrics().byte_meter("dafs.direct.bytes").record(count);
                Ok(count)
            }
            (BatchDir::Read, false) => {
                let data = d.bytes().map_err(|_| DafsError::Protocol)?;
                self.nic
                    .host()
                    .compute(ctx, self.config.host.copy(data.len() as u64));
                self.nic.host().mem.write(sb.addr, &data);
                self.stats.inline_reads.record(data.len() as u64);
                ctx.metrics()
                    .byte_meter("dafs.inline.bytes")
                    .record(data.len() as u64);
                Ok(data.len() as u64)
            }
            (BatchDir::Write, _) => Ok(sb.len),
        }
    }

    /// Retire the oldest in-flight sub: blocking, unless its response is
    /// already stashed or the batch has already failed.
    fn batch_retire_front(&self, ctx: &ActorCtx, b: &mut DafsBatch) {
        let (id, sub_idx, handle, transient) = b.inflight.pop_front().expect("inflight");
        let sb = &b.subs[sub_idx];
        let res = match b.failed {
            Some(e) => Err(e),
            None => self
                .wait_response(ctx, id)
                .and_then(|resp| self.sub_payload(ctx, b.dir, sb, &resp)),
        };
        if sb.direct {
            self.regcache.release(ctx, handle, transient);
        }
        match (&mut b.results[sb.owner], res) {
            (Ok(total), Ok(n)) => *total += n,
            (slot @ Ok(_), Err(e)) => *slot = Err(e),
            (Err(_), _) => {}
        }
    }

    /// Issue half of a split-phase batch read: expand the requests and
    /// post up to the credit window, then return without waiting. At most
    /// one batch may be outstanding per session.
    pub fn read_batch_begin(&self, ctx: &ActorCtx, reqs: &[ReadReq]) -> DafsBatch {
        let mut b = DafsBatch {
            dir: BatchDir::Read,
            subs: self.expand_read_subs(reqs),
            results: vec![Ok(0); reqs.len()],
            inflight: VecDeque::new(),
            next: 0,
            read_reqs: reqs.to_vec(),
            write_reqs: Vec::new(),
            list_reqs: Vec::new(),
            failed: None,
        };
        self.batch_fill(ctx, &mut b);
        b
    }

    /// Issue half of a split-phase batch write. See [`Self::read_batch_begin`].
    pub fn write_batch_begin(&self, ctx: &ActorCtx, reqs: &[WriteReq]) -> DafsBatch {
        let mut b = DafsBatch {
            dir: BatchDir::Write,
            subs: self.expand_write_subs(reqs),
            results: vec![Ok(0); reqs.len()],
            inflight: VecDeque::new(),
            next: 0,
            read_reqs: Vec::new(),
            write_reqs: reqs.to_vec(),
            list_reqs: Vec::new(),
            failed: None,
        };
        self.batch_fill(ctx, &mut b);
        b
    }

    /// Issue half of a split-phase vectored batch read: each request's
    /// segment list is split across credit windows by the wire segment cap
    /// and posted like any other batch. See [`Self::read_batch_begin`] for
    /// the outstanding-batch invariant.
    pub fn read_list_batch_begin(&self, ctx: &ActorCtx, reqs: &[ListReq]) -> DafsBatch {
        for r in reqs {
            assert!(
                proto::list_acceptable(&r.segs),
                "list request segments must be sorted and non-overlapping"
            );
        }
        let mut b = DafsBatch {
            dir: BatchDir::Read,
            subs: self.expand_list_subs(reqs, false),
            results: vec![Ok(0); reqs.len()],
            inflight: VecDeque::new(),
            next: 0,
            read_reqs: Vec::new(),
            write_reqs: Vec::new(),
            list_reqs: reqs.to_vec(),
            failed: None,
        };
        self.batch_fill(ctx, &mut b);
        b
    }

    /// Issue half of a split-phase vectored batch write. See
    /// [`Self::read_list_batch_begin`].
    pub fn write_list_batch_begin(&self, ctx: &ActorCtx, reqs: &[ListReq]) -> DafsBatch {
        for r in reqs {
            assert!(
                proto::list_acceptable(&r.segs),
                "list request segments must be sorted and non-overlapping"
            );
        }
        let mut b = DafsBatch {
            dir: BatchDir::Write,
            subs: self.expand_list_subs(reqs, true),
            results: vec![Ok(0); reqs.len()],
            inflight: VecDeque::new(),
            next: 0,
            read_reqs: Vec::new(),
            write_reqs: Vec::new(),
            list_reqs: reqs.to_vec(),
            failed: None,
        };
        self.batch_fill(ctx, &mut b);
        b
    }

    /// Per-segment recovery for a vectored read whose list requests died
    /// with the session: re-fetch every segment through the replayable
    /// inline path (idempotent).
    fn read_list_fallback(&self, ctx: &ActorCtx, r: &ListReq) -> DafsResult<u64> {
        let mut total = 0u64;
        for &(off, len, rel) in &r.segs {
            total += self.read_inline(ctx, r.fh, off, r.buf.offset(rel), len)?;
        }
        Ok(total)
    }

    /// Per-segment recovery for a vectored write: re-put every segment's
    /// bytes through replayable inline chunks (idempotent).
    fn write_list_fallback(&self, ctx: &ActorCtx, r: &ListReq) -> DafsResult<u64> {
        let mut total = 0u64;
        for &(off, len, rel) in &r.segs {
            total += self.write_inline_chunks(ctx, r.fh, off, r.buf.offset(rel), len)?;
        }
        Ok(total)
    }

    /// Nonblocking progress on a split-phase batch: drain completions that
    /// already arrived, retire finished subs in order, and post freed
    /// credits. Returns true once every sub has retired (then
    /// [`Self::batch_finish`] will not block).
    pub fn batch_test(&self, ctx: &ActorCtx, b: &mut DafsBatch) -> bool {
        if b.failed.is_none() {
            if let Err(e) = self.poll_responses(ctx) {
                // Leave the cleanup to batch_finish, which fails the
                // outstanding subs and runs the recovery pass.
                b.failed = Some(e);
                return false;
            }
            loop {
                match b.inflight.front() {
                    Some((id, ..)) if self.pending.lock().contains_key(id) => {
                        self.batch_retire_front(ctx, b);
                        self.batch_fill(ctx, b);
                    }
                    _ => break,
                }
            }
        }
        b.failed.is_none() && b.next >= b.subs.len() && b.inflight.is_empty()
    }

    /// Completion half: block until every sub-request has retired, then
    /// re-run any requests that died with the session through the
    /// replayable inline path (idempotent — reads re-fetch and writes
    /// re-put the same bytes at the same offsets).
    pub fn batch_finish(&self, ctx: &ActorCtx, mut b: DafsBatch) -> Vec<DafsResult<u64>> {
        if let Some(e) = b.failed {
            // The nonblocking poll saw the session die: fail everything
            // outstanding (releasing registrations) instead of waiting on
            // completions that can never arrive.
            while !b.inflight.is_empty() {
                self.batch_retire_front(ctx, &mut b);
            }
            while b.next < b.subs.len() {
                let owner = b.subs[b.next].owner;
                if b.results[owner].is_ok() {
                    b.results[owner] = Err(e);
                }
                b.next += 1;
            }
        }
        while b.next < b.subs.len() || !b.inflight.is_empty() {
            self.batch_fill(ctx, &mut b);
            self.batch_retire_front(ctx, &mut b);
        }
        for (i, slot) in b.results.iter_mut().enumerate() {
            if matches!(slot, Err(DafsError::Transport(_) | DafsError::Connect(_))) {
                ctx.metrics().counter("dafs.batch_recoveries").inc();
                *slot = if !b.list_reqs.is_empty() {
                    let r = &b.list_reqs[i];
                    match b.dir {
                        BatchDir::Read => self.read_list_fallback(ctx, r),
                        BatchDir::Write => self.write_list_fallback(ctx, r),
                    }
                } else {
                    match b.dir {
                        BatchDir::Read => {
                            let r = b.read_reqs[i];
                            self.read_inline(ctx, r.fh, r.off, r.dst, r.len)
                        }
                        BatchDir::Write => {
                            let r = b.write_reqs[i];
                            self.write_inline_chunks(ctx, r.fh, r.off, r.src, r.len)
                        }
                    }
                };
            }
        }
        if b.dir == BatchDir::Write {
            // Self-coherence: drop any cached pages the batch overwrote.
            for r in &b.write_reqs {
                self.cache_note_write(ctx, r.fh, r.off, r.len, None);
            }
            for r in &b.list_reqs {
                if let (Some(first), Some(last)) = (r.segs.first(), r.segs.last()) {
                    let span = last.0 + last.1 - first.0;
                    self.cache_note_write(ctx, r.fh, first.0, span, None);
                }
            }
        }
        b.results
    }

    /// Pipelined batch read: up to `credits` requests in flight.
    /// Returns per-request byte counts, in request order.
    pub fn read_batch(&self, ctx: &ActorCtx, reqs: &[ReadReq]) -> Vec<DafsResult<u64>> {
        let b = self.read_batch_begin(ctx, reqs);
        self.batch_finish(ctx, b)
    }

    /// Pipelined batch write. Returns per-request written byte counts, in
    /// request order.
    pub fn write_batch(&self, ctx: &ActorCtx, reqs: &[WriteReq]) -> Vec<DafsResult<u64>> {
        let b = self.write_batch_begin(ctx, reqs);
        self.batch_finish(ctx, b)
    }

    /// Vectored read: fetch every `(offset, len)` range of `fh` in one
    /// wire request (split across credit windows past the segment cap),
    /// scattering packed data into `dst`. Ranges must be sorted ascending
    /// and non-overlapping. Returns total bytes read.
    pub fn read_list(
        &self,
        ctx: &ActorCtx,
        fh: NodeId,
        ranges: &[(u64, u64)],
        dst: VirtAddr,
    ) -> DafsResult<u64> {
        let req = ListReq::packed(fh, ranges, dst);
        let b = self.read_list_batch_begin(ctx, std::slice::from_ref(&req));
        self.batch_finish(ctx, b).remove(0)
    }

    /// Vectored write: put every `(offset, len)` range of `fh` in one wire
    /// request, gathering packed data from `src`. Ranges must be sorted
    /// ascending and non-overlapping. Returns total bytes written.
    pub fn write_list(
        &self,
        ctx: &ActorCtx,
        fh: NodeId,
        ranges: &[(u64, u64)],
        src: VirtAddr,
    ) -> DafsResult<u64> {
        let req = ListReq::packed(fh, ranges, src);
        let b = self.write_list_batch_begin(ctx, std::slice::from_ref(&req));
        self.batch_finish(ctx, b).remove(0)
    }
}
