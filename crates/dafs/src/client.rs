//! The DAFS client (`dap_*`-style API).
//!
//! One VI per session; `credits` pre-posted receive descriptors double as
//! the response buffers and the pipeline depth for batch I/O. Requests
//! carry session-local ids so responses can be matched out of order.
//!
//! Transfer strategy (the `direct_threshold` knob):
//! * requests ≤ threshold go **inline** — one copy on each host, lowest
//!   latency for small transfers;
//! * larger reads use **READ_DIRECT** — the server RDMA-Writes into the
//!   (cached-registered) user buffer; the client CPU does nothing per byte;
//! * larger writes use **WRITE_DIRECT** when the fabric supports RDMA Read,
//!   else fall back to inline chunks (the cLAN configuration).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU32, Ordering};

use memfs::{FileAttr, NodeId};
use parking_lot::Mutex;
use simnet::{ActorCtx, ByteMeter, Counter, HostId, VirtAddr};
use via::{
    ConnectError, DataSegment, MemAttributes, MemHandle, ProtectionTag, RecvDesc, SendDesc,
    ViAttributes, Vi, ViState, ViaFabric, ViaNic, ViaStatus,
};

use crate::cost::DafsClientConfig;
use crate::proto::{self, DafsOp, DafsStatus, ServerCaps};
use crate::regcache::RegCache;
use crate::server::SLOT;
use crate::wire::{Dec, Enc};

/// DAFS client errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DafsError {
    /// Server returned a non-OK status.
    Status(DafsStatus),
    /// The session's VI broke or disconnected; carries the VIA completion
    /// status that killed it.
    Transport(ViaStatus),
    /// Malformed response.
    Protocol,
    /// Connection could not be established.
    Connect(ConnectError),
}

impl From<ConnectError> for DafsError {
    fn from(e: ConnectError) -> DafsError {
        DafsError::Connect(e)
    }
}

impl std::fmt::Display for DafsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DafsError::Status(s) => write!(f, "DAFS server returned {s:?}"),
            DafsError::Transport(s) => write!(f, "DAFS session transport failure: {s}"),
            DafsError::Protocol => write!(f, "malformed DAFS response"),
            DafsError::Connect(e) => write!(f, "DAFS session setup failed: {e}"),
        }
    }
}

impl std::error::Error for DafsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DafsError::Transport(s) => Some(s),
            DafsError::Connect(e) => Some(e),
            _ => None,
        }
    }
}

/// Convenience alias.
pub type DafsResult<T> = Result<T, DafsError>;

/// Client-side counters.
#[derive(Clone, Default)]
pub struct DafsClientStats {
    /// Requests issued.
    pub ops: Counter,
    /// Inline READ traffic.
    pub inline_reads: ByteMeter,
    /// Inline WRITE traffic.
    pub inline_writes: ByteMeter,
    /// Direct READ traffic.
    pub direct_reads: ByteMeter,
    /// Direct WRITE traffic.
    pub direct_writes: ByteMeter,
}

/// One read request in a batch.
#[derive(Debug, Clone, Copy)]
pub struct ReadReq {
    /// File to read.
    pub fh: NodeId,
    /// Byte offset.
    pub off: u64,
    /// Destination buffer (simulated memory on the client host).
    pub dst: VirtAddr,
    /// Bytes requested.
    pub len: u64,
}

/// One write request in a batch.
#[derive(Debug, Clone, Copy)]
pub struct WriteReq {
    /// File to write.
    pub fh: NodeId,
    /// Byte offset.
    pub off: u64,
    /// Source buffer.
    pub src: VirtAddr,
    /// Bytes to write.
    pub len: u64,
}

fn rw_attrs(ptag: ProtectionTag) -> MemAttributes {
    MemAttributes {
        ptag,
        enable_rdma_write: true,
        enable_rdma_read: true,
    }
}

/// A DAFS session.
pub struct DafsClient {
    vi: Vi,
    nic: ViaNic,
    config: DafsClientConfig,
    caps: ServerCaps,
    reqid: AtomicU32,
    req_ring: Vec<(VirtAddr, MemHandle)>,
    req_next: Mutex<usize>,
    recv_ring: Mutex<VecDeque<(VirtAddr, MemHandle)>>,
    regcache: RegCache,
    pending: Mutex<HashMap<u32, Vec<u8>>>,
    scratch: Mutex<Option<(VirtAddr, usize)>>,
    /// Client counters.
    pub stats: DafsClientStats,
}

impl DafsClient {
    /// Establish a session with the DAFS server at `(server, port)`.
    pub fn connect(
        ctx: &ActorCtx,
        fabric: &ViaFabric,
        nic: &ViaNic,
        server: HostId,
        port: u16,
        config: DafsClientConfig,
    ) -> DafsResult<DafsClient> {
        let vi = fabric
            .connect(ctx, nic, server, port, ViAttributes::default())
            .map_err(DafsError::Connect)?;
        let tag = vi.ptag();
        let mut req_ring = Vec::new();
        let mut recv_ring = VecDeque::new();
        for _ in 0..config.credits {
            let buf = nic.host().mem.alloc(SLOT as usize);
            let h = nic.register_mem(ctx, buf, SLOT, MemAttributes::local(tag));
            req_ring.push((buf, h));
        }
        for _ in 0..config.credits {
            let buf = nic.host().mem.alloc(SLOT as usize);
            let h = nic.register_mem(ctx, buf, SLOT, MemAttributes::local(tag));
            vi.post_recv(
                ctx,
                RecvDesc::new(vec![DataSegment::new(buf, SLOT as u32, h)]),
            );
            recv_ring.push_back((buf, h));
        }
        let regcache = RegCache::new(
            nic.clone(),
            tag,
            rw_attrs,
            config.regcache_capacity,
            config.use_regcache,
        );
        let client = DafsClient {
            vi,
            nic: nic.clone(),
            config,
            caps: ServerCaps {
                rdma_read: false,
                credits: config.credits,
                inline_max: config.inline_max,
            },
            reqid: AtomicU32::new(1),
            req_ring,
            req_next: Mutex::new(0),
            recv_ring: Mutex::new(recv_ring),
            regcache,
            pending: Mutex::new(HashMap::new()),
            scratch: Mutex::new(None),
            stats: DafsClientStats::default(),
        };
        // Capability exchange.
        let mut e = Enc::new();
        let reqid = client.post_request(ctx, DafsOp::Hello, &mut e);
        let resp = client.wait_response(ctx, reqid)?;
        let mut d = Dec::new(&resp);
        let (_, status) = proto::dec_resp_header(&mut d).map_err(|_| DafsError::Protocol)?;
        if status != DafsStatus::Ok {
            return Err(DafsError::Status(status));
        }
        let rdma_read = d.u8().map_err(|_| DafsError::Protocol)? != 0;
        let credits = d.u32().map_err(|_| DafsError::Protocol)?;
        let inline_max = d.u64().map_err(|_| DafsError::Protocol)?;
        let mut client = client;
        client.caps = ServerCaps {
            rdma_read,
            credits,
            inline_max: inline_max.min(client.config.inline_max),
        };
        ctx.metrics().counter("dafs.sessions").inc();
        ctx.trace(
            "dafs",
            "session.connect",
            &[
                ("server", obs::Value::U64(server.0 as u64)),
                ("rdma_read", obs::Value::Bool(client.caps.rdma_read)),
                ("credits", obs::Value::U64(client.caps.credits as u64)),
                ("inline_max", obs::Value::U64(client.caps.inline_max)),
            ],
        );
        Ok(client)
    }

    /// The capabilities negotiated at session setup.
    pub fn caps(&self) -> ServerCaps {
        self.caps
    }

    /// The session's configuration.
    pub fn config(&self) -> &DafsClientConfig {
        &self.config
    }

    /// Registration-cache counters: (hits, misses, evictions).
    pub fn regcache_stats(&self) -> (u64, u64, u64) {
        (
            self.regcache.hits.get(),
            self.regcache.misses.get(),
            self.regcache.evictions.get(),
        )
    }

    /// The client NIC.
    pub fn nic(&self) -> &ViaNic {
        &self.nic
    }

    /// Build and post one request; returns its id. `body` receives the
    /// header; the caller must have appended the op arguments already —
    /// so this takes the op and an `Enc` holding only the arguments.
    fn post_request(&self, ctx: &ActorCtx, op: DafsOp, args: &mut Enc) -> u32 {
        let reqid = self.reqid.fetch_add(1, Ordering::Relaxed);
        self.stats.ops.inc();
        ctx.metrics().counter("dafs.ops").inc();
        self.nic.host().compute(ctx, self.config.per_op);
        let mut e = Enc::new();
        proto::enc_req_header(&mut e, reqid, op);
        let mut bytes = e.finish();
        bytes.extend_from_slice(&std::mem::take(args).finish());
        assert!(bytes.len() as u64 <= SLOT, "request overflows message slot");
        // Copy into the next registered request slot.
        self.nic
            .host()
            .compute(ctx, self.config.host.copy(bytes.len() as u64));
        let slot = {
            let mut next = self.req_next.lock();
            let s = *next;
            *next = (s + 1) % self.req_ring.len();
            s
        };
        let (buf, h) = self.req_ring[slot];
        self.nic.host().mem.write(buf, &bytes);
        // Drain stale send completions to keep the port bounded.
        while self.vi.send_done(ctx).is_some() {}
        self.vi.post_send(
            ctx,
            SendDesc::send(vec![DataSegment::new(buf, bytes.len() as u32, h)]),
        );
        reqid
    }

    /// Await the response for `reqid`, stashing any other responses that
    /// arrive first.
    fn wait_response(&self, ctx: &ActorCtx, reqid: u32) -> DafsResult<Vec<u8>> {
        loop {
            if let Some(resp) = self.pending.lock().remove(&reqid) {
                return Ok(resp);
            }
            if self.vi.state() != ViState::Connected {
                return Err(DafsError::Transport(ViaStatus::ConnectionLost));
            }
            let completion = self.vi.recv_wait(ctx);
            match completion.status {
                ViaStatus::Success => {}
                status => return Err(DafsError::Transport(status)),
            }
            let (buf, h) = {
                let mut ring = self.recv_ring.lock();
                let slot = ring.pop_front().expect("recv ring");
                ring.push_back(slot);
                slot
            };
            let resp = self.nic.host().mem.read_vec(buf, completion.len as usize);
            self.vi.post_recv(
                ctx,
                RecvDesc::new(vec![DataSegment::new(buf, SLOT as u32, h)]),
            );
            let mut d = Dec::new(&resp);
            let (rid, _) = proto::dec_resp_header(&mut d).map_err(|_| DafsError::Protocol)?;
            self.pending.lock().insert(rid, resp);
        }
    }

    /// Synchronous request/response; returns the payload after the header.
    fn call(&self, ctx: &ActorCtx, op: DafsOp, args: &mut Enc) -> DafsResult<Vec<u8>> {
        let reqid = self.post_request(ctx, op, args);
        let resp = self.wait_response(ctx, reqid)?;
        let mut d = Dec::new(&resp);
        let (_, status) = proto::dec_resp_header(&mut d).map_err(|_| DafsError::Protocol)?;
        if status != DafsStatus::Ok {
            return Err(DafsError::Status(status));
        }
        Ok(resp[5..].to_vec())
    }

    fn call_attr(&self, ctx: &ActorCtx, op: DafsOp, args: &mut Enc) -> DafsResult<FileAttr> {
        let payload = self.call(ctx, op, args)?;
        proto::dec_attr(&mut Dec::new(&payload)).map_err(|_| DafsError::Protocol)
    }

    /// Fetch attributes.
    pub fn getattr(&self, ctx: &ActorCtx, fh: NodeId) -> DafsResult<FileAttr> {
        let mut e = Enc::new();
        e.u64(fh.0);
        self.call_attr(ctx, DafsOp::GetAttr, &mut e)
    }

    /// Truncate / extend.
    pub fn truncate(&self, ctx: &ActorCtx, fh: NodeId, size: u64) -> DafsResult<FileAttr> {
        let mut e = Enc::new();
        e.u64(fh.0).u8(1).u64(size);
        self.call_attr(ctx, DafsOp::SetAttr, &mut e)
    }

    /// Directory lookup.
    pub fn lookup(&self, ctx: &ActorCtx, dir: NodeId, name: &str) -> DafsResult<FileAttr> {
        let mut e = Enc::new();
        e.u64(dir.0).str(name);
        self.call_attr(ctx, DafsOp::Lookup, &mut e)
    }

    /// Create a regular file.
    pub fn create(&self, ctx: &ActorCtx, dir: NodeId, name: &str) -> DafsResult<FileAttr> {
        let mut e = Enc::new();
        e.u64(dir.0).str(name);
        self.call_attr(ctx, DafsOp::Create, &mut e)
    }

    /// Create a directory.
    pub fn mkdir(&self, ctx: &ActorCtx, dir: NodeId, name: &str) -> DafsResult<FileAttr> {
        let mut e = Enc::new();
        e.u64(dir.0).str(name);
        self.call_attr(ctx, DafsOp::Mkdir, &mut e)
    }

    /// Remove a regular file.
    pub fn remove(&self, ctx: &ActorCtx, dir: NodeId, name: &str) -> DafsResult<()> {
        let mut e = Enc::new();
        e.u64(dir.0).str(name);
        self.call(ctx, DafsOp::Remove, &mut e).map(|_| ())
    }

    /// Remove an empty directory.
    pub fn rmdir(&self, ctx: &ActorCtx, dir: NodeId, name: &str) -> DafsResult<()> {
        let mut e = Enc::new();
        e.u64(dir.0).str(name);
        self.call(ctx, DafsOp::Rmdir, &mut e).map(|_| ())
    }

    /// Rename.
    pub fn rename(
        &self,
        ctx: &ActorCtx,
        from: NodeId,
        name: &str,
        to: NodeId,
        to_name: &str,
    ) -> DafsResult<()> {
        let mut e = Enc::new();
        e.u64(from.0).str(name).u64(to.0).str(to_name);
        self.call(ctx, DafsOp::Rename, &mut e).map(|_| ())
    }

    /// List a directory.
    pub fn readdir(&self, ctx: &ActorCtx, dir: NodeId) -> DafsResult<Vec<(String, NodeId)>> {
        let mut e = Enc::new();
        e.u64(dir.0);
        let payload = self.call(ctx, DafsOp::ReadDir, &mut e)?;
        let mut d = Dec::new(&payload);
        let n = d.u32().map_err(|_| DafsError::Protocol)?;
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let id = NodeId(d.u64().map_err(|_| DafsError::Protocol)?);
            let name = d.str().map_err(|_| DafsError::Protocol)?;
            out.push((name, id));
        }
        Ok(out)
    }

    /// Atomic append: write `data` at the current end of file in one
    /// server-side operation; returns the offset the record landed at.
    /// Bounded by the session's inline limit (protocol message size).
    pub fn append(&self, ctx: &ActorCtx, fh: NodeId, data: &[u8]) -> DafsResult<u64> {
        assert!(
            data.len() as u64 <= self.caps.inline_max,
            "append record exceeds the inline limit"
        );
        let mut e = Enc::new();
        e.u64(fh.0).bytes(data);
        let payload = self.call(ctx, DafsOp::Append, &mut e)?;
        self.stats.inline_writes.record(data.len() as u64);
        ctx.metrics()
            .byte_meter("dafs.inline.bytes")
            .record(data.len() as u64);
        Dec::new(&payload).u64().map_err(|_| DafsError::Protocol)
    }

    /// Flush to stable storage (MPI_File_sync bottom half).
    pub fn flush(&self, ctx: &ActorCtx, fh: NodeId) -> DafsResult<()> {
        let mut e = Enc::new();
        e.u64(fh.0);
        self.call(ctx, DafsOp::Flush, &mut e).map(|_| ())
    }

    /// Acquire the whole-file exclusive lock (blocks until granted).
    pub fn lock(&self, ctx: &ActorCtx, fh: NodeId) -> DafsResult<()> {
        let mut e = Enc::new();
        e.u64(fh.0);
        self.call(ctx, DafsOp::Lock, &mut e).map(|_| ())
    }

    /// Release the whole-file lock.
    pub fn unlock(&self, ctx: &ActorCtx, fh: NodeId) -> DafsResult<()> {
        let mut e = Enc::new();
        e.u64(fh.0);
        self.call(ctx, DafsOp::Unlock, &mut e).map(|_| ())
    }

    /// End the session.
    pub fn disconnect(&self, ctx: &ActorCtx) {
        let mut e = Enc::new();
        let _ = self.call(ctx, DafsOp::Disconnect, &mut e);
        self.regcache.flush(ctx);
        self.vi.disconnect(ctx);
        ctx.trace("dafs", "session.disconnect", &[]);
    }

    /// Abruptly drop the VIA connection with no protocol goodbye — the
    /// client-crash path. The server observes `ConnectionLost` on the
    /// session's VI and must tear the session down (releasing its locks).
    pub fn abort(&self, ctx: &ActorCtx) {
        self.vi.disconnect(ctx);
        self.regcache.flush(ctx);
        ctx.trace("dafs", "session.abort", &[]);
    }

    /// Resolve a slash-separated path from the root.
    pub fn resolve(&self, ctx: &ActorCtx, path: &str) -> DafsResult<FileAttr> {
        let mut cur = memfs::ROOT_ID;
        let mut attr = self.getattr(ctx, cur)?;
        for part in path.split('/').filter(|p| !p.is_empty()) {
            attr = self.lookup(ctx, cur, part)?;
            cur = attr.id;
        }
        Ok(attr)
    }

    // ----- data path ------------------------------------------------------

    /// True if a transfer of `len` goes direct rather than inline.
    pub fn is_direct(&self, len: u64) -> bool {
        len > self.config.direct_threshold
    }

    /// Read `len` bytes at `off` into the user buffer `dst`.
    /// Returns bytes actually read (short at EOF).
    pub fn read(
        &self,
        ctx: &ActorCtx,
        fh: NodeId,
        off: u64,
        dst: VirtAddr,
        len: u64,
    ) -> DafsResult<u64> {
        let _span = ctx.span("dafs", "read");
        let direct = self.is_direct(len);
        ctx.trace(
            "dafs",
            "xfer",
            &[
                ("op", obs::Value::Str("read")),
                ("mode", obs::Value::Str(if direct { "direct" } else { "inline" })),
                ("len", obs::Value::U64(len)),
            ],
        );
        if !direct {
            return self.read_inline(ctx, fh, off, dst, len);
        }
        let (handle, transient) = self.regcache.acquire(ctx, dst, len);
        let mut e = Enc::new();
        e.u64(fh.0).u64(off).u64(len).u64(dst.as_u64()).u64(handle.0);
        let r = self.call(ctx, DafsOp::ReadDirect, &mut e);
        self.regcache.release(ctx, handle, transient);
        let payload = r?;
        let count = Dec::new(&payload).u64().map_err(|_| DafsError::Protocol)?;
        self.stats.direct_reads.record(count);
        ctx.metrics().byte_meter("dafs.direct.bytes").record(count);
        Ok(count)
    }

    fn read_inline(
        &self,
        ctx: &ActorCtx,
        fh: NodeId,
        mut off: u64,
        dst: VirtAddr,
        len: u64,
    ) -> DafsResult<u64> {
        let mut done = 0u64;
        while done < len {
            let n = (len - done).min(self.caps.inline_max);
            let mut e = Enc::new();
            e.u64(fh.0).u64(off).u64(n);
            let payload = self.call(ctx, DafsOp::ReadInline, &mut e)?;
            let data = Dec::new(&payload).bytes().map_err(|_| DafsError::Protocol)?;
            // Copy out of the message buffer into the user buffer.
            self.nic
                .host()
                .compute(ctx, self.config.host.copy(data.len() as u64));
            self.nic.host().mem.write(dst.offset(done), &data);
            self.stats.inline_reads.record(data.len() as u64);
            ctx.metrics()
                .byte_meter("dafs.inline.bytes")
                .record(data.len() as u64);
            let got = data.len() as u64;
            done += got;
            off += got;
            if got < n {
                break; // EOF
            }
        }
        Ok(done)
    }

    /// Write `len` bytes at `off` from the user buffer `src`.
    pub fn write(
        &self,
        ctx: &ActorCtx,
        fh: NodeId,
        off: u64,
        src: VirtAddr,
        len: u64,
    ) -> DafsResult<FileAttr> {
        let _span = ctx.span("dafs", "write");
        let direct = self.is_direct(len) && self.caps.rdma_read;
        ctx.trace(
            "dafs",
            "xfer",
            &[
                ("op", obs::Value::Str("write")),
                ("mode", obs::Value::Str(if direct { "direct" } else { "inline" })),
                ("len", obs::Value::U64(len)),
            ],
        );
        if direct {
            let (handle, transient) = self.regcache.acquire(ctx, src, len);
            let mut e = Enc::new();
            e.u64(fh.0).u64(off).u64(len).u64(src.as_u64()).u64(handle.0);
            let r = self.call_attr(ctx, DafsOp::WriteDirect, &mut e);
            self.regcache.release(ctx, handle, transient);
            let a = r?;
            self.stats.direct_writes.record(len);
            ctx.metrics().byte_meter("dafs.direct.bytes").record(len);
            return Ok(a);
        }
        // Inline path (small writes, or the cLAN no-RDMA-Read fallback).
        if len <= self.caps.inline_max {
            let data = self.nic.host().mem.read_vec(src, len as usize);
            // App buffer into the message buffer (charged in post_request as
            // part of the body copy).
            let mut e = Enc::new();
            e.u64(fh.0).u64(off).bytes(&data);
            let a = self.call_attr(ctx, DafsOp::WriteInline, &mut e)?;
            self.stats.inline_writes.record(len);
            ctx.metrics().byte_meter("dafs.inline.bytes").record(len);
            return Ok(a);
        }
        // Multi-chunk: pipeline the chunks over the session credits rather
        // than paying a round trip per chunk.
        let results = self.write_batch(ctx, &[WriteReq { fh, off, src, len }]);
        results.into_iter().next().unwrap()?;
        self.getattr(ctx, fh)
    }

    /// Convenience: read into a fresh vector (stages through an internal
    /// scratch buffer; costs one extra mechanical copy, uncharged).
    pub fn read_to_vec(
        &self,
        ctx: &ActorCtx,
        fh: NodeId,
        off: u64,
        len: u64,
    ) -> DafsResult<Vec<u8>> {
        let dst = self.scratch(len as usize);
        let n = self.read(ctx, fh, off, dst, len)?;
        Ok(self.nic.host().mem.read_vec(dst, n as usize))
    }

    /// Convenience: write from a byte slice.
    pub fn write_bytes(
        &self,
        ctx: &ActorCtx,
        fh: NodeId,
        off: u64,
        data: &[u8],
    ) -> DafsResult<FileAttr> {
        let src = self.scratch(data.len());
        self.nic.host().mem.write(src, data);
        self.write(ctx, fh, off, src, data.len() as u64)
    }

    fn scratch(&self, len: usize) -> VirtAddr {
        let mut s = self.scratch.lock();
        match *s {
            Some((addr, cap)) if cap >= len => addr,
            _ => {
                let cap = len.next_power_of_two().max(64 << 10);
                let addr = self.nic.host().mem.alloc(cap);
                *s = Some((addr, cap));
                addr
            }
        }
    }

    /// Pipelined batch read: up to `credits` requests in flight.
    /// Returns per-request byte counts, in request order.
    pub fn read_batch(&self, ctx: &ActorCtx, reqs: &[ReadReq]) -> Vec<DafsResult<u64>> {
        // Expand inline requests that exceed one message into chunks; each
        // chunk remembers which original request it belongs to.
        struct Sub {
            owner: usize,
            fh: NodeId,
            off: u64,
            dst: VirtAddr,
            len: u64,
            direct: bool,
        }
        let mut subs = Vec::new();
        for (i, r) in reqs.iter().enumerate() {
            if self.is_direct(r.len) {
                subs.push(Sub { owner: i, fh: r.fh, off: r.off, dst: r.dst, len: r.len, direct: true });
            } else {
                let mut done = 0u64;
                loop {
                    let n = (r.len - done).min(self.caps.inline_max);
                    subs.push(Sub {
                        owner: i,
                        fh: r.fh,
                        off: r.off + done,
                        dst: r.dst.offset(done),
                        len: n,
                        direct: false,
                    });
                    done += n;
                    if done >= r.len {
                        break;
                    }
                }
            }
        }
        let window = self.caps.credits.max(1) as usize;
        let mut results: Vec<DafsResult<u64>> = vec![Ok(0); reqs.len()];
        let mut inflight: VecDeque<(u32, usize, MemHandle, bool)> = VecDeque::new();
        let mut next = 0usize;
        let finish = |res: DafsResult<u64>, owner: usize, results: &mut Vec<DafsResult<u64>>| {
            match (&mut results[owner], res) {
                (Ok(total), Ok(n)) => *total += n,
                (slot @ Ok(_), Err(e)) => *slot = Err(e),
                (Err(_), _) => {}
            }
        };
        while next < subs.len() || !inflight.is_empty() {
            while next < subs.len() && inflight.len() < window {
                let sb = &subs[next];
                if sb.direct {
                    let (handle, transient) = self.regcache.acquire(ctx, sb.dst, sb.len);
                    let mut e = Enc::new();
                    e.u64(sb.fh.0).u64(sb.off).u64(sb.len).u64(sb.dst.as_u64()).u64(handle.0);
                    let id = self.post_request(ctx, DafsOp::ReadDirect, &mut e);
                    inflight.push_back((id, next, handle, transient));
                } else {
                    let mut e = Enc::new();
                    e.u64(sb.fh.0).u64(sb.off).u64(sb.len);
                    let id = self.post_request(ctx, DafsOp::ReadInline, &mut e);
                    inflight.push_back((id, next, MemHandle(0), false));
                }
                next += 1;
            }
            let (id, sub_idx, handle, transient) = inflight.pop_front().unwrap();
            let sb = &subs[sub_idx];
            let res = (|| -> DafsResult<u64> {
                let resp = self.wait_response(ctx, id)?;
                let mut d = Dec::new(&resp);
                let (_, status) =
                    proto::dec_resp_header(&mut d).map_err(|_| DafsError::Protocol)?;
                if status != DafsStatus::Ok {
                    return Err(DafsError::Status(status));
                }
                if sb.direct {
                    let count = d.u64().map_err(|_| DafsError::Protocol)?;
                    self.stats.direct_reads.record(count);
                    ctx.metrics().byte_meter("dafs.direct.bytes").record(count);
                    Ok(count)
                } else {
                    let data = d.bytes().map_err(|_| DafsError::Protocol)?;
                    self.nic
                        .host()
                        .compute(ctx, self.config.host.copy(data.len() as u64));
                    self.nic.host().mem.write(sb.dst, &data);
                    self.stats.inline_reads.record(data.len() as u64);
                    ctx.metrics()
                        .byte_meter("dafs.inline.bytes")
                        .record(data.len() as u64);
                    Ok(data.len() as u64)
                }
            })();
            if sb.direct {
                self.regcache.release(ctx, handle, transient);
            }
            finish(res, sb.owner, &mut results);
        }
        results
    }

    /// Pipelined batch write. Returns per-request written byte counts, in
    /// request order.
    pub fn write_batch(&self, ctx: &ActorCtx, reqs: &[WriteReq]) -> Vec<DafsResult<u64>> {
        struct Sub {
            owner: usize,
            fh: NodeId,
            off: u64,
            src: VirtAddr,
            len: u64,
            direct: bool,
        }
        let direct_ok = self.caps.rdma_read;
        let mut subs = Vec::new();
        for (i, r) in reqs.iter().enumerate() {
            if self.is_direct(r.len) && direct_ok {
                subs.push(Sub { owner: i, fh: r.fh, off: r.off, src: r.src, len: r.len, direct: true });
            } else {
                let mut done = 0u64;
                loop {
                    let n = (r.len - done).min(self.caps.inline_max);
                    subs.push(Sub {
                        owner: i,
                        fh: r.fh,
                        off: r.off + done,
                        src: r.src.offset(done),
                        len: n,
                        direct: false,
                    });
                    done += n;
                    if done >= r.len {
                        break;
                    }
                }
            }
        }
        let window = self.caps.credits.max(1) as usize;
        let mut results: Vec<DafsResult<u64>> = vec![Ok(0); reqs.len()];
        let mut inflight: VecDeque<(u32, usize, MemHandle, bool)> = VecDeque::new();
        let mut next = 0usize;
        while next < subs.len() || !inflight.is_empty() {
            while next < subs.len() && inflight.len() < window {
                let sb = &subs[next];
                if sb.direct {
                    let (handle, transient) = self.regcache.acquire(ctx, sb.src, sb.len);
                    let mut e = Enc::new();
                    e.u64(sb.fh.0).u64(sb.off).u64(sb.len).u64(sb.src.as_u64()).u64(handle.0);
                    let id = self.post_request(ctx, DafsOp::WriteDirect, &mut e);
                    self.stats.direct_writes.record(sb.len);
                    ctx.metrics().byte_meter("dafs.direct.bytes").record(sb.len);
                    inflight.push_back((id, next, handle, transient));
                } else {
                    let data = self.nic.host().mem.read_vec(sb.src, sb.len as usize);
                    let mut e = Enc::new();
                    e.u64(sb.fh.0).u64(sb.off).bytes(&data);
                    let id = self.post_request(ctx, DafsOp::WriteInline, &mut e);
                    self.stats.inline_writes.record(sb.len);
                    ctx.metrics().byte_meter("dafs.inline.bytes").record(sb.len);
                    inflight.push_back((id, next, MemHandle(0), false));
                }
                next += 1;
            }
            let (id, sub_idx, handle, transient) = inflight.pop_front().unwrap();
            let sb = &subs[sub_idx];
            let res = (|| -> DafsResult<u64> {
                let resp = self.wait_response(ctx, id)?;
                let mut d = Dec::new(&resp);
                let (_, status) =
                    proto::dec_resp_header(&mut d).map_err(|_| DafsError::Protocol)?;
                if status != DafsStatus::Ok {
                    return Err(DafsError::Status(status));
                }
                Ok(sb.len)
            })();
            if sb.direct {
                self.regcache.release(ctx, handle, transient);
            }
            match (&mut results[sb.owner], res) {
                (Ok(total), Ok(n)) => *total += n,
                (slot @ Ok(_), Err(e)) => *slot = Err(e),
                (Err(_), _) => {}
            }
        }
        results
    }
}
