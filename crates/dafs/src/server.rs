//! The DAFS server: a CQ-driven event loop over per-session VIs.
//!
//! Shape of the real thing: an acceptor admits sessions (one VI each,
//! receive queues bound to one shared completion queue, `credits` receive
//! descriptors pre-posted into registered session buffers), and a single
//! worker drains the CQ, executing requests against the shared [`MemFs`].
//! New sessions reach the worker through a timed port, so the worker owns
//! all session state — no lock is ever held across a virtual-time yield.
//!
//! Data paths:
//! * **inline** — payload travels in the message; the server pays a
//!   buffer-cache copy;
//! * **direct read** — the server RDMA-Writes file data straight into the
//!   client's advertised buffer, then sends a small completion response;
//! * **direct write** — the server RDMA-Reads from the client's buffer
//!   (only if the NIC supports RDMA Read; otherwise the op is rejected and
//!   the client falls back to inline).
//!
//! With `registered_buffer_cache` (the NetApp-prototype configuration) the
//! server pays no per-byte CPU on direct transfers at all.

use std::collections::{BTreeMap, HashMap, VecDeque};

use memfs::{MemFs, NodeId, SetAttr};
use simnet::{ActorCtx, ByteMeter, Bytes, Counter, Host, Port, SimKernel, SimTime, VirtAddr};
use via::{
    Cq, DataSegment, MemAttributes, MemHandle, RecvDesc, RemoteSegment, SendDesc, Vi, ViAttributes,
    ViId, ViState, ViaFabric, ViaNic, ViaStatus, WhichQueue,
};

use crate::cost::DafsServerCost;
use crate::proto::{self, DafsOp, DafsStatus};
use crate::sched::{self, QueuedReq, RequestSched, SchedPolicy};
use crate::wire::{Dec, Enc};

/// Message-buffer size for each session slot: inline_max plus header slack.
pub(crate) const SLOT: u64 = 66 << 10;
/// Server staging area per session for direct transfers; larger transfers
/// are chunked through it (the chunks pipeline on the wire).
const STAGING: u64 = 4 << 20;
/// Server-granted credits per session.
pub(crate) const CREDITS: u32 = 8;
/// Largest inline payload the server accepts.
pub(crate) const INLINE_MAX: u64 = 32 << 10;

/// Observable server counters.
#[derive(Clone, Default)]
pub struct DafsServerStats {
    /// Requests served.
    pub ops: Counter,
    /// Inline READ traffic.
    pub inline_reads: ByteMeter,
    /// Inline WRITE traffic.
    pub inline_writes: ByteMeter,
    /// Direct (RDMA) READ traffic.
    pub direct_reads: ByteMeter,
    /// Direct (RDMA) WRITE traffic.
    pub direct_writes: ByteMeter,
    /// Sessions admitted.
    pub sessions: Counter,
}

/// Handle returned by [`spawn_dafs_server`].
pub struct DafsServerHandle {
    /// Server counters.
    pub stats: DafsServerStats,
    /// The server host (CPU meter).
    pub host: Host,
    /// The server NIC (wire utilization, registration stats).
    pub nic: ViaNic,
}

struct Session {
    vi: Vi,
    /// Receive buffers, in descriptor-post order (VIA consumes FIFO).
    recv_ring: VecDeque<(VirtAddr, MemHandle)>,
    /// Response send buffers, used round-robin.
    resp_ring: Vec<(VirtAddr, MemHandle)>,
    resp_next: usize,
    /// Staging buffer for direct transfers.
    staging: (VirtAddr, MemHandle),
}

#[derive(Default)]
struct LockState {
    holder: Option<ViId>,
    waiters: VecDeque<(ViId, u32)>,
}

/// Lease table entry for one file handle. Grant rules keep the holder set
/// homogeneous: either any number of read holders or exactly one write-back
/// holder, never a mix.
#[derive(Default)]
struct LeaseState {
    /// Holder sessions in grant order (recall fan-out is deterministic).
    holders: Vec<(ViId, proto::LeaseKind)>,
    /// In-flight recall, if a conflicting request is waiting.
    recall: Option<RecallState>,
}

/// A recall in progress: every holder has been pushed a [`proto::enc_recall_push`]
/// frame and the conflicting requests sit in `blocked` until the last
/// holder flushes and acks (or dies — session teardown counts as an ack).
/// The wire recall id is not kept here: dropping a holder is idempotent, so
/// an ack from any round retires that holder's pending entry.
struct RecallState {
    /// Holders whose flush-and-ack is still outstanding.
    pending: Vec<ViId>,
    /// Raw request frames deferred until the recall completes, replayed
    /// through `serve_one` in arrival order.
    blocked: Vec<(ViId, Vec<u8>)>,
}

/// High-half base for synthetic client ids handed to legacy (cid-less)
/// Hellos; real client ids are VI ids (small integers), so the two ranges
/// never collide.
const LEGACY_CID_BASE: u64 = 1 << 63;

/// Per-worker QoS state: the pluggable dispatch scheduler plus the tenant
/// bindings the `Hello` handler feeds it.
struct QosState {
    /// Dispatch-order policy (FIFO by default; WFQ when configured).
    sched: Box<dyn RequestSched>,
    /// Tenant binding per live session: `(tenant id, weight)`.
    tenants: HashMap<ViId, (u64, u32)>,
    /// Allocator for synthetic client ids handed to legacy Hellos, so two
    /// cid-less clients never share a replay-cache identity.
    next_legacy_cid: u64,
}

/// Start a DAFS server on `nic`'s host, exporting `fs` at `port`. The
/// dispatch policy comes from the `MPIO_DAFS_SCHED` environment variable
/// ([`sched::policy_from_env`]); unset means the historical FIFO order.
pub fn spawn_dafs_server(
    kernel: &SimKernel,
    fabric: &ViaFabric,
    nic: ViaNic,
    fs: MemFs,
    port: u16,
    cost: DafsServerCost,
) -> DafsServerHandle {
    spawn_dafs_server_sched(
        kernel,
        fabric,
        nic,
        fs,
        port,
        cost,
        sched::policy_from_env(),
    )
}

/// [`spawn_dafs_server`] with an explicit request-scheduling policy sitting
/// between session receive and op dispatch (see [`crate::sched`]).
pub fn spawn_dafs_server_sched(
    kernel: &SimKernel,
    fabric: &ViaFabric,
    nic: ViaNic,
    fs: MemFs,
    port: u16,
    cost: DafsServerCost,
    policy: SchedPolicy,
) -> DafsServerHandle {
    let stats = DafsServerStats::default();
    let cq = Cq::new("dafs-cq");
    let new_sessions: Port<Session> = Port::new("dafs-new-sessions");
    let host = nic.host().clone();

    // Acceptor: admit sessions, arm their receive queues, hand them to the
    // worker.
    {
        let fabric = fabric.clone();
        let nic = nic.clone();
        let cq = cq.clone();
        let new_sessions = new_sessions.clone();
        let stats = stats.clone();
        kernel.spawn_daemon("dafs-acceptor", move |ctx| {
            let listener = fabric.listen(&nic, port);
            loop {
                let attrs = ViAttributes {
                    recv_cq: Some(cq.clone()),
                    ..Default::default()
                };
                let Some(vi) = listener.accept(ctx, attrs) else {
                    break;
                };
                stats.sessions.inc();
                let tag = vi.ptag();
                // Session buffers come from the server's boot-time
                // pre-registered pool (NetApp-prototype style): no
                // registration cost at session setup, just the binding to
                // this session's protection tag.
                let mut recv_ring = VecDeque::new();
                for _ in 0..CREDITS {
                    let buf = nic.host().mem.alloc(SLOT as usize);
                    let h = nic.register_mem_prepinned(buf, SLOT, MemAttributes::local(tag));
                    vi.post_recv(
                        ctx,
                        RecvDesc::new(vec![DataSegment::new(buf, SLOT as u32, h)]),
                    );
                    recv_ring.push_back((buf, h));
                }
                let mut resp_ring = Vec::new();
                for _ in 0..CREDITS {
                    let buf = nic.host().mem.alloc(SLOT as usize);
                    let h = nic.register_mem_prepinned(buf, SLOT, MemAttributes::local(tag));
                    resp_ring.push((buf, h));
                }
                let sbuf = nic.host().mem.alloc(STAGING as usize);
                let sh = nic.register_mem_prepinned(sbuf, STAGING, MemAttributes::local(tag));
                new_sessions.send(
                    ctx,
                    Session {
                        vi,
                        recv_ring,
                        resp_ring,
                        resp_next: 0,
                        staging: (sbuf, sh),
                    },
                    ctx.now(),
                );
            }
        });
    }

    // Worker: drain the CQ and execute requests. Owns all session state.
    {
        let nic = nic.clone();
        let stats = stats.clone();
        let host = host.clone();
        kernel.spawn_daemon("dafs-worker", move |ctx| {
            let mut sessions: HashMap<ViId, Session> = HashMap::new();
            let mut retired: std::collections::HashSet<ViId> = std::collections::HashSet::new();
            let mut locks: HashMap<u64, LockState> = HashMap::new();
            // Lease table (BTreeMap: teardown sweeps it in handle order so
            // unblocking deferred writers is deterministic).
            let mut leases: BTreeMap<u64, LeaseState> = BTreeMap::new();
            let mut next_recall_id: u32 = 1;
            // Stable client id (from Hello) per live session, and the
            // replay cache that makes reconnect-replayed non-idempotent
            // requests exactly-once.
            let mut client_ids: HashMap<ViId, u64> = HashMap::new();
            let mut replay = ReplayCache::new(REPLAY_CAPACITY);
            let mut qos = QosState {
                sched: match policy {
                    SchedPolicy::Fifo => Box::new(sched::FifoSched::new()),
                    SchedPolicy::Wfq(p) => Box::new(sched::WfqSched::new(p)),
                },
                tenants: HashMap::new(),
                next_legacy_cid: 0,
            };
            let wfq = qos.sched.reorders();

            // Reap a dead session: tear down its state, drop its queued
            // frames, and replay any requests its leases were blocking.
            macro_rules! reap {
                ($vi:expr) => {{
                    let dead = $vi;
                    sessions.remove(&dead);
                    retired.insert(dead);
                    client_ids.remove(&dead);
                    qos.tenants.remove(&dead);
                    qos.sched.drop_session(dead);
                    release_locks_of(ctx, &mut sessions, &mut locks, dead);
                    let frames = release_leases_of(ctx, &mut leases, dead);
                    for (bvi, frame) in frames {
                        if sessions.contains_key(&bvi) {
                            serve_one(
                                ctx,
                                &nic,
                                &host,
                                &fs,
                                &cost,
                                &stats,
                                &mut sessions,
                                bvi,
                                &mut locks,
                                &mut leases,
                                &mut next_recall_id,
                                &mut client_ids,
                                &mut replay,
                                &mut qos,
                                &frame,
                            );
                        }
                    }
                }};
            }

            // Serve one frame; if the serve disconnected or broke the
            // session (the reply is judged against the fault plan), reap it
            // here so its locks never leak while the client redials.
            macro_rules! serve_and_reap {
                ($vi:expr, $frame:expr) => {{
                    let svi = $vi;
                    let disconnect = serve_one(
                        ctx,
                        &nic,
                        &host,
                        &fs,
                        &cost,
                        &stats,
                        &mut sessions,
                        svi,
                        &mut locks,
                        &mut leases,
                        &mut next_recall_id,
                        &mut client_ids,
                        &mut replay,
                        &mut qos,
                        $frame,
                    );
                    let broke = sessions
                        .get(&svi)
                        .is_some_and(|s| s.vi.state() != ViState::Connected);
                    if disconnect || broke {
                        reap!(svi);
                    }
                }};
            }

            // Turn one CQ token into its received frame plus the virtual
            // instant the message was actually delivered (the completion's
            // `at`, which can predate `ctx.now()` when the worker was busy
            // serving), re-arming the consumed receive descriptor. Yields
            // `None` when the token carries nothing servable (send-side
            // token, stale token of a retired session, failed or
            // connection-lost completion).
            macro_rules! token_req {
                ($token:expr) => {{
                    let token = $token;
                    let vi_id = token.vi;
                    let mut out: Option<(Bytes, SimTime)> = None;
                    'tok: {
                        if token.queue != WhichQueue::Recv {
                            break 'tok;
                        }
                        // A token can outrun its session's hand-off (the
                        // acceptor is still registering buffers); wait for
                        // the hand-off — unless the token is a stale
                        // leftover of a retired session.
                        while !sessions.contains_key(&vi_id) {
                            if retired.contains(&vi_id) {
                                break 'tok;
                            }
                            match new_sessions.recv(ctx) {
                                Some(s) => {
                                    sessions.insert(s.vi.id(), s);
                                }
                                None => break 'tok,
                            }
                        }
                        let Some(sess) = sessions.get_mut(&vi_id) else {
                            break 'tok; // already torn down
                        };
                        // Drain old send completions so ports stay bounded.
                        while sess.vi.send_done(ctx).is_some() {}
                        let Some(completion) = sess.vi.recv_done(ctx) else {
                            break 'tok;
                        };
                        if completion.status == ViaStatus::ConnectionLost {
                            reap!(vi_id);
                            break 'tok;
                        }
                        if !completion.status.is_ok() {
                            break 'tok;
                        }
                        // The message landed in the oldest posted buffer;
                        // re-arm. The completion carries a zero-copy view of
                        // the frame, so parsing does not re-read the posted
                        // buffer.
                        let (buf, h) = sess.recv_ring.pop_front().expect("descriptor ring");
                        let len = completion.len as usize;
                        let req = completion
                            .payload
                            .unwrap_or_else(|| nic.host().mem.read_bytes(buf, len));
                        sess.vi.post_recv(
                            ctx,
                            RecvDesc::new(vec![DataSegment::new(buf, SLOT as u32, h)]),
                        );
                        sess.recv_ring.push_back((buf, h));
                        out = Some((req, completion.at));
                    }
                    out
                }};
            }

            // Route one received frame. Under a reordering policy, control
            // ops (Hello, Disconnect, LeaseRecallAck) bypass the queue — a
            // recall ack parked behind a bulk backlog would wedge every
            // frame blocked on that recall behind the very tenant being
            // throttled. Everything else competes in the scheduler.
            macro_rules! enqueue {
                ($vi:expr, $req:expr, $arrival:expr) => {{
                    let evi = $vi;
                    let req = $req;
                    if wfq && sched::control_op(&req) {
                        serve_and_reap!(evi, &req);
                    } else {
                        let (cost_bytes, small) = sched::classify(&req);
                        let (tenant, weight) = qos
                            .tenants
                            .get(&evi)
                            .copied()
                            .unwrap_or((sched::DEFAULT_TENANT, 1));
                        qos.sched.push(
                            ctx,
                            QueuedReq {
                                vi: evi,
                                tenant,
                                weight,
                                cost: cost_bytes,
                                small,
                                arrival: $arrival,
                                frame: req,
                            },
                        );
                    }
                }};
            }

            while let Some(token) = cq.wait(ctx) {
                // Admit any sessions registered up to now.
                while let Some(s) = new_sessions.try_recv(ctx) {
                    sessions.insert(s.vi.id(), s);
                }
                let vi_id = token.vi;
                let Some((req, at)) = token_req!(token) else {
                    continue;
                };
                enqueue!(vi_id, req, at);
                // Dispatch until the scheduler runs dry. Under FIFO the
                // queue holds exactly the frame just pushed, so it serves
                // immediately — the same timing-visible sequence as the
                // pre-scheduler server. Under WFQ, completions that have
                // already arrived are drained first (poll charges no time)
                // so concurrent arrivals actually compete for dispatch
                // order.
                while !qos.sched.is_empty() {
                    if wfq {
                        while let Some(t) = cq.poll(ctx) {
                            let tvi = t.vi;
                            if let Some((r, rat)) = token_req!(t) {
                                enqueue!(tvi, r, rat);
                            }
                        }
                    }
                    let Some(q) = qos.sched.pop(ctx) else {
                        break;
                    };
                    if sessions.contains_key(&q.vi) {
                        serve_and_reap!(q.vi, &q.frame);
                    }
                }
            }
        });
    }

    DafsServerHandle { stats, host, nic }
}

/// Entries retained by the replay cache; covers every request id a client
/// could replay across its bounded reconnect attempts.
const REPLAY_CAPACITY: usize = 1024;

/// Replay cache: `(client id, request id) -> encoded reply`, evicted FIFO.
///
/// A client that reconnects replays its in-flight request under the same
/// request id; a hit here resends the first execution's reply without
/// touching the filesystem, making non-idempotent operations (CREATE,
/// APPEND, WRITE, RENAME, ...) exactly-once under any loss pattern.
/// Lookups and inserts charge no virtual time, so fault-free runs are
/// byte-identical with and without the cache.
struct ReplayCache {
    capacity: usize,
    replies: HashMap<(u64, u32), Bytes>,
    order: VecDeque<(u64, u32)>,
}

impl ReplayCache {
    fn new(capacity: usize) -> ReplayCache {
        ReplayCache {
            capacity,
            replies: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    fn get(&self, key: (u64, u32)) -> Option<&Bytes> {
        self.replies.get(&key)
    }

    fn insert(&mut self, key: (u64, u32), reply: Bytes) {
        if self.replies.insert(key, reply).is_none() {
            self.order.push_back(key);
            if self.order.len() > self.capacity {
                if let Some(old) = self.order.pop_front() {
                    self.replies.remove(&old);
                }
            }
        }
    }
}

/// Whether an op's reply must be remembered for replay. Only ops whose
/// re-execution would be observable need caching: reads, lookups, and
/// flushes re-execute harmlessly, and Lock/Unlock must re-execute (the old
/// session's teardown released its locks, so a replayed Lock has to be
/// granted fresh). Direct transfers are excluded because the client never
/// replays them by request id — their registration handles die with the
/// session, so it falls back to inline instead.
fn replay_cacheable(op: DafsOp) -> bool {
    matches!(
        op,
        DafsOp::SetAttr
            | DafsOp::Create
            | DafsOp::Remove
            | DafsOp::Mkdir
            | DafsOp::Rmdir
            | DafsOp::Rename
            | DafsOp::WriteInline
            | DafsOp::Append
            // Only inline-mode WriteList is ever replayed (direct mode uses
            // call_once like WriteDirect); caching a direct reply is benign
            // because request ids are never reused.
            | DafsOp::WriteList
    )
}

use crate::proto::list_well_formed;

/// Group a well-formed segment list into runs contiguous in the client
/// buffer: each run is `(buffer rel, segments)` where the segments' buffer
/// positions are back-to-back. A packed list collapses to one run; gapped
/// layouts get one run per contiguous stretch. Direct transfers issue one
/// RDMA stream per run.
fn list_runs(segs: &[proto::ListSeg]) -> Vec<(u64, Vec<proto::ListSeg>)> {
    let mut runs: Vec<(u64, Vec<proto::ListSeg>)> = Vec::new();
    let mut end = 0u64;
    for &seg in segs {
        let (_, len, rel) = seg;
        if rel == end && !runs.is_empty() {
            runs.last_mut().unwrap().1.push(seg);
        } else {
            runs.push((rel, vec![seg]));
        }
        end = rel + len;
    }
    runs
}

/// Send `resp` on the session's next response slot.
///
/// The slot still describes the transfer (its registration is TPT-checked
/// and its length drives every cost term), but the encoded reply rides as a
/// zero-copy payload — the bounce through the slot's staging memory is
/// skipped.
fn respond(ctx: &ActorCtx, _nic: &ViaNic, sess: &mut Session, resp: Bytes) {
    assert!(resp.len() as u64 <= SLOT, "response overflows session slot");
    let (buf, h) = sess.resp_ring[sess.resp_next];
    sess.resp_next = (sess.resp_next + 1) % sess.resp_ring.len();
    sess.vi.post_send(
        ctx,
        SendDesc::send(vec![DataSegment::new(buf, resp.len() as u32, h)]).with_payload(resp),
    );
}

/// On session teardown, release any lock the session held and grant to the
/// next waiter; drop its queued waits.
fn release_locks_of(
    ctx: &ActorCtx,
    sessions: &mut HashMap<ViId, Session>,
    locks: &mut HashMap<u64, LockState>,
    vi: ViId,
) {
    for st in locks.values_mut() {
        st.waiters.retain(|(w, _)| *w != vi);
        if st.holder == Some(vi) {
            st.holder = None;
            grant_next(ctx, sessions, st);
        }
    }
}

/// Gate one request against the lease table. Returns true when the request
/// was deferred behind a recall — the caller must not reply; the raw frame
/// is replayed through `serve_one` once every holder has flushed and acked.
///
/// Holds no virtual time and touches nothing observable when the table has
/// no entry for `fh`, so runs without caching clients stay byte-identical.
#[allow(clippy::too_many_arguments)]
fn lease_defer(
    ctx: &ActorCtx,
    nic: &ViaNic,
    sessions: &mut HashMap<ViId, Session>,
    leases: &mut BTreeMap<u64, LeaseState>,
    next_recall_id: &mut u32,
    vi_id: ViId,
    fh: u64,
    mutating: bool,
    req: &[u8],
) -> bool {
    let Some(st) = leases.get_mut(&fh) else {
        return false;
    };
    if st.holders.iter().any(|(h, _)| *h == vi_id) {
        // Holders pass through: a recalled holder must still be able to
        // flush its dirty pages, and a holder's own ops are coherent by
        // construction (its cache is the freshest copy).
        return false;
    }
    let conflict = if mutating {
        !st.holders.is_empty()
    } else {
        // Read and write leases never coexist on one handle, so a reader
        // only conflicts with a write-back holder's dirty cache.
        st.holders
            .iter()
            .any(|(_, k)| *k == proto::LeaseKind::Write)
    };
    if !conflict {
        return false;
    }
    if let Some(rc) = st.recall.as_mut() {
        // Recall already in flight: queue behind it in arrival order.
        rc.blocked.push((vi_id, req.to_vec()));
        return true;
    }
    let id = *next_recall_id;
    *next_recall_id += 1;
    let mut pending = Vec::new();
    let mut dead = Vec::new();
    for (h, _) in &st.holders {
        if let Some(sess) = sessions.get_mut(h) {
            let push = proto::enc_recall_push(NodeId(fh), id).finish();
            respond(ctx, nic, sess, push.into());
            // The push itself can break the session (crashed holder): a
            // dead holder can never ack, so waiting on it would wedge the
            // deferred request forever. Reclaim its lease on the spot.
            if sess.vi.state() == ViState::Connected {
                ctx.metrics().counter("dafs.lease.recalls_sent").inc();
                pending.push(*h);
            } else {
                ctx.metrics().counter("dafs.lease.reclaims").inc();
                dead.push(*h);
            }
        } else {
            dead.push(*h);
        }
    }
    st.holders.retain(|(h, _)| !dead.contains(h));
    if pending.is_empty() {
        // Every holder's session is already gone; reclaim on the spot.
        leases.remove(&fh);
        return false;
    }
    ctx.trace(
        "dafs",
        "lease.recall",
        &[
            ("fh", obs::Value::U64(fh)),
            ("recall", obs::Value::U64(id as u64)),
            ("holders", obs::Value::U64(pending.len() as u64)),
        ],
    );
    st.recall = Some(RecallState {
        pending,
        blocked: vec![(vi_id, req.to_vec())],
    });
    true
}

/// Drop `vi`'s lease on `fh` (recall ack, voluntary release, or teardown).
/// When that completes an in-flight recall, the deferred frames come back
/// for the caller to replay through `serve_one`.
fn lease_drop(leases: &mut BTreeMap<u64, LeaseState>, fh: u64, vi: ViId) -> Vec<(ViId, Vec<u8>)> {
    let Some(st) = leases.get_mut(&fh) else {
        return Vec::new();
    };
    st.holders.retain(|(h, _)| *h != vi);
    let mut frames = Vec::new();
    if let Some(rc) = st.recall.as_mut() {
        rc.pending.retain(|p| *p != vi);
        if rc.pending.is_empty() {
            frames = st.recall.take().expect("recall present").blocked;
        }
    }
    if st.holders.is_empty() && st.recall.is_none() {
        leases.remove(&fh);
    }
    frames
}

/// On session teardown, drop every lease the session held, abandon its own
/// deferred frames, and complete any recall that was waiting only on it —
/// a crashed holder must never wedge the writers queued behind a recall.
fn release_leases_of(
    ctx: &ActorCtx,
    leases: &mut BTreeMap<u64, LeaseState>,
    vi: ViId,
) -> Vec<(ViId, Vec<u8>)> {
    let mut frames = Vec::new();
    let fhs: Vec<u64> = leases.keys().copied().collect();
    for fh in fhs {
        let st = leases.get_mut(&fh).expect("swept key");
        if let Some(rc) = st.recall.as_mut() {
            rc.blocked.retain(|(b, _)| *b != vi);
        }
        if st.holders.iter().any(|(h, _)| *h == vi) {
            ctx.metrics().counter("dafs.lease.reclaims").inc();
            ctx.trace("dafs", "lease.reclaim", &[("fh", obs::Value::U64(fh))]);
        }
        frames.extend(lease_drop(leases, fh, vi));
    }
    frames
}

fn grant_next(ctx: &ActorCtx, sessions: &mut HashMap<ViId, Session>, st: &mut LockState) {
    while let Some((next, reqid)) = st.waiters.pop_front() {
        if let Some(sess) = sessions.get_mut(&next) {
            st.holder = Some(next);
            let mut e = Enc::new();
            proto::enc_resp_header(&mut e, reqid, DafsStatus::Ok);
            let nic = sess.vi.nic().clone();
            respond(ctx, &nic, sess, e.finish().into());
            return;
        }
        // Waiter's session vanished; try the next one.
    }
}

/// Execute one request; returns true if the session should be torn down.
#[allow(clippy::too_many_arguments)]
fn serve_one(
    ctx: &ActorCtx,
    nic: &ViaNic,
    host: &Host,
    fs: &MemFs,
    cost: &DafsServerCost,
    stats: &DafsServerStats,
    sessions: &mut HashMap<ViId, Session>,
    vi_id: ViId,
    locks: &mut HashMap<u64, LockState>,
    leases: &mut BTreeMap<u64, LeaseState>,
    next_recall_id: &mut u32,
    client_ids: &mut HashMap<ViId, u64>,
    replay: &mut ReplayCache,
    qos: &mut QosState,
    req: &[u8],
) -> bool {
    stats.ops.inc();
    host.compute(ctx, cost.per_op);

    let mut d = Dec::new(req);
    let Ok((reqid, op)) = proto::dec_req_header(&mut d) else {
        return false; // unparseable; drop
    };

    macro_rules! sess {
        () => {
            sessions.get_mut(&vi_id).expect("live session")
        };
    }

    // Replay short-circuit: a reconnected client re-sending a request we
    // already executed gets the original reply verbatim.
    let replay_key = if replay_cacheable(op) {
        client_ids.get(&vi_id).map(|cid| (*cid, reqid))
    } else {
        None
    };
    if let Some(key) = replay_key {
        if let Some(cached) = replay.get(key) {
            ctx.metrics().counter("dafs.replay.hits").inc();
            ctx.trace(
                "dafs",
                "replay.hit",
                &[
                    ("client", obs::Value::U64(key.0)),
                    ("reqid", obs::Value::U64(reqid as u64)),
                ],
            );
            let cached = cached.clone();
            respond(ctx, nic, sess!(), cached);
            return false;
        }
    }

    // Lease coherence gate: ops that would observe or clobber a cached
    // client's data are deferred behind a recall of the conflicting leases.
    // Replay hits never reach here — an already-executed mutation must not
    // be gated (or billed) twice.
    if !leases.is_empty() {
        let gate = match op {
            DafsOp::SetAttr
            | DafsOp::WriteInline
            | DafsOp::WriteDirect
            | DafsOp::WriteList
            | DafsOp::Append => Some(true),
            DafsOp::GetAttr | DafsOp::ReadInline | DafsOp::ReadDirect | DafsOp::ReadList => {
                Some(false)
            }
            _ => None,
        };
        if let Some(mutating) = gate {
            let mut peek = Dec::new(req);
            if proto::dec_req_header(&mut peek).is_ok() {
                if let Ok(fh) = peek.u64() {
                    if lease_defer(
                        ctx,
                        nic,
                        sessions,
                        leases,
                        next_recall_id,
                        vi_id,
                        fh,
                        mutating,
                        req,
                    ) {
                        return false;
                    }
                }
            }
        } else if op == DafsOp::Remove {
            // The wire names (dir, name); the conflict is on the child.
            let mut peek = Dec::new(req);
            if proto::dec_req_header(&mut peek).is_ok() {
                if let (Ok(dir), Ok(name)) = (peek.u64(), peek.str()) {
                    if let Ok(a) = fs.lookup(NodeId(dir), &name) {
                        if lease_defer(
                            ctx,
                            nic,
                            sessions,
                            leases,
                            next_recall_id,
                            vi_id,
                            a.id.0,
                            true,
                            req,
                        ) {
                            return false;
                        }
                    }
                }
            }
        }
    }

    macro_rules! reply {
        ($e:expr) => {{
            let bytes = Bytes::from_vec($e.finish());
            if let Some(key) = replay_key {
                replay.insert(key, bytes.clone());
            }
            respond(ctx, nic, sess!(), bytes);
            return false;
        }};
    }
    macro_rules! fail {
        ($st:expr) => {{
            let mut e2 = Enc::new();
            proto::enc_resp_header(&mut e2, reqid, $st);
            reply!(e2);
        }};
    }
    macro_rules! try_fs {
        ($r:expr) => {
            match $r {
                Ok(v) => v,
                Err(err) => fail!(DafsStatus::from(err)),
            }
        };
    }
    macro_rules! try_wire {
        ($r:expr) => {
            match $r {
                Ok(v) => v,
                Err(_) => fail!(DafsStatus::Inval),
            }
        };
    }

    let mut e = Enc::new();
    match op {
        DafsOp::Hello => {
            // The body carries the client's stable id. Legacy clients omit
            // it; each such session gets a unique synthetic id (high bit
            // set, above any real VI-derived id) so two cid-less clients
            // never share a replay-cache identity. A re-Hello on a session
            // that already holds a synthetic id keeps it — a legacy client
            // cannot name itself across reconnects, so its identity is the
            // session.
            match d.u64() {
                Ok(c) => {
                    client_ids.insert(vi_id, c);
                }
                Err(_) => {
                    client_ids.entry(vi_id).or_insert_with(|| {
                        qos.next_legacy_cid += 1;
                        LEGACY_CID_BASE | qos.next_legacy_cid
                    });
                }
            }
            // Optional QoS extension, present only when the client declared
            // a tenant: `(tenant id u64, weight u32)`. Legacy and
            // QoS-unaware Hellos end at the client id, so decoding simply
            // stops there and the reply is unchanged.
            let mut credits = CREDITS;
            if let Ok(tenant) = d.u64() {
                let weight = d.u32().unwrap_or(1).max(1);
                qos.tenants.insert(vi_id, (tenant, weight));
                qos.sched.set_weight(tenant, weight);
                if qos.sched.reorders() {
                    // Credit-window backpressure: an under-weight tenant's
                    // advertised window shrinks in proportion to the largest
                    // declared weight, so its excess load queues at the
                    // client instead of unboundedly in the scheduler.
                    let max_w = qos.tenants.values().map(|&(_, w)| w).max().unwrap_or(1);
                    let scaled = ((CREDITS as u64 * weight as u64) / max_w as u64)
                        .clamp(2, CREDITS as u64) as u32;
                    if scaled < CREDITS {
                        ctx.metrics()
                            .counter(&format!("dafs.sched.t{tenant}.throttles"))
                            .inc();
                    }
                    credits = scaled;
                }
            }
            proto::enc_resp_header(&mut e, reqid, DafsStatus::Ok);
            e.u8(nic.cost().rdma_read_supported as u8);
            e.u32(credits);
            e.u64(INLINE_MAX);
            reply!(e);
        }
        DafsOp::GetAttr => {
            let fh = NodeId(try_wire!(d.u64()));
            let a = try_fs!(fs.getattr(fh));
            proto::enc_resp_header(&mut e, reqid, DafsStatus::Ok);
            proto::enc_attr(&mut e, &a);
            reply!(e);
        }
        DafsOp::SetAttr => {
            let fh = NodeId(try_wire!(d.u64()));
            let has = try_wire!(d.u8());
            let size = if has != 0 {
                Some(try_wire!(d.u64()))
            } else {
                None
            };
            let a = try_fs!(fs.setattr(fh, SetAttr { size }));
            host.compute(ctx, cost.sync);
            proto::enc_resp_header(&mut e, reqid, DafsStatus::Ok);
            proto::enc_attr(&mut e, &a);
            reply!(e);
        }
        DafsOp::Lookup => {
            let dir = NodeId(try_wire!(d.u64()));
            let name = try_wire!(d.str());
            let a = try_fs!(fs.lookup(dir, &name));
            proto::enc_resp_header(&mut e, reqid, DafsStatus::Ok);
            proto::enc_attr(&mut e, &a);
            reply!(e);
        }
        DafsOp::Create => {
            let dir = NodeId(try_wire!(d.u64()));
            let name = try_wire!(d.str());
            let a = try_fs!(fs.create(dir, &name));
            host.compute(ctx, cost.sync);
            proto::enc_resp_header(&mut e, reqid, DafsStatus::Ok);
            proto::enc_attr(&mut e, &a);
            reply!(e);
        }
        DafsOp::Mkdir => {
            let dir = NodeId(try_wire!(d.u64()));
            let name = try_wire!(d.str());
            let a = try_fs!(fs.mkdir(dir, &name));
            host.compute(ctx, cost.sync);
            proto::enc_resp_header(&mut e, reqid, DafsStatus::Ok);
            proto::enc_attr(&mut e, &a);
            reply!(e);
        }
        DafsOp::Remove => {
            let dir = NodeId(try_wire!(d.u64()));
            let name = try_wire!(d.str());
            try_fs!(fs.remove(dir, &name));
            host.compute(ctx, cost.sync);
            proto::enc_resp_header(&mut e, reqid, DafsStatus::Ok);
            reply!(e);
        }
        DafsOp::Rmdir => {
            let dir = NodeId(try_wire!(d.u64()));
            let name = try_wire!(d.str());
            try_fs!(fs.rmdir(dir, &name));
            host.compute(ctx, cost.sync);
            proto::enc_resp_header(&mut e, reqid, DafsStatus::Ok);
            reply!(e);
        }
        DafsOp::Rename => {
            let from = NodeId(try_wire!(d.u64()));
            let name = try_wire!(d.str());
            let to = NodeId(try_wire!(d.u64()));
            let to_name = try_wire!(d.str());
            try_fs!(fs.rename(from, &name, to, &to_name));
            host.compute(ctx, cost.sync);
            proto::enc_resp_header(&mut e, reqid, DafsStatus::Ok);
            reply!(e);
        }
        DafsOp::ReadDir => {
            let dir = NodeId(try_wire!(d.u64()));
            // Encode entries straight off the directory map, borrowed under
            // the filesystem lock — no per-call Vec<(String, NodeId)>.
            let mut n = 0u32;
            let mut body = Enc::new();
            try_fs!(fs.with_readdir(dir, |name, id| {
                body.u64(id.0);
                body.str(name);
                n += 1;
            }));
            proto::enc_resp_header(&mut e, reqid, DafsStatus::Ok);
            e.u32(n);
            e.raw(&body.finish());
            reply!(e);
        }
        DafsOp::ReadInline => {
            let fh = NodeId(try_wire!(d.u64()));
            let off = try_wire!(d.u64());
            let len = try_wire!(d.u64());
            if len > INLINE_MAX {
                fail!(DafsStatus::Inval);
            }
            let data = try_fs!(fs.read_bytes(fh, off, len));
            // Buffer-cache copy into the response message.
            host.compute(ctx, cost.host.copy(data.len() as u64));
            stats.inline_reads.record(data.len() as u64);
            proto::enc_resp_header(&mut e, reqid, DafsStatus::Ok);
            e.bytes(&data);
            reply!(e);
        }
        DafsOp::Append => {
            let fh = NodeId(try_wire!(d.u64()));
            let data = try_wire!(d.bytes());
            if data.len() as u64 > INLINE_MAX {
                fail!(DafsStatus::Inval);
            }
            host.compute(ctx, cost.host.copy(data.len() as u64));
            // The single serial worker makes size-probe + write atomic.
            let at = try_fs!(fs.getattr(fh)).size;
            let a = try_fs!(fs.write(fh, at, &data));
            stats.inline_writes.record(data.len() as u64);
            proto::enc_resp_header(&mut e, reqid, DafsStatus::Ok);
            e.u64(at);
            proto::enc_attr(&mut e, &a);
            reply!(e);
        }
        DafsOp::WriteInline => {
            let fh = NodeId(try_wire!(d.u64()));
            let off = try_wire!(d.u64());
            let data = try_wire!(d.bytes());
            if data.len() as u64 > INLINE_MAX {
                fail!(DafsStatus::Inval);
            }
            host.compute(ctx, cost.host.copy(data.len() as u64));
            let a = try_fs!(fs.write(fh, off, &data));
            stats.inline_writes.record(data.len() as u64);
            proto::enc_resp_header(&mut e, reqid, DafsStatus::Ok);
            proto::enc_attr(&mut e, &a);
            reply!(e);
        }
        DafsOp::ReadDirect => {
            let fh = NodeId(try_wire!(d.u64()));
            let off = try_wire!(d.u64());
            let len = try_wire!(d.u64());
            let raddr = VirtAddr(try_wire!(d.u64()));
            let rhandle = MemHandle(try_wire!(d.u64()));
            let data = try_fs!(fs.read_bytes(fh, off, len));
            if !cost.registered_buffer_cache {
                host.compute(ctx, cost.host.copy(data.len() as u64));
            }
            // RDMA-write the data into the client's buffer, chunked as if
            // through the session staging area (chunks pipeline on the
            // wire). Each chunk rides as a zero-copy view of the file page:
            // server page → wire → client buffer, no staging bounce.
            let sess = sess!();
            let (sbuf, sh) = sess.staging;
            let mut sent = 0usize;
            let mut failed = false;
            while sent < data.len() {
                let n = (data.len() - sent).min(STAGING as usize);
                sess.vi.post_send(
                    ctx,
                    SendDesc::rdma_write(
                        vec![DataSegment::new(sbuf, n as u32, sh)],
                        RemoteSegment {
                            addr: raddr.offset(sent as u64),
                            handle: rhandle,
                        },
                    )
                    .with_payload(data.slice(sent..sent + n)),
                );
                // Chunk boundaries serialize through the staging buffer:
                // wait for the NIC to finish each chunk before overwriting.
                let c = sess.vi.send_wait(ctx);
                if !c.status.is_ok() {
                    failed = true;
                    break;
                }
                sent += n;
            }
            if failed {
                fail!(DafsStatus::XferError);
            }
            stats.direct_reads.record(data.len() as u64);
            proto::enc_resp_header(&mut e, reqid, DafsStatus::Ok);
            e.u64(data.len() as u64);
            reply!(e);
        }
        DafsOp::WriteDirect => {
            if !nic.cost().rdma_read_supported {
                fail!(DafsStatus::NotSupported);
            }
            let fh = NodeId(try_wire!(d.u64()));
            let off = try_wire!(d.u64());
            let len = try_wire!(d.u64());
            let raddr = VirtAddr(try_wire!(d.u64()));
            let rhandle = MemHandle(try_wire!(d.u64()));
            let (sbuf, sh) = sess!().staging;
            let mut got = 0u64;
            let mut failed = false;
            while got < len {
                let n = (len - got).min(STAGING);
                let sess = sess!();
                sess.vi.post_send(
                    ctx,
                    SendDesc::rdma_read(
                        vec![DataSegment::new(sbuf, n as u32, sh)],
                        RemoteSegment {
                            addr: raddr.offset(got),
                            handle: rhandle,
                        },
                    ),
                );
                let c = sess.vi.send_wait(ctx);
                if !c.status.is_ok() {
                    failed = true;
                    break;
                }
                let chunk = nic.host().mem.read_vec(sbuf, n as usize);
                if !cost.registered_buffer_cache {
                    host.compute(ctx, cost.host.copy(n));
                }
                if fs.write(fh, off + got, &chunk).is_err() {
                    failed = true;
                    break;
                }
                got += n;
            }
            if failed {
                fail!(DafsStatus::XferError);
            }
            stats.direct_writes.record(len);
            let a = try_fs!(fs.getattr(fh));
            proto::enc_resp_header(&mut e, reqid, DafsStatus::Ok);
            proto::enc_attr(&mut e, &a);
            reply!(e);
        }
        DafsOp::ReadList => {
            let fh = NodeId(try_wire!(d.u64()));
            let mode = try_wire!(d.u8());
            let (raddr, rhandle) = if mode != 0 {
                (VirtAddr(try_wire!(d.u64())), MemHandle(try_wire!(d.u64())))
            } else {
                (VirtAddr(0), MemHandle(0))
            };
            let segs = try_wire!(proto::dec_seg_list(&mut d));
            if !list_well_formed(&segs) {
                fail!(DafsStatus::Inval);
            }
            let total: u64 = segs.iter().map(|s| s.1).sum();
            if mode == 0 && total > INLINE_MAX {
                fail!(DafsStatus::Inval);
            }
            // One pass: gather every segment. Sorted lists mean a short
            // segment (EOF) empties every later one, so the gathered bytes
            // are a dense prefix of each buffer-contiguous run.
            let mut counts = Vec::with_capacity(segs.len());
            let mut data = Vec::new(); // inline reply payload (list order)
            if mode == 0 {
                for &(off, len, _) in &segs {
                    let seg = try_fs!(fs.read_bytes(fh, off, len));
                    counts.push(seg.len() as u64);
                    data.extend_from_slice(&seg);
                }
                host.compute(ctx, cost.host.copy(data.len() as u64));
                stats.inline_reads.record(data.len() as u64);
            } else {
                // Direct: one RDMA stream per buffer-contiguous run,
                // chunked through the session staging area like ReadDirect
                // (a packed list is a single run).
                let mut moved = 0u64;
                let mut failed = false;
                'runs: for (run_rel, run) in list_runs(&segs) {
                    // A single-segment run streams the file page view
                    // directly; multi-segment runs gather once into a fresh
                    // frame (the segments are discontiguous in the file).
                    let rdata: Bytes = if run.len() == 1 {
                        let (off, len, _) = run[0];
                        let seg = try_fs!(fs.read_bytes(fh, off, len));
                        counts.push(seg.len() as u64);
                        seg
                    } else {
                        let mut v = Vec::new();
                        for &(off, len, _) in &run {
                            let seg = try_fs!(fs.read_bytes(fh, off, len));
                            counts.push(seg.len() as u64);
                            v.extend_from_slice(&seg);
                        }
                        Bytes::from_vec(v)
                    };
                    if !cost.registered_buffer_cache {
                        host.compute(ctx, cost.host.copy(rdata.len() as u64));
                    }
                    let sess = sess!();
                    let (sbuf, sh) = sess.staging;
                    let mut sent = 0usize;
                    while sent < rdata.len() {
                        let n = (rdata.len() - sent).min(STAGING as usize);
                        sess.vi.post_send(
                            ctx,
                            SendDesc::rdma_write(
                                vec![DataSegment::new(sbuf, n as u32, sh)],
                                RemoteSegment {
                                    addr: raddr.offset(run_rel + sent as u64),
                                    handle: rhandle,
                                },
                            )
                            .with_payload(rdata.slice(sent..sent + n)),
                        );
                        let c = sess.vi.send_wait(ctx);
                        if !c.status.is_ok() {
                            failed = true;
                            break 'runs;
                        }
                        sent += n;
                    }
                    moved += rdata.len() as u64;
                }
                if failed {
                    fail!(DafsStatus::XferError);
                }
                stats.direct_reads.record(moved);
            }
            proto::enc_resp_header(&mut e, reqid, DafsStatus::Ok);
            e.u32(counts.len() as u32);
            for c in &counts {
                e.u64(*c);
            }
            if mode == 0 {
                e.bytes(&data);
            }
            reply!(e);
        }
        DafsOp::WriteList => {
            let fh = NodeId(try_wire!(d.u64()));
            let mode = try_wire!(d.u8());
            if mode != 0 && !nic.cost().rdma_read_supported {
                fail!(DafsStatus::NotSupported);
            }
            let (raddr, rhandle) = if mode != 0 {
                (VirtAddr(try_wire!(d.u64())), MemHandle(try_wire!(d.u64())))
            } else {
                (VirtAddr(0), MemHandle(0))
            };
            let segs = try_wire!(proto::dec_seg_list(&mut d));
            if !list_well_formed(&segs) {
                fail!(DafsStatus::Inval);
            }
            let total: u64 = segs.iter().map(|s| s.1).sum();
            if mode == 0 {
                // Inline: the payload carries every segment back-to-back in
                // list order; scatter it across the file in one pass.
                let data = try_wire!(d.bytes());
                if data.len() as u64 != total || total > INLINE_MAX {
                    fail!(DafsStatus::Inval);
                }
                host.compute(ctx, cost.host.copy(total));
                let mut pos = 0usize;
                for &(off, len, _) in &segs {
                    try_fs!(fs.write(fh, off, &data[pos..pos + len as usize]));
                    pos += len as usize;
                }
                stats.inline_writes.record(total);
            } else {
                // Direct: per buffer-contiguous run, RDMA-Read the stream
                // from the client buffer through staging, scattering
                // segments to the filesystem as each chunk lands.
                let mut failed = false;
                'wruns: for (run_rel, run) in list_runs(&segs) {
                    let run_total: u64 = run.iter().map(|s| s.1).sum();
                    let (sbuf, sh) = sess!().staging;
                    let mut got = 0u64;
                    let mut ri = 0usize; // current segment of the run
                    let mut rpos = 0u64; // bytes of it already written
                    while got < run_total {
                        let n = (run_total - got).min(STAGING);
                        let sess = sess!();
                        sess.vi.post_send(
                            ctx,
                            SendDesc::rdma_read(
                                vec![DataSegment::new(sbuf, n as u32, sh)],
                                RemoteSegment {
                                    addr: raddr.offset(run_rel + got),
                                    handle: rhandle,
                                },
                            ),
                        );
                        let c = sess.vi.send_wait(ctx);
                        if !c.status.is_ok() {
                            failed = true;
                            break 'wruns;
                        }
                        let chunk = nic.host().mem.read_vec(sbuf, n as usize);
                        if !cost.registered_buffer_cache {
                            host.compute(ctx, cost.host.copy(n));
                        }
                        let mut cpos = 0u64;
                        while cpos < n {
                            let (off, len, _) = run[ri];
                            let take = (len - rpos).min(n - cpos);
                            let piece = &chunk[cpos as usize..(cpos + take) as usize];
                            if fs.write(fh, off + rpos, piece).is_err() {
                                failed = true;
                                break 'wruns;
                            }
                            rpos += take;
                            cpos += take;
                            if rpos == len {
                                ri += 1;
                                rpos = 0;
                            }
                        }
                        got += n;
                    }
                }
                if failed {
                    fail!(DafsStatus::XferError);
                }
                stats.direct_writes.record(total);
            }
            let a = try_fs!(fs.getattr(fh));
            proto::enc_resp_header(&mut e, reqid, DafsStatus::Ok);
            proto::enc_attr(&mut e, &a);
            reply!(e);
        }
        DafsOp::Flush => {
            let _fh = NodeId(try_wire!(d.u64()));
            host.compute(ctx, cost.sync);
            proto::enc_resp_header(&mut e, reqid, DafsStatus::Ok);
            reply!(e);
        }
        DafsOp::Lock => {
            let fh = try_wire!(d.u64());
            let st = locks.entry(fh).or_default();
            match st.holder {
                None => {
                    st.holder = Some(vi_id);
                    proto::enc_resp_header(&mut e, reqid, DafsStatus::Ok);
                    reply!(e);
                }
                Some(_) => {
                    // Defer the response until the lock is released.
                    st.waiters.push_back((vi_id, reqid));
                    false
                }
            }
        }
        DafsOp::Unlock => {
            let fh = try_wire!(d.u64());
            proto::enc_resp_header(&mut e, reqid, DafsStatus::Ok);
            respond(ctx, nic, sess!(), e.finish().into());
            if let Some(st) = locks.get_mut(&fh) {
                if st.holder == Some(vi_id) {
                    st.holder = None;
                    grant_next(ctx, sessions, st);
                }
            }
            false
        }
        DafsOp::Disconnect => {
            proto::enc_resp_header(&mut e, reqid, DafsStatus::Ok);
            respond(ctx, nic, sess!(), e.finish().into());
            true
        }
        DafsOp::LeaseGrant => {
            // Not replay-cacheable: leases are per-session state, and a
            // reconnected client starts cold (revalidate-on-reconnect), so
            // replaying a stale grant would resurrect a dead lease.
            let fh = NodeId(try_wire!(d.u64()));
            let Some(kind) = proto::LeaseKind::from_u8(try_wire!(d.u8())) else {
                fail!(DafsStatus::Inval);
            };
            let a = try_fs!(fs.getattr(fh));
            let st = leases.entry(fh.0).or_default();
            let others_any = st.holders.iter().any(|(h, _)| *h != vi_id);
            let others_write = st
                .holders
                .iter()
                .any(|(h, k)| *h != vi_id && *k == proto::LeaseKind::Write);
            let deny = st.recall.is_some()
                || match kind {
                    proto::LeaseKind::Read => others_write,
                    proto::LeaseKind::Write => others_any,
                };
            if deny {
                if st.holders.is_empty() && st.recall.is_none() {
                    leases.remove(&fh.0);
                }
                ctx.metrics().counter("dafs.lease.denials").inc();
            } else {
                if let Some(slot) = st.holders.iter_mut().find(|(h, _)| *h == vi_id) {
                    slot.1 = slot.1.max(kind); // refresh / upgrade in place
                } else {
                    st.holders.push((vi_id, kind));
                }
                ctx.metrics().counter("dafs.lease.grants").inc();
            }
            proto::enc_resp_header(&mut e, reqid, DafsStatus::Ok);
            e.u8(!deny as u8);
            // The attr rides along so a granted client seeds its attribute
            // cache atomically with the lease.
            proto::enc_attr(&mut e, &a);
            reply!(e);
        }
        DafsOp::LeaseRecall => {
            // Server-to-client push marker only; never a valid request.
            fail!(DafsStatus::Inval);
        }
        DafsOp::LeaseRecallAck => {
            // Replay-idempotent by construction: re-dropping an absent
            // lease is a no-op, so a reconnect-replayed ack is harmless.
            let fh = try_wire!(d.u64());
            let _recall_id = try_wire!(d.u32());
            proto::enc_resp_header(&mut e, reqid, DafsStatus::Ok);
            respond(ctx, nic, sess!(), e.finish().into());
            let frames = lease_drop(leases, fh, vi_id);
            for (bvi, frame) in frames {
                if sessions.contains_key(&bvi) {
                    serve_one(
                        ctx,
                        nic,
                        host,
                        fs,
                        cost,
                        stats,
                        sessions,
                        bvi,
                        locks,
                        leases,
                        next_recall_id,
                        client_ids,
                        replay,
                        qos,
                        &frame,
                    );
                }
            }
            false
        }
    }
}
