//! # tcpnet — the kernel network path (baseline transport)
//!
//! The paper's baseline moves file data through the conventional stack:
//! sockets, TCP/IP, the NIC driver, and the kernel's buffer copies. What
//! makes that path slow relative to VIA is not the wire — it is the *host*:
//! a system call and a user↔kernel copy on every send/receive, per-packet
//! protocol processing, and interrupt-driven receive handling that burns
//! server CPU. This crate models exactly those costs over the same `simnet`
//! substrate (and, deliberately, the same physical wire rate as the VIA
//! fabric, so measured differences are attributable to the stack).
//!
//! Cost placement:
//! * sender: `syscall + copy(n) + per_packet_tx × packets` charged to the
//!   sending actor (transmit-side protocol work runs in the send call);
//! * wire: serialization of payload + per-packet header bytes on the
//!   transmit port, cut-through into the receiver's port;
//! * receiver kernel: `per_packet_rx × packets` booked on the receiving
//!   host's *softirq* resource — it delays delivery and accumulates busy
//!   time without involving the receiving actor (interrupt context);
//! * receiver: `syscall + copy(n)` charged when the application reads.

#![warn(missing_docs)]

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;
use simnet::cost::HostCost;
use simnet::fault::FaultPlan;
use simnet::time::units::*;
use simnet::topo::Topology;
use simnet::{
    buf, ActorCtx, Bandwidth, Bytes, Host, HostId, Port, RecvUntil, Resource, SimDuration, SimTime,
};

/// Timing constants of the kernel network path.
#[derive(Debug, Clone, Copy)]
pub struct TcpCost {
    /// TCP payload bytes per packet (Ethernet MTU minus headers).
    pub mtu_payload: u64,
    /// Header bytes per packet on the wire (Ethernet + IP + TCP).
    pub header_bytes: u64,
    /// Transmit-side protocol processing per packet (runs in the sender's
    /// send(2) call).
    pub per_packet_tx: SimDuration,
    /// Receive-side protocol + interrupt processing per packet (softirq),
    /// including software checksumming — 2001-era NICs lacked offload.
    pub per_packet_rx: SimDuration,
    /// One-way wire + switch propagation (driver queue included).
    pub wire_latency: SimDuration,
    /// Physical wire rate. Defaults to the *same* rate as the VIA fabric so
    /// the stacks are compared on an equal wire.
    pub wire_bw: Bandwidth,
    /// Host primitives (syscall, memcpy).
    pub host: HostCost,
}

impl Default for TcpCost {
    fn default() -> Self {
        TcpCost {
            mtu_payload: 1460,
            header_bytes: 58,
            per_packet_tx: us(12),
            per_packet_rx: us(25),
            wire_latency: us(30),
            wire_bw: Bandwidth::mb_per_sec(110),
            host: HostCost::default(),
        }
    }
}

impl TcpCost {
    /// Packets needed for `n` payload bytes (at least one).
    pub fn packets(&self, n: u64) -> u64 {
        n.div_ceil(self.mtu_payload).max(1)
    }

    /// Sender-side CPU time for a send(2) of `n` bytes.
    pub fn send_cpu(&self, n: u64) -> SimDuration {
        self.host.syscall + self.host.copy(n) + self.per_packet_tx.saturating_mul(self.packets(n))
    }

    /// Receiver-side application CPU for a recv(2) returning `n` bytes.
    pub fn recv_cpu(&self, n: u64) -> SimDuration {
        self.host.syscall + self.host.copy(n)
    }
}

/// Why a socket operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpError {
    /// Peer closed; not enough bytes remain to satisfy the read.
    Closed,
    /// No listener at the requested address.
    ConnectionRefused,
}

impl std::fmt::Display for TcpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TcpError::Closed => write!(f, "connection closed by peer"),
            TcpError::ConnectionRefused => write!(f, "connection refused"),
        }
    }
}

impl std::error::Error for TcpError {}

enum Chunk {
    Data(Bytes),
    Fin,
}

/// Per-host network-stack state.
struct HostNet {
    tx_wire: Resource,
    rx_wire: Resource,
    /// Interrupt-context packet processing; serial per host.
    softirq: Resource,
}

struct ConnRequest {
    client_port: Port<Chunk>,
    client_net: Arc<HostNet>,
    client_host: HostId,
    reply: Port<ConnReply>,
}

struct ConnReply {
    server_port: Port<Chunk>,
    server_net: Arc<HostNet>,
    server_host: HostId,
}

#[derive(Default)]
struct FabricState {
    listeners: HashMap<(HostId, u16), Port<ConnRequest>>,
    hosts: HashMap<HostId, Arc<HostNet>>,
    faults: Option<FaultPlan>,
    topology: Option<Arc<Topology>>,
}

/// The TCP "internet" connecting all hosts in the simulation.
#[derive(Clone)]
pub struct TcpFabric {
    state: Arc<Mutex<FabricState>>,
    cost: TcpCost,
}

impl TcpFabric {
    /// Create a fabric with the given cost model.
    pub fn new(cost: TcpCost) -> TcpFabric {
        TcpFabric {
            state: Arc::new(Mutex::new(FabricState::default())),
            cost,
        }
    }

    /// The cost model in effect.
    pub fn cost(&self) -> &TcpCost {
        &self.cost
    }

    /// Attach a fault plan: sockets created after this call judge every
    /// segment against it (drops and jitter). Existing sockets are
    /// unaffected.
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        self.state.lock().faults = Some(plan);
    }

    /// The currently attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.state.lock().faults.clone()
    }

    /// Attach a switched-fabric topology: sockets created after this call
    /// route their segments through the switch graph instead of a dedicated
    /// point-to-point wire. Handshakes stay on the control path.
    pub fn set_topology(&self, topo: Arc<Topology>) {
        self.state.lock().topology = Some(topo);
    }

    /// The currently attached topology, if any.
    pub fn topology(&self) -> Option<Arc<Topology>> {
        self.state.lock().topology.clone()
    }

    fn hostnet(&self, host: &Host) -> Arc<HostNet> {
        let mut st = self.state.lock();
        st.hosts
            .entry(host.id)
            .or_insert_with(|| {
                let n = host.name();
                Arc::new(HostNet {
                    tx_wire: Resource::new(&format!("{n}.eth.tx")),
                    rx_wire: Resource::new(&format!("{n}.eth.rx")),
                    softirq: Resource::new(&format!("{n}.softirq")),
                })
            })
            .clone()
    }

    /// Kernel (softirq) CPU time consumed on `host` by packet receive
    /// processing so far — part of the host-overhead accounting.
    pub fn kernel_busy(&self, host: &Host) -> SimDuration {
        self.hostnet(host).softirq.busy_total()
    }

    /// Begin listening at `(host, port)`.
    pub fn listen(&self, host: &Host, port: u16) -> TcpListener {
        let key = (host.id, port);
        let p: Port<ConnRequest> = Port::new(&format!("tcp-listen:{}:{}", host.name(), port));
        let prev = self.state.lock().listeners.insert(key, p.clone());
        assert!(prev.is_none(), "TCP address {key:?} already in use");
        TcpListener {
            fabric: self.clone(),
            requests: p,
            host: host.clone(),
        }
    }

    /// Connect from `host` to `(remote, port)`. One round trip of handshake.
    pub fn connect(
        &self,
        ctx: &ActorCtx,
        host: &Host,
        remote: HostId,
        port: u16,
    ) -> Result<Socket, TcpError> {
        let listener = self
            .state
            .lock()
            .listeners
            .get(&(remote, port))
            .cloned()
            .ok_or(TcpError::ConnectionRefused)?;
        host.compute(ctx, self.cost.host.syscall);
        let my_port: Port<Chunk> = Port::new("tcp-sock");
        let reply: Port<ConnReply> = Port::new("tcp-synack");
        listener.send(
            ctx,
            ConnRequest {
                client_port: my_port.clone(),
                client_net: self.hostnet(host),
                client_host: host.id,
                reply: reply.clone(),
            },
            ctx.now() + self.cost.wire_latency,
        );
        let r = reply.recv(ctx).ok_or(TcpError::ConnectionRefused)?;
        let (faults, topology) = {
            let st = self.state.lock();
            (st.faults.clone(), st.topology.clone())
        };
        Ok(Socket {
            inner: Arc::new(SocketInner {
                cost: self.cost,
                local_host: host.clone(),
                local_net: self.hostnet(host),
                peer_net: r.server_net,
                peer_host: r.server_host,
                peer_port: r.server_port,
                incoming: my_port,
                buffer: Mutex::new(VecDeque::new()),
                fin_seen: Mutex::new(false),
                last_deliver: Mutex::new(simnet::SimTime::ZERO),
                faults,
                topology,
            }),
        })
    }
}

/// A listening TCP endpoint.
pub struct TcpListener {
    fabric: TcpFabric,
    requests: Port<ConnRequest>,
    host: Host,
}

impl TcpListener {
    /// Accept the next connection (blocks in virtual time). `None` when the
    /// listener is closed.
    pub fn accept(&self, ctx: &ActorCtx) -> Option<Socket> {
        let req = self.requests.recv(ctx)?;
        self.host.compute(ctx, self.fabric.cost.host.syscall);
        let my_port: Port<Chunk> = Port::new("tcp-sock");
        req.reply.send(
            ctx,
            ConnReply {
                server_port: my_port.clone(),
                server_net: self.fabric.hostnet(&self.host),
                server_host: self.host.id,
            },
            ctx.now() + self.fabric.cost.wire_latency,
        );
        let (faults, topology) = {
            let st = self.fabric.state.lock();
            (st.faults.clone(), st.topology.clone())
        };
        Some(Socket {
            inner: Arc::new(SocketInner {
                cost: self.fabric.cost,
                local_host: self.host.clone(),
                local_net: self.fabric.hostnet(&self.host),
                peer_net: req.client_net,
                peer_host: req.client_host,
                peer_port: req.client_port,
                incoming: my_port,
                buffer: Mutex::new(VecDeque::new()),
                fin_seen: Mutex::new(false),
                last_deliver: Mutex::new(simnet::SimTime::ZERO),
                faults,
                topology,
            }),
        })
    }

    /// Stop accepting.
    pub fn close(&self, ctx: &ActorCtx) {
        self.requests.close(ctx);
    }
}

struct SocketInner {
    cost: TcpCost,
    local_host: Host,
    local_net: Arc<HostNet>,
    peer_net: Arc<HostNet>,
    peer_host: HostId,
    peer_port: Port<Chunk>,
    incoming: Port<Chunk>,
    buffer: Mutex<VecDeque<u8>>,
    fin_seen: Mutex<bool>,
    /// Latest delivery instant scheduled toward the peer; FIN is ordered
    /// after all data, as in a real TCP stream.
    last_deliver: Mutex<simnet::SimTime>,
    /// Fault plan captured at connection time; `None` leaves the data path
    /// byte-identical to the pre-fault-injection code.
    faults: Option<FaultPlan>,
    /// Switched-fabric topology captured at connection time; `None` keeps
    /// the point-to-point wire model.
    topology: Option<Arc<Topology>>,
}

/// A connected stream socket.
///
/// Cloning shares the socket (so one actor can read while another writes,
/// as with `dup(2)`), but only one actor may block in `recv_exact` at a
/// time.
#[derive(Clone)]
pub struct Socket {
    inner: Arc<SocketInner>,
}

impl Socket {
    /// The host this socket belongs to.
    pub fn host(&self) -> &Host {
        &self.inner.local_host
    }

    /// Send all of `bytes` (blocking send(2) semantics; charges the full
    /// sender-side CPU cost, then queues the wire transfer asynchronously).
    /// The user→kernel copy happens here, into a pooled frame; everything
    /// downstream shares the frame by reference.
    pub fn send(&self, ctx: &ActorCtx, bytes: &[u8]) {
        let mut frame = buf::frame_pool().alloc(bytes.len());
        frame[..bytes.len()].copy_from_slice(bytes);
        self.send_bytes(ctx, frame.freeze());
    }

    /// [`Socket::send`] taking ownership of the buffer, skipping the
    /// user→kernel copy in wall-clock terms (the simulated copy cost is
    /// still charged — the real 2001 stack always copies).
    pub fn send_owned(&self, ctx: &ActorCtx, bytes: Vec<u8>) {
        self.send_bytes(ctx, Bytes::from_vec(bytes));
    }

    /// [`Socket::send`] over an already-refcounted frame: zero wall-clock
    /// copies on the transmit side.
    pub fn send_bytes(&self, ctx: &ActorCtx, bytes: Bytes) {
        let s = &self.inner;
        let n = bytes.len() as u64;
        s.local_host.compute(ctx, s.cost.send_cpu(n));
        let npkts = s.cost.packets(n);
        ctx.metrics().byte_meter("tcp.tx.bytes").record(n);
        ctx.metrics().counter("tcp.packets").add(npkts);
        ctx.trace(
            "tcp",
            "segment.tx",
            &[
                ("bytes", obs::Value::U64(n)),
                ("packets", obs::Value::U64(npkts)),
            ],
        );
        let wire_bytes = n + npkts * s.cost.header_bytes;
        let ser = s.cost.wire_bw.time_for(wire_bytes);
        let (tx_start, tx_done) = s.local_net.tx_wire.book_span(ctx.now(), ser);
        // An injected fault loses the whole segment after the sender has
        // paid its transmit cost; the receiver never sees it (no rx-side
        // resource is booked). Message boundaries match `send` calls, so a
        // drop always loses a whole framed RPC, never a partial frame.
        if let Some(f) = &s.faults {
            if f.should_drop(
                ctx,
                s.local_host.id,
                s.peer_host,
                tx_start + s.cost.wire_latency,
            )
            .is_some()
            {
                return;
            }
        }
        let rx_first = match &s.topology {
            None => tx_start + s.cost.wire_latency,
            Some(t) => match t.deliver(
                ctx,
                s.faults.as_ref(),
                s.local_host.id,
                s.peer_host,
                wire_bytes,
                tx_start,
                tx_done,
            ) {
                Ok(at) => at,
                // The fabric shed the segment: like a plan-based loss the
                // receiver never sees it, and RPC retransmit recovers.
                Err(_) => return,
            },
        };
        let rx_done = s.peer_net.rx_wire.book(rx_first, ser);
        // Interrupt-context processing on the receiving host delays
        // delivery and accrues that host's kernel busy time.
        let mut deliver = s
            .peer_net
            .softirq
            .book(rx_done, s.cost.per_packet_rx.saturating_mul(npkts));
        if let Some(f) = &s.faults {
            deliver = f.jitter(ctx, s.local_host.id, s.peer_host, deliver);
        }
        {
            let mut last = s.last_deliver.lock();
            *last = (*last).max(deliver);
        }
        s.peer_port.send(ctx, Chunk::Data(bytes), deliver);
    }

    /// Read exactly `n` bytes (blocking). Charges receiver-side CPU for the
    /// bytes returned.
    pub fn recv_exact(&self, ctx: &ActorCtx, n: usize) -> Result<Vec<u8>, TcpError> {
        let s = &self.inner;
        loop {
            {
                let mut buf = s.buffer.lock();
                if buf.len() >= n {
                    let out: Vec<u8> = buf.drain(..n).collect();
                    drop(buf);
                    s.local_host.compute(ctx, s.cost.recv_cpu(n as u64));
                    ctx.metrics().byte_meter("tcp.rx.bytes").record(n as u64);
                    ctx.trace("tcp", "segment.rx", &[("bytes", obs::Value::U64(n as u64))]);
                    return Ok(out);
                }
                if *s.fin_seen.lock() {
                    return Err(TcpError::Closed);
                }
            }
            match s.incoming.recv(ctx) {
                Some(Chunk::Data(d)) => s.buffer.lock().extend(d.as_slice()),
                Some(Chunk::Fin) | None => {
                    *s.fin_seen.lock() = true;
                }
            }
        }
    }

    /// Like [`Socket::recv_exact`], but give up once the caller's clock
    /// reaches `deadline` without `n` bytes available. `Ok(None)` means the
    /// deadline passed (the clock has advanced to it) — the retransmit
    /// timer primitive for RPC layers. Already-buffered partial data is
    /// kept for the next read.
    pub fn recv_exact_deadline(
        &self,
        ctx: &ActorCtx,
        n: usize,
        deadline: SimTime,
    ) -> Result<Option<Vec<u8>>, TcpError> {
        let s = &self.inner;
        loop {
            {
                let mut buf = s.buffer.lock();
                if buf.len() >= n {
                    let out: Vec<u8> = buf.drain(..n).collect();
                    drop(buf);
                    s.local_host.compute(ctx, s.cost.recv_cpu(n as u64));
                    ctx.metrics().byte_meter("tcp.rx.bytes").record(n as u64);
                    ctx.trace("tcp", "segment.rx", &[("bytes", obs::Value::U64(n as u64))]);
                    return Ok(Some(out));
                }
                if *s.fin_seen.lock() {
                    return Err(TcpError::Closed);
                }
            }
            match s.incoming.recv_until(ctx, deadline) {
                RecvUntil::Msg(Chunk::Data(d)) => s.buffer.lock().extend(d.as_slice()),
                RecvUntil::Msg(Chunk::Fin) | RecvUntil::Closed => {
                    *s.fin_seen.lock() = true;
                }
                RecvUntil::TimedOut => return Ok(None),
            }
        }
    }

    /// Bytes currently buffered and readable without blocking.
    pub fn available(&self, ctx: &ActorCtx) -> usize {
        let s = &self.inner;
        while let Some(chunk) = s.incoming.try_recv(ctx) {
            match chunk {
                Chunk::Data(d) => s.buffer.lock().extend(d.as_slice()),
                Chunk::Fin => *s.fin_seen.lock() = true,
            }
        }
        s.buffer.lock().len()
    }

    /// Half-close: the peer's reads will drain then fail with `Closed`.
    pub fn close(&self, ctx: &ActorCtx) {
        let s = &self.inner;
        s.local_host.compute(ctx, s.cost.host.syscall);
        let at = (ctx.now() + s.cost.wire_latency).max(*s.last_deliver.lock());
        s.peer_port.send(ctx, Chunk::Fin, at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{Cluster, SimKernel};
    use std::sync::atomic::{AtomicU64, Ordering};

    struct Bed {
        kernel: SimKernel,
        fabric: TcpFabric,
        a: Host,
        b: Host,
        cluster: Cluster,
    }

    fn bed() -> Bed {
        let kernel = SimKernel::new();
        let cluster = Cluster::new();
        let fabric = TcpFabric::new(TcpCost::default());
        Bed {
            kernel,
            fabric,
            a: cluster.add_host("a"),
            b: cluster.add_host("b"),
            cluster,
        }
    }

    #[test]
    fn stream_roundtrip_preserves_bytes() {
        let t = bed();
        let (f, b) = (t.fabric.clone(), t.b.clone());
        t.kernel.spawn_daemon("server", move |ctx| {
            let l = f.listen(&b, 80);
            let s = l.accept(ctx).unwrap();
            let got = s.recv_exact(ctx, 10).unwrap();
            assert_eq!(got, b"0123456789");
            s.send(ctx, b"ok");
        });
        let (f, a, bid) = (t.fabric.clone(), t.a.clone(), t.b.id);
        t.kernel.spawn("client", move |ctx| {
            let s = f.connect(ctx, &a, bid, 80).unwrap();
            // Two sends, one logical read on the far side (stream semantics).
            s.send(ctx, b"01234");
            s.send(ctx, b"56789");
            assert_eq!(s.recv_exact(ctx, 2).unwrap(), b"ok");
        });
        t.kernel.run();
    }

    #[test]
    fn small_rpc_latency_much_higher_than_via() {
        let t = bed();
        let (f, b) = (t.fabric.clone(), t.b.clone());
        t.kernel.spawn_daemon("server", move |ctx| {
            let l = f.listen(&b, 80);
            let s = l.accept(ctx).unwrap();
            while let Ok(_req) = s.recv_exact(ctx, 16) {
                s.send(ctx, &[0u8; 16]);
            }
        });
        let rtt_ns = Arc::new(AtomicU64::new(0));
        let out = rtt_ns.clone();
        let (f, a, bid) = (t.fabric.clone(), t.a.clone(), t.b.id);
        t.kernel.spawn("client", move |ctx| {
            let s = f.connect(ctx, &a, bid, 80).unwrap();
            let t0 = ctx.now();
            const N: u64 = 10;
            for _ in 0..N {
                s.send(ctx, &[1u8; 16]);
                s.recv_exact(ctx, 16).unwrap();
            }
            out.store(ctx.now().since(t0).as_nanos() / N, Ordering::Relaxed);
            s.close(ctx);
        });
        t.kernel.run();
        let rtt_us = rtt_ns.load(Ordering::Relaxed) as f64 / 1000.0;
        // Small-message RTT through the kernel stack lands near 120–160 us —
        // an order of magnitude above VIA's ~15 us RTT.
        assert!((100.0..200.0).contains(&rtt_us), "TCP 16B RTT = {rtt_us}us");
    }

    #[test]
    fn bulk_throughput_is_host_limited() {
        let t = bed();
        const CHUNK: usize = 32 << 10;
        const COUNT: usize = 64;
        let (f, b) = (t.fabric.clone(), t.b.clone());
        let done = Arc::new(AtomicU64::new(0));
        let d2 = done.clone();
        t.kernel.spawn_daemon("server", move |ctx| {
            let l = f.listen(&b, 80);
            let s = l.accept(ctx).unwrap();
            let t0 = ctx.now();
            for _ in 0..COUNT {
                s.recv_exact(ctx, CHUNK).unwrap();
            }
            d2.store(ctx.now().since(t0).as_nanos(), Ordering::Relaxed);
        });
        let (f, a, bid) = (t.fabric.clone(), t.a.clone(), t.b.id);
        t.kernel.spawn("client", move |ctx| {
            let s = f.connect(ctx, &a, bid, 80).unwrap();
            let data = vec![7u8; CHUNK];
            for _ in 0..COUNT {
                s.send(ctx, &data);
            }
        });
        t.kernel.run();
        let secs = done.load(Ordering::Relaxed) as f64 / 1e9;
        let mb_s = (CHUNK * COUNT) as f64 / secs / 1e6;
        // The wire could carry 110 MB/s, but per-packet processing and
        // copies throttle the stream well below it.
        assert!(
            (20.0..70.0).contains(&mb_s),
            "TCP bulk throughput = {mb_s} MB/s; expected host-limited"
        );
    }

    #[test]
    fn receiver_kernel_time_accrues() {
        let t = bed();
        let (f, b) = (t.fabric.clone(), t.b.clone());
        t.kernel.spawn_daemon("server", move |ctx| {
            let l = f.listen(&b, 80);
            let s = l.accept(ctx).unwrap();
            let _ = s.recv_exact(ctx, 1 << 20);
        });
        let (f, a, bid) = (t.fabric.clone(), t.a.clone(), t.b.id);
        t.kernel.spawn("client", move |ctx| {
            let s = f.connect(ctx, &a, bid, 80).unwrap();
            s.send(ctx, &vec![0u8; 1 << 20]);
        });
        t.kernel.run();
        // 1 MiB = ~719 packets at 25us each ≈ 18 ms of softirq time.
        let kb = t.fabric.kernel_busy(&t.b).as_secs_f64();
        assert!((0.014..0.022).contains(&kb), "softirq busy = {kb}s");
        // Sender burned real CPU too (copies + per-packet tx).
        assert!(t.a.cpu.busy() > SimDuration::from_millis(5));
    }

    #[test]
    fn connect_to_closed_port_refused() {
        let t = bed();
        let (f, a, bid) = (t.fabric.clone(), t.a.clone(), t.b.id);
        t.kernel.spawn("client", move |ctx| {
            assert_eq!(
                f.connect(ctx, &a, bid, 9999).err(),
                Some(TcpError::ConnectionRefused)
            );
        });
        t.kernel.run();
    }

    #[test]
    fn close_then_recv_returns_closed() {
        let t = bed();
        let (f, b) = (t.fabric.clone(), t.b.clone());
        t.kernel.spawn_daemon("server", move |ctx| {
            let l = f.listen(&b, 80);
            let s = l.accept(ctx).unwrap();
            // Drain what was sent, then observe close.
            assert_eq!(s.recv_exact(ctx, 3).unwrap(), b"end");
            assert_eq!(s.recv_exact(ctx, 1), Err(TcpError::Closed));
        });
        let (f, a, bid) = (t.fabric.clone(), t.a.clone(), t.b.id);
        t.kernel.spawn("client", move |ctx| {
            let s = f.connect(ctx, &a, bid, 80).unwrap();
            s.send(ctx, b"end");
            s.close(ctx);
        });
        t.kernel.run();
    }

    #[test]
    fn two_flows_serialize_on_server_softirq() {
        let t = bed();
        let c2 = t.cluster.add_host("c2");
        let (f, b) = (t.fabric.clone(), t.b.clone());
        t.kernel.spawn_daemon("server", move |ctx| {
            let l = f.listen(&b, 80);
            let s1 = l.accept(ctx).unwrap();
            let s2 = l.accept(ctx).unwrap();
            let _ = s1.recv_exact(ctx, 256 << 10);
            let _ = s2.recv_exact(ctx, 256 << 10);
        });
        for (i, h) in [t.a.clone(), c2].into_iter().enumerate() {
            let (f, bid) = (t.fabric.clone(), t.b.id);
            t.kernel.spawn(&format!("client{i}"), move |ctx| {
                ctx.advance(us(i as u64 * 100));
                let s = f.connect(ctx, &h, bid, 80).unwrap();
                s.send(ctx, &vec![0u8; 256 << 10]);
            });
        }
        t.kernel.run();
        let pkts = TcpCost::default().packets(256 << 10) * 2;
        let expect = TcpCost::default().per_packet_rx.saturating_mul(pkts);
        assert_eq!(t.fabric.kernel_busy(&t.b), expect);
    }

    #[test]
    fn lossy_link_drops_whole_segments() {
        use simnet::fault::FaultPlan;
        let t = bed();
        // Loss probability 1 on the a<->b link: nothing gets through, and
        // the receiver's deadline read observes the loss as a timeout.
        t.fabric
            .set_fault_plan(FaultPlan::builder(3).link_loss(t.a.id, t.b.id, 1.0).build());
        let (f, b) = (t.fabric.clone(), t.b.clone());
        t.kernel.spawn_daemon("server", move |ctx| {
            let l = f.listen(&b, 80);
            let s = l.accept(ctx).unwrap();
            assert_eq!(
                s.recv_exact_deadline(ctx, 4, ctx.now() + ms(10)).unwrap(),
                None,
                "every segment should be lost"
            );
        });
        let (f, a, bid) = (t.fabric.clone(), t.a.clone(), t.b.id);
        t.kernel.spawn("client", move |ctx| {
            let s = f.connect(ctx, &a, bid, 80).unwrap();
            s.send(ctx, b"gone");
        });
        t.kernel.run();
    }

    #[test]
    fn recv_exact_deadline_happy_path_matches_recv_exact() {
        let t = bed();
        let (f, b) = (t.fabric.clone(), t.b.clone());
        t.kernel.spawn_daemon("server", move |ctx| {
            let l = f.listen(&b, 80);
            let s = l.accept(ctx).unwrap();
            let got = s
                .recv_exact_deadline(ctx, 5, ctx.now() + ms(100))
                .unwrap()
                .unwrap();
            assert_eq!(got, b"hello");
            s.send(ctx, b"ok");
        });
        let (f, a, bid) = (t.fabric.clone(), t.a.clone(), t.b.id);
        t.kernel.spawn("client", move |ctx| {
            let s = f.connect(ctx, &a, bid, 80).unwrap();
            s.send(ctx, b"hello");
            assert_eq!(s.recv_exact(ctx, 2).unwrap(), b"ok");
        });
        t.kernel.run();
    }

    #[test]
    fn cost_helpers() {
        let c = TcpCost::default();
        assert_eq!(c.packets(0), 1);
        assert_eq!(c.packets(1460), 1);
        assert_eq!(c.packets(1461), 2);
        assert!(c.send_cpu(1 << 20) > c.recv_cpu(1 << 20));
    }
}
