//! R-F6 — Server saturation: aggregate DAFS bandwidth vs client count,
//! with single and dual server rails.
//!
//! Expected shape: aggregate read bandwidth climbs with clients and
//! plateaus at the server NIC wire rate (~110 MB/s); doubling the server
//! wire (a dual-rail configuration) doubles the plateau without any
//! software change — the server CPU is not the bottleneck for direct I/O.

use std::sync::Arc;

use dafs::{DafsClient, DafsClientConfig, DafsServerCost};
use memfs::{MemFs, ROOT_ID};
use simnet::{Bandwidth, Cluster, SimKernel};
use via::{ViaCost, ViaFabric};

use crate::report::{mb_per_s, Table};
use crate::testbeds::{Cell, PORT};

const PER_CLIENT: u64 = 8 << 20;

fn aggregate_read_mb_s(clients: usize, wire_mb: u64) -> f64 {
    let kernel = SimKernel::new();
    let cluster = Cluster::new();
    let via = ViaCost {
        wire_bw: Bandwidth::mb_per_sec(wire_mb),
        ..ViaCost::default()
    };
    let fabric = ViaFabric::new(via);
    let server_nic = fabric.open_nic(cluster.add_host("server0"));
    let fs = MemFs::new();
    let f = fs.create(ROOT_ID, "stream").unwrap();
    fs.write(f.id, 0, &vec![1u8; PER_CLIENT as usize]).unwrap();
    let server = dafs::spawn_dafs_server(
        &kernel,
        &fabric,
        server_nic,
        fs,
        PORT,
        DafsServerCost::default(),
    );
    let sid = server.host.id;
    let span = Cell::new();
    let fabric = Arc::new(fabric);
    for i in 0..clients {
        let fabric = fabric.clone();
        let host = cluster.add_host(&format!("client{i}"));
        let span = span.clone();
        kernel.spawn(&format!("client{i}"), move |ctx| {
            let nic = fabric.open_nic(host.clone());
            let c = DafsClient::connect(ctx, &fabric, &nic, sid, PORT, DafsClientConfig::default())
                .unwrap();
            let f = c.lookup(ctx, ROOT_ID, "stream").unwrap();
            let buf = nic.host().mem.alloc(PER_CLIENT as usize);
            let t0 = ctx.now();
            c.read(ctx, f.id, 0, buf, PER_CLIENT).unwrap();
            span.max(ctx.now().since(t0).as_nanos());
            c.disconnect(ctx);
        });
    }
    kernel.run();
    mb_per_s(clients as u64 * PER_CLIENT, span.get())
}

/// Run R-F6.
pub fn run() -> Table {
    let mut t = Table::new(
        "R-F6: server saturation — aggregate direct-read bandwidth (MB/s)",
        &["clients", "1 rail (110)", "2 rails (220)"],
    );
    for clients in [1usize, 2, 4, 8, 16, 32] {
        t.row(vec![
            clients.to_string(),
            format!("{:.1}", aggregate_read_mb_s(clients, 110)),
            format!("{:.1}", aggregate_read_mb_s(clients, 220)),
        ]);
    }
    t.note("expect a plateau at the server wire rate; doubling the rail doubles the plateau");
    t
}
