//! R-F8 — Server scaling: aggregate striped-file bandwidth vs server count
//! (new scenario).
//!
//! Not in the paper: the original testbed had a single DAFS server. This
//! experiment stripes each client's file round-robin over 1, 2, or 4
//! servers ([`DafsStripedFile`], 64 KiB stripes) and measures aggregate
//! sequential bandwidth at a fixed client count. Expected shape: with one
//! server the server NIC is the bottleneck (the R-F6 plateau); adding
//! servers adds wire, so aggregate bandwidth climbs until the client-side
//! links saturate — near-linear from 1 to 2 to 4.
//!
//! Two built-in cross-checks keep the striping layer honest:
//!
//! - the single-client single-server control row runs the exact R-F2 512 KiB
//!   workload both through the raw [`dafs::DafsClient`] and through a
//!   1-server [`DafsStripedFile`]; the striped driver must collapse to the
//!   identity and produce **bit-identical virtual times**;
//! - a degraded row re-runs the 4-server sweep with seeded packet loss on
//!   one server's links, exercising reconnect/replay under striping; every
//!   cell in every row verifies byte-exact read-back.

use dafs::{DafsClientConfig, DafsServerCost, DafsStripedFile};
use memfs::ROOT_ID;
use simnet::{FaultPlan, HostId};
use via::ViaCost;

use crate::report::{mb_per_s, Table};
use crate::testbeds::{with_dafs_client, with_dafs_cluster, Cell};

/// Bytes written (then read back) by each client.
const PER_CLIENT: u64 = 4 << 20;
/// Request size: the top of the R-F2 sweep, well past the direct threshold.
const REQ: u64 = 512 << 10;
/// Stripe size (the `DafsStripedAdio` default).
const STRIPE: u64 = 64 << 10;
/// Fixed client count for the server sweep.
const CLIENTS: usize = 4;
/// Loss probability on the degraded server's links.
const DEGRADED_LOSS: f64 = 0.01;

/// Default fault seed for the degraded row; override with `--fault-seed`
/// on the binary. The same seed reproduces the same table exactly.
pub const DEFAULT_SEED: u64 = 0xDAF5_0008;

fn pattern(rank: usize, len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 11 + rank * 3 + 7) as u8).collect()
}

/// Aggregate (write MB/s, read MB/s) for `clients` clients each striping
/// `per_client` bytes over `servers` servers. Every read is verified
/// byte-exact against what the writer put down.
fn striped_case(
    servers: usize,
    clients: usize,
    per_client: u64,
    plan: Option<FaultPlan>,
) -> (f64, f64, u64) {
    let wspan = Cell::new();
    let rspan = Cell::new();
    let (ws, rs) = (wspan.clone(), rspan.clone());
    let (_, obs) = with_dafs_cluster(
        servers,
        clients,
        ViaCost::default(),
        DafsServerCost::default(),
        DafsClientConfig::default(),
        plan,
        |_| {},
        move |ctx, rank, cs, nic| {
            // Each client stripes its own file over every server: one piece
            // file per server, same name everywhere.
            let name = format!("f{rank}");
            let fhs: Vec<_> = cs
                .iter()
                .map(|c| c.create(ctx, ROOT_ID, &name).unwrap().id)
                .collect();
            let file = DafsStripedFile::new(cs.to_vec(), fhs, STRIPE);
            let data = pattern(rank, REQ as usize);
            let buf = nic.host().mem.alloc(REQ as usize);
            nic.host().mem.write(buf, &data);
            let t0 = ctx.now();
            let mut off = 0;
            while off < per_client {
                file.write(ctx, off, buf, REQ).unwrap();
                off += REQ;
            }
            ws.max(ctx.now().since(t0).as_nanos());
            let t1 = ctx.now();
            let mut off = 0;
            while off < per_client {
                let n = file.read(ctx, off, buf, REQ).unwrap();
                assert_eq!(n, REQ, "short striped read at {off}");
                assert_eq!(
                    nic.host().mem.read_vec(buf, REQ as usize),
                    data,
                    "corrupt striped read-back at {off} ({servers} servers)"
                );
                off += REQ;
            }
            rs.max(ctx.now().since(t1).as_nanos());
        },
    );
    let total = clients as u64 * per_client;
    let reconnects = obs.snapshot().expect("dafs.reconnects").value();
    (
        mb_per_s(total, wspan.get()),
        mb_per_s(total, rspan.get()),
        reconnects,
    )
}

/// The R-F2 512 KiB single-client workload through the raw client: 8 MiB
/// prefilled file, sequential write pass then read pass. Returns virtual
/// nanoseconds (write, read) so the identity check compares exact times,
/// not rounded bandwidths.
fn raw_control_ns() -> (u64, u64) {
    const FILE: u64 = 8 << 20;
    let wtime = Cell::new();
    let rtime = Cell::new();
    let (wt, rt) = (wtime.clone(), rtime.clone());
    with_dafs_client(
        ViaCost::default(),
        DafsServerCost::default(),
        DafsClientConfig::default(),
        |fs| {
            let f = fs.create(ROOT_ID, "f").unwrap();
            fs.write(f.id, 0, &vec![3u8; FILE as usize]).unwrap();
        },
        move |ctx, c, nic| {
            let f = c.lookup(ctx, ROOT_ID, "f").unwrap();
            let buf = nic.host().mem.alloc(REQ as usize);
            let t0 = ctx.now();
            let mut off = 0;
            while off < FILE {
                c.write(ctx, f.id, off, buf, REQ).unwrap();
                off += REQ;
            }
            wt.set(ctx.now().since(t0).as_nanos());
            let t1 = ctx.now();
            let mut off = 0;
            while off < FILE {
                c.read(ctx, f.id, off, buf, REQ).unwrap();
                off += REQ;
            }
            rt.set(ctx.now().since(t1).as_nanos());
        },
    );
    (wtime.get(), rtime.get())
}

/// The same workload through a 1-server [`DafsStripedFile`]. A single
/// server means every request is one identity piece, so the striped driver
/// must delegate straight to the raw client — same ops, same virtual times.
fn striped_control_ns() -> (u64, u64) {
    const FILE: u64 = 8 << 20;
    let wtime = Cell::new();
    let rtime = Cell::new();
    let (wt, rt) = (wtime.clone(), rtime.clone());
    with_dafs_cluster(
        1,
        1,
        ViaCost::default(),
        DafsServerCost::default(),
        DafsClientConfig::default(),
        None,
        |fss| {
            let f = fss[0].create(ROOT_ID, "f").unwrap();
            fss[0].write(f.id, 0, &vec![3u8; FILE as usize]).unwrap();
        },
        move |ctx, _rank, cs, nic| {
            let f = cs[0].lookup(ctx, ROOT_ID, "f").unwrap();
            let file = DafsStripedFile::new(cs.to_vec(), vec![f.id], STRIPE);
            let buf = nic.host().mem.alloc(REQ as usize);
            let t0 = ctx.now();
            let mut off = 0;
            while off < FILE {
                file.write(ctx, off, buf, REQ).unwrap();
                off += REQ;
            }
            wt.set(ctx.now().since(t0).as_nanos());
            let t1 = ctx.now();
            let mut off = 0;
            while off < FILE {
                file.read(ctx, off, buf, REQ).unwrap();
                off += REQ;
            }
            rt.set(ctx.now().since(t1).as_nanos());
        },
    );
    (wtime.get(), rtime.get())
}

/// A plan that degrades exactly one server: seeded loss on the links
/// between server `victim` and every client. Host ids follow the
/// [`with_dafs_cluster`] layout (servers first, then clients).
fn degraded_plan(seed: u64, servers: usize, clients: usize, victim: usize) -> FaultPlan {
    let mut b = FaultPlan::builder(seed);
    for c in 0..clients {
        b = b.link_loss(HostId(victim), HostId(servers + c), DEGRADED_LOSS);
    }
    b.build()
}

/// Run R-F8 with an explicit per-client size and fault seed.
pub fn run_sized(per_client: u64, seed: u64) -> Table {
    let mut t = Table::new(
        &format!(
            "R-F8: server scaling — aggregate striped bandwidth, {CLIENTS} clients (MB/s; seed {seed:#x})"
        ),
        &["servers", "agg rd", "agg wr"],
    );
    let mut prev = (0.0f64, 0.0f64);
    for servers in [1usize, 2, 4] {
        let (w, r, reconnects) = striped_case(servers, CLIENTS, per_client, None);
        assert_eq!(reconnects, 0, "fault-free rows must not reconnect");
        assert!(
            w > prev.0 && r > prev.1,
            "aggregate bandwidth must climb with servers: {servers} servers gave {w:.1}/{r:.1} after {:.1}/{:.1}",
            prev.0,
            prev.1
        );
        prev = (w, r);
        t.row(vec![
            servers.to_string(),
            format!("{r:.1}"),
            format!("{w:.1}"),
        ]);
    }
    let (dw, dr, reconnects) = striped_case(
        4,
        CLIENTS,
        per_client,
        Some(degraded_plan(seed, 4, CLIENTS, 0)),
    );
    t.row(vec![
        format!("4 (one degraded, {:.0}% loss)", DEGRADED_LOSS * 100.0),
        format!("{dr:.1}"),
        format!("{dw:.1}"),
    ]);
    t.note(&format!(
        "degraded row survived {reconnects} session reconnect(s) with byte-exact read-back"
    ));
    // Identity control: the 1-server striped path must cost exactly what
    // the raw client costs on the R-F2 512K workload.
    let (raw_w, raw_r) = raw_control_ns();
    let (str_w, str_r) = striped_control_ns();
    assert_eq!(
        (raw_w, raw_r),
        (str_w, str_r),
        "1-server striped path must be bit-identical to the raw client"
    );
    t.note(&format!(
        "1-server striped control is bit-identical to the raw R-F2 512K client: {:.1} rd / {:.1} wr MB/s",
        mb_per_s(8 << 20, raw_r),
        mb_per_s(8 << 20, raw_w),
    ));
    t.note("expect near-linear scaling 1→2→4: each server adds wire; asserted monotone");
    t
}

/// Run R-F8 with the default sizes and seed.
pub fn run() -> Table {
    run_sized(PER_CLIENT, DEFAULT_SEED)
}
