//! X-6 (extension) — multi-tenant QoS fairness: small-op latency under a
//! streaming tenant's saturation load.
//!
//! Two tenants share one DAFS server. A *small-op* tenant (one client,
//! `dafs_tenant_weight` 8) issues getattr + 4 KiB inline reads with a short
//! think time — an interactive metadata workload. A *streaming* tenant
//! (three clients, weight 1) keeps batched 256 KiB direct reads in flight
//! the whole time, saturating the server wire. The same seeded workload
//! runs twice: once with the default FIFO dispatch and once with the WFQ
//! scheduler (`MPIO_DAFS_SCHED=wfq` equivalent, passed explicitly).
//!
//! Expected shape: under FIFO the small ops queue behind whole streaming
//! batches and p99 blows up to many chunk-service-times; under WFQ the
//! deadline boost bounds a small op's wait to roughly the in-service
//! request, and the credit throttle caps each streamer's queue share, so
//! small-op p99 collapses (≥5× better) while streaming throughput gives up
//! only the small tenant's share of the wire.
//!
//! Latency quantiles are exact ([`SampleSet`] nearest-rank), not
//! histogram-bucket bounds.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dafs::{DafsClient, DafsClientConfig, DafsServerCost, ReadReq, SchedPolicy};
use memfs::{MemFs, ROOT_ID};
use simnet::time::units::*;
use simnet::{Cluster, SampleSet, SimKernel};
use via::{ViaCost, ViaFabric};

use crate::report::{mb_per_s, Table};
use crate::testbeds::PORT;

/// Streaming-tenant clients.
const STREAMERS: usize = 3;
/// Small-op tenant clients. Two, so consecutive small ops can sit queued
/// together and the WFQ deadline boost (not just the DRR weight) is
/// exercised: the second op's deadline expires while the first is served.
const SMALL_CLIENTS: usize = 2;
/// One streaming request; a few chunk-service-times of queue per streamer.
const CHUNK: u64 = 256 << 10;
/// Requests per streaming batch (pipelined up to the session credits).
const BATCH: usize = 8;
/// Streamed region per client (reads wrap around it).
const REGION: u64 = 4 << 20;
/// Small-op tenant think time between ops — an interactive client, not a
/// closed loop hammering the server.
const THINK: simnet::SimDuration = us(100);

/// Tenant ids carried in the session `Hello`.
const TENANT_SMALL: u64 = 1;
const TENANT_STREAM: u64 = 2;

/// Small-op count for the full table.
pub const DEFAULT_SMALL_OPS: usize = 200;

struct CaseOut {
    /// Per-op latency of the small tenant (getattr + 4 KiB read pairs).
    small: SampleSet,
    /// Per-batch latency of the streaming tenant.
    stream: SampleSet,
    /// Aggregate streaming throughput while the small tenant ran.
    stream_mb_s: f64,
    /// Scheduler counters (0 under FIFO).
    boosts: u64,
    throttles: u64,
}

fn case(policy: SchedPolicy, small_ops: usize) -> CaseOut {
    let kernel = SimKernel::new();
    let cluster = Cluster::new();
    let fabric = Arc::new(ViaFabric::new(ViaCost::default()));
    let server_nic = fabric.open_nic(cluster.add_host("server0"));
    let fs = MemFs::new();
    for i in 0..STREAMERS {
        let f = fs.create(ROOT_ID, &format!("stream{i}")).unwrap();
        fs.write(f.id, 0, &vec![i as u8 + 1; REGION as usize])
            .unwrap();
    }
    let small_file = fs.create(ROOT_ID, "meta").unwrap();
    fs.write(small_file.id, 0, &vec![9u8; 64 << 10]).unwrap();
    let server = dafs::spawn_dafs_server_sched(
        &kernel,
        &fabric,
        server_nic,
        fs,
        PORT,
        DafsServerCost::default(),
        policy,
    );
    let sid = server.host.id;

    let running = Arc::new(AtomicU64::new(SMALL_CLIENTS as u64));
    let small = SampleSet::new();
    let stream = SampleSet::new();
    let stream_bytes = Arc::new(AtomicU64::new(0));
    let stream_ns = Arc::new(AtomicU64::new(0));

    // Small-op tenant: declares weight 8 in its Hello. Spawned first so the
    // server learns the max weight before the streamers' Hellos are
    // credit-scaled against it.
    for i in 0..SMALL_CLIENTS {
        let fabric = fabric.clone();
        let host = cluster.add_host(&format!("small{i}"));
        let running = running.clone();
        let lat = small.clone();
        kernel.spawn(&format!("small{i}"), move |ctx| {
            let nic = fabric.open_nic(host.clone());
            let cfg = DafsClientConfig {
                tenant: Some((TENANT_SMALL, 8)),
                ..DafsClientConfig::default()
            };
            let c = DafsClient::connect(ctx, &fabric, &nic, sid, PORT, cfg).unwrap();
            let f = c.lookup(ctx, ROOT_ID, "meta").unwrap();
            let buf = nic.host().mem.alloc(4 << 10);
            // Let the streamers connect and fill the server queue first.
            ctx.advance(ms(2));
            for _ in 0..small_ops {
                let t0 = ctx.now();
                c.getattr(ctx, f.id).unwrap();
                c.read(ctx, f.id, 0, buf, 4 << 10).unwrap();
                lat.record(ctx.now().since(t0).as_nanos());
                ctx.advance(THINK);
            }
            running.fetch_sub(1, Ordering::Relaxed);
            c.disconnect(ctx);
        });
    }

    // Streaming tenant: three weight-1 clients keep batched direct reads
    // in flight until the small tenant finishes.
    for i in 0..STREAMERS {
        let fabric = fabric.clone();
        let host = cluster.add_host(&format!("stream{i}"));
        let running = running.clone();
        let lat = stream.clone();
        let bytes = stream_bytes.clone();
        let span = stream_ns.clone();
        kernel.spawn(&format!("stream{i}"), move |ctx| {
            let nic = fabric.open_nic(host.clone());
            // Connect strictly after the small tenant's Hello so the
            // weight-1 declaration is scaled against the known max.
            ctx.advance(ms(1));
            let cfg = DafsClientConfig {
                tenant: Some((TENANT_STREAM, 1)),
                ..DafsClientConfig::default()
            };
            let c = DafsClient::connect(ctx, &fabric, &nic, sid, PORT, cfg).unwrap();
            let f = c.lookup(ctx, ROOT_ID, &format!("stream{i}")).unwrap();
            let buf = nic.host().mem.alloc((CHUNK as usize) * BATCH);
            let t0 = ctx.now();
            let mut off = 0u64;
            while running.load(Ordering::Relaxed) > 0 {
                let reqs: Vec<ReadReq> = (0..BATCH)
                    .map(|j| ReadReq {
                        fh: f.id,
                        off: (off + j as u64 * CHUNK) % REGION,
                        dst: buf.offset(j as u64 * CHUNK),
                        len: CHUNK,
                    })
                    .collect();
                let t1 = ctx.now();
                for r in c.read_batch(ctx, &reqs) {
                    assert_eq!(r.unwrap(), CHUNK, "short streaming read");
                }
                lat.record(ctx.now().since(t1).as_nanos());
                bytes.fetch_add(CHUNK * BATCH as u64, Ordering::Relaxed);
                off = (off + (BATCH as u64) * CHUNK) % REGION;
            }
            span.fetch_max(ctx.now().since(t0).as_nanos(), Ordering::Relaxed);
            c.disconnect(ctx);
        });
    }

    let obs = kernel.obs().clone();
    kernel.run();
    let reg = obs.registry();
    CaseOut {
        small,
        stream,
        stream_mb_s: mb_per_s(
            stream_bytes.load(Ordering::Relaxed),
            stream_ns.load(Ordering::Relaxed),
        ),
        boosts: reg
            .counter(&format!("dafs.sched.t{TENANT_SMALL}.boosts"))
            .get(),
        throttles: reg
            .counter(&format!("dafs.sched.t{TENANT_STREAM}.throttles"))
            .get(),
    }
}

/// Run X-6 with an explicit small-op count (`--smoke` shrinks it).
pub fn run_with(small_ops: usize) -> Table {
    let fifo = case(SchedPolicy::Fifo, small_ops);
    let wfq = case(SchedPolicy::Wfq(Default::default()), small_ops);

    let mut t = Table::new(
        "X-6 (extension): multi-tenant QoS — per-tenant latency under streaming saturation (us)",
        &["sched", "tenant", "p50", "p99", "p999", "MB/s"],
    );
    for (sched, out) in [("fifo", &fifo), ("wfq", &wfq)] {
        for (tenant, s, bw) in [
            ("small w8", &out.small, None),
            ("stream w1", &out.stream, Some(out.stream_mb_s)),
        ] {
            t.row(vec![
                sched.to_string(),
                tenant.to_string(),
                format!("{:.0}", s.quantile(0.5) as f64 / 1e3),
                format!("{:.0}", s.quantile(0.99) as f64 / 1e3),
                format!("{:.0}", s.quantile(0.999) as f64 / 1e3),
                bw.map(|b| format!("{b:.1}")).unwrap_or_else(|| "-".into()),
            ]);
        }
    }
    let fifo_p99 = fifo.small.quantile(0.99);
    let wfq_p99 = wfq.small.quantile(0.99);
    let ratio = fifo_p99 as f64 / wfq_p99.max(1) as f64;
    t.note(&format!(
        "small tenant: {SMALL_CLIENTS} clients, weight 8, getattr + 4KiB inline read pairs; \
         streaming tenant: {STREAMERS} clients, weight 1, batched {}KiB direct reads",
        CHUNK >> 10
    ));
    t.note(&format!(
        "WFQ improves small-op p99 by {ratio:.1}x (deadline boost + credit throttle); \
         quantiles are exact (nearest-rank over the full sample set)"
    ));
    t.note(&format!(
        "wfq run: {} deadline boosts for the small tenant, {} credit throttles on the \
         streaming tenant (both 0 under fifo: boosts={}, throttles={})",
        wfq.boosts, wfq.throttles, fifo.boosts, fifo.throttles
    ));
    assert!(
        wfq_p99 < fifo_p99,
        "WFQ must improve small-op p99 (fifo {fifo_p99} ns vs wfq {wfq_p99} ns)"
    );
    if small_ops >= DEFAULT_SMALL_OPS {
        assert!(
            ratio >= 5.0,
            "WFQ small-op p99 must be >=5x better than FIFO (got {ratio:.1}x)"
        );
    }
    t
}

/// Run X-6.
pub fn run() -> Table {
    run_with(DEFAULT_SMALL_OPS)
}
