//! R-K1: raw DES kernel dispatch speed (wall-clock microbenchmark).
//!
//! Unlike every other experiment, this one measures the *simulator*, not
//! the simulated system: how many kernel events per wall-clock second the
//! scheduler dispatches on two stress shapes —
//!
//! * **ping-pong** — two actors bouncing one message; every event is a
//!   block/wake handoff, so this isolates per-event dispatch cost
//!   (condvar signal, queue pop, clock bump);
//! * **fan-in** — many senders funneling into one receiver; stresses wake
//!   coalescing and the scheduler's ready-queue under contention, the
//!   shape of the R-F10 incast cells;
//! * **burst** — many actors advancing a shared timer grid in lockstep,
//!   so every tick wakes all of them at one timestamp; exercises the
//!   same-timestamp ready-batch drain (one heap pass per tick instead of
//!   one heap pop per actor), the shape of barrier-heavy collective
//!   sweeps at high client counts.
//!
//! Every measured number is wall-clock and therefore nondeterministic:
//! the table's rows are deterministic labels only, and all measurements
//! live in notes prefixed `wall-clock:` so the byte-identity gate filters
//! them (the title carries the marker too, excluding the whole JSON
//! line).

use simnet::units::*;
use simnet::{Port, SimKernel};

use crate::report::Table;

/// Full-size ping-pong round count.
const PP_ROUNDS: u64 = 200_000;
/// Full-size fan-in shape: senders × messages-per-sender.
const FI_SENDERS: usize = 64;
const FI_PER: u64 = 2_000;
/// Full-size burst shape: actors × lockstep ticks.
const BU_ACTORS: usize = 256;
const BU_ROUNDS: u64 = 1_000;

/// One workload's wall-clock measurement.
pub struct SpeedRun {
    /// Deterministic workload label.
    pub label: String,
    /// Kernel events dispatched.
    pub events: u64,
    /// Wall-clock time inside `kernel.run()`.
    pub elapsed: std::time::Duration,
}

impl SpeedRun {
    /// Events dispatched per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Wall-clock nanoseconds per event.
    pub fn ns_per_event(&self) -> f64 {
        if self.events == 0 {
            return 0.0;
        }
        self.elapsed.as_nanos() as f64 / self.events as f64
    }
}

fn timed_run(kernel: SimKernel, label: String) -> SpeedRun {
    let ev0 = simnet::events_scheduled_global();
    let t0 = std::time::Instant::now();
    kernel.run();
    SpeedRun {
        label,
        events: simnet::events_scheduled_global() - ev0,
        elapsed: t0.elapsed(),
    }
}

/// Two actors bouncing one token `rounds` times (1 µs virtual hop each
/// way). Every dispatch is a block/wake pair.
pub fn ping_pong(rounds: u64) -> SpeedRun {
    let kernel = SimKernel::new();
    let a2b: Port<u64> = Port::new("a2b");
    let b2a: Port<u64> = Port::new("b2a");
    {
        let (tx, rx) = (a2b.clone(), b2a.clone());
        kernel.spawn("ping", move |ctx| {
            for i in 0..rounds {
                tx.send(ctx, i, ctx.now() + us(1));
                rx.recv(ctx);
            }
            tx.close(ctx);
        });
    }
    {
        let (rx, tx) = (a2b, b2a);
        kernel.spawn("pong", move |ctx| {
            while let Some(i) = rx.recv(ctx) {
                tx.send(ctx, i, ctx.now() + us(1));
            }
        });
    }
    timed_run(kernel, format!("ping-pong ({rounds} rounds)"))
}

/// `senders` actors each firing `per` messages into one receiver — the
/// incast shape; stresses wake coalescing on the shared sink.
pub fn fan_in(senders: usize, per: u64) -> SpeedRun {
    let kernel = SimKernel::new();
    let sink: Port<u64> = Port::new("sink");
    for s in 0..senders {
        let tx = sink.clone();
        kernel.spawn(&format!("sender{s}"), move |ctx| {
            for i in 0..per {
                tx.send(ctx, i, ctx.now() + us(1));
                ctx.advance(us(1));
            }
        });
    }
    let rx = sink;
    let total = senders as u64 * per;
    kernel.spawn("sink", move |ctx| {
        for _ in 0..total {
            rx.recv(ctx);
        }
    });
    timed_run(kernel, format!("fan-in ({senders} senders x {per} msgs)"))
}

/// `actors` actors advancing a 1 µs timer grid in lockstep for `rounds`
/// ticks: every tick puts all of them in the event queue at one
/// timestamp, so each tick is served by a single same-timestamp batch
/// drain rather than `actors` separate heap pops.
pub fn burst(actors: usize, rounds: u64) -> SpeedRun {
    let kernel = SimKernel::new();
    for a in 0..actors {
        kernel.spawn(&format!("t{a}"), move |ctx| {
            for _ in 0..rounds {
                ctx.advance(us(1));
            }
        });
    }
    timed_run(kernel, format!("burst ({actors} actors x {rounds} ticks)"))
}

/// Measure every workload shape at the given sizes.
pub fn measure(
    pp_rounds: u64,
    fi_senders: usize,
    fi_per: u64,
    bu_actors: usize,
    bu_rounds: u64,
) -> Vec<SpeedRun> {
    vec![
        ping_pong(pp_rounds),
        fan_in(fi_senders, fi_per),
        burst(bu_actors, bu_rounds),
    ]
}

/// Render measurements: deterministic labels as rows, every wall-clock
/// number in `wall-clock:`-prefixed notes.
pub fn table_from(runs: &[SpeedRun]) -> Table {
    let mut t = Table::new(
        "R-K1: DES kernel raw dispatch speed (wall-clock)",
        &["workload"],
    );
    for r in runs {
        t.row(vec![r.label.clone()]);
    }
    for r in runs {
        t.note(&format!(
            "wall-clock: {}: {} events in {:.3}s ({:.0} events/s, {:.0} ns/event)",
            r.label,
            r.events,
            r.elapsed.as_secs_f64(),
            r.events_per_sec(),
            r.ns_per_event(),
        ));
    }
    t
}

/// The full-size experiment table.
pub fn run() -> Table {
    table_from(&measure(
        PP_ROUNDS, FI_SENDERS, FI_PER, BU_ACTORS, BU_ROUNDS,
    ))
}

/// A seconds-scale version for CI smoke runs.
pub fn run_smoke() -> Vec<SpeedRun> {
    measure(20_000, 16, 500, 64, 250)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong_counts_events() {
        let r = ping_pong(100);
        // Each round is at least two dispatches (one per side).
        assert!(r.events >= 200, "events = {}", r.events);
        assert!(r.events_per_sec() > 0.0);
    }

    #[test]
    fn fan_in_delivers_everything() {
        let r = fan_in(4, 50);
        assert!(r.events >= 200, "events = {}", r.events);
        assert!(r.ns_per_event() > 0.0);
    }

    #[test]
    fn burst_ticks_every_actor() {
        let r = burst(8, 20);
        // Every actor schedules one wake per tick.
        assert!(r.events >= 160, "events = {}", r.events);
        assert!(r.events_per_sec() > 0.0);
    }
}
