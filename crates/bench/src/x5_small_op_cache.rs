//! R-X5 — small-op/re-read throughput with the lease-coherent client
//! cache (new scenario).
//!
//! Not in the paper: DAFS 1.0 specifies client caching with server-issued
//! leases, but the original evaluation never measured it. This sweep has
//! N clients re-reading a warm shared region in 4 KiB requests and
//! hammering GETATTR — the small-op regime where per-op server cost, not
//! the wire, is the bottleneck. Uncached, every operation crosses the
//! fabric and serializes on the server CPU; with the cache a read lease is
//! acquired on the first pass and every later pass is served from client
//! memory, so aggregate throughput scales with the client count.
//!
//! The degraded row reruns the cached 4-client case under a seeded loss
//! plan: a broken session drops its leases (revalidate-on-reconnect), the
//! cache re-warms, and throughput lands between the cold and warm
//! extremes — with every byte still verified.
//!
//! Three follow-on tables push the cache past the original sweep:
//!
//! * **write-back flush coalescing** — one client dirties every other
//!   4 KiB page under a write-back lease and syncs; the coalesced flush
//!   ships the strided runs as one vectored `WriteList` batch, so the
//!   `dafs.cache.flush_{batches,pages}` counters must show ≥4× fewer wire
//!   requests per flushed page than the old page-at-a-time flush
//!   (asserted);
//! * **scale-out** — 64–256 clients assemble a striped file over 4 servers
//!   behind the R-F10 dumbbell; cached re-read bandwidth per client must
//!   stay within a constant factor of the 4-client baseline (asserted),
//!   every byte verified;
//! * **recall storm** — one write-back writer invalidates N read-lease
//!   holders at once; the storm must complete with a bounded flush-request
//!   count (asserted) and every reader re-reads the writer's flushed image.

use dafs::{DafsClientConfig, DafsServerCost, DafsStripedFile};
use memfs::ROOT_ID;
use simnet::topo::{DumbbellSpec, ForwardingMode, QueuePolicy, Topology};
use simnet::units::*;
use simnet::{Bandwidth, FaultPlan};
use via::ViaCost;

use crate::report::{mb_per_s, Table};
use crate::testbeds::{with_dafs_cluster, with_striped_dafs_fabric, Cell};

/// Shared region each client re-reads.
const REGION: u64 = 128 << 10;
/// Small-op request size.
const REQ: u64 = 4 << 10;
/// GETATTRs issued per re-read pass per client.
const GETATTRS_PER_ROUND: u64 = 8;

/// Timed re-read passes after the warm pass; `--smoke` shrinks this.
pub const DEFAULT_ROUNDS: u64 = 8;
/// Default fault seed for the degraded row; override with `--fault-seed`.
pub const DEFAULT_SEED: u64 = 0xDAF5_0005;

/// Striped scale-out geometry: the dumbbell carries this many servers.
const SCALE_SERVERS: usize = 4;
/// Stripe (block) size of the scale-out file.
const SCALE_STRIPE: u64 = 16 << 10;
/// Full-run scale ladder; the 4-client baseline always runs first.
pub const SCALE_CLIENTS: [usize; 3] = [64, 128, 256];
/// `--smoke` scale ladder.
pub const SMOKE_SCALE_CLIENTS: [usize; 1] = [16];
/// Dirty pages in the write-back coalescing row (every other page).
const WB_PAGES: u64 = 64;
/// Read-lease holders invalidated by the recall-storm writer.
const STORM_READERS: usize = 16;

fn pattern() -> Vec<u8> {
    (0..REGION as usize).map(|i| (i * 11 + 5) as u8).collect()
}

struct CaseOut {
    reread_mb_s: f64,
    kops_s: f64,
    hits: u64,
    attr_hits: u64,
    reconnects: u64,
}

fn case(clients: usize, cached: bool, rounds: u64, plan: Option<FaultPlan>) -> CaseOut {
    let elapsed = Cell::new();
    let el = elapsed.clone();
    let (_, obs) = with_dafs_cluster(
        1,
        clients,
        ViaCost::default(),
        DafsServerCost::default(),
        DafsClientConfig::default(),
        plan,
        |fss| {
            let f = fss[0].create(ROOT_ID, "hot").unwrap();
            fss[0].write(f.id, 0, &pattern()).unwrap();
        },
        move |ctx, _i, cs, nic| {
            let c = &cs[0];
            let f = c.lookup(ctx, ROOT_ID, "hot").unwrap();
            let dst = nic.host().mem.alloc(REQ as usize);
            let expect = pattern();
            // Warm pass (uncounted): seeds the cache in cached mode.
            let mut off = 0;
            while off < REGION {
                let n = if cached {
                    c.read_cached(ctx, f.id, off, dst, REQ).unwrap()
                } else {
                    c.read(ctx, f.id, off, dst, REQ).unwrap()
                };
                assert_eq!(n, REQ, "short warm read at {off}");
                off += REQ;
            }
            let t0 = ctx.now();
            for _ in 0..rounds {
                let mut off = 0;
                while off < REGION {
                    let n = if cached {
                        c.read_cached(ctx, f.id, off, dst, REQ).unwrap()
                    } else {
                        c.read(ctx, f.id, off, dst, REQ).unwrap()
                    };
                    assert_eq!(n, REQ, "short re-read at {off}");
                    assert_eq!(
                        nic.host().mem.read_vec(dst, REQ as usize),
                        &expect[off as usize..(off + REQ) as usize],
                        "corrupt re-read at {off}"
                    );
                    off += REQ;
                }
                for _ in 0..GETATTRS_PER_ROUND {
                    let a = if cached {
                        c.getattr_cached(ctx, f.id).unwrap()
                    } else {
                        c.getattr(ctx, f.id).unwrap()
                    };
                    assert_eq!(a.size, REGION);
                }
            }
            el.max(ctx.now().since(t0).as_nanos());
        },
    );
    let snap = obs.snapshot();
    let counter = |n: &str| snap.expect(n).value();
    let ns = elapsed.get();
    let ops = clients as u64 * rounds * (REGION / REQ + GETATTRS_PER_ROUND);
    CaseOut {
        reread_mb_s: mb_per_s(clients as u64 * rounds * REGION, ns),
        kops_s: if ns == 0 {
            f64::INFINITY
        } else {
            ops as f64 / (ns as f64 / 1e9) / 1e3
        },
        hits: counter("dafs.cache.hits"),
        attr_hits: counter("dafs.cache.attr_hits"),
        reconnects: counter("dafs.reconnects"),
    }
}

/// Write-back flush-coalescing measurement: one client dirties
/// [`WB_PAGES`] pages with a 1-dirty-1-clean stride (so no two runs are
/// contiguous — the worst case for extent coalescing) and syncs once.
struct WbOut {
    flush_pages: u64,
    flush_batches: u64,
}

fn writeback_case() -> WbOut {
    let cfg = DafsClientConfig {
        cache_write_back: true,
        ..DafsClientConfig::default()
    };
    let page = cfg.cache_page;
    let (_, obs) = with_dafs_cluster(
        1,
        1,
        ViaCost::default(),
        DafsServerCost::default(),
        cfg,
        None,
        |fss| {
            fss[0].create(ROOT_ID, "wb").unwrap();
        },
        move |ctx, _i, cs, nic| {
            let c = &cs[0];
            let f = c.lookup(ctx, ROOT_ID, "wb").unwrap();
            let src = nic.host().mem.alloc(page as usize);
            for p in 0..WB_PAGES {
                nic.host().mem.fill(src, page as usize, (p % 251) as u8 + 1);
                c.write_cached(ctx, f.id, p * 2 * page, src, page).unwrap();
            }
            let flushed = c.cache_sync(ctx).unwrap();
            assert_eq!(flushed, WB_PAGES, "every strided dirty page must flush");
            // Read back over the wire: each strided extent holds its fill
            // and the hole beside it reads zero — the batched flush landed
            // every run at its own offset, nothing smeared.
            for p in 0..WB_PAGES {
                let got = c.read_to_vec(ctx, f.id, p * 2 * page, page).unwrap();
                assert_eq!(
                    got,
                    vec![(p % 251) as u8 + 1; page as usize],
                    "flushed page {p} corrupt"
                );
                if p + 1 < WB_PAGES {
                    let hole = c.read_to_vec(ctx, f.id, (p * 2 + 1) * page, page).unwrap();
                    assert_eq!(hole, vec![0u8; page as usize], "hole after page {p} dirty");
                }
            }
        },
    );
    let snap = obs.snapshot();
    let counter = |n: &str| snap.expect(n).value();
    WbOut {
        flush_pages: counter("dafs.cache.flush_pages"),
        flush_batches: counter("dafs.cache.flush_batches"),
    }
}

/// One scale-out cell: `clients` clients behind the dumbbell, each holding
/// one session per server and re-reading a 4-way striped file through the
/// lease cache.
struct ScaleOut {
    cold_mb_s: f64,
    warm_mb_s: f64,
    hits: u64,
    reconnects: u64,
}

fn scale_case(clients: usize, rounds: u64) -> ScaleOut {
    let via = ViaCost::default();
    let wire = via.wire_bw;
    let latency = via.wire_latency;
    let cold = Cell::new();
    let warm = Cell::new();
    let (cd, wm) = (cold.clone(), warm.clone());
    let expect = pattern();
    let (_, _topology, obs) = with_striped_dafs_fabric(
        SCALE_SERVERS,
        clients,
        via,
        DafsServerCost::default(),
        DafsClientConfig::default(),
        None,
        move |cluster, sids| {
            Topology::dumbbell(
                cluster,
                sids,
                DumbbellSpec {
                    port_bw: wire,
                    // 1:1 trunk — the servers' wires are the bottleneck.
                    trunk_bw: Bandwidth::bytes_per_sec(
                        wire.as_bytes_per_sec() * SCALE_SERVERS as u64,
                    ),
                    latency,
                    rails: 1,
                    queue_capacity: 64,
                    pool_bytes: 0,
                    mode: ForwardingMode::CutThrough,
                    policy: QueuePolicy::Backpressure,
                },
            )
        },
        |fss| {
            // Stripe the logical region over the piece files: logical
            // block `b` lives on server `b % SCALE_SERVERS` at local block
            // `b / SCALE_SERVERS` (the `split_range` map).
            let data = pattern();
            for (s, fs) in fss.iter().enumerate() {
                let f = fs.create(ROOT_ID, "hot").unwrap();
                let mut piece = Vec::new();
                let mut off = s as u64 * SCALE_STRIPE;
                while off < REGION {
                    piece.extend_from_slice(&data[off as usize..(off + SCALE_STRIPE) as usize]);
                    off += SCALE_SERVERS as u64 * SCALE_STRIPE;
                }
                fs.write(f.id, 0, &piece).unwrap();
            }
        },
        move |ctx, _i, cs, nic| {
            let fhs: Vec<_> = cs
                .iter()
                .map(|c| c.lookup(ctx, ROOT_ID, "hot").unwrap().id)
                .collect();
            let f = DafsStripedFile::new(cs.to_vec(), fhs, SCALE_STRIPE);
            let dst = nic.host().mem.alloc(REQ as usize);
            let pass = |verify_tag: &str| {
                let mut off = 0;
                while off < REGION {
                    let n = f.read_cached(ctx, off, dst, REQ).unwrap();
                    assert_eq!(n, REQ, "short {verify_tag} striped read at {off}");
                    assert_eq!(
                        nic.host().mem.read_vec(dst, REQ as usize),
                        &expect[off as usize..(off + REQ) as usize],
                        "corrupt {verify_tag} striped read at {off}"
                    );
                    off += REQ;
                }
            };
            // Cold pass: every page crosses the switch once, seeding one
            // read lease per server.
            let t0 = ctx.now();
            pass("cold");
            cd.max(ctx.now().since(t0).as_nanos());
            // Warm passes: pure client-memory hits, nothing on the wire.
            let t1 = ctx.now();
            for _ in 0..rounds {
                pass("warm");
            }
            wm.max(ctx.now().since(t1).as_nanos());
        },
    );
    let snap = obs.snapshot();
    let counter = |n: &str| snap.expect(n).value();
    ScaleOut {
        cold_mb_s: mb_per_s(REGION, cold.get()),
        warm_mb_s: mb_per_s(rounds * REGION, warm.get()),
        hits: counter("dafs.cache.hits"),
        reconnects: counter("dafs.reconnects"),
    }
}

/// Recall storm, both directions. Phase A: N clients hold read leases on
/// one page; a writer's region-sized write recalls every one of them at
/// once (the write parks at the server until the last ack) — clean
/// holders must ack without any flush traffic. Phase B: the writer takes
/// a write-back lease and dirties the whole region; all N readers then
/// storm it at once, parking behind a single recall whose service flushes
/// the region as **one** coalesced batch before the ack releases them.
struct StormOut {
    recalls: u64,
    flush_batches: u64,
    flush_pages: u64,
    invalidations: u64,
}

fn storm_case(readers: usize) -> StormOut {
    let cfg = DafsClientConfig {
        cache_write_back: true,
        ..DafsClientConfig::default()
    };
    let page = cfg.cache_page;
    let img_a: Vec<u8> = (0..REGION as usize).map(|j| (j * 7 + 3) as u8).collect();
    let img_b: Vec<u8> = (0..REGION as usize).map(|j| (j * 13 + 1) as u8).collect();
    let (a, b) = (img_a.clone(), img_b.clone());
    let (fss, obs) = with_dafs_cluster(
        1,
        readers + 1,
        ViaCost::default(),
        DafsServerCost::default(),
        cfg,
        None,
        |fss| {
            let f = fss[0].create(ROOT_ID, "storm").unwrap();
            fss[0].write(f.id, 0, &pattern()).unwrap();
        },
        move |ctx, i, cs, nic| {
            let c = &cs[0];
            let f = c.lookup(ctx, ROOT_ID, "storm").unwrap();
            if i == 0 {
                let src = nic.host().mem.alloc(REGION as usize);
                // Phase A at ms(8): every reader holds its page lease by
                // now; this write-through recalls all N at once and parks
                // at the server until the last ack lands (~ms(12)).
                ctx.advance(ms(8));
                nic.host().mem.write(src, &a);
                c.write_cached(ctx, f.id, 0, src, REGION).unwrap();
                // Phase B: no leases are out (the acks dropped them, the
                // readers' re-reads wait until ms(22)), so this acquires a
                // write-back lease and buffers the region dirty.
                nic.host().mem.write(src, &b);
                c.write_cached(ctx, f.id, 0, src, REGION).unwrap();
                // ms(26)+: the readers' storm parked behind our lease at
                // ~ms(22); servicing the recall flushes everything dirty
                // as one coalesced batch, then the ack releases them all.
                ctx.advance(ms(12));
                c.cache_sync(ctx).unwrap();
            } else {
                // Warm one page under a read lease — small on purpose, so
                // all N warm reads finish well before phase A starts.
                let dst = nic.host().mem.alloc(page as usize);
                let n = c.read_cached(ctx, f.id, 0, dst, page).unwrap();
                assert_eq!(n, page, "reader {i} short warm read");
                // ms(12)-ish: service phase A's recall — flush (nothing,
                // we're clean), ack, drop the page.
                ctx.advance(ms(10));
                let acked = c.cache_sync(ctx).unwrap();
                assert_eq!(acked, 0, "clean reader {i} must ack without flushing");
                assert_eq!(
                    c.cache_stats.recalls.get(),
                    1,
                    "reader {i} missed the recall"
                );
                // ms(22)-ish: storm the write-back holder. The lease
                // request is denied mid-recall, so this parks as a plain
                // read behind the writer's lease and must return the
                // flushed phase-B image, never A or the original.
                ctx.advance(ms(10));
                let n = c.read_cached(ctx, f.id, 0, dst, page).unwrap();
                assert_eq!(n, page, "reader {i} short post-storm read");
                assert_eq!(
                    nic.host().mem.read_vec(dst, page as usize),
                    &b[..page as usize],
                    "reader {i} saw stale bytes after the storm"
                );
            }
        },
    );
    // Stable storage holds exactly the writer's flushed phase-B image.
    let fh = fss[0].resolve("/storm").unwrap();
    assert_eq!(fss[0].read(fh.id, 0, REGION).unwrap(), img_b);
    let snap = obs.snapshot();
    let counter = |n: &str| snap.expect(n).value();
    StormOut {
        recalls: counter("dafs.cache.recalls"),
        flush_batches: counter("dafs.cache.flush_batches"),
        flush_pages: counter("dafs.cache.flush_pages"),
        invalidations: counter("dafs.cache.invalidations"),
    }
}

/// Run R-X5 with explicit pass count, fault seed, and scale-out ladder
/// (the 4-client striped baseline always runs ahead of the ladder).
pub fn run_with(rounds: u64, seed: u64, scale: &[usize]) -> Table {
    let mut t = Table::new(
        &format!(
            "R-X5: small-op/re-read throughput, lease-coherent client cache \
             ({rounds} passes of 4K re-reads + GETATTR; seed {seed:#x})"
        ),
        &[
            "clients",
            "mode",
            "re-read MB/s",
            "small-op kops/s",
            "hits",
            "attr hits",
            "reconnects",
        ],
    );
    let mut row = |clients: usize, mode: &str, o: &CaseOut| {
        t.row(vec![
            clients.to_string(),
            mode.into(),
            format!("{:.1}", o.reread_mb_s),
            format!("{:.1}", o.kops_s),
            o.hits.to_string(),
            o.attr_hits.to_string(),
            o.reconnects.to_string(),
        ]);
    };
    let mut four = None;
    for clients in [1usize, 4] {
        let uncached = case(clients, false, rounds, None);
        let cached = case(clients, true, rounds, None);
        row(clients, "uncached", &uncached);
        row(clients, "cached", &cached);
        if clients == 4 {
            four = Some((uncached.reread_mb_s, cached.reread_mb_s));
        }
    }
    // Cached clients send few messages (that's the point), so the loss
    // rate is higher than X-4's to land a handful of session breaks.
    let plan = FaultPlan::builder(seed).loss(0.01).build();
    let degraded = case(4, true, rounds, Some(plan));
    row(4, "cached+loss", &degraded);
    let (cold, warm) = four.expect("4-client cases ran");
    assert!(
        warm >= 2.0 * cold,
        "cached 4-client re-read ({warm:.1} MB/s) must be >=2x uncached ({cold:.1} MB/s)"
    );
    assert!(
        degraded.reconnects > 0,
        "the degraded row never broke a session — the fault plan went untested"
    );
    t.note("every re-read verified byte-identical; warm pass uncounted");
    t.note("expect uncached rows to serialize on server per-op cost; cached rows to scale with clients (>=2x at 4 clients, asserted)");
    t.note("expect cached+loss between the extremes: each broken session drops its leases and re-warms (revalidate-on-reconnect)");

    // --- write-back flush coalescing -----------------------------------
    let wb = writeback_case();
    assert_eq!(wb.flush_pages, WB_PAGES, "strided dirty pages all flushed");
    assert!(
        wb.flush_pages >= 4 * wb.flush_batches.max(1),
        "coalesced flush must amortize >=4 pages per wire request \
         ({} pages over {} requests)",
        wb.flush_pages,
        wb.flush_batches
    );
    let mut wbt = Table::new(
        "R-X5 write-back flush coalescing (strided dirty pages, one sync)",
        &["pattern", "dirty pages", "flush wire reqs", "pages/req"],
    );
    wbt.row(vec![
        "every other 4K page".into(),
        wb.flush_pages.to_string(),
        wb.flush_batches.to_string(),
        format!(
            "{:.1}",
            wb.flush_pages as f64 / wb.flush_batches.max(1) as f64
        ),
    ]);
    wbt.note(
        "page-at-a-time flush would ship one wire request per dirty page; \
         coalesced runs amortize >=4x fewer (asserted), read-back verified",
    );
    t.push_extra(wbt);

    // --- striped scale-out on the switched fabric -----------------------
    let mut st = Table::new(
        &format!(
            "R-X5 scale-out: {SCALE_SERVERS}-server striped dumbbell, cached re-read \
             ({rounds} warm passes)"
        ),
        &[
            "clients",
            "cold/client MB/s",
            "warm/client MB/s",
            "warm/cold",
            "hits",
            "reconnects",
        ],
    );
    let mut srow = |clients: usize, o: &ScaleOut| {
        st.row(vec![
            clients.to_string(),
            format!("{:.1}", o.cold_mb_s),
            format!("{:.1}", o.warm_mb_s),
            format!("{:.1}", o.warm_mb_s / o.cold_mb_s.max(1e-9)),
            o.hits.to_string(),
            o.reconnects.to_string(),
        ]);
    };
    let base = scale_case(4, rounds);
    srow(4, &base);
    for &clients in scale {
        let out = scale_case(clients, rounds);
        assert_eq!(
            out.reconnects, 0,
            "lossless scale-out must not break sessions"
        );
        assert!(
            out.warm_mb_s >= base.warm_mb_s / 4.0,
            "{clients}-client cached re-read ({:.1} MB/s per client) fell more \
             than 4x below the 4-client baseline ({:.1} MB/s)",
            out.warm_mb_s,
            base.warm_mb_s
        );
        srow(clients, &out);
    }
    st.note(
        "warm passes are client-memory hits: per-client bandwidth must stay \
         within 4x of the 4-client baseline as clients scale (asserted)",
    );
    st.note("every striped read byte-verified against the prefilled pattern");
    t.push_extra(st);

    // --- recall storm ----------------------------------------------------
    let storm = storm_case(STORM_READERS);
    assert_eq!(
        storm.recalls,
        STORM_READERS as u64 + 1,
        "one recall per invalidated reader plus the write-back holder's"
    );
    assert!(
        storm.flush_batches >= 1 && storm.flush_batches <= 8,
        "storm flush requests out of bounds: {}",
        storm.flush_batches
    );
    assert_eq!(
        storm.flush_pages,
        REGION / DafsClientConfig::default().cache_page,
        "the storm must flush exactly the dirty region"
    );
    assert!(
        storm.invalidations >= STORM_READERS as u64,
        "every reader must drop its page ({} invalidations)",
        storm.invalidations
    );
    let mut rt = Table::new(
        "R-X5 recall storm: one write-back writer invalidates N readers",
        &[
            "readers",
            "recalls",
            "flush wire reqs",
            "flushed pages",
            "invalidations",
        ],
    );
    rt.row(vec![
        STORM_READERS.to_string(),
        storm.recalls.to_string(),
        storm.flush_batches.to_string(),
        storm.flush_pages.to_string(),
        storm.invalidations.to_string(),
    ]);
    rt.note(
        "phase A: the writer's write parks until all N leased readers ack \
         (clean holders flush nothing); phase B: all N readers storm the \
         write-back holder, whose recall service flushes the region as one \
         coalesced batch (bounded, asserted) before releasing them; every \
         reader re-reads the flushed image byte-exact",
    );
    t.push_extra(rt);
    t
}

/// Run R-X5 with the defaults.
pub fn run() -> Table {
    run_with(DEFAULT_ROUNDS, DEFAULT_SEED, &SCALE_CLIENTS)
}
