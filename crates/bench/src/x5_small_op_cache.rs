//! R-X5 — small-op/re-read throughput with the lease-coherent client
//! cache (new scenario).
//!
//! Not in the paper: DAFS 1.0 specifies client caching with server-issued
//! leases, but the original evaluation never measured it. This sweep has
//! N clients re-reading a warm shared region in 4 KiB requests and
//! hammering GETATTR — the small-op regime where per-op server cost, not
//! the wire, is the bottleneck. Uncached, every operation crosses the
//! fabric and serializes on the server CPU; with the cache a read lease is
//! acquired on the first pass and every later pass is served from client
//! memory, so aggregate throughput scales with the client count.
//!
//! The degraded row reruns the cached 4-client case under a seeded loss
//! plan: a broken session drops its leases (revalidate-on-reconnect), the
//! cache re-warms, and throughput lands between the cold and warm
//! extremes — with every byte still verified.

use dafs::{DafsClientConfig, DafsServerCost};
use memfs::ROOT_ID;
use simnet::FaultPlan;
use via::ViaCost;

use crate::report::{mb_per_s, Table};
use crate::testbeds::{with_dafs_cluster, Cell};

/// Shared region each client re-reads.
const REGION: u64 = 128 << 10;
/// Small-op request size.
const REQ: u64 = 4 << 10;
/// GETATTRs issued per re-read pass per client.
const GETATTRS_PER_ROUND: u64 = 8;

/// Timed re-read passes after the warm pass; `--smoke` shrinks this.
pub const DEFAULT_ROUNDS: u64 = 8;
/// Default fault seed for the degraded row; override with `--fault-seed`.
pub const DEFAULT_SEED: u64 = 0xDAF5_0005;

fn pattern() -> Vec<u8> {
    (0..REGION as usize).map(|i| (i * 11 + 5) as u8).collect()
}

struct CaseOut {
    reread_mb_s: f64,
    kops_s: f64,
    hits: u64,
    attr_hits: u64,
    reconnects: u64,
}

fn case(clients: usize, cached: bool, rounds: u64, plan: Option<FaultPlan>) -> CaseOut {
    let elapsed = Cell::new();
    let el = elapsed.clone();
    let (_, obs) = with_dafs_cluster(
        1,
        clients,
        ViaCost::default(),
        DafsServerCost::default(),
        DafsClientConfig::default(),
        plan,
        |fss| {
            let f = fss[0].create(ROOT_ID, "hot").unwrap();
            fss[0].write(f.id, 0, &pattern()).unwrap();
        },
        move |ctx, _i, cs, nic| {
            let c = &cs[0];
            let f = c.lookup(ctx, ROOT_ID, "hot").unwrap();
            let dst = nic.host().mem.alloc(REQ as usize);
            let expect = pattern();
            // Warm pass (uncounted): seeds the cache in cached mode.
            let mut off = 0;
            while off < REGION {
                let n = if cached {
                    c.read_cached(ctx, f.id, off, dst, REQ).unwrap()
                } else {
                    c.read(ctx, f.id, off, dst, REQ).unwrap()
                };
                assert_eq!(n, REQ, "short warm read at {off}");
                off += REQ;
            }
            let t0 = ctx.now();
            for _ in 0..rounds {
                let mut off = 0;
                while off < REGION {
                    let n = if cached {
                        c.read_cached(ctx, f.id, off, dst, REQ).unwrap()
                    } else {
                        c.read(ctx, f.id, off, dst, REQ).unwrap()
                    };
                    assert_eq!(n, REQ, "short re-read at {off}");
                    assert_eq!(
                        nic.host().mem.read_vec(dst, REQ as usize),
                        &expect[off as usize..(off + REQ) as usize],
                        "corrupt re-read at {off}"
                    );
                    off += REQ;
                }
                for _ in 0..GETATTRS_PER_ROUND {
                    let a = if cached {
                        c.getattr_cached(ctx, f.id).unwrap()
                    } else {
                        c.getattr(ctx, f.id).unwrap()
                    };
                    assert_eq!(a.size, REGION);
                }
            }
            el.max(ctx.now().since(t0).as_nanos());
        },
    );
    let snap = obs.snapshot();
    let counter = |n: &str| snap.expect(n).value();
    let ns = elapsed.get();
    let ops = clients as u64 * rounds * (REGION / REQ + GETATTRS_PER_ROUND);
    CaseOut {
        reread_mb_s: mb_per_s(clients as u64 * rounds * REGION, ns),
        kops_s: if ns == 0 {
            f64::INFINITY
        } else {
            ops as f64 / (ns as f64 / 1e9) / 1e3
        },
        hits: counter("dafs.cache.hits"),
        attr_hits: counter("dafs.cache.attr_hits"),
        reconnects: counter("dafs.reconnects"),
    }
}

/// Run R-X5 with explicit pass count and fault seed.
pub fn run_with(rounds: u64, seed: u64) -> Table {
    let mut t = Table::new(
        &format!(
            "R-X5: small-op/re-read throughput, lease-coherent client cache \
             ({rounds} passes of 4K re-reads + GETATTR; seed {seed:#x})"
        ),
        &[
            "clients",
            "mode",
            "re-read MB/s",
            "small-op kops/s",
            "hits",
            "attr hits",
            "reconnects",
        ],
    );
    let mut row = |clients: usize, mode: &str, o: &CaseOut| {
        t.row(vec![
            clients.to_string(),
            mode.into(),
            format!("{:.1}", o.reread_mb_s),
            format!("{:.1}", o.kops_s),
            o.hits.to_string(),
            o.attr_hits.to_string(),
            o.reconnects.to_string(),
        ]);
    };
    let mut four = None;
    for clients in [1usize, 4] {
        let uncached = case(clients, false, rounds, None);
        let cached = case(clients, true, rounds, None);
        row(clients, "uncached", &uncached);
        row(clients, "cached", &cached);
        if clients == 4 {
            four = Some((uncached.reread_mb_s, cached.reread_mb_s));
        }
    }
    // Cached clients send few messages (that's the point), so the loss
    // rate is higher than X-4's to land a handful of session breaks.
    let plan = FaultPlan::builder(seed).loss(0.01).build();
    let degraded = case(4, true, rounds, Some(plan));
    row(4, "cached+loss", &degraded);
    let (cold, warm) = four.expect("4-client cases ran");
    assert!(
        warm >= 2.0 * cold,
        "cached 4-client re-read ({warm:.1} MB/s) must be >=2x uncached ({cold:.1} MB/s)"
    );
    assert!(
        degraded.reconnects > 0,
        "the degraded row never broke a session — the fault plan went untested"
    );
    t.note("every re-read verified byte-identical; warm pass uncounted");
    t.note("expect uncached rows to serialize on server per-op cost; cached rows to scale with clients (>=2x at 4 clients, asserted)");
    t.note("expect cached+loss between the extremes: each broken session drops its leases and re-warms (revalidate-on-reconnect)");
    t
}

/// Run R-X5 with the defaults.
pub fn run() -> Table {
    run_with(DEFAULT_ROUNDS, DEFAULT_SEED)
}
