//! R-F3 — MPI-IO aggregate bandwidth vs process count (ROMIO `perf`
//! pattern: each rank its own contiguous 4 MiB partition of one file).
//!
//! Expected shape: DAFS scales until the server NIC saturates near the
//! 110 MB/s wire (one client nearly gets there); NFS saturates earlier and
//! lower on server CPU + packet processing; UFS (node-local, no network)
//! scales away above both as the "local bound".

use mpiio::{Backend, Hints, MpiFile, OpenMode, Testbed};

use crate::report::{mb_per_s, Table};
use crate::testbeds::Cell;

const PER_RANK: usize = 4 << 20;

/// (write MB/s, read MB/s) aggregate for `ranks` on `backend`.
pub fn agg_rw(backend: Backend, ranks: usize) -> (f64, f64) {
    let tb = Testbed::new(backend);
    let wns = Cell::new();
    let rns = Cell::new();
    let (w, r) = (wns.clone(), rns.clone());
    tb.run(ranks, move |ctx, comm, adio| {
        let host = comm.host().clone();
        let f = MpiFile::open(
            ctx,
            adio,
            &host,
            "/perf",
            OpenMode::create(),
            Hints::default(),
        )
        .unwrap();
        let buf = host.mem.alloc(PER_RANK);
        let off = (comm.rank() * PER_RANK) as u64;
        comm.barrier(ctx);
        let t0 = ctx.now();
        f.write_at(ctx, off, buf, PER_RANK as u64).unwrap();
        comm.barrier(ctx);
        w.max(ctx.now().since(t0).as_nanos());
        comm.barrier(ctx);
        let t1 = ctx.now();
        f.read_at(ctx, off, buf, PER_RANK as u64).unwrap();
        comm.barrier(ctx);
        r.max(ctx.now().since(t1).as_nanos());
    });
    let total = (ranks * PER_RANK) as u64;
    (mb_per_s(total, wns.get()), mb_per_s(total, rns.get()))
}

/// Run R-F3.
pub fn run() -> Table {
    let mut t = Table::new(
        "R-F3: MPI-IO aggregate bandwidth vs ranks (4 MiB/rank, MB/s)",
        &["ranks", "DAFS wr", "DAFS rd", "NFS wr", "NFS rd", "UFS wr"],
    );
    for ranks in [1usize, 2, 4, 8, 16] {
        let (dw, dr) = agg_rw(Backend::dafs(), ranks);
        let (nw, nr) = agg_rw(Backend::nfs(), ranks);
        let (uw, _) = agg_rw(Backend::ufs(), ranks);
        t.row(vec![
            ranks.to_string(),
            format!("{dw:.1}"),
            format!("{dr:.1}"),
            format!("{nw:.1}"),
            format!("{nr:.1}"),
            format!("{uw:.0}"),
        ]);
    }
    t.note(
        "expect DAFS to pin at ~105-110 (server wire); NFS to plateau lower (server CPU/packets)",
    );
    t.note("UFS is the no-network local bound and scales with ranks");
    t
}
