//! R-F10 — Switched fabric at scale: incast and oversubscription sweeps
//! (new scenario).
//!
//! Not in the paper: the original testbed was a handful of hosts on a
//! point-to-point cLAN link. This experiment puts the striped DAFS
//! cluster behind the two-leaf dumbbell of [`Topology::dumbbell`] — every
//! server on a server leaf, every client on a client leaf, one trunk in
//! between — and sweeps 64–1024 clients against 4 and 16 servers at trunk
//! oversubscription 1:1 and 4:1.
//!
//! Expected shape: with ≥ 4 clients per server every configuration is
//! already saturated, so each column holds a flat plateau as the client
//! count scales 16×. At 1:1 the plateau sits at the aggregate server wire
//! rate (`servers × 110 MB/s` — the trunk is provisioned to match); at
//! 4:1 the trunk is the bottleneck and the plateau drops to a quarter.
//! That factor-of-four gap *is* the oversubscription knee, and the incast
//! bend shows up in the fabric metrics: the trunk port's queue depth and
//! total queued time grow with the client count while aggregate bandwidth
//! stays pinned.
//!
//! Assertions, checked on every full run:
//!
//! - each column is (weakly) monotone under scale-out — no cell collapses
//!   below 85% of its predecessor while clients double;
//! - at the top of the sweep, the 4:1 plateau is at most half (and at
//!   least an eighth) of the 1:1 plateau — the knee is real and bounded;
//! - the 1:1 plateau lands within 25% of `servers × 110 MB/s`;
//! - trunk queueing (virtual ns spent waiting at the trunk port) grows
//!   from the bottom of the sweep to the top — the incast bend;
//! - every byte read back is verified against the prefilled pattern.
//!
//! A follow-on table reports the per-port fabric counters ([`PortStats`])
//! for the trunk at the top of the sweep, plus one `Drop`-policy row: the
//! same incast with a shallow 8-frame queue and drops enabled sheds frames
//! (asserted non-zero), breaks sessions, and still completes with
//! byte-exact read-back through the reconnect/replay machinery.
//!
//! [`Topology::dumbbell`]: simnet::topo::Topology::dumbbell
//! [`PortStats`]: simnet::topo::PortStats

use dafs::{DafsClientConfig, DafsServerCost};
use memfs::ROOT_ID;
use simnet::topo::{DumbbellSpec, ForwardingMode, QueuePolicy, Topology};
use simnet::{Bandwidth, SimTime};
use via::ViaCost;

use crate::report::{mb_per_s, Table};
use crate::testbeds::{with_sharded_dafs_fabric, Cell};

/// Request size for every read.
const REQ: u64 = 128 << 10;
/// Bytes each client reads (4 requests).
const PER_CLIENT: u64 = 512 << 10;
/// Per-port queue capacity (frames) for the sweep.
const QUEUE: usize = 64;
/// Server wire rate in MB/s (the `ViaCost` default, restated for the
/// plateau assertions).
const WIRE_MB: f64 = 110.0;

/// The full-sweep client counts.
const CLIENTS: [usize; 5] = [64, 128, 256, 512, 1024];
/// The smoke-sweep client counts.
const SMOKE_CLIENTS: [usize; 2] = [4, 16];

/// `(servers, oversub)` columns of the sweep.
const CONFIGS: [(usize, u64); 4] = [(4, 1), (4, 4), (16, 1), (16, 4)];
const SMOKE_CONFIGS: [(usize, u64); 2] = [(2, 1), (2, 4)];

fn pattern(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 131 + 17) as u8).collect()
}

/// One sweep cell's result: aggregate bandwidth plus the trunk-port
/// fabric counters and run-wide bookkeeping.
struct CaseOut {
    agg_mb_s: f64,
    trunk_qdepth_max: u64,
    trunk_queued_ns: u64,
    trunk_drops: u64,
    reconnects: u64,
    sim_events: u64,
}

/// Run `clients` clients sharded over `servers` servers behind a dumbbell
/// with the trunk provisioned at `servers × wire / oversub`. Every client
/// holds one session (to server `i % servers`), reads [`PER_CLIENT`]
/// bytes in [`REQ`] chunks, and verifies each chunk byte-exact.
///
/// Aggregate bandwidth is total bytes over the virtual window from t = 0
/// to the *last* client's completion (not the max per-client span): that
/// denominator covers every byte moved, so the result is physically
/// bounded by the aggregate wire rate and the plateau assertions hold.
fn sweep_case(servers: usize, clients: usize, oversub: u64, policy: QueuePolicy) -> CaseOut {
    let via = ViaCost::default();
    let wire = via.wire_bw;
    let latency = via.wire_latency;
    let span = Cell::new();
    let sp = span.clone();
    let expect = pattern(PER_CLIENT as usize);
    let (_, topology, run) = with_sharded_dafs_fabric(
        servers,
        clients,
        via,
        DafsServerCost::default(),
        DafsClientConfig::default(),
        None,
        move |cluster, sids| {
            Topology::dumbbell(
                cluster,
                sids,
                DumbbellSpec {
                    port_bw: wire,
                    trunk_bw: Bandwidth::bytes_per_sec(
                        (wire.as_bytes_per_sec() * servers as u64 / oversub).max(1),
                    ),
                    latency,
                    rails: 1,
                    queue_capacity: if policy == QueuePolicy::Drop {
                        8
                    } else {
                        QUEUE
                    },
                    pool_bytes: 0,
                    mode: ForwardingMode::CutThrough,
                    policy,
                },
            )
        },
        |fss| {
            let data = pattern(PER_CLIENT as usize);
            for fs in fss {
                let f = fs.create(ROOT_ID, "stream").unwrap();
                fs.write(f.id, 0, &data).unwrap();
            }
        },
        move |ctx, _rank, c, nic| {
            let f = c.lookup(ctx, ROOT_ID, "stream").unwrap();
            let buf = nic.host().mem.alloc(REQ as usize);
            let mut off = 0;
            while off < PER_CLIENT {
                let n = c.read(ctx, f.id, off, buf, REQ).unwrap();
                assert_eq!(n, REQ, "short fabric read at {off}");
                assert_eq!(
                    nic.host().mem.read_vec(buf, REQ as usize),
                    expect[off as usize..(off + REQ) as usize],
                    "corrupt read-back at {off} ({servers} servers, {clients} clients)"
                );
                off += REQ;
            }
            sp.max(ctx.now().since(SimTime::ZERO).as_nanos());
        },
    );
    // The trunk is the inter-switch port on either leaf; reads flow
    // server→client, so the hot one lives on the server leaf.
    let (mut qmax, mut queued, mut drops) = (0u64, 0u64, 0u64);
    for p in topology.port_stats() {
        if p.port.starts_with("to_leaf") {
            qmax = qmax.max(p.qdepth_max);
            queued += p.queued_ns;
            drops += p.drops;
        }
    }
    let snap = run.snapshot();
    let counter = |name: &str| snap.expect(name).value();
    CaseOut {
        agg_mb_s: mb_per_s(clients as u64 * PER_CLIENT, span.get()),
        trunk_qdepth_max: qmax,
        trunk_queued_ns: queued,
        trunk_drops: drops,
        reconnects: counter("dafs.reconnects"),
        sim_events: counter("sim.events.total"),
    }
}

/// Run the sweep over `client_counts` × `configs`. `strict` enables the
/// full-scale plateau/knee assertions (the smoke sweep keeps only the
/// ordering checks).
fn run_sweep(client_counts: &[usize], configs: &[(usize, u64)], strict: bool) -> Table {
    let mut t = Table::new(
        &format!(
            "R-F10: switched fabric — aggregate read bandwidth vs clients under oversubscription (MB/s, {}KiB requests)",
            REQ >> 10
        ),
        &std::iter::once("clients".to_string())
            .chain(configs.iter().map(|(s, o)| format!("s={s} o={o}:1")))
            .collect::<Vec<_>>()
            .iter()
            .map(|s| s.as_str())
            .collect::<Vec<_>>(),
    );
    // cols[c][i]: CaseOut for configs[c] at client_counts[i].
    let mut cols: Vec<Vec<CaseOut>> = configs.iter().map(|_| Vec::new()).collect();
    // Wall-clock budget cells: the deepest incast (256 × s=16 o=4:1) and
    // the widest fan-out (1024 × s=4 o=1:1); CI gates the events/s of both.
    let mut wall: Vec<(String, u64, std::time::Duration)> = Vec::new();
    for (i, &clients) in client_counts.iter().enumerate() {
        let mut row = vec![clients.to_string()];
        for (c, &(servers, oversub)) in configs.iter().enumerate() {
            let timed = strict
                && ((clients == 256 && (servers, oversub) == (16, 4))
                    || (clients == 1024 && (servers, oversub) == (4, 1)));
            let t0 = std::time::Instant::now();
            let out = sweep_case(servers, clients, oversub, QueuePolicy::Backpressure);
            if timed {
                wall.push((
                    format!("{clients}-client s={servers} o={oversub}:1 cell"),
                    out.sim_events,
                    t0.elapsed(),
                ));
            }
            assert_eq!(out.reconnects, 0, "backpressure must not break sessions");
            assert_eq!(out.trunk_drops, 0, "backpressure must not drop frames");
            row.push(format!("{:.1}", out.agg_mb_s));
            cols[c].push(out);
        }
        let _ = i;
        t.row(row);
    }
    for (c, &(servers, oversub)) in configs.iter().enumerate() {
        let col = &cols[c];
        for w in col.windows(2) {
            assert!(
                w[1].agg_mb_s >= w[0].agg_mb_s * 0.85,
                "s={servers} o={oversub}: aggregate collapsed under scale-out \
                 ({:.1} → {:.1} MB/s)",
                w[0].agg_mb_s,
                w[1].agg_mb_s
            );
        }
        for out in col {
            assert!(
                out.trunk_qdepth_max <= QUEUE as u64,
                "trunk queue depth {} exceeded capacity {QUEUE}",
                out.trunk_qdepth_max
            );
        }
    }
    if strict {
        // Pair each 1:1 column with its 4:1 sibling at the top of the sweep.
        for (c, &(servers, oversub)) in configs.iter().enumerate() {
            if oversub != 1 {
                continue;
            }
            let flat = cols[c].last().unwrap().agg_mb_s;
            let line = servers as f64 * WIRE_MB;
            assert!(
                flat >= line * 0.75 && flat <= line * 1.05,
                "s={servers} 1:1 plateau {flat:.1} MB/s should sit near {line:.0}"
            );
            let sib = configs.iter().position(|&(s, o)| s == servers && o == 4);
            if let Some(sc) = sib {
                let bent = cols[sc].last().unwrap().agg_mb_s;
                assert!(
                    bent <= flat * 0.5 && bent >= flat / 8.0,
                    "s={servers}: 4:1 plateau {bent:.1} vs 1:1 {flat:.1} — \
                     knee out of range"
                );
                let (lo, hi) = (cols[sc].first().unwrap(), cols[sc].last().unwrap());
                assert!(
                    hi.trunk_queued_ns > lo.trunk_queued_ns,
                    "s={servers} o=4: trunk queueing should grow with incast \
                     ({} → {} ns)",
                    lo.trunk_queued_ns,
                    hi.trunk_queued_ns
                );
            }
        }
    }
    // Fabric-counter follow-on: the trunk port at the top of the sweep.
    let top = *client_counts.last().unwrap();
    let mut extra = Table::new(
        &format!("R-F10 fabric counters: trunk port at {top} clients"),
        &["config", "qdepth max", "queued ms", "drops", "reconnects"],
    );
    for (c, &(servers, oversub)) in configs.iter().enumerate() {
        let out = cols[c].last().unwrap();
        extra.row(vec![
            format!("s={servers} o={oversub}:1 backpressure"),
            out.trunk_qdepth_max.to_string(),
            format!("{:.1}", out.trunk_queued_ns as f64 / 1e6),
            out.trunk_drops.to_string(),
            out.reconnects.to_string(),
        ]);
    }
    // One Drop-policy row: shallow queue, drops enabled, small scale so the
    // reconnect storm stays bounded. Sheds frames but still completes with
    // verified read-back.
    let (ds, dc, dov) = (2usize, 8usize, 4u64);
    let dropped = sweep_case(ds, dc, dov, QueuePolicy::Drop);
    assert!(
        dropped.trunk_drops > 0,
        "shallow drop-policy trunk must shed frames under 4:1 incast"
    );
    assert!(
        dropped.reconnects > 0,
        "fabric drops must surface as session breaks (and recover)"
    );
    extra.row(vec![
        format!("s={ds} o={dov}:1 drop (q=8, {dc} clients)"),
        dropped.trunk_qdepth_max.to_string(),
        format!("{:.1}", dropped.trunk_queued_ns as f64 / 1e6),
        dropped.trunk_drops.to_string(),
        dropped.reconnects.to_string(),
    ]);
    extra.note(
        "drop row: every shed frame broke a session; reconnect/replay still read back byte-exact",
    );
    t.push_extra(extra);
    t.note(
        "expect flat plateaus: 1:1 at servers x 110 MB/s (server wires), 4:1 at a quarter (trunk)",
    );
    t.note("incast bend: trunk queueing grows with clients while aggregate stays pinned; asserted");
    for (label, events, el) in wall {
        t.note(&format!(
            "wall-clock: {label} ran {events} sim events in {:.2}s ({:.0} events/s)",
            el.as_secs_f64(),
            events as f64 / el.as_secs_f64().max(1e-9)
        ));
    }
    t
}

/// Run R-F10 at full scale: 64–1024 clients × {4,16} servers × {1:1,4:1}.
pub fn run() -> Table {
    run_sweep(&CLIENTS, &CONFIGS, true)
}

/// The CI smoke sweep: 4 and 16 clients against 2 servers, both trunk
/// provisions, same table shape and ordering/conservation assertions.
pub fn run_smoke() -> Table {
    run_sweep(&SMOKE_CLIENTS, &SMOKE_CONFIGS, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bench tables through a switch are as reproducible as everything
    /// else: two identical sweeps serialize byte-identically.
    #[test]
    fn smoke_sweep_is_byte_identical_across_runs() {
        let a = run_smoke().to_json();
        let b = run_smoke().to_json();
        assert_eq!(a, b, "switched bench table diverged between runs");
        assert!(a.contains("oversub"), "table lost its oversubscription id");
    }
}
