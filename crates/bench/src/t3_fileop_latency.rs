//! R-T3 — Small-file-operation latency: DAFS vs NFS.
//!
//! Expected shape: DAFS metadata and tiny-I/O ops land in the tens of
//! microseconds (one VIA round trip + a lean server); NFS in the hundreds
//! (kernel RPC path) — a 3–6× gap.

use dafs::{DafsClientConfig, DafsServerCost};
use memfs::ROOT_ID;
use nfsv3::{NfsClientConfig, NfsServerCost};
use tcpnet::TcpCost;
use via::ViaCost;

use crate::report::Table;
use crate::testbeds::{with_dafs_client, with_nfs_client, Cell};

const ITERS: u64 = 20;

/// (getattr, lookup, read512, write512) mean latencies in ns.
fn dafs_ops_ns() -> [u64; 4] {
    let cells: Vec<Cell> = (0..4).map(|_| Cell::new()).collect();
    let out: Vec<Cell> = cells.clone();
    with_dafs_client(
        ViaCost::default(),
        DafsServerCost::default(),
        DafsClientConfig::default(),
        |fs| {
            let f = fs.create(ROOT_ID, "target").unwrap();
            fs.write(f.id, 0, &vec![1u8; 4096]).unwrap();
        },
        move |ctx, c, nic| {
            let f = c.lookup(ctx, ROOT_ID, "target").unwrap();
            let buf = nic.host().mem.alloc(512);
            let measure = |cell: &Cell, mut op: Box<dyn FnMut(&simnet::ActorCtx) + '_>| {
                let t0 = ctx.now();
                for _ in 0..ITERS {
                    op(ctx);
                }
                cell.set(ctx.now().since(t0).as_nanos() / ITERS);
            };
            measure(
                &out[0],
                Box::new(|ctx| {
                    c.getattr(ctx, f.id).unwrap();
                }),
            );
            measure(
                &out[1],
                Box::new(|ctx| {
                    c.lookup(ctx, ROOT_ID, "target").unwrap();
                }),
            );
            measure(
                &out[2],
                Box::new(|ctx| {
                    c.read(ctx, f.id, 0, buf, 512).unwrap();
                }),
            );
            measure(
                &out[3],
                Box::new(|ctx| {
                    c.write(ctx, f.id, 0, buf, 512).unwrap();
                }),
            );
        },
    );
    [
        cells[0].get(),
        cells[1].get(),
        cells[2].get(),
        cells[3].get(),
    ]
}

fn nfs_ops_ns() -> [u64; 4] {
    let cells: Vec<Cell> = (0..4).map(|_| Cell::new()).collect();
    let out: Vec<Cell> = cells.clone();
    with_nfs_client(
        TcpCost::default(),
        NfsServerCost::default(),
        NfsClientConfig::default(),
        |fs| {
            let f = fs.create(ROOT_ID, "target").unwrap();
            fs.write(f.id, 0, &vec![1u8; 4096]).unwrap();
        },
        move |ctx, c| {
            let f = c.lookup(ctx, ROOT_ID, "target").unwrap();
            let data = vec![2u8; 512];
            let measure = |cell: &Cell, mut op: Box<dyn FnMut(&simnet::ActorCtx) + '_>| {
                let t0 = ctx.now();
                for _ in 0..ITERS {
                    op(ctx);
                }
                cell.set(ctx.now().since(t0).as_nanos() / ITERS);
            };
            measure(
                &out[0],
                Box::new(|ctx| {
                    c.getattr_uncached(ctx, f.id).unwrap();
                }),
            );
            measure(
                &out[1],
                Box::new(|ctx| {
                    c.lookup(ctx, ROOT_ID, "target").unwrap();
                }),
            );
            measure(
                &out[2],
                Box::new(|ctx| {
                    c.read(ctx, f.id, 0, 512).unwrap();
                }),
            );
            measure(
                &out[3],
                Box::new(|ctx| {
                    c.write(ctx, f.id, 0, &data).unwrap();
                }),
            );
        },
    );
    [
        cells[0].get(),
        cells[1].get(),
        cells[2].get(),
        cells[3].get(),
    ]
}

/// Run R-T3.
pub fn run() -> Table {
    let mut t = Table::new(
        "R-T3: small file-op latency (us)",
        &["operation", "DAFS", "NFS", "NFS/DAFS"],
    );
    let d = dafs_ops_ns();
    let n = nfs_ops_ns();
    for (i, name) in ["getattr", "lookup", "read 512B", "write 512B"]
        .iter()
        .enumerate()
    {
        t.row(vec![
            name.to_string(),
            format!("{:.1}", d[i] as f64 / 1e3),
            format!("{:.1}", n[i] as f64 / 1e3),
            format!("{:.1}x", n[i] as f64 / d[i] as f64),
        ]);
    }
    t.note("expect DAFS ~25-50us per op, NFS ~150-300us; 3-6x gap");
    t
}
