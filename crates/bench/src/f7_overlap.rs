//! R-F7 — Overlapped two-phase collective I/O (`romio_cb_pipeline`).
//!
//! The double-buffered sweep issues each window's filesystem batch
//! nonblocking and drains it under the next window's pack/exchange, so a
//! window costs roughly `max(exchange, io)` instead of `exchange + io`.
//!
//! Expected shape: the pipelined column beats the synchronous one on both
//! backends, with the larger gain on NFS — its slower per-window I/O is
//! hidden behind the same exchange, so more of the sweep overlaps. The
//! residual gap to the ideal `1/max` bound is visible in the
//! `mpiio.twophase.overlap_ns` / `io_ns` counters (run with
//! `MPIO_DAFS_TRACE=1` for the breakdown).

use mpiio::{
    read_at_all, write_at_all, Backend, Datatype, Hints, JobReport, MpiFile, OpenMode, Testbed,
};

use crate::report::{layer_breakdown, mb_per_s, Table};
use crate::testbeds::Cell;

const RANKS: usize = 8;
const BLOCK: u64 = 4 << 10;

/// Full-size sweep geometry: 128 rounds × 4 KiB per rank with a 64 KiB
/// collective buffer gives each aggregator an 8-phase sweep.
pub const DEFAULT_ROUNDS: u64 = 128;
/// Collective buffer for the full-size run.
pub const DEFAULT_CB: u64 = 64 << 10;

/// One collective transfer of the rank-interleaved pattern; returns the
/// slowest rank's virtual ns for the timed operation.
fn run_case(
    backend: Backend,
    rounds: u64,
    cb: u64,
    write: bool,
    pipelined: bool,
) -> (u64, JobReport) {
    let tb = Testbed::new(backend);
    let dur = Cell::new();
    let d = dur.clone();
    let report = tb.run(RANKS, move |ctx, comm, adio| {
        let host = comm.host().clone();
        let mut hints = Hints::default();
        hints.set("romio_cb_write", "enable");
        hints.set("romio_cb_read", "enable");
        hints.set("cb_buffer_size", &cb.to_string());
        hints.set(
            "romio_cb_pipeline",
            if pipelined { "enable" } else { "disable" },
        );
        let f = MpiFile::open(ctx, adio, &host, "/overlap", OpenMode::create(), hints).unwrap();
        let el = Datatype::bytes(BLOCK);
        let ft = Datatype::resized(
            &Datatype::hindexed(&[(1, (comm.rank() as u64 * BLOCK) as i64)], &el),
            0,
            comm.size() as u64 * BLOCK,
        );
        f.set_view(0, &el, &ft);
        let total = rounds * BLOCK;
        let buf = host.mem.alloc(total as usize);
        host.mem.fill(buf, total as usize, comm.rank() as u8 + 1);
        if !write {
            // Seed the file so the timed collective read has data.
            write_at_all(ctx, comm, &f, 0, buf, total).unwrap();
        }
        comm.barrier(ctx);
        let t0 = ctx.now();
        if write {
            write_at_all(ctx, comm, &f, 0, buf, total).unwrap();
        } else {
            read_at_all(ctx, comm, &f, 0, buf, total).unwrap();
        }
        comm.barrier(ctx);
        d.max(ctx.now().since(t0).as_nanos());
    });
    (dur.get(), report)
}

/// Run R-F7 with explicit geometry (`--smoke` shrinks it).
pub fn run_sized(rounds: u64, cb: u64) -> Table {
    let mut t = Table::new(
        "R-F7: overlapped two-phase sweep, 4 KiB interleave, 8 ranks (aggregate MB/s)",
        &["backend", "op", "synchronous", "pipelined", "speedup"],
    );
    let total = RANKS as u64 * rounds * BLOCK;
    let mut traced: Option<JobReport> = None;
    for (name, backend) in [("dafs", Backend::dafs()), ("nfs", Backend::nfs())] {
        for (op, write) in [("write", true), ("read", false)] {
            let (sync_ns, _) = run_case(backend.clone(), rounds, cb, write, false);
            let (pipe_ns, report) = run_case(backend.clone(), rounds, cb, write, true);
            traced = Some(report);
            t.row(vec![
                name.to_string(),
                op.to_string(),
                format!("{:.1}", mb_per_s(total, sync_ns)),
                format!("{:.1}", mb_per_s(total, pipe_ns)),
                format!("{:.2}x", sync_ns as f64 / pipe_ns as f64),
            ]);
        }
    }
    t.note("pipelined sweep pays max(exchange, io) per window instead of exchange + io");
    t.note("gain is largest on NFS, whose slower per-window I/O hides the whole exchange");
    t.note("mpiio.twophase.overlap_ns counts batch in-flight time recovered by the pipeline");
    // With MPIO_DAFS_TRACE set, split the last pipelined run per layer.
    if let Some(report) = traced.filter(|r| r.traced) {
        t.push_extra(layer_breakdown(
            "R-F7a: pipelined two-phase per-layer time (NFS read)",
            &report.snapshot,
        ));
    }
    t
}

/// Run R-F7 at full size.
pub fn run() -> Table {
    run_sized(DEFAULT_ROUNDS, DEFAULT_CB)
}
