//! R-F5 — Inline→direct threshold sweep.
//!
//! Expected shape: each threshold setting is best in its own regime — a
//! low threshold wastes registration/RDMA setup on small requests, a high
//! one wastes copies on large requests; the default (8 KiB) tracks the
//! upper envelope, with the crossover visible in the columns.

use dafs::{DafsClientConfig, DafsServerCost};
use memfs::ROOT_ID;
use via::ViaCost;

use crate::report::{human_size, mb_per_s, Table};
use crate::testbeds::{with_dafs_client, Cell};

const FILE: u64 = 4 << 20;

fn read_mb_s(req: u64, threshold: u64) -> f64 {
    let dur = Cell::new();
    let d = dur.clone();
    with_dafs_client(
        ViaCost::default(),
        DafsServerCost::default(),
        DafsClientConfig {
            direct_threshold: threshold,
            ..Default::default()
        },
        |fs| {
            let f = fs.create(ROOT_ID, "f").unwrap();
            fs.write(f.id, 0, &vec![1u8; FILE as usize]).unwrap();
        },
        move |ctx, c, nic| {
            let f = c.lookup(ctx, ROOT_ID, "f").unwrap();
            let buf = nic.host().mem.alloc(req as usize);
            // Warm the registration cache out of the measurement.
            c.read(ctx, f.id, 0, buf, req).unwrap();
            let t0 = ctx.now();
            let mut off = 0;
            while off < FILE {
                c.read(ctx, f.id, off, buf, req.min(FILE - off)).unwrap();
                off += req;
            }
            d.set(ctx.now().since(t0).as_nanos());
        },
    );
    mb_per_s(FILE, dur.get())
}

/// Run R-F5.
pub fn run() -> Table {
    let mut t = Table::new(
        "R-F5: direct-threshold sweep, sequential reads (MB/s)",
        &[
            "request",
            "thresh 1K",
            "thresh 8K",
            "thresh 64K (inline-only)",
        ],
    );
    for req in [1u64 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10] {
        t.row(vec![
            human_size(req),
            format!("{:.1}", read_mb_s(req, 1 << 10)),
            format!("{:.1}", read_mb_s(req, 8 << 10)),
            format!("{:.1}", read_mb_s(req, u64::MAX)),
        ]);
    }
    t.note("each column wins in its own regime; the default 8K threshold tracks the envelope");
    t
}
