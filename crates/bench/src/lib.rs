//! # mpio-dafs-bench — the reconstructed evaluation harness
//!
//! One module per reconstructed table/figure (`R-T1` … `R-F6`, indexed in
//! `DESIGN.md` §5). Each module's `run()` returns a [`Table`]; the
//! `experiments` bench target (and the per-experiment binaries) print them.
//! All times and bandwidths are **simulated** (virtual-time) quantities
//! from the calibrated cost models — deterministic and exactly
//! reproducible.

#![warn(missing_docs)]

pub mod report;
pub mod testbeds;

pub mod f10_fabric_sweep;
pub mod f1_transport_bandwidth;
pub mod f2_file_bandwidth;
pub mod f3_mpiio_scaling;
pub mod f4_collective_vs_independent;
pub mod f5_direct_threshold;
pub mod f6_server_saturation;
pub mod f7_overlap;
pub mod f8_server_scaling;
pub mod f9_listio;
pub mod kernel_speed;
pub mod t1_transport_latency;
pub mod t2_registration_cost;
pub mod t3_fileop_latency;
pub mod t4_cpu_overhead;
pub mod t5_regcache_ablation;
pub mod t6_cb_buffer_sweep;
pub mod x1_btio_subarray;
pub mod x2_mixed_workload;
pub mod x3_latency_sensitivity;
pub mod x4_bandwidth_under_loss;
pub mod x5_small_op_cache;
pub mod x6_qos_fairness;

pub use report::Table;

/// An experiment entry: id plus its runner.
pub type Experiment = (&'static str, fn() -> Table);

/// Every experiment, in DESIGN.md order: (id, runner).
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        ("R-T1", t1_transport_latency::run as fn() -> Table),
        ("R-F1", f1_transport_bandwidth::run),
        ("R-T2", t2_registration_cost::run),
        ("R-F2", f2_file_bandwidth::run),
        ("R-T3", t3_fileop_latency::run),
        ("R-F3", f3_mpiio_scaling::run),
        ("R-T4", t4_cpu_overhead::run),
        ("R-F4", f4_collective_vs_independent::run),
        ("R-T5", t5_regcache_ablation::run),
        ("R-F5", f5_direct_threshold::run),
        ("R-T6", t6_cb_buffer_sweep::run),
        ("R-F6", f6_server_saturation::run),
        ("R-F7", f7_overlap::run),
        ("R-F8", f8_server_scaling::run),
        ("R-F9", f9_listio::run),
        ("R-F10", f10_fabric_sweep::run),
        ("X-1", x1_btio_subarray::run),
        ("X-2", x2_mixed_workload::run),
        ("X-3", x3_latency_sensitivity::run),
        ("X-4", x4_bandwidth_under_loss::run),
        ("X-5", x5_small_op_cache::run),
        ("X-6", x6_qos_fairness::run),
        ("R-K1", kernel_speed::run),
    ]
}

/// Run one experiment, measuring wall-clock harness telemetry around it:
/// sim-events/s, MiB of payload materialized per second, peak refcounted
/// bytes alive. Returns the table untouched plus a `wall-clock:`-prefixed
/// note line; callers append the note only to *rendered* output (its own
/// line, so the byte-identity filter drops exactly it), never to the
/// one-object-per-line JSON stream (where it would knock out the whole
/// table from the comparison).
pub fn run_timed(run: fn() -> Table) -> (Table, String) {
    let ev0 = simnet::events_scheduled_global();
    let bytes0 = simnet::buf::bytes_total();
    simnet::buf::reset_bytes_peak();
    let t0 = std::time::Instant::now();
    let table = run();
    let el = t0.elapsed().as_secs_f64().max(1e-9);
    let events = simnet::events_scheduled_global() - ev0;
    let bytes = simnet::buf::bytes_total() - bytes0;
    let peak = simnet::buf::bytes_peak();
    let note = format!(
        "wall-clock: {events} sim events in {el:.2}s ({:.0} events/s, {:.1} MiB-sim/s, peak {} KiB buffered)",
        events as f64 / el,
        bytes as f64 / (1u64 << 20) as f64 / el,
        peak >> 10,
    );
    (table, note)
}
