//! R-T2 — VIA memory-registration cost and the registration cache.
//!
//! Expected shape: registration cost grows ~linearly with buffer size
//! (pin plus translation-table update per page); with the cache enabled,
//! a repeated-buffer workload pays the cost once instead of per request.

use dafs::{DafsClientConfig, DafsServerCost};
use memfs::ROOT_ID;
use simnet::{Cluster, SimKernel};
use via::{MemAttributes, ViaCost, ViaFabric};

use crate::report::{human_size, Table};
use crate::testbeds::{with_dafs_client, Cell};

/// Registration + deregistration virtual time for one buffer of `len`.
fn reg_cycle_us(len: u64) -> (f64, f64) {
    let kernel = SimKernel::new();
    let cluster = Cluster::new();
    let fabric = ViaFabric::new(ViaCost::default());
    let nic = fabric.open_nic(cluster.add_host("h"));
    let reg = Cell::new();
    let dereg = Cell::new();
    let (r, d) = (reg.clone(), dereg.clone());
    kernel.spawn("app", move |ctx| {
        let tag = nic.create_ptag();
        let buf = nic.host().mem.alloc(len as usize);
        let t0 = ctx.now();
        let h = nic.register_mem(ctx, buf, len, MemAttributes::local(tag));
        r.set(ctx.now().since(t0).as_nanos());
        let t1 = ctx.now();
        nic.deregister_mem(ctx, h).unwrap();
        d.set(ctx.now().since(t1).as_nanos());
    });
    kernel.run();
    (reg.get() as f64 / 1e3, dereg.get() as f64 / 1e3)
}

/// Total client registration CPU for 50 repeated 1 MiB direct reads,
/// with/without the registration cache.
fn workload_reg_cpu_ms(use_cache: bool) -> (f64, u64) {
    const LEN: u64 = 1 << 20;
    let regs = Cell::new();
    let cpu = Cell::new();
    let (rg, cp) = (regs.clone(), cpu.clone());
    with_dafs_client(
        ViaCost::default(),
        DafsServerCost::default(),
        DafsClientConfig {
            use_regcache: use_cache,
            ..Default::default()
        },
        |fs| {
            let f = fs.create(ROOT_ID, "f").unwrap();
            fs.write(f.id, 0, &vec![1u8; LEN as usize]).unwrap();
        },
        move |ctx, c, nic| {
            let f = c.lookup(ctx, ROOT_ID, "f").unwrap();
            let dst = nic.host().mem.alloc(LEN as usize);
            for _ in 0..50 {
                c.read(ctx, f.id, 0, dst, LEN).unwrap();
            }
            rg.set(nic.registration_stats().registrations);
            cp.set(nic.registration_cpu().as_nanos());
        },
    );
    (cpu.get() as f64 / 1e6, regs.get())
}

/// Run R-T2.
pub fn run() -> Table {
    let mut t = Table::new(
        "R-T2: memory registration cost",
        &["buffer", "register (us)", "deregister (us)"],
    );
    for len in [4u64 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20] {
        let (r, d) = reg_cycle_us(len);
        t.row(vec![human_size(len), format!("{r:.1}"), format!("{d:.1}")]);
    }
    let (cached_ms, cached_regs) = workload_reg_cpu_ms(true);
    let (uncached_ms, uncached_regs) = workload_reg_cpu_ms(false);
    t.note(&format!(
        "50x 1MiB direct reads, registration CPU: cache ON = {cached_ms:.2} ms \
         ({cached_regs} registrations); cache OFF = {uncached_ms:.2} ms ({uncached_regs})"
    ));
    t.note("expect linear growth with pages; cache turns per-I/O cost into one-time cost");
    t
}
