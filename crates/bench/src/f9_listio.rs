//! R-F9 — Wire-level list I/O vs data sieving on noncontiguous access
//! (new scenario).
//!
//! Not in the paper: its MPI/IO implementation data-sieves noncontiguous
//! requests into covering-extent transfers. This experiment measures the
//! alternative DAFS offers a user-level client: ship the whole sorted
//! `(offset, len)` list as **one vectored wire request** (`ReadList` /
//! `WriteList`) and let the server walk its filesystem once, returning the
//! payload inline or through a single RDMA pass.
//!
//! The workload is a BTIO-style strided access through the *independent*
//! path: one rank touches `block` bytes every `stride` over a fixed span,
//! under three routings of the same request —
//!
//! - **sieve**: `dafs_listio=disable`, `romio_ds_*=enable` — the classic
//!   read-modify-write of covering windows (pre-PR behavior);
//! - **list**: `dafs_listio` left on — one wire request per credit window
//!   carrying up to 256 segments;
//! - **range**: both off — one wire request per range (the path list I/O
//!   falls back to after exhausted replays).
//!
//! Expected shape: at low stride sieving is competitive (the covering
//! extent is mostly payload), but as the duty cycle drops the sieved
//! transfer is dominated by discarded gap bytes while list I/O moves only
//! the payload — the high-stride DAFS rows must show ≥ 1.3× sieving in
//! both directions (asserted). Per-range sits between: no wasted bytes,
//! but per-op overhead on every range.
//!
//! Built-in cross-checks: every run verifies byte-exact read-back; the
//! three raw-DAFS images per pattern must be byte-identical; list-op
//! counters must fire exactly when the hint says so.

use mpiio::{Backend, Datatype, Hints, MpiFile, OpenMode, Testbed};

use crate::report::{human_size, mb_per_s, Table};
use crate::testbeds::Cell;

/// Span of file the strided pattern sweeps.
const SPAN: u64 = 8 << 20;
/// (block, stride) patterns, densest first.
const PATTERNS: [(u64, u64); 3] = [
    (16 << 10, 32 << 10),
    (4 << 10, 64 << 10),
    (1 << 10, 64 << 10),
];
/// Required list-over-sieve speedup on the high-stride DAFS pattern.
const SPEEDUP_FLOOR: f64 = 1.3;

/// One measured cell: strided write pass then verified read pass over
/// `span`, on a fresh single-rank testbed with the given hint pairs.
/// Returns (write MB/s, read MB/s, list-op request count, raw server
/// image — empty for striped backends, whose piece files the equivalence
/// suite in `tests/listio.rs` covers).
fn strided_case(
    backend: Backend,
    pairs: &[(&str, &str)],
    block: u64,
    stride: u64,
    span: u64,
) -> (f64, f64, u64, Vec<u8>) {
    let count = span / stride;
    let payload = count * block;
    let tb = Testbed::new(backend);
    let raw_image = tb.server_fss.len() <= 1;
    let fs = tb.fs.clone();
    let wns = Cell::new();
    let rns = Cell::new();
    let (w, r) = (wns.clone(), rns.clone());
    let pairs: Vec<(String, String)> = pairs
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    let report = tb.run(1, move |ctx, comm, adio| {
        let host = comm.host().clone();
        let hints = Hints::from_pairs(pairs.iter().map(|(k, v)| (k.as_str(), v.as_str())));
        let f = MpiFile::open(ctx, adio, &host, "/f9", OpenMode::create(), hints).unwrap();
        // Prefill the span so sieved reads fetch real bytes (no EOF
        // shorts) and sieved writes read-modify-write real content.
        let fill: Vec<u8> = (0..span as usize).map(|i| (i * 7 + 13) as u8).collect();
        let bg = host.mem.alloc(span as usize);
        host.mem.write(bg, &fill);
        f.write_at(ctx, 0, bg, span).unwrap();
        // One `block` every `stride`.
        f.set_view(
            0,
            &Datatype::bytes(1),
            &Datatype::resized(&Datatype::bytes(block), 0, stride),
        );
        let data: Vec<u8> = (0..payload as usize).map(|i| (i * 11 + 3) as u8).collect();
        let src = host.mem.alloc(payload as usize);
        host.mem.write(src, &data);
        let t0 = ctx.now();
        f.write_at(ctx, 0, src, payload).unwrap();
        w.max(ctx.now().since(t0).as_nanos());
        let dst = host.mem.alloc(payload as usize);
        let t1 = ctx.now();
        let n = f.read_at(ctx, 0, dst, payload).unwrap();
        r.max(ctx.now().since(t1).as_nanos());
        assert_eq!(n, payload, "short strided read ({block}/{stride})");
        assert_eq!(
            host.mem.read_vec(dst, payload as usize),
            data,
            "corrupt strided read-back ({block}/{stride})"
        );
    });
    let list_reqs = report.snapshot.expect("dafs.list.reqs").value();
    let image = if raw_image {
        let attr = fs.resolve("/f9").unwrap();
        fs.read(attr.id, 0, attr.size).unwrap()
    } else {
        Vec::new()
    };
    (
        mb_per_s(payload, wns.get()),
        mb_per_s(payload, rns.get()),
        list_reqs,
        image,
    )
}

/// The three hint configurations, in table-column order.
fn configs() -> [(&'static str, Vec<(&'static str, &'static str)>); 3] {
    [
        (
            "sieve",
            vec![
                ("dafs_listio", "disable"),
                ("romio_ds_read", "enable"),
                ("romio_ds_write", "enable"),
            ],
        ),
        // Explicit `enable` so the A/B comparison survives the
        // `MPIO_DAFS_LISTIO=disable` sweep-wide kill switch.
        ("list", vec![("dafs_listio", "enable")]),
        (
            "range",
            vec![
                ("dafs_listio", "disable"),
                ("romio_ds_read", "disable"),
                ("romio_ds_write", "disable"),
            ],
        ),
    ]
}

/// Run R-F9 over an explicit span.
pub fn run_sized(span: u64) -> Table {
    let mut t = Table::new(
        &format!(
            "R-F9: wire-level list I/O vs data sieving — strided independent access, span {} (MB/s)",
            human_size(span)
        ),
        &[
            "backend", "pattern", "sieve rd", "list rd", "range rd", "sieve wr", "list wr",
            "range wr",
        ],
    );
    for (bname, backend) in [
        ("dafs", Backend::dafs as fn() -> Backend),
        ("dafs-striped(2)", || Backend::dafs_striped(2)),
    ] {
        for (block, stride) in PATTERNS {
            let mut rd = Vec::new();
            let mut wr = Vec::new();
            let mut images = Vec::new();
            for (cname, pairs) in configs() {
                let (w, r, list_reqs, image) = strided_case(backend(), &pairs, block, stride, span);
                // The hint must actually steer the wire: list ops fire on
                // the list column and nowhere else.
                if cname == "list" {
                    assert!(list_reqs > 0, "{bname} {cname}: no list ops on the wire");
                } else {
                    assert_eq!(list_reqs, 0, "{bname} {cname}: unexpected list ops");
                }
                rd.push(r);
                wr.push(w);
                images.push(image);
            }
            // All three routings must land identical raw-server bytes.
            if !images[0].is_empty() {
                assert!(
                    images[0] == images[1] && images[1] == images[2],
                    "{bname} {block}/{stride}: file images differ across routings"
                );
            }
            if bname == "dafs" && stride / block >= 16 {
                for (dir, s, l) in [("read", rd[0], rd[1]), ("write", wr[0], wr[1])] {
                    assert!(
                        l >= SPEEDUP_FLOOR * s,
                        "high-stride {dir}: list {l:.1} MB/s < {SPEEDUP_FLOOR}x sieve {s:.1} MB/s"
                    );
                }
            }
            t.row(vec![
                bname.to_string(),
                format!("{}/{}", human_size(block), human_size(stride)),
                format!("{:.1}", rd[0]),
                format!("{:.1}", rd[1]),
                format!("{:.1}", rd[2]),
                format!("{:.1}", wr[0]),
                format!("{:.1}", wr[1]),
                format!("{:.1}", wr[2]),
            ]);
        }
    }
    t.note("sieve moves the covering extent (gaps included); list ships one vectored request per credit window; range pays per-op overhead on every block");
    t.note(&format!(
        "high-stride dafs rows asserted: list >= {SPEEDUP_FLOOR}x sieve for reads and writes; raw-server images byte-identical across all three routings"
    ));
    t
}

/// Run R-F9 with the default span.
pub fn run() -> Table {
    run_sized(SPAN)
}
