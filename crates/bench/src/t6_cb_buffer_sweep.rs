//! R-T6 — Collective-buffer size sweep (ablation of `cb_buffer_size`).
//!
//! Expected shape: tiny collective buffers mean many sweep phases (more
//! exchange rounds and more, smaller filesystem writes); the curve improves
//! with buffer size and flattens once one phase covers each aggregator's
//! whole file domain.

use mpiio::{write_at_all, Backend, Datatype, Hints, MpiFile, OpenMode, Testbed};

use crate::report::{human_size, mb_per_s, Table};
use crate::testbeds::Cell;

const RANKS: usize = 8;
const BLOCK: u64 = 4 << 10;
const ROUNDS: u64 = 64;

fn run_cb(cb_bytes: u64, pipelined: bool) -> f64 {
    let tb = Testbed::new(Backend::dafs());
    let dur = Cell::new();
    let d = dur.clone();
    tb.run(RANKS, move |ctx, comm, adio| {
        let host = comm.host().clone();
        let mut hints = Hints::default();
        hints.set("romio_cb_write", "enable");
        hints.set("cb_buffer_size", &cb_bytes.to_string());
        hints.set(
            "romio_cb_pipeline",
            if pipelined { "enable" } else { "disable" },
        );
        let f = MpiFile::open(ctx, adio, &host, "/cbsweep", OpenMode::create(), hints).unwrap();
        let el = Datatype::bytes(BLOCK);
        let ft = Datatype::resized(
            &Datatype::hindexed(&[(1, (comm.rank() as u64 * BLOCK) as i64)], &el),
            0,
            comm.size() as u64 * BLOCK,
        );
        f.set_view(0, &el, &ft);
        let src = host.mem.alloc((ROUNDS * BLOCK) as usize);
        comm.barrier(ctx);
        let t0 = ctx.now();
        write_at_all(ctx, comm, &f, 0, src, ROUNDS * BLOCK).unwrap();
        comm.barrier(ctx);
        d.max(ctx.now().since(t0).as_nanos());
    });
    mb_per_s(RANKS as u64 * ROUNDS * BLOCK, dur.get())
}

/// Run R-T6.
pub fn run() -> Table {
    let mut t = Table::new(
        "R-T6: cb_buffer_size sweep (8 ranks, 4 KiB interleave, MB/s)",
        &["cb_buffer_size", "synchronous", "pipelined"],
    );
    for cb in [64u64 << 10, 256 << 10, 1 << 20, 4 << 20] {
        t.row(vec![
            human_size(cb),
            format!("{:.1}", run_cb(cb, false)),
            format!("{:.1}", run_cb(cb, true)),
        ]);
    }
    t.note("expect improvement with buffer size, flattening once one phase covers a file domain");
    t.note("pipelining helps most mid-sweep: many phases to overlap but windows still sizable");
    t
}
