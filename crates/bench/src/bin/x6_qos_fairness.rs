//! Run the multi-tenant QoS fairness experiment:
//! `cargo run -p mpio-dafs-bench --release --bin x6_qos_fairness [-- --smoke]`.
//!
//! `--smoke` shrinks the small-op tenant's op count (40 instead of 200)
//! for quick CI validation; the table shape, both scheduler runs, and the
//! wfq<fifo p99 ordering assertion are the same (only the full run
//! enforces the >=5x p99-improvement bound — smoke quantiles are too
//! coarse to pin a ratio).
fn main() {
    let mut small_ops = mpio_dafs_bench::x6_qos_fairness::DEFAULT_SMALL_OPS;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--smoke" => small_ops = 40,
            other => {
                eprintln!("unknown argument: {other} (supported: --smoke)");
                std::process::exit(2);
            }
        }
    }
    mpio_dafs_bench::x6_qos_fairness::run_with(small_ops).print();
}
