//! Run a single experiment: `cargo run -p mpio-dafs-bench --release --bin f5_direct_threshold`.
fn main() {
    mpio_dafs_bench::f5_direct_threshold::run().print();
}
