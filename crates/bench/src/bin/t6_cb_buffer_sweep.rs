//! Run a single experiment: `cargo run -p mpio-dafs-bench --release --bin t6_cb_buffer_sweep`.
fn main() {
    mpio_dafs_bench::t6_cb_buffer_sweep::run().print();
}
