//! Run a single experiment: `cargo run -p mpio-dafs-bench --release --bin f1_transport_bandwidth`.
fn main() {
    mpio_dafs_bench::f1_transport_bandwidth::run().print();
}
