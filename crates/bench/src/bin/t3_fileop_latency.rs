//! Run a single experiment: `cargo run -p mpio-dafs-bench --release --bin t3_fileop_latency`.
fn main() {
    mpio_dafs_bench::t3_fileop_latency::run().print();
}
