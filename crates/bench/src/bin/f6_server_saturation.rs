//! Run a single experiment: `cargo run -p mpio-dafs-bench --release --bin f6_server_saturation`.
fn main() {
    mpio_dafs_bench::f6_server_saturation::run().print();
}
