//! Run a single experiment: `cargo run -p mpio-dafs-bench --release --bin f2_file_bandwidth`.
fn main() {
    mpio_dafs_bench::f2_file_bandwidth::run().print();
}
