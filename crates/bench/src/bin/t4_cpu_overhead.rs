//! Run a single experiment: `cargo run -p mpio-dafs-bench --release --bin t4_cpu_overhead`.
fn main() {
    mpio_dafs_bench::t4_cpu_overhead::run().print();
}
