//! Run a single experiment: `cargo run -p mpio-dafs-bench --release --bin f4_collective_vs_independent`.
fn main() {
    mpio_dafs_bench::f4_collective_vs_independent::run().print();
}
