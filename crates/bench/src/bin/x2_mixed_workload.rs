//! Run the mixed-workload extension experiment:
//! `cargo run -p mpio-dafs-bench --release --bin x2_mixed_workload`.
fn main() {
    mpio_dafs_bench::x2_mixed_workload::run().print();
}
