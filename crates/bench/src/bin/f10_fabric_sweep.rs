//! Run the switched-fabric incast/oversubscription sweep:
//! `cargo run -p mpio-dafs-bench --release --bin f10_fabric_sweep [-- --smoke]`.
//!
//! `--smoke` runs 4/16 clients against 2 servers (seconds, for CI) instead
//! of the full 64–1024-client × {4,16}-server sweep; the table shape and
//! the ordering/conservation assertions are the same, the plateau/knee
//! assertions only arm at full scale.
fn main() {
    let mut smoke = false;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--smoke" => smoke = true,
            other => {
                eprintln!("unknown argument: {other} (supported: --smoke)");
                std::process::exit(2);
            }
        }
    }
    if smoke {
        mpio_dafs_bench::f10_fabric_sweep::run_smoke().print();
    } else {
        mpio_dafs_bench::f10_fabric_sweep::run().print();
    }
}
