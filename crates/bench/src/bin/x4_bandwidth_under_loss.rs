//! Run the bandwidth-under-loss sweep:
//! `cargo run -p mpio-dafs-bench --release --bin x4_bandwidth_under_loss [-- --fault-seed N]`.
//!
//! The same `--fault-seed` reproduces the same fault timeline — and the
//! same table — bit for bit.
fn main() {
    let mut seed = mpio_dafs_bench::x4_bandwidth_under_loss::DEFAULT_SEED;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--fault-seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--fault-seed takes a u64");
            }
            other => {
                eprintln!("unknown argument: {other} (supported: --fault-seed N)");
                std::process::exit(2);
            }
        }
    }
    mpio_dafs_bench::x4_bandwidth_under_loss::run_with_seed(seed).print();
}
