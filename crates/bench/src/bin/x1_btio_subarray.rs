//! Run the BT-IO extension experiment:
//! `cargo run -p mpio-dafs-bench --release --bin x1_btio_subarray`.
fn main() {
    mpio_dafs_bench::x1_btio_subarray::run().print();
}
