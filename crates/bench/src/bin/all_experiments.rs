//! Run every reconstructed experiment and print all tables.
//! `cargo run -p mpio-dafs-bench --release --bin all_experiments`
//!
//! Set `MPIO_DAFS_JSON=<path>` to also write the results as JSON lines
//! (one object per experiment) for downstream plotting.
use std::io::Write;

fn main() {
    let json_path = std::env::var("MPIO_DAFS_JSON").ok();
    let mut json = json_path
        .as_deref()
        .map(|p| std::fs::File::create(p).expect("create JSON output"));
    for (_id, run) in mpio_dafs_bench::all_experiments() {
        let (mut table, wall_note) = mpio_dafs_bench::run_timed(run);
        // JSON first: the wall-clock note stays out of the JSON stream
        // (one object per line — it would exclude the whole table from
        // the byte-identity comparison instead of just its own line).
        if let Some(f) = json.as_mut() {
            writeln!(f, "{}", table.to_json()).expect("write JSON line");
        }
        table.note(&wall_note);
        table.print();
    }
    if let Some(p) = json_path {
        eprintln!("wrote JSON lines to {p}");
    }
}
