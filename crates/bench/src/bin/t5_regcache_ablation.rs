//! Run a single experiment: `cargo run -p mpio-dafs-bench --release --bin t5_regcache_ablation`.
fn main() {
    mpio_dafs_bench::t5_regcache_ablation::run().print();
}
