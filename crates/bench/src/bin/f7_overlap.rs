//! Run the overlapped two-phase sweep comparison:
//! `cargo run -p mpio-dafs-bench --release --bin f7_overlap [-- --smoke]`.
//!
//! `--smoke` shrinks the sweep (16 rounds, 16 KiB collective buffer) for
//! quick CI validation; the table shape and the pipelined-vs-synchronous
//! comparison are the same.
fn main() {
    let mut smoke = false;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--smoke" => smoke = true,
            other => {
                eprintln!("unknown argument: {other} (supported: --smoke)");
                std::process::exit(2);
            }
        }
    }
    let table = if smoke {
        mpio_dafs_bench::f7_overlap::run_sized(16, 16 << 10)
    } else {
        mpio_dafs_bench::f7_overlap::run()
    };
    table.print();
}
