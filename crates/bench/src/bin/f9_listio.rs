//! Run the list-I/O vs data-sieving comparison:
//! `cargo run -p mpio-dafs-bench --release --bin f9_listio [-- --smoke]`.
//!
//! `--smoke` shrinks the swept span (2 MiB instead of 8 MiB) for quick CI
//! validation; the table shape, the list-over-sieve speedup assertion, and
//! the cross-routing image identity check are the same.
fn main() {
    let mut smoke = false;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--smoke" => smoke = true,
            other => {
                eprintln!("unknown argument: {other} (supported: --smoke)");
                std::process::exit(2);
            }
        }
    }
    let span = if smoke { 2 << 20 } else { 8 << 20 };
    mpio_dafs_bench::f9_listio::run_sized(span).print();
}
