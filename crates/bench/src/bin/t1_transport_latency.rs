//! Run a single experiment: `cargo run -p mpio-dafs-bench --release --bin t1_transport_latency`.
fn main() {
    mpio_dafs_bench::t1_transport_latency::run().print();
}
