//! Run the striped server-scaling sweep:
//! `cargo run -p mpio-dafs-bench --release --bin f8_server_scaling [-- --smoke] [-- --fault-seed N]`.
//!
//! `--smoke` shrinks the per-client transfer (1 MiB instead of 4 MiB) for
//! quick CI validation; the table shape, the monotone-scaling assertion,
//! and the raw-vs-striped identity check are the same.
fn main() {
    let mut smoke = false;
    let mut seed = mpio_dafs_bench::f8_server_scaling::DEFAULT_SEED;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--fault-seed" => {
                let v = args.next().unwrap_or_default();
                seed = v
                    .parse()
                    .or_else(|_| u64::from_str_radix(v.trim_start_matches("0x"), 16))
                    .unwrap_or_else(|_| {
                        eprintln!("bad --fault-seed value: {v}");
                        std::process::exit(2);
                    });
            }
            other => {
                eprintln!("unknown argument: {other} (supported: --smoke, --fault-seed N)");
                std::process::exit(2);
            }
        }
    }
    let per_client = if smoke { 1 << 20 } else { 4 << 20 };
    mpio_dafs_bench::f8_server_scaling::run_sized(per_client, seed).print();
}
