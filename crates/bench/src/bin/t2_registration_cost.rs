//! Run a single experiment: `cargo run -p mpio-dafs-bench --release --bin t2_registration_cost`.
fn main() {
    mpio_dafs_bench::t2_registration_cost::run().print();
}
