//! Run the small-op/re-read client-cache sweep:
//! `cargo run -p mpio-dafs-bench --release --bin x5_small_op_cache [-- --smoke] [-- --fault-seed N]`.
//!
//! `--smoke` shrinks the timed passes (2 instead of 8) and the striped
//! scale-out ladder (16 clients instead of 64–256) for quick CI
//! validation; the table shape, the cached>=2x-uncached assertion, the
//! flush-coalescing and recall-storm rows, and the degraded-row fault
//! plan are the same. The same `--fault-seed` reproduces the same
//! degraded row bit for bit.
fn main() {
    let mut rounds = mpio_dafs_bench::x5_small_op_cache::DEFAULT_ROUNDS;
    let mut seed = mpio_dafs_bench::x5_small_op_cache::DEFAULT_SEED;
    let mut scale: &[usize] = &mpio_dafs_bench::x5_small_op_cache::SCALE_CLIENTS;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => {
                rounds = 2;
                scale = &mpio_dafs_bench::x5_small_op_cache::SMOKE_SCALE_CLIENTS;
            }
            "--fault-seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--fault-seed takes a u64");
            }
            other => {
                eprintln!("unknown argument: {other} (supported: --smoke, --fault-seed N)");
                std::process::exit(2);
            }
        }
    }
    mpio_dafs_bench::x5_small_op_cache::run_with(rounds, seed, scale).print();
}
