//! Run the latency-sensitivity ablation:
//! `cargo run -p mpio-dafs-bench --release --bin x3_latency_sensitivity`.
fn main() {
    mpio_dafs_bench::x3_latency_sensitivity::run().print();
}
