//! Raw DES kernel dispatch-speed microbenchmark:
//! `cargo run -p mpio-dafs-bench --release --bin kernel_speed [-- --smoke] [-- --floor N]`.
//!
//! `--smoke` runs seconds-scale sizes (for CI). `--floor N` exits nonzero
//! if any workload dispatches fewer than `N` events per wall-clock second —
//! the CI regression gate against the simulator itself getting slow.
use mpio_dafs_bench::kernel_speed;

fn main() {
    let mut smoke = false;
    let mut floor: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--floor" => {
                let v = args.next().unwrap_or_default();
                floor = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("--floor needs a number, got {v:?}");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument: {other} (supported: --smoke, --floor N)");
                std::process::exit(2);
            }
        }
    }
    let runs = if smoke {
        kernel_speed::run_smoke()
    } else {
        kernel_speed::measure(200_000, 64, 2_000, 256, 1_000)
    };
    kernel_speed::table_from(&runs).print();
    if let Some(f) = floor {
        for r in &runs {
            let eps = r.events_per_sec();
            if eps < f {
                eprintln!(
                    "FLOOR VIOLATION: {} ran at {eps:.0} events/s < floor {f:.0}",
                    r.label
                );
                std::process::exit(1);
            }
        }
        println!("floor ok: all workloads >= {f:.0} events/s");
    }
}
