//! Run a single experiment: `cargo run -p mpio-dafs-bench --release --bin f3_mpiio_scaling`.
fn main() {
    mpio_dafs_bench::f3_mpiio_scaling::run().print();
}
