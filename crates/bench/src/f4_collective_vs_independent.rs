//! R-F4 — Collective vs independent MPI-IO for noncontiguous
//! (rank-interleaved, BTIO-like) access.
//!
//! Expected shape: for fine-grained interleaving, two-phase collective I/O
//! (few large contiguous transfers + interconnect exchange) beats
//! independent data-sieving (RMW windows) which in turn beats the naive
//! per-range path (one request per tiny block).

use mpiio::{write_at_all, Backend, Datatype, Hints, JobReport, MpiFile, OpenMode, Testbed};

use crate::report::{layer_breakdown, mb_per_s, Table};
use crate::testbeds::Cell;

const BLOCK: u64 = 512; // fine-grained interleave: per-op costs dominate
const ROUNDS: u64 = 256;

/// Access-method variants under test.
#[derive(Clone, Copy)]
enum Method {
    /// Two-phase collective buffering.
    TwoPhase,
    /// Independent with data sieving (locked read-modify-write windows).
    Sieving,
    /// Independent with the driver's pipelined batch path.
    Batched,
    /// Pre-batching naive independent: one synchronous request per block.
    Naive,
}

/// Virtual ns to write the interleaved pattern with the given strategy,
/// plus the job's accounting report (metrics snapshot included).
fn run_pattern(ranks: usize, method: Method) -> (u64, JobReport) {
    let tb = Testbed::new(Backend::dafs());
    let dur = Cell::new();
    let d = dur.clone();
    let report = tb.run(ranks, move |ctx, comm, adio| {
        let host = comm.host().clone();
        let mut hints = Hints::default();
        match method {
            Method::TwoPhase => {
                hints.set("romio_cb_write", "enable");
            }
            Method::Sieving => {
                hints.set("romio_cb_write", "disable");
                hints.set("romio_ds_write", "enable");
            }
            Method::Batched | Method::Naive => {
                hints.set("romio_cb_write", "disable");
                hints.set("romio_ds_write", "disable");
            }
        }
        let f = MpiFile::open(ctx, adio, &host, "/ncontig", OpenMode::create(), hints).unwrap();
        let el = Datatype::bytes(BLOCK);
        let ft = Datatype::resized(
            &Datatype::hindexed(&[(1, (comm.rank() as u64 * BLOCK) as i64)], &el),
            0,
            comm.size() as u64 * BLOCK,
        );
        f.set_view(0, &el, &ft);
        let src = host.mem.alloc((ROUNDS * BLOCK) as usize);
        host.mem
            .fill(src, (ROUNDS * BLOCK) as usize, comm.rank() as u8 + 1);
        comm.barrier(ctx);
        let t0 = ctx.now();
        match method {
            Method::Naive => {
                // One synchronous request per block: the pre-batch-I/O
                // independent path of the era.
                for round in 0..ROUNDS {
                    f.write_at(ctx, round, src.offset(round * BLOCK), BLOCK)
                        .unwrap();
                }
                comm.barrier(ctx);
            }
            _ => {
                write_at_all(ctx, comm, &f, 0, src, ROUNDS * BLOCK).unwrap();
                comm.barrier(ctx);
            }
        }
        d.max(ctx.now().since(t0).as_nanos());
    });
    (dur.get(), report)
}

/// Run R-F4.
pub fn run() -> Table {
    let mut t = Table::new(
        "R-F4: collective vs independent write, 512 B interleave (aggregate MB/s)",
        &[
            "ranks",
            "two-phase",
            "indep batched",
            "indep sieved",
            "indep naive",
        ],
    );
    let mut last_twophase: Option<JobReport> = None;
    for ranks in [4usize, 8, 16] {
        let total = ranks as u64 * ROUNDS * BLOCK;
        let (two_phase, tp_report) = run_pattern(ranks, Method::TwoPhase);
        let (batched, _) = run_pattern(ranks, Method::Batched);
        let (sieving, _) = run_pattern(ranks, Method::Sieving);
        let (naive, _) = run_pattern(ranks, Method::Naive);
        last_twophase = Some(tp_report);
        t.row(vec![
            ranks.to_string(),
            format!("{:.1}", mb_per_s(total, two_phase)),
            format!("{:.1}", mb_per_s(total, batched)),
            format!("{:.1}", mb_per_s(total, sieving)),
            format!("{:.1}", mb_per_s(total, naive)),
        ]);
    }
    t.note("expect two-phase >> sieved/naive; at this grain the server pays per-op cost per 512B block");
    t.note(
        "sieved writes pay locked read-modify-write windows; naive pays one round trip per block",
    );
    t.note("DAFS batch pipelining hides client latency but not the server per-op work");
    // With MPIO_DAFS_TRACE set, split the 16-rank two-phase run into
    // aggregation / exchange / I/O / barrier-wait virtual time.
    if let Some(report) = last_twophase.filter(|r| r.traced) {
        t.push_extra(layer_breakdown(
            "R-F4a: two-phase per-layer time breakdown (16 ranks)",
            &report.snapshot,
        ));
    }
    t
}
