//! Table formatting for the experiment harness.

use obs::json;
use obs::Snapshot;

/// A rendered experiment result.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment title (includes the R-Tn/R-Fn id).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (stringified cells).
    pub rows: Vec<Vec<String>>,
    /// Expected-shape notes shown under the table.
    pub notes: Vec<String>,
    /// Follow-on tables (per-layer breakdowns), printed after the main one.
    /// Experiments attach these only when tracing is enabled, so default
    /// output is unchanged.
    pub extras: Vec<Table>,
}

impl Table {
    /// Start a table.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
            extras: Vec::new(),
        }
    }

    /// Attach a follow-on table rendered after this one.
    pub fn push_extra(&mut self, t: Table) {
        self.extras.push(t);
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Append an expected-shape note.
    pub fn note(&mut self, n: &str) {
        self.notes.push(n.to_string());
    }

    /// Render to a string (fixed-width columns).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        for extra in &self.extras {
            out.push_str(&extra.render());
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Serialize to one JSON object (headers, rows, notes).
    pub fn to_json(&self) -> String {
        let quoted =
            |cells: &[String]| -> Vec<String> { cells.iter().map(|c| json::quote(c)).collect() };
        let mut out = String::with_capacity(256);
        out.push_str("{\"title\":");
        json::push_str(&mut out, &self.title);
        out.push_str(",\"headers\":");
        json::push_array(&mut out, &quoted(&self.headers));
        out.push_str(",\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_array(&mut out, &quoted(row));
        }
        out.push_str("],\"notes\":");
        json::push_array(&mut out, &quoted(&self.notes));
        if !self.extras.is_empty() {
            out.push_str(",\"extras\":");
            let rendered: Vec<String> = self.extras.iter().map(|t| t.to_json()).collect();
            json::push_array(&mut out, &rendered);
        }
        out.push('}');
        out
    }
}

/// Build a per-layer virtual-time breakdown table from a metrics snapshot.
///
/// Every counter named `{layer}.{op}_ns` is an accumulated span (see
/// `ActorCtx::span`); this groups them by the layer prefix and reports each
/// op's total time and call count, so an experiment can show *where* virtual
/// time went (e.g. `mpiio.twophase.exchange_ns` vs `via.rdma` vs `nfs.rpc`).
pub fn layer_breakdown(title: &str, snap: &Snapshot) -> Table {
    let mut t = Table::new(title, &["layer", "op", "total_ms", "calls", "avg_us"]);
    for e in &snap.entries {
        let Some(op_ns) = e.name.strip_suffix("_ns") else {
            continue;
        };
        let Some((layer, op)) = op_ns.split_once('.') else {
            continue;
        };
        let total = e.value();
        let calls = snap
            .get(&format!("{op_ns}.calls"))
            .map(|c| c.value())
            .unwrap_or(0);
        let avg_us = if calls > 0 {
            total as f64 / calls as f64 / 1e3
        } else {
            0.0
        };
        t.row(vec![
            layer.to_string(),
            op.to_string(),
            format!("{:.3}", total as f64 / 1e6),
            calls.to_string(),
            format!("{avg_us:.1}"),
        ]);
    }
    t.note(&format!("snapshot at t={} ns", snap.t_ns));
    t
}

/// MB/s (decimal) from bytes moved in `ns` virtual nanoseconds.
pub fn mb_per_s(bytes: u64, ns: u64) -> f64 {
    if ns == 0 {
        return f64::INFINITY;
    }
    bytes as f64 / (ns as f64 / 1e9) / 1e6
}

/// Render a byte count compactly ("4K", "1M").
pub fn human_size(bytes: u64) -> String {
    if bytes >= 1 << 20 && bytes.is_multiple_of(1 << 20) {
        format!("{}M", bytes >> 20)
    } else if bytes >= 1 << 10 && bytes.is_multiple_of(1 << 10) {
        format!("{}K", bytes >> 10)
    } else {
        format!("{bytes}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_aligned() {
        let mut t = Table::new("R-T0: demo", &["size", "value"]);
        t.row(vec!["8".into(), "1.5".into()]);
        t.row(vec!["1024".into(), "123.4".into()]);
        t.note("values rise");
        let s = t.render();
        assert!(s.contains("R-T0"));
        assert!(s.contains("note: values rise"));
        // Columns right-aligned to the widest cell.
        assert!(s.contains("   8"));
    }

    #[test]
    fn json_shape_is_exact() {
        let mut t = Table::new("R-X: json", &["a", "b"]);
        t.row(vec!["1".into(), "2\"q".into()]);
        t.note("n");
        assert_eq!(
            t.to_json(),
            r#"{"title":"R-X: json","headers":["a","b"],"rows":[["1","2\"q"]],"notes":["n"]}"#
        );
    }

    #[test]
    fn breakdown_groups_span_counters() {
        let r = obs::Registry::new();
        r.counter("mpiio.twophase.exchange_ns").add(2_000_000);
        r.counter("mpiio.twophase.exchange.calls").add(4);
        r.counter("via.rdma.bytes").add(999); // not a span: ignored
        let t = layer_breakdown("X: breakdown", &r.snapshot(77));
        assert_eq!(t.rows.len(), 1);
        assert_eq!(t.rows[0][0], "mpiio");
        assert_eq!(t.rows[0][1], "twophase.exchange");
        assert_eq!(t.rows[0][2], "2.000");
        assert_eq!(t.rows[0][3], "4");
        assert!(t.notes[0].contains("t=77"));
    }

    #[test]
    fn helpers() {
        assert_eq!(human_size(4096), "4K");
        assert_eq!(human_size(1 << 21), "2M");
        assert_eq!(human_size(100), "100");
        assert!((mb_per_s(1_000_000, 1_000_000_000) - 1.0).abs() < 1e-9);
    }
}
