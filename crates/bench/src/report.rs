//! Table formatting for the experiment harness.

use serde::Serialize;

/// A rendered experiment result.
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    /// Experiment title (includes the R-Tn/R-Fn id).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (stringified cells).
    pub rows: Vec<Vec<String>>,
    /// Expected-shape notes shown under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Start a table.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Append an expected-shape note.
    pub fn note(&mut self, n: &str) {
        self.notes.push(n.to_string());
    }

    /// Render to a string (fixed-width columns).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Serialize to one JSON object (headers, rows, notes).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("table serializes")
    }
}

/// MB/s (decimal) from bytes moved in `ns` virtual nanoseconds.
pub fn mb_per_s(bytes: u64, ns: u64) -> f64 {
    if ns == 0 {
        return f64::INFINITY;
    }
    bytes as f64 / (ns as f64 / 1e9) / 1e6
}

/// Render a byte count compactly ("4K", "1M").
pub fn human_size(bytes: u64) -> String {
    if bytes >= 1 << 20 && bytes.is_multiple_of(1 << 20) {
        format!("{}M", bytes >> 20)
    } else if bytes >= 1 << 10 && bytes.is_multiple_of(1 << 10) {
        format!("{}K", bytes >> 10)
    } else {
        format!("{bytes}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_aligned() {
        let mut t = Table::new("R-T0: demo", &["size", "value"]);
        t.row(vec!["8".into(), "1.5".into()]);
        t.row(vec!["1024".into(), "123.4".into()]);
        t.note("values rise");
        let s = t.render();
        assert!(s.contains("R-T0"));
        assert!(s.contains("note: values rise"));
        // Columns right-aligned to the widest cell.
        assert!(s.contains("   8"));
    }

    #[test]
    fn json_roundtrips_structure() {
        let mut t = Table::new("R-X: json", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.note("n");
        let j = t.to_json();
        let v: serde_json::Value = serde_json::from_str(&j).unwrap();
        assert_eq!(v["title"], "R-X: json");
        assert_eq!(v["rows"][0][1], "2");
        assert_eq!(v["notes"][0], "n");
    }

    #[test]
    fn helpers() {
        assert_eq!(human_size(4096), "4K");
        assert_eq!(human_size(1 << 21), "2M");
        assert_eq!(human_size(100), "100");
        assert!((mb_per_s(1_000_000, 1_000_000_000) - 1.0).abs() < 1e-9);
    }
}
