//! Shared experiment fixtures: protocol-level client/server pairs and
//! simple measurement helpers used by several experiments.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dafs::{DafsClient, DafsClientConfig, DafsServerCost, DafsServerHandle};
use memfs::MemFs;
use nfsv3::{NfsClient, NfsClientConfig, NfsServerCost, NfsServerHandle};
use simnet::obs::{Obs, Snapshot};
use simnet::topo::Topology;
use simnet::{ActorCtx, Cluster, FaultPlan, Host, HostId, SimKernel, SimTime};
use tcpnet::{TcpCost, TcpFabric};
use via::{ViaCost, ViaFabric, ViaNic};

/// The well-known service port used by all experiments.
pub const PORT: u16 = 2049;

/// The observability side of a completed testbed run: the kernel's [`Obs`]
/// handle plus the virtual end time, so experiments can snapshot the
/// registry and (when `MPIO_DAFS_TRACE` is set) render per-layer breakdown
/// tables.
pub struct RunObs {
    /// The kernel's observability handle.
    pub obs: Obs,
    /// Virtual time when the run completed.
    pub end: SimTime,
}

impl RunObs {
    /// Whether trace output was enabled for the run.
    pub fn traced(&self) -> bool {
        self.obs.enabled()
    }

    /// The metrics registry frozen at the end of the run.
    pub fn snapshot(&self) -> Snapshot {
        self.obs.snapshot(self.end.as_nanos())
    }
}

/// A shared cell for extracting one u64 measurement from an actor.
#[derive(Clone, Default)]
pub struct Cell(Arc<AtomicU64>);

impl Cell {
    /// Fresh cell.
    pub fn new() -> Cell {
        Cell::default()
    }

    /// Store a value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Monotone max-update.
    pub fn max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Read the value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Run one client actor against a fresh DAFS server; returns after the
/// simulation completes.
pub fn with_dafs_client<F>(
    via_cost: ViaCost,
    server_cost: DafsServerCost,
    client_cfg: DafsClientConfig,
    prefill: impl FnOnce(&MemFs),
    body: F,
) -> (MemFs, DafsServerHandle, Host, RunObs)
where
    F: FnOnce(&ActorCtx, &DafsClient, &ViaNic) + Send + 'static,
{
    with_dafs_client_faults(via_cost, server_cost, client_cfg, None, prefill, body)
}

/// [`with_dafs_client`] with an optional seeded [`FaultPlan`] installed on
/// the VIA fabric before the server spawns, so every message (including the
/// session handshake) is judged against it.
pub fn with_dafs_client_faults<F>(
    via_cost: ViaCost,
    server_cost: DafsServerCost,
    client_cfg: DafsClientConfig,
    plan: Option<FaultPlan>,
    prefill: impl FnOnce(&MemFs),
    body: F,
) -> (MemFs, DafsServerHandle, Host, RunObs)
where
    F: FnOnce(&ActorCtx, &DafsClient, &ViaNic) + Send + 'static,
{
    let kernel = SimKernel::new();
    let cluster = Cluster::new();
    let fabric = ViaFabric::new(via_cost);
    if let Some(p) = plan {
        fabric.set_fault_plan(p);
    }
    let server_nic = fabric.open_nic(cluster.add_host("server0"));
    let fs = MemFs::new();
    prefill(&fs);
    let server =
        dafs::spawn_dafs_server(&kernel, &fabric, server_nic, fs.clone(), PORT, server_cost);
    let client_host = cluster.add_host("client0");
    let ch = client_host.clone();
    let sid = server.host.id;
    kernel.spawn("client", move |ctx| {
        let nic = fabric.open_nic(ch.clone());
        let c = DafsClient::connect(ctx, &fabric, &nic, sid, PORT, client_cfg).unwrap();
        body(ctx, &c, &nic);
        c.disconnect(ctx);
    });
    let obs = kernel.obs().clone();
    let end = kernel.run();
    (fs, server, client_host, RunObs { obs, end })
}

/// Run `clients` client actors against `servers` fresh DAFS servers, each
/// exporting its own [`MemFs`] — the striped-topology fixture for the
/// server-scaling experiments. Server hosts are created first, so their
/// [`simnet::HostId`]s are `0..servers` and client hosts follow at
/// `servers..servers+clients`; a [`FaultPlan`] can therefore target one
/// server's links by id. Each client actor connects one session per server
/// (in server order) before `body` runs and disconnects them all after.
#[allow(clippy::too_many_arguments)]
pub fn with_dafs_cluster<F>(
    servers: usize,
    clients: usize,
    via_cost: ViaCost,
    server_cost: DafsServerCost,
    client_cfg: DafsClientConfig,
    plan: Option<FaultPlan>,
    prefill: impl FnOnce(&[MemFs]),
    body: F,
) -> (Vec<MemFs>, RunObs)
where
    F: Fn(&ActorCtx, usize, &[Arc<DafsClient>], &ViaNic) + Send + Sync + 'static,
{
    let kernel = SimKernel::new();
    let cluster = Cluster::new();
    let fabric = Arc::new(ViaFabric::new(via_cost));
    if let Some(p) = plan {
        fabric.set_fault_plan(p);
    }
    let mut fss = Vec::new();
    let mut sids = Vec::new();
    for s in 0..servers {
        let nic = fabric.open_nic(cluster.add_host(&format!("server{s}")));
        let fs = MemFs::new();
        fss.push(fs.clone());
        let h = dafs::spawn_dafs_server(&kernel, &fabric, nic, fs, PORT, server_cost);
        sids.push(h.host.id);
    }
    prefill(&fss);
    let body = Arc::new(body);
    for i in 0..clients {
        let fabric = fabric.clone();
        let host = cluster.add_host(&format!("client{i}"));
        let sids = sids.clone();
        let body = body.clone();
        kernel.spawn(&format!("client{i}"), move |ctx| {
            let nic = fabric.open_nic(host.clone());
            let cs: Vec<Arc<DafsClient>> = sids
                .iter()
                .map(|&sid| {
                    Arc::new(
                        DafsClient::connect(ctx, &fabric, &nic, sid, PORT, client_cfg).unwrap(),
                    )
                })
                .collect();
            body(ctx, i, &cs, &nic);
            for c in &cs {
                c.disconnect(ctx);
            }
        });
    }
    let obs = kernel.obs().clone();
    let end = kernel.run();
    (fss, RunObs { obs, end })
}

/// Run `clients` client actors against `servers` DAFS servers **behind a
/// switched fabric**, one session per client: client `i` shards onto
/// server `i % servers`, so a 1024-client sweep stays at one session per
/// client instead of `clients × servers`. Construction order matters:
/// server hosts first (ids `0..servers`), then `topo` builds the topology
/// (allocating its switch pseudo-hosts), then client hosts follow and ride
/// the topology's default attachment. An optional [`FaultPlan`] is
/// installed alongside, so rail-down windows can target the pseudo-hosts.
#[allow(clippy::too_many_arguments)]
pub fn with_sharded_dafs_fabric<F>(
    servers: usize,
    clients: usize,
    via_cost: ViaCost,
    server_cost: DafsServerCost,
    client_cfg: DafsClientConfig,
    plan: Option<FaultPlan>,
    topo: impl FnOnce(&Cluster, &[HostId]) -> Topology,
    prefill: impl FnOnce(&[MemFs]),
    body: F,
) -> (Vec<MemFs>, Arc<Topology>, RunObs)
where
    F: Fn(&ActorCtx, usize, &DafsClient, &ViaNic) + Send + Sync + 'static,
{
    let kernel = SimKernel::new();
    let cluster = Cluster::new();
    let fabric = Arc::new(ViaFabric::new(via_cost));
    let mut fss = Vec::new();
    let mut sids = Vec::new();
    for s in 0..servers {
        let nic = fabric.open_nic(cluster.add_host(&format!("server{s}")));
        let fs = MemFs::new();
        fss.push(fs.clone());
        let h = dafs::spawn_dafs_server(&kernel, &fabric, nic, fs, PORT, server_cost);
        sids.push(h.host.id);
    }
    let topology = Arc::new(topo(&cluster, &sids));
    fabric.set_topology(topology.clone());
    if let Some(p) = plan {
        fabric.set_fault_plan(p);
    }
    prefill(&fss);
    let body = Arc::new(body);
    for i in 0..clients {
        let fabric = fabric.clone();
        let host = cluster.add_host(&format!("client{i}"));
        let sid = sids[i % servers.max(1)];
        let body = body.clone();
        kernel.spawn(&format!("client{i}"), move |ctx| {
            let nic = fabric.open_nic(host.clone());
            let c = DafsClient::connect(ctx, &fabric, &nic, sid, PORT, client_cfg).unwrap();
            body(ctx, i, &c, &nic);
            c.disconnect(ctx);
        });
    }
    let obs = kernel.obs().clone();
    let end = kernel.run();
    topology.publish_metrics(obs.registry());
    (fss, topology, RunObs { obs, end })
}

/// Run `clients` client actors against `servers` DAFS servers behind a
/// switched fabric, **one session per client per server** — the striped
/// scale-out fixture: [`with_sharded_dafs_fabric`]'s topology with
/// [`with_dafs_cluster`]'s session shape, so every client can assemble a
/// [`dafs::DafsStripedFile`] over the whole server set while its frames
/// ride the switch's shared egress queues. Construction order matches the
/// sharded fixture: server hosts first (ids `0..servers`), then `topo`
/// builds the topology (allocating its switch pseudo-hosts), then client
/// hosts follow and ride the topology's default attachment.
#[allow(clippy::too_many_arguments)]
pub fn with_striped_dafs_fabric<F>(
    servers: usize,
    clients: usize,
    via_cost: ViaCost,
    server_cost: DafsServerCost,
    client_cfg: DafsClientConfig,
    plan: Option<FaultPlan>,
    topo: impl FnOnce(&Cluster, &[HostId]) -> Topology,
    prefill: impl FnOnce(&[MemFs]),
    body: F,
) -> (Vec<MemFs>, Arc<Topology>, RunObs)
where
    F: Fn(&ActorCtx, usize, &[Arc<DafsClient>], &ViaNic) + Send + Sync + 'static,
{
    let kernel = SimKernel::new();
    let cluster = Cluster::new();
    let fabric = Arc::new(ViaFabric::new(via_cost));
    let mut fss = Vec::new();
    let mut sids = Vec::new();
    for s in 0..servers {
        let nic = fabric.open_nic(cluster.add_host(&format!("server{s}")));
        let fs = MemFs::new();
        fss.push(fs.clone());
        let h = dafs::spawn_dafs_server(&kernel, &fabric, nic, fs, PORT, server_cost);
        sids.push(h.host.id);
    }
    let topology = Arc::new(topo(&cluster, &sids));
    fabric.set_topology(topology.clone());
    if let Some(p) = plan {
        fabric.set_fault_plan(p);
    }
    prefill(&fss);
    let body = Arc::new(body);
    for i in 0..clients {
        let fabric = fabric.clone();
        let host = cluster.add_host(&format!("client{i}"));
        let sids = sids.clone();
        let body = body.clone();
        kernel.spawn(&format!("client{i}"), move |ctx| {
            let nic = fabric.open_nic(host.clone());
            let cs: Vec<Arc<DafsClient>> = sids
                .iter()
                .map(|&sid| {
                    Arc::new(
                        DafsClient::connect(ctx, &fabric, &nic, sid, PORT, client_cfg).unwrap(),
                    )
                })
                .collect();
            body(ctx, i, &cs, &nic);
            for c in &cs {
                c.disconnect(ctx);
            }
        });
    }
    let obs = kernel.obs().clone();
    let end = kernel.run();
    topology.publish_metrics(obs.registry());
    (fss, topology, RunObs { obs, end })
}

/// Run one client actor against a fresh NFS server.
pub fn with_nfs_client<F>(
    tcp_cost: TcpCost,
    server_cost: NfsServerCost,
    client_cfg: NfsClientConfig,
    prefill: impl FnOnce(&MemFs),
    body: F,
) -> (MemFs, NfsServerHandle, Host, TcpFabric, RunObs)
where
    F: FnOnce(&ActorCtx, &NfsClient) + Send + 'static,
{
    with_nfs_client_faults(tcp_cost, server_cost, client_cfg, None, prefill, body)
}

/// [`with_nfs_client`] with an optional seeded [`FaultPlan`] installed on
/// the TCP fabric before the server spawns. A present plan also arms the
/// client's RPC retransmission machinery at mount time.
pub fn with_nfs_client_faults<F>(
    tcp_cost: TcpCost,
    server_cost: NfsServerCost,
    client_cfg: NfsClientConfig,
    plan: Option<FaultPlan>,
    prefill: impl FnOnce(&MemFs),
    body: F,
) -> (MemFs, NfsServerHandle, Host, TcpFabric, RunObs)
where
    F: FnOnce(&ActorCtx, &NfsClient) + Send + 'static,
{
    let kernel = SimKernel::new();
    let cluster = Cluster::new();
    let fabric = TcpFabric::new(tcp_cost);
    if let Some(p) = plan {
        fabric.set_fault_plan(p);
    }
    let server_host = cluster.add_host("server0");
    let fs = MemFs::new();
    prefill(&fs);
    let server =
        nfsv3::spawn_nfs_server(&kernel, &fabric, server_host, fs.clone(), PORT, server_cost);
    let client_host = cluster.add_host("client0");
    let ch = client_host.clone();
    let sid = server.host.id;
    let f2 = fabric.clone();
    kernel.spawn("client", move |ctx| {
        let c = NfsClient::mount(ctx, &f2, &ch, sid, PORT, client_cfg).unwrap();
        body(ctx, &c);
        c.unmount(ctx);
    });
    let obs = kernel.obs().clone();
    let end = kernel.run();
    (fs, server, client_host, fabric, RunObs { obs, end })
}
