//! R-T5 — Registration-cache ablation at the MPI-IO level.
//!
//! Expected shape: with the cache disabled, every direct transfer pays the
//! full pin/unpin cycle (tens of microseconds plus per-page work) and the
//! large-transfer throughput sags measurably; with it enabled the cost is
//! paid once per buffer.

use dafs::DafsClientConfig;
use mpiio::{Backend, Hints, MpiFile, OpenMode, Testbed};
use via::ViaCost;

use crate::report::{mb_per_s, Table};
use crate::testbeds::Cell;

const REQ: u64 = 1 << 20;
const COUNT: u64 = 64;

fn run_case(use_regcache: bool) -> (f64, u64) {
    let backend = Backend::Dafs {
        via: ViaCost::default(),
        server: Default::default(),
        client: DafsClientConfig {
            use_regcache,
            ..Default::default()
        },
    };
    let tb = Testbed::new(backend);
    // Pre-create the file content.
    let f = tb.fs.create(memfs::ROOT_ID, "big").unwrap();
    tb.fs.write(f.id, 0, &vec![1u8; REQ as usize]).unwrap();
    let dur = Cell::new();
    let cpu = Cell::new();
    let (d, c) = (dur.clone(), cpu.clone());
    tb.run(1, move |ctx, comm, adio| {
        let host = comm.host().clone();
        let f = MpiFile::open(ctx, adio, &host, "/big", OpenMode::open(), Hints::default())
            .unwrap();
        let buf = host.mem.alloc(REQ as usize);
        let t0 = ctx.now();
        for _ in 0..COUNT {
            f.read_at(ctx, 0, buf, REQ).unwrap();
        }
        d.set(ctx.now().since(t0).as_nanos());
        c.set(comm.host().cpu.busy().as_nanos());
    });
    (mb_per_s(REQ * COUNT, dur.get()), cpu.get())
}

/// Run R-T5.
pub fn run() -> Table {
    let mut t = Table::new(
        "R-T5: registration-cache ablation (64 x 1 MiB direct reads)",
        &["regcache", "throughput MB/s", "client CPU (ms)"],
    );
    let (on_bw, on_cpu) = run_case(true);
    let (off_bw, off_cpu) = run_case(false);
    t.row(vec![
        "on".into(),
        format!("{on_bw:.1}"),
        format!("{:.2}", on_cpu as f64 / 1e6),
    ]);
    t.row(vec![
        "off".into(),
        format!("{off_bw:.1}"),
        format!("{:.2}", off_cpu as f64 / 1e6),
    ]);
    t.note(&format!(
        "cache saves {:.1}% client CPU and {:.1}% throughput on this workload",
        100.0 * (1.0 - on_cpu as f64 / off_cpu as f64),
        100.0 * (on_bw / off_bw - 1.0)
    ));
    t
}

use memfs;
