//! R-T5 — Registration-cache ablation at the MPI-IO level.
//!
//! Expected shape: with the cache disabled, every direct transfer pays the
//! full pin/unpin cycle (tens of microseconds plus per-page work) and the
//! large-transfer throughput sags measurably; with it enabled the cost is
//! paid once per buffer.

use dafs::{DafsClientConfig, DafsServerCost};
use mpiio::{Backend, Hints, MpiFile, OpenMode, Testbed};
use via::ViaCost;

use crate::report::{mb_per_s, Table};
use crate::testbeds::{with_dafs_client, Cell};

const REQ: u64 = 1 << 20;
const COUNT: u64 = 64;

fn run_case(use_regcache: bool) -> (f64, u64) {
    let backend = Backend::Dafs {
        via: ViaCost::default(),
        server: Default::default(),
        client: DafsClientConfig {
            use_regcache,
            ..Default::default()
        },
    };
    let tb = Testbed::new(backend);
    // Pre-create the file content.
    let f = tb.fs.create(memfs::ROOT_ID, "big").unwrap();
    tb.fs.write(f.id, 0, &vec![1u8; REQ as usize]).unwrap();
    let dur = Cell::new();
    let cpu = Cell::new();
    let (d, c) = (dur.clone(), cpu.clone());
    tb.run(1, move |ctx, comm, adio| {
        let host = comm.host().clone();
        let f =
            MpiFile::open(ctx, adio, &host, "/big", OpenMode::open(), Hints::default()).unwrap();
        let buf = host.mem.alloc(REQ as usize);
        let t0 = ctx.now();
        for _ in 0..COUNT {
            f.read_at(ctx, 0, buf, REQ).unwrap();
        }
        d.set(ctx.now().since(t0).as_nanos());
        c.set(comm.host().cpu.busy().as_nanos());
    });
    (mb_per_s(REQ * COUNT, dur.get()), cpu.get())
}

/// Silent invariant pass backing the table: the same direct-read workload
/// at the protocol level, asserting the registration-cache bookkeeping
/// balances. Any violation panics, aborting the run; nothing is printed,
/// so the table output is unchanged.
fn verify_regcache_invariants(use_regcache: bool) {
    let stats = [Cell::new(), Cell::new(), Cell::new()];
    let st = stats.clone();
    let (_, _, _, obs) = with_dafs_client(
        ViaCost::default(),
        DafsServerCost::default(),
        DafsClientConfig {
            use_regcache,
            ..Default::default()
        },
        |fs| {
            let f = fs.create(memfs::ROOT_ID, "big").unwrap();
            fs.write(f.id, 0, &vec![1u8; REQ as usize]).unwrap();
        },
        move |ctx, c, nic| {
            let f = c.lookup(ctx, memfs::ROOT_ID, "big").unwrap();
            let buf = nic.host().mem.alloc(REQ as usize);
            for _ in 0..COUNT {
                c.read(ctx, f.id, 0, buf, REQ).unwrap();
                // Nothing is in flight between reads, so pinned bytes are
                // exactly the cached working set: the one buffer when the
                // cache holds it, zero when every registration is transient.
                let expect = if use_regcache { REQ } else { 0 };
                assert_eq!(c.regcache_pinned(), expect, "pinned bytes drifted");
            }
            let rc = c.regcache_stats();
            // Each 1 MiB direct read acquires the buffer exactly once.
            assert_eq!(rc.hits + rc.misses, COUNT, "hit/miss counters must balance");
            assert_eq!(rc.evictions, 0, "64 MiB budget never evicts a 1 MiB set");
            if use_regcache {
                assert_eq!(rc.misses, 1, "one registration, then all hits");
            } else {
                assert_eq!(rc.hits, 0, "disabled cache never hits");
            }
            // Flush must return the pinned accounting to exactly zero.
            c.regcache_flush(ctx);
            assert_eq!(c.regcache_pinned(), 0, "pinned must be zero after flush");
            st[0].set(rc.hits);
            st[1].set(rc.misses);
            st[2].set(rc.evictions);
        },
    );
    // The metrics registry and the client-local counters are independent
    // accounting paths; they must agree.
    let snap = obs.snapshot();
    let counter = |n: &str| snap.expect(n).value();
    assert_eq!(counter("dafs.regcache.hits"), stats[0].get());
    assert_eq!(counter("dafs.regcache.misses"), stats[1].get());
    assert_eq!(counter("dafs.regcache.evictions"), stats[2].get());
}

/// Run R-T5.
pub fn run() -> Table {
    let mut t = Table::new(
        "R-T5: registration-cache ablation (64 x 1 MiB direct reads)",
        &["regcache", "throughput MB/s", "client CPU (ms)"],
    );
    verify_regcache_invariants(true);
    verify_regcache_invariants(false);
    let (on_bw, on_cpu) = run_case(true);
    let (off_bw, off_cpu) = run_case(false);
    t.row(vec![
        "on".into(),
        format!("{on_bw:.1}"),
        format!("{:.2}", on_cpu as f64 / 1e6),
    ]);
    t.row(vec![
        "off".into(),
        format!("{off_bw:.1}"),
        format!("{:.2}", off_cpu as f64 / 1e6),
    ]);
    t.note(&format!(
        "cache saves {:.1}% client CPU and {:.1}% throughput on this workload",
        100.0 * (1.0 - on_cpu as f64 / off_cpu as f64),
        100.0 * (on_bw / off_bw - 1.0)
    ));
    t
}

use memfs;
