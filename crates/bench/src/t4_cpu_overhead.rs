//! R-T4 — Client CPU overhead per unit of data moved.
//!
//! Expected shape: DAFS direct I/O leaves the client CPU almost idle (the
//! NIC places data); the NFS client burns milliseconds of CPU per MiB in
//! copies, per-packet processing, and interrupt handling. This is the
//! headline "offload" argument for DAFS on user-level networking.

use dafs::{DafsClientConfig, DafsServerCost};
use memfs::ROOT_ID;
use nfsv3::{NfsClientConfig, NfsServerCost};
use tcpnet::TcpCost;
use via::ViaCost;

use crate::report::{layer_breakdown, Table};
use crate::testbeds::{with_dafs_client, with_nfs_client, RunObs};

const LEN: u64 = 64 << 20;

/// (client cpu ns, client kernel ns, run observability) for a 64 MiB
/// sequential read + write on DAFS.
fn dafs_overhead() -> (u64, u64, RunObs) {
    let (_, _, client_host, run) = with_dafs_client(
        ViaCost::default(),
        DafsServerCost::default(),
        DafsClientConfig::default(),
        |fs| {
            let f = fs.create(ROOT_ID, "f").unwrap();
            fs.write(f.id, 0, &vec![1u8; LEN as usize]).unwrap();
        },
        move |ctx, c, nic| {
            let f = c.lookup(ctx, ROOT_ID, "f").unwrap();
            let buf = nic.host().mem.alloc(LEN as usize);
            c.read(ctx, f.id, 0, buf, LEN).unwrap();
            c.write(ctx, f.id, 0, buf, LEN).unwrap();
        },
    );
    (client_host.cpu.busy().as_nanos(), 0, run)
}

fn nfs_overhead() -> (u64, u64, RunObs) {
    let (_, _, client_host, fabric, run) = with_nfs_client(
        TcpCost::default(),
        NfsServerCost::default(),
        NfsClientConfig::default(),
        |fs| {
            let f = fs.create(ROOT_ID, "f").unwrap();
            fs.write(f.id, 0, &vec![1u8; LEN as usize]).unwrap();
        },
        move |ctx, c| {
            let f = c.lookup(ctx, ROOT_ID, "f").unwrap();
            let data = c.read(ctx, f.id, 0, LEN).unwrap();
            c.write(ctx, f.id, 0, &data).unwrap();
        },
    );
    (
        client_host.cpu.busy().as_nanos(),
        fabric.kernel_busy(&client_host).as_nanos(),
        run,
    )
}

/// Run R-T4.
pub fn run() -> Table {
    let mut t = Table::new(
        "R-T4: client CPU overhead for 64 MiB read + 64 MiB write",
        &[
            "stack",
            "user CPU (ms)",
            "kernel CPU (ms)",
            "CPU ms / MiB moved",
        ],
    );
    let (d_cpu, d_k, d_run) = dafs_overhead();
    let (n_cpu, n_k, n_run) = nfs_overhead();
    let mib_moved = 2.0 * (LEN >> 20) as f64;
    for (name, cpu, kernel) in [("dafs", d_cpu, d_k), ("nfs", n_cpu, n_k)] {
        let total_ms = (cpu + kernel) as f64 / 1e6;
        t.row(vec![
            name.to_string(),
            format!("{:.2}", cpu as f64 / 1e6),
            format!("{:.2}", kernel as f64 / 1e6),
            format!("{:.3}", total_ms / mib_moved),
        ]);
    }
    let ratio = (n_cpu + n_k) as f64 / (d_cpu + d_k).max(1) as f64;
    t.note(&format!(
        "NFS/DAFS client CPU ratio = {ratio:.1}x — direct I/O leaves the client CPU nearly idle"
    ));
    t.note("the NFS write path (inline fallback on DAFS too) still pays copies; reads show the full gap");
    // With MPIO_DAFS_TRACE set, show where each stack's virtual time went.
    if d_run.traced() {
        t.push_extra(layer_breakdown(
            "R-T4a: DAFS per-layer time breakdown",
            &d_run.snapshot(),
        ));
    }
    if n_run.traced() {
        t.push_extra(layer_breakdown(
            "R-T4b: NFS per-layer time breakdown",
            &n_run.snapshot(),
        ));
    }
    t
}
