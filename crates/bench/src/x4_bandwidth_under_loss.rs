//! R-X4 — File bandwidth under seeded packet loss (new scenario).
//!
//! Not in the paper: the original testbed's cLAN fabric never dropped a
//! message. This sweep injects seeded per-message loss into both transports
//! and measures sequential file bandwidth plus the recovery work each stack
//! performs. Expected shape: NFS degrades gradually — a lost RPC costs one
//! retransmit timeout and nothing else — while DAFS degrades more steeply
//! at high loss because VIA reliable delivery turns any lost message into a
//! broken VI, forcing a full session reconnect (ring re-registration,
//! re-Hello, request replay) before the stream continues.
//!
//! Every cell also verifies the data: the read pass must return exactly the
//! bytes the write pass put down, whatever the fault timeline did.

use dafs::{DafsClientConfig, DafsServerCost};
use memfs::ROOT_ID;
use nfsv3::{NfsClientConfig, NfsServerCost};
use simnet::FaultPlan;
use tcpnet::TcpCost;
use via::ViaCost;

use crate::report::{mb_per_s, Table};
use crate::testbeds::{with_dafs_client_faults, with_nfs_client_faults, Cell};

const FILE: u64 = 1 << 20;
const REQ: u64 = 32 << 10;

/// Default fault seed; override with `--fault-seed` on the binary. The same
/// seed reproduces the same fault timeline — and the same table — exactly.
pub const DEFAULT_SEED: u64 = 0xDAF5_0001;

/// The loss probabilities swept (0 = fault-free baseline).
pub const LOSS_SWEEP: [f64; 4] = [0.0, 0.001, 0.01, 0.05];

fn plan(seed: u64, loss: f64) -> Option<FaultPlan> {
    (loss > 0.0).then(|| FaultPlan::builder(seed).loss(loss).build())
}

fn pattern(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 7 + 13) as u8).collect()
}

/// (MB/s write, MB/s read, reconnects, direct fallbacks)
fn dafs_case(seed: u64, loss: f64) -> (f64, f64, u64, u64) {
    let wtime = Cell::new();
    let rtime = Cell::new();
    let (wt, rt) = (wtime.clone(), rtime.clone());
    let (_, _, _, obs) = with_dafs_client_faults(
        ViaCost::default(),
        DafsServerCost::default(),
        DafsClientConfig::default(),
        plan(seed, loss),
        |fs| {
            fs.create(ROOT_ID, "f").unwrap();
        },
        move |ctx, c, nic| {
            let f = c.lookup(ctx, ROOT_ID, "f").unwrap();
            let data = pattern(REQ as usize);
            let wbuf = nic.host().mem.alloc(REQ as usize);
            let rbuf = nic.host().mem.alloc(REQ as usize);
            nic.host().mem.write(wbuf, &data);
            let t0 = ctx.now();
            let mut off = 0;
            while off < FILE {
                c.write(ctx, f.id, off, wbuf, REQ).unwrap();
                off += REQ;
            }
            wt.set(ctx.now().since(t0).as_nanos());
            let t1 = ctx.now();
            let mut off = 0;
            while off < FILE {
                let n = c.read(ctx, f.id, off, rbuf, REQ).unwrap();
                assert_eq!(n, REQ, "short read at {off}");
                assert_eq!(
                    nic.host().mem.read_vec(rbuf, REQ as usize),
                    data,
                    "corrupt read-back at {off} under loss"
                );
                off += REQ;
            }
            rt.set(ctx.now().since(t1).as_nanos());
        },
    );
    let snap = obs.snapshot();
    let counter = |n: &str| snap.expect(n).value();
    (
        mb_per_s(FILE, wtime.get()),
        mb_per_s(FILE, rtime.get()),
        counter("dafs.reconnects"),
        counter("dafs.direct_fallbacks"),
    )
}

/// (MB/s write, MB/s read, retransmissions)
fn nfs_case(seed: u64, loss: f64) -> (f64, f64, u64) {
    let wtime = Cell::new();
    let rtime = Cell::new();
    let (wt, rt) = (wtime.clone(), rtime.clone());
    let (_, _, _, _, obs) = with_nfs_client_faults(
        TcpCost::default(),
        NfsServerCost::default(),
        NfsClientConfig::default(),
        plan(seed, loss),
        |fs| {
            fs.create(ROOT_ID, "f").unwrap();
        },
        move |ctx, c| {
            let f = c.lookup(ctx, ROOT_ID, "f").unwrap();
            let data = pattern(REQ as usize);
            let t0 = ctx.now();
            let mut off = 0;
            while off < FILE {
                c.write(ctx, f.id, off, &data).unwrap();
                off += REQ;
            }
            wt.set(ctx.now().since(t0).as_nanos());
            let t1 = ctx.now();
            let mut off = 0;
            while off < FILE {
                let got = c.read(ctx, f.id, off, REQ).unwrap();
                assert_eq!(got, data, "corrupt read-back at {off} under loss");
                off += REQ;
            }
            rt.set(ctx.now().since(t1).as_nanos());
        },
    );
    let snap = obs.snapshot();
    let retrans = snap.expect("nfs.retrans").value();
    (
        mb_per_s(FILE, wtime.get()),
        mb_per_s(FILE, rtime.get()),
        retrans,
    )
}

/// Run R-X4 with an explicit fault seed.
pub fn run_with_seed(seed: u64) -> Table {
    let mut t = Table::new(
        &format!("R-X4: file bandwidth under message loss (MB/s; seed {seed:#x})"),
        &[
            "loss",
            "DAFS rd",
            "DAFS wr",
            "reconnects",
            "fallbacks",
            "NFS rd",
            "NFS wr",
            "retrans",
        ],
    );
    for loss in LOSS_SWEEP {
        let (dw, dr, reconn, fall) = dafs_case(seed, loss);
        let (nw, nr, retrans) = nfs_case(seed, loss);
        t.row(vec![
            format!("{:.1}%", loss * 100.0),
            format!("{dr:.1}"),
            format!("{dw:.1}"),
            reconn.to_string(),
            fall.to_string(),
            format!("{nr:.1}"),
            format!("{nw:.1}"),
            retrans.to_string(),
        ]);
    }
    t.note("every cell verified byte-identical read-back despite the injected faults");
    t.note("expect NFS to shed bandwidth gradually (one retransmit timeout per lost RPC)");
    t.note("expect DAFS to fall off steeply at high loss: a lost VIA message breaks the session (reconnect + replay)");
    t
}

/// Run R-X4 with the default seed.
pub fn run() -> Table {
    run_with_seed(DEFAULT_SEED)
}
