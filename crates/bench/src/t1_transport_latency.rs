//! R-T1 — Transport small-operation latency: VIA vs TCP ping-pong.
//!
//! Expected shape: VIA one-way latency ≈7–10 µs nearly flat over small
//! sizes; TCP ≈60–90 µs — roughly an order of magnitude apart. This gap is
//! the raw material every higher-level DAFS advantage is built from.

use simnet::{Cluster, SimKernel};
use tcpnet::{TcpCost, TcpFabric};
use via::{DataSegment, MemAttributes, RecvDesc, SendDesc, ViAttributes, ViaCost, ViaFabric};

use crate::report::{human_size, Table};
use crate::testbeds::Cell;

const ITERS: u64 = 50;

fn via_one_way_ns(size: usize) -> u64 {
    let kernel = SimKernel::new();
    let cluster = Cluster::new();
    let fabric = ViaFabric::new(ViaCost::default());
    let snic = fabric.open_nic(cluster.add_host("server0"));
    let cnic = fabric.open_nic(cluster.add_host("client0"));
    let sid = snic.host().id;
    let out = Cell::new();
    let o = out.clone();
    let f2 = fabric.clone();
    kernel.spawn_daemon("server", move |ctx| {
        let l = f2.listen(&snic, 7);
        let vi = l.accept(ctx, ViAttributes::default()).unwrap();
        let tag = vi.ptag();
        let buf = snic.host().mem.alloc(size.max(64));
        let h = snic.register_mem(ctx, buf, size.max(64) as u64, MemAttributes::local(tag));
        for _ in 0..ITERS {
            vi.post_recv(
                ctx,
                RecvDesc::new(vec![DataSegment::new(buf, size as u32, h)]),
            );
            let c = vi.recv_wait(ctx);
            assert!(c.status.is_ok());
            vi.post_send(
                ctx,
                SendDesc::send(vec![DataSegment::new(buf, size as u32, h)]),
            );
            vi.send_wait(ctx);
        }
    });
    kernel.spawn("client", move |ctx| {
        let vi = fabric
            .connect(ctx, &cnic, sid, 7, ViAttributes::default())
            .unwrap();
        let tag = vi.ptag();
        let buf = cnic.host().mem.alloc(size.max(64));
        let h = cnic.register_mem(ctx, buf, size.max(64) as u64, MemAttributes::local(tag));
        let t0 = ctx.now();
        for _ in 0..ITERS {
            vi.post_recv(
                ctx,
                RecvDesc::new(vec![DataSegment::new(buf, size as u32, h)]),
            );
            vi.post_send(
                ctx,
                SendDesc::send(vec![DataSegment::new(buf, size as u32, h)]),
            );
            vi.send_wait(ctx);
            let c = vi.recv_wait(ctx);
            assert!(c.status.is_ok());
        }
        // One-way = RTT / 2.
        o.set(ctx.now().since(t0).as_nanos() / ITERS / 2);
    });
    kernel.run();
    out.get()
}

fn tcp_one_way_ns(size: usize) -> u64 {
    let kernel = SimKernel::new();
    let cluster = Cluster::new();
    let fabric = TcpFabric::new(TcpCost::default());
    let sh = cluster.add_host("server0");
    let ch = cluster.add_host("client0");
    let sid = sh.id;
    let out = Cell::new();
    let o = out.clone();
    let f2 = fabric.clone();
    kernel.spawn_daemon("server", move |ctx| {
        let l = f2.listen(&sh, 7);
        let s = l.accept(ctx).unwrap();
        while let Ok(req) = s.recv_exact(ctx, size) {
            s.send(ctx, &req);
        }
    });
    kernel.spawn("client", move |ctx| {
        let s = fabric.connect(ctx, &ch, sid, 7).unwrap();
        let msg = vec![0u8; size];
        let t0 = ctx.now();
        for _ in 0..ITERS {
            s.send(ctx, &msg);
            s.recv_exact(ctx, size).unwrap();
        }
        o.set(ctx.now().since(t0).as_nanos() / ITERS / 2);
        s.close(ctx);
    });
    kernel.run();
    out.get()
}

/// Run R-T1.
pub fn run() -> Table {
    let mut t = Table::new(
        "R-T1: transport small-op one-way latency (us)",
        &["size", "VIA", "TCP", "TCP/VIA"],
    );
    for size in [8usize, 64, 256, 1024] {
        let v = via_one_way_ns(size);
        let k = tcp_one_way_ns(size);
        t.row(vec![
            human_size(size as u64),
            format!("{:.1}", v as f64 / 1e3),
            format!("{:.1}", k as f64 / 1e3),
            format!("{:.1}x", k as f64 / v as f64),
        ]);
    }
    t.note("expect VIA ~8us nearly flat; TCP ~60-90us; ~7-10x gap");
    t
}
