//! R-F2 — Single-client file-access bandwidth vs request size.
//!
//! Expected shape: DAFS inline wins small requests on latency; above the
//! inline→direct crossover (8 KiB default) direct transfers climb to the
//! wire; NFS stays host-limited everywhere. Forced-inline DAFS shows what
//! is lost without RDMA.

use dafs::{DafsClientConfig, DafsServerCost};
use memfs::ROOT_ID;
use nfsv3::{NfsClientConfig, NfsServerCost};
use tcpnet::TcpCost;
use via::ViaCost;

use crate::report::{human_size, mb_per_s, Table};
use crate::testbeds::{with_dafs_client, with_nfs_client, Cell};

const FILE: u64 = 8 << 20;

fn dafs_rw_mb_s(req: u64, force_inline: bool) -> (f64, f64) {
    let cfg = DafsClientConfig {
        // Forcing inline = never crossing the direct threshold.
        direct_threshold: if force_inline { u64::MAX } else { 8 << 10 },
        ..Default::default()
    };
    let wtime = Cell::new();
    let rtime = Cell::new();
    let (wt, rt) = (wtime.clone(), rtime.clone());
    with_dafs_client(
        ViaCost::default(),
        DafsServerCost::default(),
        cfg,
        |fs| {
            let f = fs.create(ROOT_ID, "f").unwrap();
            fs.write(f.id, 0, &vec![3u8; FILE as usize]).unwrap();
        },
        move |ctx, c, nic| {
            let f = c.lookup(ctx, ROOT_ID, "f").unwrap();
            let buf = nic.host().mem.alloc(req as usize);
            // Sequential write pass.
            let t0 = ctx.now();
            let mut off = 0;
            while off < FILE {
                c.write(ctx, f.id, off, buf, req).unwrap();
                off += req;
            }
            wt.set(ctx.now().since(t0).as_nanos());
            // Sequential read pass.
            let t1 = ctx.now();
            let mut off = 0;
            while off < FILE {
                c.read(ctx, f.id, off, buf, req).unwrap();
                off += req;
            }
            rt.set(ctx.now().since(t1).as_nanos());
        },
    );
    (mb_per_s(FILE, wtime.get()), mb_per_s(FILE, rtime.get()))
}

fn nfs_rw_mb_s(req: u64) -> (f64, f64) {
    let wtime = Cell::new();
    let rtime = Cell::new();
    let (wt, rt) = (wtime.clone(), rtime.clone());
    with_nfs_client(
        TcpCost::default(),
        NfsServerCost::default(),
        NfsClientConfig::default(),
        |fs| {
            let f = fs.create(ROOT_ID, "f").unwrap();
            fs.write(f.id, 0, &vec![3u8; FILE as usize]).unwrap();
        },
        move |ctx, c| {
            let f = c.lookup(ctx, ROOT_ID, "f").unwrap();
            let chunk = vec![5u8; req as usize];
            let t0 = ctx.now();
            let mut off = 0;
            while off < FILE {
                c.write(ctx, f.id, off, &chunk).unwrap();
                off += req;
            }
            wt.set(ctx.now().since(t0).as_nanos());
            let t1 = ctx.now();
            let mut off = 0;
            while off < FILE {
                c.read(ctx, f.id, off, req).unwrap();
                off += req;
            }
            rt.set(ctx.now().since(t1).as_nanos());
        },
    );
    (mb_per_s(FILE, wtime.get()), mb_per_s(FILE, rtime.get()))
}

/// Run R-F2.
pub fn run() -> Table {
    let mut t = Table::new(
        "R-F2: single-client file bandwidth vs request size (MB/s, read | write)",
        &[
            "request",
            "DAFS rd",
            "DAFS wr",
            "DAFS-inline rd",
            "NFS rd",
            "NFS wr",
        ],
    );
    for req in [512u64, 2 << 10, 8 << 10, 32 << 10, 128 << 10, 512 << 10] {
        let (dw, dr) = dafs_rw_mb_s(req, false);
        let (_, ir) = dafs_rw_mb_s(req, true);
        let (nw, nr) = nfs_rw_mb_s(req);
        t.row(vec![
            human_size(req),
            format!("{dr:.1}"),
            format!("{dw:.1}"),
            format!("{ir:.1}"),
            format!("{nr:.1}"),
            format!("{nw:.1}"),
        ]);
    }
    t.note(
        "expect DAFS direct to pull away above the 8K threshold toward ~110; NFS flat-ish ~20-60",
    );
    t.note("DAFS-inline column shows the crossover: matches DAFS below 8K, trails above");
    t
}
