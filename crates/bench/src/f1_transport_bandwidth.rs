//! R-F1 — Transport bandwidth vs message size: VIA send/recv, VIA RDMA
//! Write, TCP stream.
//!
//! Expected shape: both VIA modes converge on the ~110 MB/s wire by 16–64
//! KiB; TCP is host-limited well below the wire at every size. RDMA edges
//! out send/recv slightly at small sizes (no receive-descriptor handling).

use simnet::{Cluster, SimKernel, SimTime};
use tcpnet::{TcpCost, TcpFabric};
use via::{
    DataSegment, MemAttributes, RecvDesc, RemoteSegment, SendDesc, ViAttributes, ViaCost, ViaFabric,
};

use crate::report::{human_size, mb_per_s, Table};
use crate::testbeds::Cell;

/// Total bytes pushed per measurement point.
const TOTAL: u64 = 8 << 20;

fn via_sendrecv_mb_s(size: u64) -> f64 {
    let count = TOTAL / size;
    let kernel = SimKernel::new();
    let cluster = Cluster::new();
    let fabric = ViaFabric::new(ViaCost::default());
    let snic = fabric.open_nic(cluster.add_host("server0"));
    let cnic = fabric.open_nic(cluster.add_host("client0"));
    let sid = snic.host().id;
    let span = Cell::new();
    let sp = span.clone();
    let f2 = fabric.clone();
    kernel.spawn_daemon("sink", move |ctx| {
        let l = f2.listen(&snic, 7);
        let vi = l.accept(ctx, ViAttributes::default()).unwrap();
        let tag = vi.ptag();
        let buf = snic.host().mem.alloc(size as usize);
        let h = snic.register_mem(ctx, buf, size, MemAttributes::local(tag));
        for _ in 0..count {
            vi.post_recv(
                ctx,
                RecvDesc::new(vec![DataSegment::new(buf, size as u32, h)]),
            );
        }
        let mut first = SimTime::ZERO;
        let mut last = SimTime::ZERO;
        for i in 0..count {
            let c = vi.recv_wait(ctx);
            assert!(c.status.is_ok());
            if i == 0 {
                first = c.at;
            }
            last = c.at;
        }
        sp.set(last.since(first).as_nanos());
    });
    kernel.spawn("source", move |ctx| {
        let vi = fabric
            .connect(ctx, &cnic, sid, 7, ViAttributes::default())
            .unwrap();
        let tag = vi.ptag();
        let buf = cnic.host().mem.alloc(size as usize);
        let h = cnic.register_mem(ctx, buf, size, MemAttributes::local(tag));
        for _ in 0..count {
            vi.post_send(
                ctx,
                SendDesc::send(vec![DataSegment::new(buf, size as u32, h)]),
            );
        }
        for _ in 0..count {
            vi.send_wait(ctx);
        }
    });
    kernel.run();
    mb_per_s((count - 1) * size, span.get())
}

fn via_rdma_mb_s(size: u64) -> f64 {
    let count = TOTAL / size;
    let kernel = SimKernel::new();
    let cluster = Cluster::new();
    let fabric = ViaFabric::new(ViaCost::default());
    let snic = fabric.open_nic(cluster.add_host("server0"));
    let cnic = fabric.open_nic(cluster.add_host("client0"));
    let sid = snic.host().id;
    let span = Cell::new();
    let sp = span.clone();
    let target: Cell = Cell::new(); // (addr, handle) squeezed into two cells
    let target_h = Cell::new();
    let (t1, t2) = (target.clone(), target_h.clone());
    let f2 = fabric.clone();
    kernel.spawn_daemon("sink", move |ctx| {
        let l = f2.listen(&snic, 7);
        let vi = l.accept(ctx, ViAttributes::default()).unwrap();
        let tag = vi.ptag();
        let buf = snic.host().mem.alloc(size as usize);
        let h = snic.register_mem(ctx, buf, size, MemAttributes::rdma_write_target(tag));
        t1.set(buf.as_u64());
        t2.set(h.0);
        // Post receives for the completion immediates.
        let (ibuf, ih) = {
            let b = snic.host().mem.alloc(64);
            let h = snic.register_mem(ctx, b, 64, MemAttributes::local(tag));
            (b, h)
        };
        for _ in 0..count {
            vi.post_recv(ctx, RecvDesc::new(vec![DataSegment::new(ibuf, 64, ih)]));
        }
        let mut first = SimTime::ZERO;
        let mut last = SimTime::ZERO;
        for i in 0..count {
            let c = vi.recv_wait(ctx);
            assert!(c.status.is_ok());
            if i == 0 {
                first = c.at;
            }
            last = c.at;
        }
        sp.set(last.since(first).as_nanos());
    });
    kernel.spawn("source", move |ctx| {
        let vi = fabric
            .connect(ctx, &cnic, sid, 7, ViAttributes::default())
            .unwrap();
        // Wait (virtually) until the sink published its buffer.
        while target_h.get() == 0 {
            ctx.advance(simnet::time::units::us(10));
        }
        let tag = vi.ptag();
        let buf = cnic.host().mem.alloc(size as usize);
        let h = cnic.register_mem(ctx, buf, size, MemAttributes::local(tag));
        let remote = RemoteSegment {
            addr: simnet::VirtAddr(target.get()),
            handle: via::MemHandle(target_h.get()),
        };
        for i in 0..count {
            vi.post_send(
                ctx,
                SendDesc::rdma_write_imm(
                    vec![DataSegment::new(buf, size as u32, h)],
                    remote,
                    i as u32,
                ),
            );
        }
        for _ in 0..count {
            vi.send_wait(ctx);
        }
    });
    kernel.run();
    mb_per_s((count - 1) * size, span.get())
}

fn tcp_mb_s(size: u64) -> f64 {
    let count = TOTAL / size;
    let kernel = SimKernel::new();
    let cluster = Cluster::new();
    let fabric = TcpFabric::new(TcpCost::default());
    let sh = cluster.add_host("server0");
    let ch = cluster.add_host("client0");
    let sid = sh.id;
    let span = Cell::new();
    let sp = span.clone();
    let f2 = fabric.clone();
    kernel.spawn_daemon("sink", move |ctx| {
        let l = f2.listen(&sh, 7);
        let s = l.accept(ctx).unwrap();
        s.recv_exact(ctx, size as usize).unwrap();
        let t0 = ctx.now();
        for _ in 1..count {
            s.recv_exact(ctx, size as usize).unwrap();
        }
        sp.set(ctx.now().since(t0).as_nanos());
    });
    kernel.spawn("source", move |ctx| {
        let s = fabric.connect(ctx, &ch, sid, 7).unwrap();
        let msg = vec![0u8; size as usize];
        for _ in 0..count {
            s.send(ctx, &msg);
        }
    });
    kernel.run();
    mb_per_s((count - 1) * size, span.get())
}

/// Run R-F1.
pub fn run() -> Table {
    let mut t = Table::new(
        "R-F1: transport bandwidth vs message size (MB/s)",
        &["size", "VIA send/recv", "VIA RDMA-wr", "TCP"],
    );
    for size in [1u64 << 10, 4 << 10, 16 << 10, 64 << 10] {
        t.row(vec![
            human_size(size),
            format!("{:.1}", via_sendrecv_mb_s(size)),
            format!("{:.1}", via_rdma_mb_s(size)),
            format!("{:.1}", tcp_mb_s(size)),
        ]);
    }
    // RDMA has no 64 KiB MTU; add larger points for it + TCP.
    for size in [256u64 << 10, 1 << 20] {
        t.row(vec![
            human_size(size),
            "-".into(),
            format!("{:.1}", via_rdma_mb_s(size)),
            format!("{:.1}", tcp_mb_s(size)),
        ]);
    }
    t.note("expect both VIA modes to reach ~110 MB/s wire by 16-64K; TCP host-limited ~50-60");
    t
}
