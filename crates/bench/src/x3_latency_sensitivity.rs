//! X-3 (extension) — fabric-latency sensitivity of the DAFS advantage.
//!
//! The paper family's small-op wins come from the user-level network's
//! microsecond latency. This ablation sweeps the VIA wire latency from the
//! cLAN's 5 µs up to 100 µs (campus-scale fabric) while holding the TCP
//! baseline fixed, and reports the DAFS getattr latency and its advantage
//! over NFS.
//!
//! Expected shape: the advantage decays roughly as (NFS_fixed /
//! (2·latency + constant)); by ~100 µs one-way the fabrics converge and
//! protocol leanness is all that's left.

use dafs::{DafsClientConfig, DafsServerCost};
use memfs::ROOT_ID;
use simnet::time::units::*;
use via::ViaCost;

use crate::report::Table;
use crate::testbeds::{with_dafs_client, Cell};

const ITERS: u64 = 20;

fn dafs_getattr_us(wire_latency_us: u64) -> f64 {
    let lat = Cell::new();
    let l = lat.clone();
    with_dafs_client(
        ViaCost {
            wire_latency: us(wire_latency_us),
            ..ViaCost::default()
        },
        DafsServerCost::default(),
        DafsClientConfig::default(),
        |fs| {
            fs.create(ROOT_ID, "f").unwrap();
        },
        move |ctx, c, _| {
            let f = c.lookup(ctx, ROOT_ID, "f").unwrap();
            let t0 = ctx.now();
            for _ in 0..ITERS {
                c.getattr(ctx, f.id).unwrap();
            }
            l.set(ctx.now().since(t0).as_nanos() / ITERS);
        },
    );
    lat.get() as f64 / 1e3
}

/// Run X-3.
pub fn run() -> Table {
    let mut t = Table::new(
        "X-3 (extension): DAFS getattr vs VIA wire latency (us)",
        &["wire latency", "DAFS getattr", "vs NFS (180.9us)"],
    );
    const NFS_BASELINE_US: f64 = 180.9; // from R-T3 (fixed TCP fabric)
    for wire in [5u64, 10, 20, 50, 100] {
        let d = dafs_getattr_us(wire);
        t.row(vec![
            format!("{wire}us"),
            format!("{d:.1}"),
            format!("{:.1}x", NFS_BASELINE_US / d),
        ]);
    }
    t.note("the DAFS advantage is mostly the fabric: it decays from ~6x to ~1x as latency grows");
    t
}
