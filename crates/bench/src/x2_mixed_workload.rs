//! X-2 (extension) — mixed small-operation workload: latency distribution.
//!
//! File servers live on op *mixes*, not pure streams. A seeded random
//! workload (70% 4 KiB reads, 20% 4 KiB writes, 10% getattrs over a small
//! working set of files) is replayed identically against DAFS and NFS; the
//! table reports mean / p50 / p99 per-op latency as exact nearest-rank
//! quantiles over the full sample set ([`SampleSet`]) — every quoted
//! quantile is an actual recorded latency, not a log₂-bucket upper bound.
//!
//! Expected shape: the whole DAFS distribution sits several× below NFS,
//! and the tails stay tight (no kernel-path interrupt jitter terms).

use dafs::{DafsClientConfig, DafsServerCost};
use memfs::{MemFs, NodeId, ROOT_ID};
use nfsv3::{NfsClientConfig, NfsServerCost};
use simnet::{DurationMetric, Rng64, SampleSet};
use tcpnet::TcpCost;
use via::ViaCost;

use crate::report::Table;
use crate::testbeds::{with_dafs_client, with_nfs_client};

const FILES: usize = 8;
const OPS: usize = 400;
const IO: u64 = 4 << 10;
const SEED: u64 = 0x1FF2_2002;

/// The op script, generated identically for both stacks.
#[derive(Clone, Copy)]
enum Op {
    Read { file: usize, off: u64 },
    Write { file: usize, off: u64 },
    GetAttr { file: usize },
}

fn script() -> Vec<Op> {
    let mut rng = Rng64::new(SEED);
    (0..OPS)
        .map(|_| {
            let file = rng.range_usize(0, FILES);
            let off = rng.below(16) * IO;
            match rng.below(10) {
                0..7 => Op::Read { file, off },
                7..9 => Op::Write { file, off },
                _ => Op::GetAttr { file },
            }
        })
        .collect()
}

fn prefill(fs: &MemFs) -> Vec<NodeId> {
    (0..FILES)
        .map(|i| {
            let f = fs.create(ROOT_ID, &format!("f{i}")).unwrap();
            fs.write(f.id, 0, &vec![i as u8; (16 * IO) as usize])
                .unwrap();
            f.id
        })
        .collect()
}

fn dafs_hist() -> SampleSet {
    let hist = SampleSet::new();
    let h = hist.clone();
    with_dafs_client(
        ViaCost::default(),
        DafsServerCost::default(),
        DafsClientConfig::default(),
        |fs| {
            prefill(fs);
        },
        move |ctx, c, nic| {
            let files: Vec<NodeId> = (0..FILES)
                .map(|i| c.lookup(ctx, ROOT_ID, &format!("f{i}")).unwrap().id)
                .collect();
            let buf = nic.host().mem.alloc(IO as usize);
            for op in script() {
                let t0 = ctx.now();
                match op {
                    Op::Read { file, off } => {
                        c.read(ctx, files[file], off, buf, IO).unwrap();
                    }
                    Op::Write { file, off } => {
                        c.write(ctx, files[file], off, buf, IO).unwrap();
                    }
                    Op::GetAttr { file } => {
                        c.getattr(ctx, files[file]).unwrap();
                    }
                }
                h.record_duration(ctx.now().since(t0));
            }
        },
    );
    hist
}

fn nfs_hist() -> SampleSet {
    let hist = SampleSet::new();
    let h = hist.clone();
    with_nfs_client(
        TcpCost::default(),
        NfsServerCost::default(),
        NfsClientConfig::default(),
        |fs| {
            prefill(fs);
        },
        move |ctx, c| {
            let files: Vec<NodeId> = (0..FILES)
                .map(|i| c.lookup(ctx, ROOT_ID, &format!("f{i}")).unwrap().id)
                .collect();
            let data = vec![7u8; IO as usize];
            for op in script() {
                let t0 = ctx.now();
                match op {
                    Op::Read { file, off } => {
                        c.read(ctx, files[file], off, IO).unwrap();
                    }
                    Op::Write { file, off } => {
                        c.write(ctx, files[file], off, &data).unwrap();
                    }
                    Op::GetAttr { file } => {
                        c.getattr_uncached(ctx, files[file]).unwrap();
                    }
                }
                h.record_duration(ctx.now().since(t0));
            }
        },
    );
    hist
}

/// Run X-2.
pub fn run() -> Table {
    let mut t = Table::new(
        "X-2 (extension): mixed small-op workload latency (us)",
        &["stack", "mean", "p50", "p99", "max"],
    );
    let d = dafs_hist();
    let n = nfs_hist();
    for (name, h) in [("dafs", &d), ("nfs", &n)] {
        t.row(vec![
            name.to_string(),
            format!("{:.1}", h.mean() / 1e3),
            format!("{:.0}", h.quantile(0.5) as f64 / 1e3),
            format!("{:.0}", h.quantile(0.99) as f64 / 1e3),
            format!("{:.1}", h.max() as f64 / 1e3),
        ]);
    }
    t.note(&format!(
        "identical seeded script ({OPS} ops, 70/20/10 read/write/getattr over {FILES} files); \
         NFS/DAFS mean ratio = {:.1}x",
        n.mean() / d.mean()
    ));
    t.note("quantiles are exact (nearest-rank over the full sample set)");
    t
}
