//! X-1 (extension) — BTIO-class 3-D subarray collective I/O.
//!
//! The NAS BT-IO benchmark writes a 3-D global array partitioned across
//! ranks, through `MPI_Type_create_subarray` file views — the canonical
//! "hard" MPI-IO pattern of the era. Each rank owns a slab along the
//! first dimension of an N×N×N array of 8-byte cells (contiguous within
//! the view, strided on disk for the verification read of a *transposed*
//! partitioning).
//!
//! Expected shape: DAFS sustains multiples of the NFS rate for both the
//! slab dump and the strided cross-read; collective buffering keeps the
//! cross-read from collapsing.

use mpiio::{read_at_all, write_at_all, Backend, Datatype, Hints, MpiFile, OpenMode, Testbed};

use crate::report::{mb_per_s, Table};
use crate::testbeds::Cell;

const N: u64 = 64; // N^3 cells of 8 bytes = 2 MiB
const CELL: u64 = 8;
const RANKS: usize = 4;

/// (slab-write MB/s, cross-read MB/s).
fn run_backend(backend: Backend) -> (f64, f64) {
    let tb = Testbed::new(backend);
    let wns = Cell::new();
    let rns = Cell::new();
    let (w, r) = (wns.clone(), rns.clone());
    tb.run(RANKS, move |ctx, comm, adio| {
        let host = comm.host().clone();
        let f = MpiFile::open(
            ctx,
            adio,
            &host,
            "/bt.arr",
            OpenMode::create(),
            Hints::default(),
        )
        .unwrap();
        let slab = N / comm.size() as u64;

        // Phase 1: dump my slab along dim 0 (contiguous on disk).
        let ft = Datatype::subarray(
            &[N, N, N],
            &[slab, N, N],
            &[comm.rank() as u64 * slab, 0, 0],
            &Datatype::bytes(CELL),
        );
        f.set_view(0, &Datatype::bytes(CELL), &ft);
        let mine = slab * N * N * CELL;
        let src = host.mem.alloc(mine as usize);
        host.mem.fill(src, mine as usize, comm.rank() as u8 + 1);
        comm.barrier(ctx);
        let t0 = ctx.now();
        write_at_all(ctx, comm, &f, 0, src, mine).unwrap();
        comm.barrier(ctx);
        w.max(ctx.now().since(t0).as_nanos());

        // Phase 2: cross-read — slabs along dim 1 (strided on disk: each
        // rank's view is N runs of slab×N cells).
        let ft2 = Datatype::subarray(
            &[N, N, N],
            &[N, slab, N],
            &[0, comm.rank() as u64 * slab, 0],
            &Datatype::bytes(CELL),
        );
        f.set_view(0, &Datatype::bytes(CELL), &ft2);
        let dst = host.mem.alloc(mine as usize);
        comm.barrier(ctx);
        let t1 = ctx.now();
        let n = read_at_all(ctx, comm, &f, 0, dst, mine).unwrap();
        comm.barrier(ctx);
        r.max(ctx.now().since(t1).as_nanos());
        assert_eq!(n, mine);
        // Verify a sample: plane p of dim 0 was written by rank p/slab.
        let plane_bytes = slab * N * CELL; // one dim-0 plane within my view
        for p in [0u64, N / 2, N - 1] {
            let owner = (p / slab) as u8 + 1;
            let got = host.mem.read_vec(dst.offset(p * plane_bytes), 8);
            assert_eq!(got, vec![owner; 8], "plane {p}");
        }
    });
    let total = N * N * N * CELL;
    (mb_per_s(total, wns.get()), mb_per_s(total, rns.get()))
}

/// Run X-1.
pub fn run() -> Table {
    let mut t = Table::new(
        "X-1 (extension): BT-IO 3-D subarray collective I/O (MB/s)",
        &["backend", "slab write", "cross read"],
    );
    for backend in [Backend::dafs(), Backend::nfs()] {
        let name = backend.kind();
        let (w, r) = run_backend(backend);
        t.row(vec![name.to_string(), format!("{w:.1}"), format!("{r:.1}")]);
    }
    t.note("cross-read is strided on disk; collective buffering keeps it near the slab rate");
    t
}
