//! Criterion micro-benchmarks of the hot code paths (real wall-clock
//! performance of the library itself, as opposed to the virtual-time
//! experiments in the `experiments` bench target).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use memfs::{MemFs, ROOT_ID};
use mpiio::{Datatype, FileView};
use simnet::{Port, SimKernel};

fn bench_datatype_flatten(c: &mut Criterion) {
    // A realistically gnarly nested type: struct of vectors over indexed.
    let el = Datatype::bytes(8);
    let inner = Datatype::vector(16, 2, 5, &el);
    let idx = Datatype::indexed(&[(2, 0), (1, 50), (3, 100)], &inner);
    let dt = Datatype::struct_of(&[(1, 0, idx.clone()), (2, 4096, inner)]);
    c.bench_function("datatype_flatten_nested", |b| {
        b.iter(|| black_box(&dt).flatten())
    });
    let sub = Datatype::subarray(&[64, 64, 64], &[16, 16, 16], &[8, 8, 8], &Datatype::bytes(8));
    c.bench_function("datatype_flatten_subarray_16x16x16", |b| {
        b.iter(|| black_box(&sub).flatten())
    });
}

fn bench_view_map(c: &mut Criterion) {
    let ft = Datatype::resized(&Datatype::bytes(4096), 0, 65536);
    let view = FileView::new(0, &Datatype::bytes(1), &ft);
    c.bench_function("view_map_1MiB_through_4K_stripes", |b| {
        b.iter(|| black_box(&view).map(black_box(12345), black_box(1 << 20)))
    });
}

fn bench_memfs(c: &mut Criterion) {
    c.bench_function("memfs_write_read_64KiB", |b| {
        let fs = MemFs::new();
        let f = fs.create(ROOT_ID, "bench").unwrap();
        let data = vec![7u8; 64 << 10];
        b.iter(|| {
            fs.write(f.id, 0, black_box(&data)).unwrap();
            black_box(fs.read(f.id, 0, 64 << 10).unwrap());
        })
    });
}

fn bench_des_kernel(c: &mut Criterion) {
    // Wall-clock cost of the DES kernel: one ping-pong pair doing 1000
    // timed message exchanges (2000 scheduling events + wakes).
    c.bench_function("des_kernel_1000_roundtrips", |b| {
        b.iter_batched(
            SimKernel::new,
            |kernel| {
                let ab: Port<u32> = Port::new("ab");
                let ba: Port<u32> = Port::new("ba");
                {
                    let (ab, ba) = (ab.clone(), ba.clone());
                    kernel.spawn("a", move |ctx| {
                        for i in 0..1000u32 {
                            ab.send(ctx, i, ctx.now() + simnet::time::units::us(5));
                            ba.recv(ctx).unwrap();
                        }
                        ab.close(ctx);
                    });
                }
                kernel.spawn_daemon("b", move |ctx| {
                    while let Some(v) = ab.recv(ctx) {
                        ba.send(ctx, v, ctx.now() + simnet::time::units::us(5));
                    }
                });
                kernel.run()
            },
            BatchSize::PerIteration,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_datatype_flatten, bench_view_map, bench_memfs, bench_des_kernel
}
criterion_main!(benches);
