//! Micro-benchmarks of the hot code paths (real wall-clock performance of
//! the library itself, as opposed to the virtual-time experiments in the
//! `experiments` bench target).
//!
//! Plain `harness = false` timing loops (the build environment carries no
//! external bench framework): each case runs a warmup, then reports the
//! mean wall-clock time per iteration over a fixed batch.

use std::hint::black_box;
use std::time::Instant;

use memfs::{MemFs, ROOT_ID};
use mpiio::{Datatype, FileView};
use simnet::{Port, SimKernel};

/// Time `iters` runs of `f` (after `warmup` unmeasured runs); print the
/// mean per-iteration latency.
fn bench(name: &str, warmup: u32, iters: u32, mut f: impl FnMut()) {
    for _ in 0..warmup {
        f();
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per = t0.elapsed().as_secs_f64() / iters as f64;
    let (val, unit) = if per >= 1e-3 {
        (per * 1e3, "ms")
    } else if per >= 1e-6 {
        (per * 1e6, "us")
    } else {
        (per * 1e9, "ns")
    };
    println!("{name:<40} {val:>9.2} {unit}/iter  ({iters} iters)");
}

fn bench_datatype_flatten() {
    // A realistically gnarly nested type: struct of vectors over indexed.
    let el = Datatype::bytes(8);
    let inner = Datatype::vector(16, 2, 5, &el);
    let idx = Datatype::indexed(&[(2, 0), (1, 50), (3, 100)], &inner);
    let dt = Datatype::struct_of(&[(1, 0, idx.clone()), (2, 4096, inner)]);
    bench("datatype_flatten_nested", 10, 1000, || {
        black_box(black_box(&dt).flatten());
    });
    let sub = Datatype::subarray(
        &[64, 64, 64],
        &[16, 16, 16],
        &[8, 8, 8],
        &Datatype::bytes(8),
    );
    bench("datatype_flatten_subarray_16x16x16", 5, 100, || {
        black_box(black_box(&sub).flatten());
    });
}

fn bench_view_map() {
    let ft = Datatype::resized(&Datatype::bytes(4096), 0, 65536);
    let view = FileView::new(0, &Datatype::bytes(1), &ft);
    bench("view_map_1MiB_through_4K_stripes", 10, 1000, || {
        black_box(black_box(&view).map(black_box(12345), black_box(1 << 20)));
    });
}

fn bench_memfs() {
    let fs = MemFs::new();
    let f = fs.create(ROOT_ID, "bench").unwrap();
    let data = vec![7u8; 64 << 10];
    bench("memfs_write_read_64KiB", 10, 2000, || {
        fs.write(f.id, 0, black_box(&data)).unwrap();
        black_box(fs.read(f.id, 0, 64 << 10).unwrap());
    });
}

fn bench_des_kernel() {
    // Wall-clock cost of the DES kernel: one ping-pong pair doing 1000
    // timed message exchanges (2000 scheduling events + wakes).
    bench("des_kernel_1000_roundtrips", 2, 20, || {
        let kernel = SimKernel::new();
        let ab: Port<u32> = Port::new("ab");
        let ba: Port<u32> = Port::new("ba");
        {
            let (ab, ba) = (ab.clone(), ba.clone());
            kernel.spawn("a", move |ctx| {
                for i in 0..1000u32 {
                    ab.send(ctx, i, ctx.now() + simnet::time::units::us(5));
                    ba.recv(ctx).unwrap();
                }
                ab.close(ctx);
            });
        }
        kernel.spawn_daemon("b", move |ctx| {
            while let Some(v) = ab.recv(ctx) {
                ba.send(ctx, v, ctx.now() + simnet::time::units::us(5));
            }
        });
        black_box(kernel.run());
    });
}

fn main() {
    bench_datatype_flatten();
    bench_view_map();
    bench_memfs();
    bench_des_kernel();
}
