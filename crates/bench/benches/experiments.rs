//! `cargo bench -p mpio-dafs-bench --bench experiments` regenerates every
//! reconstructed table and figure of the evaluation (R-T1 … R-F6). All
//! numbers are virtual-time quantities from the calibrated cost models and
//! are bit-identical across runs.
//!
//! Pass experiment ids as arguments to run a subset:
//! `cargo bench --bench experiments -- R-T1 R-F2`

fn main() {
    let filter: Vec<String> = std::env::args().skip(1).collect();
    // `cargo bench` passes --bench; ignore flag-like args.
    let wanted: Vec<&String> = filter.iter().filter(|a| !a.starts_with('-')).collect();
    for (id, run) in mpio_dafs_bench::all_experiments() {
        if !wanted.is_empty() && !wanted.iter().any(|w| w.eq_ignore_ascii_case(id)) {
            continue;
        }
        run().print();
    }
}
