//! MPI derived datatypes: the type algebra behind file views and
//! noncontiguous I/O.
//!
//! A datatype describes a *typemap*: an ordered sequence of
//! `(displacement, length)` byte runs. The order matters — when data is
//! packed through a type, the n-th payload byte lands in the n-th position
//! of the run sequence. [`Datatype::flatten`] produces that sequence with
//! adjacent-contiguous runs merged (ROMIO's "flattening"), which is what
//! every I/O path in this crate consumes.
//!
//! Supported constructors mirror MPI-2: contiguous, vector/hvector,
//! indexed/hindexed, struct, resized, subarray (C order), and a
//! block-distributed darray helper.

use std::sync::Arc;

/// A derived datatype (immutable, cheaply cloneable).
#[derive(Debug, Clone)]
pub struct Datatype {
    inner: Arc<Kind>,
}

#[derive(Debug)]
enum Kind {
    /// `n` contiguous bytes (the elementary type; MPI_BYTE × n).
    Bytes(u64),
    Contiguous {
        count: u64,
        child: Datatype,
    },
    Vector {
        count: u64,
        blocklen: u64,
        /// Stride in units of the child extent.
        stride: i64,
        child: Datatype,
    },
    Hvector {
        count: u64,
        blocklen: u64,
        /// Stride in bytes.
        stride: i64,
        child: Datatype,
    },
    Indexed {
        /// (blocklen, displacement) in units of the child extent.
        blocks: Vec<(u64, i64)>,
        child: Datatype,
    },
    Hindexed {
        /// (blocklen, displacement-in-bytes).
        blocks: Vec<(u64, i64)>,
        child: Datatype,
    },
    Struct {
        /// (blocklen, displacement-in-bytes, type).
        fields: Vec<(u64, i64, Datatype)>,
    },
    Resized {
        lb: i64,
        extent: u64,
        child: Datatype,
    },
}

/// The flattened form: ordered byte runs plus bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Flattened {
    /// `(displacement, length)` runs in typemap order.
    pub runs: Vec<(i64, u64)>,
    /// Total payload bytes (sum of run lengths).
    pub size: u64,
    /// Lower bound.
    pub lb: i64,
    /// Extent (ub − lb); the tiling period when used as a filetype.
    pub extent: u64,
}

impl Datatype {
    fn new(kind: Kind) -> Datatype {
        Datatype {
            inner: Arc::new(kind),
        }
    }

    /// `n` contiguous bytes.
    pub fn bytes(n: u64) -> Datatype {
        Datatype::new(Kind::Bytes(n))
    }

    /// `count` repetitions of `child`, back to back (MPI_Type_contiguous).
    pub fn contiguous(count: u64, child: &Datatype) -> Datatype {
        Datatype::new(Kind::Contiguous {
            count,
            child: child.clone(),
        })
    }

    /// `count` blocks of `blocklen` children, starting every `stride`
    /// children (MPI_Type_vector).
    pub fn vector(count: u64, blocklen: u64, stride: i64, child: &Datatype) -> Datatype {
        Datatype::new(Kind::Vector {
            count,
            blocklen,
            stride,
            child: child.clone(),
        })
    }

    /// Like `vector`, but the stride is in bytes (MPI_Type_create_hvector).
    pub fn hvector(count: u64, blocklen: u64, stride: i64, child: &Datatype) -> Datatype {
        Datatype::new(Kind::Hvector {
            count,
            blocklen,
            stride,
            child: child.clone(),
        })
    }

    /// Blocks at child-extent-granular displacements (MPI_Type_indexed).
    pub fn indexed(blocks: &[(u64, i64)], child: &Datatype) -> Datatype {
        Datatype::new(Kind::Indexed {
            blocks: blocks.to_vec(),
            child: child.clone(),
        })
    }

    /// Blocks at byte displacements (MPI_Type_create_hindexed).
    pub fn hindexed(blocks: &[(u64, i64)], child: &Datatype) -> Datatype {
        Datatype::new(Kind::Hindexed {
            blocks: blocks.to_vec(),
            child: child.clone(),
        })
    }

    /// Heterogeneous fields at byte displacements (MPI_Type_create_struct).
    pub fn struct_of(fields: &[(u64, i64, Datatype)]) -> Datatype {
        Datatype::new(Kind::Struct {
            fields: fields.to_vec(),
        })
    }

    /// Override lb/extent (MPI_Type_create_resized).
    pub fn resized(child: &Datatype, lb: i64, extent: u64) -> Datatype {
        Datatype::new(Kind::Resized {
            lb,
            extent,
            child: child.clone(),
        })
    }

    /// An n-dimensional subarray in C (row-major) order
    /// (MPI_Type_create_subarray). The child must be "dense"
    /// (size == extent), which holds for elementary types.
    pub fn subarray(sizes: &[u64], subsizes: &[u64], starts: &[u64], child: &Datatype) -> Datatype {
        assert_eq!(sizes.len(), subsizes.len());
        assert_eq!(sizes.len(), starts.len());
        assert!(!sizes.is_empty(), "subarray needs at least one dimension");
        let f = child.flatten();
        assert_eq!(
            f.size, f.extent,
            "subarray child must be dense (size == extent)"
        );
        for d in 0..sizes.len() {
            assert!(
                starts[d] + subsizes[d] <= sizes[d],
                "subarray dim {d} out of range"
            );
        }
        let el = f.extent;
        // Innermost dimension is a contiguous run of subsizes[last] elements;
        // outer dimensions become nested hindexed blocks.
        let last = sizes.len() - 1;
        let mut dt = Datatype::bytes(subsizes[last] * el);
        let mut row_bytes = el; // bytes per index step in the current dim
                                // Stride of dimension d = product of sizes of dims > d, in elements.
                                // Build from the innermost outward.
        for d in (0..last).rev() {
            let inner_stride: u64 = sizes[d + 1..].iter().product::<u64>() * el;
            // subsizes[d] blocks, each `dt`, spaced inner_stride apart.
            dt = Datatype::hvector(subsizes[d], 1, inner_stride as i64, &dt);
            row_bytes = inner_stride;
        }
        let _ = row_bytes;
        // Displacement of the subarray origin.
        let mut disp = 0u64;
        for d in 0..sizes.len() {
            let stride: u64 = sizes[d + 1..].iter().product::<u64>() * el;
            disp += starts[d] * stride;
        }
        let full: u64 = sizes.iter().product::<u64>() * el;
        let shifted = Datatype::hindexed(&[(1, disp as i64)], &dt);
        Datatype::resized(&shifted, 0, full)
    }

    /// Block-distributed 1-D darray helper: rank `rank` of `nprocs` owns a
    /// contiguous block of a `gsize`-element array (element size `el`),
    /// with the usual MPI block distribution (larger blocks first).
    pub fn darray_block(gsize: u64, el: u64, nprocs: u64, rank: u64) -> (Datatype, u64) {
        let base = gsize / nprocs;
        let rem = gsize % nprocs;
        let mine = base + u64::from(rank < rem);
        let offset = rank * base + rank.min(rem);
        let dt = Datatype::subarray(
            &[gsize],
            &[mine.max(1)],
            &[offset.min(gsize - 1)],
            &Datatype::bytes(el),
        );
        if mine == 0 {
            // Empty block: zero-size type with full extent.
            let empty = Datatype::resized(&Datatype::bytes(0), 0, gsize * el);
            return (empty, 0);
        }
        (dt, mine)
    }

    /// Total payload bytes.
    pub fn size(&self) -> u64 {
        self.flatten().size
    }

    /// Extent (tiling period).
    pub fn extent(&self) -> u64 {
        self.flatten().extent
    }

    /// Flatten to ordered, adjacent-merged byte runs.
    pub fn flatten(&self) -> Flattened {
        let mut runs = Vec::new();
        self.emit(0, &mut runs);
        // Merge adjacent-in-sequence contiguous runs; drop empties.
        let mut merged: Vec<(i64, u64)> = Vec::with_capacity(runs.len());
        for (off, len) in runs {
            if len == 0 {
                continue;
            }
            match merged.last_mut() {
                Some((loff, llen)) if *loff + *llen as i64 == off => *llen += len,
                _ => merged.push((off, len)),
            }
        }
        let size = merged.iter().map(|r| r.1).sum();
        let (lb, ub) = self.bounds();
        Flattened {
            runs: merged,
            size,
            lb,
            extent: (ub - lb) as u64,
        }
    }

    /// Naive typemap expansion (every leaf byte-run, unmerged) — the
    /// reference semantics property tests compare against.
    pub fn type_map(&self) -> Vec<(i64, u64)> {
        let mut runs = Vec::new();
        self.emit(0, &mut runs);
        runs.retain(|r| r.1 > 0);
        runs
    }

    fn emit(&self, base: i64, out: &mut Vec<(i64, u64)>) {
        match &*self.inner {
            Kind::Bytes(n) => out.push((base, *n)),
            Kind::Contiguous { count, child } => {
                let ext = child.bounds_extent() as i64;
                for i in 0..*count {
                    child.emit(base + i as i64 * ext, out);
                }
            }
            Kind::Vector {
                count,
                blocklen,
                stride,
                child,
            } => {
                let ext = child.bounds_extent() as i64;
                for i in 0..*count {
                    for j in 0..*blocklen {
                        child.emit(base + (i as i64 * stride + j as i64) * ext, out);
                    }
                }
            }
            Kind::Hvector {
                count,
                blocklen,
                stride,
                child,
            } => {
                let ext = child.bounds_extent() as i64;
                for i in 0..*count {
                    for j in 0..*blocklen {
                        child.emit(base + i as i64 * stride + j as i64 * ext, out);
                    }
                }
            }
            Kind::Indexed { blocks, child } => {
                let ext = child.bounds_extent() as i64;
                for (bl, disp) in blocks {
                    for j in 0..*bl {
                        child.emit(base + (*disp + j as i64) * ext, out);
                    }
                }
            }
            Kind::Hindexed { blocks, child } => {
                let ext = child.bounds_extent() as i64;
                for (bl, disp) in blocks {
                    for j in 0..*bl {
                        child.emit(base + *disp + j as i64 * ext, out);
                    }
                }
            }
            Kind::Struct { fields } => {
                for (bl, disp, child) in fields {
                    let ext = child.bounds_extent() as i64;
                    for j in 0..*bl {
                        child.emit(base + *disp + j as i64 * ext, out);
                    }
                }
            }
            Kind::Resized { child, .. } => child.emit(base, out),
        }
    }

    fn bounds_extent(&self) -> u64 {
        let (lb, ub) = self.bounds();
        (ub - lb) as u64
    }

    /// (lb, ub) of the typemap, honoring Resized.
    fn bounds(&self) -> (i64, i64) {
        match &*self.inner {
            Kind::Bytes(n) => (0, *n as i64),
            Kind::Resized { lb, extent, .. } => (*lb, *lb + *extent as i64),
            Kind::Contiguous { count, child } => {
                let (clb, cub) = child.bounds();
                let ext = cub - clb;
                if *count == 0 {
                    (0, 0)
                } else {
                    (clb, clb + *count as i64 * ext)
                }
            }
            _ => {
                // General case: scan the typemap.
                let mut runs = Vec::new();
                self.emit(0, &mut runs);
                let mut lb = i64::MAX;
                let mut ub = i64::MIN;
                for (off, len) in &runs {
                    lb = lb.min(*off);
                    ub = ub.max(*off + *len as i64);
                }
                if lb > ub {
                    (0, 0)
                } else {
                    (lb, ub)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_is_one_run() {
        let f = Datatype::bytes(16).flatten();
        assert_eq!(f.runs, vec![(0, 16)]);
        assert_eq!((f.size, f.lb, f.extent), (16, 0, 16));
    }

    #[test]
    fn contiguous_merges_to_one_run() {
        let dt = Datatype::contiguous(4, &Datatype::bytes(8));
        let f = dt.flatten();
        assert_eq!(f.runs, vec![(0, 32)]);
        assert_eq!(f.extent, 32);
    }

    #[test]
    fn vector_strided_runs() {
        // 3 blocks of 2 elements (4B each), stride 5 elements.
        let el = Datatype::bytes(4);
        let dt = Datatype::vector(3, 2, 5, &el);
        let f = dt.flatten();
        assert_eq!(f.runs, vec![(0, 8), (20, 8), (40, 8)]);
        assert_eq!(f.size, 24);
        // Extent per MPI: spans to the end of the last block.
        assert_eq!(f.extent, 48);
    }

    #[test]
    fn vector_blocklen_equal_stride_is_contiguous() {
        let dt = Datatype::vector(4, 3, 3, &Datatype::bytes(1));
        assert_eq!(dt.flatten().runs, vec![(0, 12)]);
    }

    #[test]
    fn hvector_stride_in_bytes() {
        let dt = Datatype::hvector(2, 1, 100, &Datatype::bytes(10));
        assert_eq!(dt.flatten().runs, vec![(0, 10), (100, 10)]);
    }

    #[test]
    fn indexed_preserves_typemap_order() {
        // Deliberately out-of-order displacements: order must be preserved.
        let el = Datatype::bytes(2);
        let dt = Datatype::indexed(&[(1, 5), (2, 0)], &el);
        let f = dt.flatten();
        assert_eq!(f.runs, vec![(10, 2), (0, 4)]);
        assert_eq!(f.size, 6);
        assert_eq!(f.lb, 0);
        assert_eq!(f.extent, 12);
    }

    #[test]
    fn struct_with_mixed_children() {
        let a = Datatype::bytes(4);
        let b = Datatype::vector(2, 1, 2, &Datatype::bytes(2));
        let dt = Datatype::struct_of(&[(1, 0, a), (1, 8, b)]);
        let f = dt.flatten();
        // a at 0..4; b at 8: runs (8,2),(12,2).
        assert_eq!(f.runs, vec![(0, 4), (8, 2), (12, 2)]);
    }

    #[test]
    fn resized_controls_extent_not_data() {
        let dt = Datatype::resized(&Datatype::bytes(4), 0, 16);
        let f = dt.flatten();
        assert_eq!(f.runs, vec![(0, 4)]);
        assert_eq!(f.extent, 16);
        // Tiling a contiguous of resized: runs at 0 and 16.
        let two = Datatype::contiguous(2, &dt);
        assert_eq!(two.flatten().runs, vec![(0, 4), (16, 4)]);
    }

    #[test]
    fn nested_vector_of_vector() {
        // A 2-D tile: 2 rows of (2 blocks of 1×1B stride 2) rows 8B apart.
        let inner = Datatype::vector(2, 1, 2, &Datatype::bytes(1)); // 0,2; extent 3
        let resized = Datatype::resized(&inner, 0, 8);
        let outer = Datatype::contiguous(2, &resized);
        assert_eq!(outer.flatten().runs, vec![(0, 1), (2, 1), (8, 1), (10, 1)]);
    }

    #[test]
    fn subarray_2d_center_block() {
        // 4x4 matrix of 1-byte elements, take rows 1..3, cols 1..3.
        let dt = Datatype::subarray(&[4, 4], &[2, 2], &[1, 1], &Datatype::bytes(1));
        let f = dt.flatten();
        assert_eq!(f.runs, vec![(5, 2), (9, 2)]);
        assert_eq!(f.size, 4);
        assert_eq!(f.extent, 16);
        assert_eq!(f.lb, 0);
    }

    #[test]
    fn subarray_3d() {
        // 2x3x4 cube (1B elems), take [0..2, 1..2, 0..2].
        let dt = Datatype::subarray(&[2, 3, 4], &[2, 1, 2], &[0, 1, 0], &Datatype::bytes(1));
        let f = dt.flatten();
        // plane stride 12, row stride 4; origin = 0*12 + 1*4 + 0 = 4.
        assert_eq!(f.runs, vec![(4, 2), (16, 2)]);
        assert_eq!(f.extent, 24);
    }

    #[test]
    fn subarray_full_is_contiguous() {
        let dt = Datatype::subarray(&[3, 5], &[3, 5], &[0, 0], &Datatype::bytes(2));
        assert_eq!(dt.flatten().runs, vec![(0, 30)]);
    }

    #[test]
    fn subarray_element_wider_than_byte() {
        // 3x3 of 8-byte elements, column 1 (as a 3x1 subarray).
        let dt = Datatype::subarray(&[3, 3], &[3, 1], &[0, 1], &Datatype::bytes(8));
        let f = dt.flatten();
        assert_eq!(f.runs, vec![(8, 8), (32, 8), (56, 8)]);
    }

    #[test]
    fn darray_block_distribution() {
        // 10 elements over 3 ranks: 4,3,3.
        let (d0, n0) = Datatype::darray_block(10, 1, 3, 0);
        let (d1, n1) = Datatype::darray_block(10, 1, 3, 1);
        let (d2, n2) = Datatype::darray_block(10, 1, 3, 2);
        assert_eq!((n0, n1, n2), (4, 3, 3));
        assert_eq!(d0.flatten().runs, vec![(0, 4)]);
        assert_eq!(d1.flatten().runs, vec![(4, 3)]);
        assert_eq!(d2.flatten().runs, vec![(7, 3)]);
        // All tiles share the global extent.
        assert_eq!(d0.extent(), 10);
        assert_eq!(d2.extent(), 10);
    }

    #[test]
    fn size_and_extent_accessors() {
        let dt = Datatype::vector(2, 1, 4, &Datatype::bytes(3));
        assert_eq!(dt.size(), 6);
        assert_eq!(dt.extent(), 15); // (1*4 + 1)*3
    }

    #[test]
    fn flatten_equals_merged_typemap() {
        // flatten() must be exactly type_map() with adjacent runs merged.
        let dt = Datatype::struct_of(&[
            (2, 0, Datatype::bytes(4)),
            (1, 8, Datatype::vector(2, 2, 3, &Datatype::bytes(1))),
        ]);
        let tm = dt.type_map();
        let mut merged: Vec<(i64, u64)> = Vec::new();
        for (off, len) in tm {
            match merged.last_mut() {
                Some((lo, ll)) if *lo + *ll as i64 == off => *ll += len,
                _ => merged.push((off, len)),
            }
        }
        assert_eq!(dt.flatten().runs, merged);
    }

    #[test]
    fn zero_count_types_are_empty() {
        let dt = Datatype::contiguous(0, &Datatype::bytes(8));
        let f = dt.flatten();
        assert!(f.runs.is_empty());
        assert_eq!(f.size, 0);
    }
}
