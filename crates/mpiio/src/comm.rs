//! The message-passing substrate: a simulated MPI communicator.
//!
//! Each rank is a `simnet` actor on its own host (one process per node,
//! the paper-era cluster shape). Point-to-point messages carry
//! `(source, tag)` for MPI matching semantics; collectives — barrier,
//! bcast, allreduce, allgather, alltoallv — are built from point-to-point
//! with the textbook algorithms (dissemination, binomial tree, ring).
//!
//! The interconnect model mirrors the VIA rail: per-host transmit/receive
//! wire resources, fixed one-way latency, per-message host CPU cost. It is
//! a *separate* rail from the storage network (dedicated MPI network, as on
//! the paper-era clusters), so MPI traffic and file traffic don't contend.

use std::sync::Arc;

use parking_lot::Mutex;
use simnet::time::units::*;
use simnet::{ActorCtx, Bandwidth, Counter, Host, Port, Resource, SimDuration};

/// Interconnect cost constants (VIA-class network).
#[derive(Debug, Clone, Copy)]
pub struct CommCost {
    /// One-way wire + switch latency.
    pub latency: SimDuration,
    /// Wire rate per host port direction.
    pub bw: Bandwidth,
    /// Sender/receiver CPU per message (post + poll).
    pub per_msg_cpu: SimDuration,
}

impl Default for CommCost {
    fn default() -> Self {
        CommCost {
            latency: us(7),
            bw: Bandwidth::mb_per_sec(110),
            per_msg_cpu: SimDuration::from_nanos(800),
        }
    }
}

struct Envelope {
    src: usize,
    tag: u32,
    data: Vec<u8>,
}

struct RankEndpoint {
    incoming: Port<Envelope>,
    tx_wire: Resource,
    rx_wire: Resource,
    host: Host,
}

struct WorldInner {
    cost: CommCost,
    endpoints: Vec<RankEndpoint>,
    /// Messages observed (diagnostics).
    msgs: Counter,
    bytes: Counter,
}

/// The shared communicator fabric; create once, then hand a [`Comm`] to
/// each rank actor via [`CommWorld::comm`].
#[derive(Clone)]
pub struct CommWorld {
    inner: Arc<WorldInner>,
}

impl CommWorld {
    /// Build a world of `hosts.len()` ranks, rank i on `hosts[i]`.
    pub fn new(cost: CommCost, hosts: Vec<Host>) -> CommWorld {
        let endpoints = hosts
            .into_iter()
            .enumerate()
            .map(|(i, host)| RankEndpoint {
                incoming: Port::new(&format!("mpi-rank{i}")),
                tx_wire: Resource::new(&format!("mpi{i}.tx")),
                rx_wire: Resource::new(&format!("mpi{i}.rx")),
                host,
            })
            .collect();
        CommWorld {
            inner: Arc::new(WorldInner {
                cost,
                endpoints,
                msgs: Counter::new(),
                bytes: Counter::new(),
            }),
        }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.inner.endpoints.len()
    }

    /// The handle rank `rank`'s actor uses.
    pub fn comm(&self, rank: usize) -> Comm {
        assert!(rank < self.size());
        Comm {
            world: self.clone(),
            rank,
            unexpected: Mutex::new(Vec::new()),
            coll_seq: Mutex::new(0),
        }
    }

    /// Snapshot of the communicator's traffic counters so far.
    pub fn traffic(&self) -> TrafficStats {
        TrafficStats {
            msgs: self.inner.msgs.get(),
            bytes: self.inner.bytes.get(),
        }
    }
}

/// A point-in-time snapshot of message-layer traffic, read with
/// [`CommWorld::traffic`]. Named fields replace the old positional tuple.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Point-to-point messages sent.
    pub msgs: u64,
    /// Payload bytes carried by those messages.
    pub bytes: u64,
}

/// Tag space reserved for collectives (user tags must stay below).
const COLL_TAG_BASE: u32 = 0x8000_0000;

/// One rank's communicator handle. Owned by that rank's actor.
pub struct Comm {
    world: CommWorld,
    rank: usize,
    /// Messages received but not yet matched (MPI unexpected queue).
    unexpected: Mutex<Vec<Envelope>>,
    /// Collective sequence number; identical across ranks because MPI
    /// requires identical collective call order.
    coll_seq: Mutex<u32>,
}

impl Comm {
    /// This rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.world.size()
    }

    /// This rank's host.
    pub fn host(&self) -> &Host {
        &self.world.inner.endpoints[self.rank].host
    }

    /// Send `data` to `dst` with `tag` (eager; returns after injecting).
    pub fn send(&self, ctx: &ActorCtx, dst: usize, tag: u32, data: &[u8]) {
        let w = &self.world.inner;
        assert!(dst < w.endpoints.len(), "send to invalid rank {dst}");
        let me = &w.endpoints[self.rank];
        let peer = &w.endpoints[dst];
        me.host.compute(ctx, w.cost.per_msg_cpu);
        w.msgs.inc();
        w.bytes.add(data.len() as u64);
        let ser = w.cost.bw.time_for(data.len() as u64);
        let (tx_start, _) = me.tx_wire.book_span(ctx.now(), ser);
        let arrival = peer.rx_wire.book(tx_start + w.cost.latency, ser);
        peer.incoming.send(
            ctx,
            Envelope {
                src: self.rank,
                tag,
                data: data.to_vec(),
            },
            arrival,
        );
    }

    /// Receive a message matching `(src, tag)`; `None` acts as a wildcard.
    /// Returns `(src, tag, data)`.
    pub fn recv(
        &self,
        ctx: &ActorCtx,
        src: Option<usize>,
        tag: Option<u32>,
    ) -> (usize, u32, Vec<u8>) {
        let w = &self.world.inner;
        let me = &w.endpoints[self.rank];
        loop {
            {
                let mut q = self.unexpected.lock();
                if let Some(pos) = q
                    .iter()
                    .position(|e| src.is_none_or(|s| s == e.src) && tag.is_none_or(|t| t == e.tag))
                {
                    let e = q.remove(pos);
                    drop(q);
                    me.host.compute(ctx, w.cost.per_msg_cpu);
                    return (e.src, e.tag, e.data);
                }
            }
            match me.incoming.recv(ctx) {
                Some(e) => self.unexpected.lock().push(e),
                None => panic!("rank {} communicator closed mid-recv", self.rank),
            }
        }
    }

    fn next_coll_tag(&self) -> u32 {
        let mut s = self.coll_seq.lock();
        *s = s.wrapping_add(1);
        COLL_TAG_BASE + (*s % 0x0100_0000)
    }

    /// Barrier (dissemination algorithm, ⌈log₂ p⌉ rounds).
    pub fn barrier(&self, ctx: &ActorCtx) {
        let p = self.size();
        if p == 1 {
            return;
        }
        let base = self.next_coll_tag();
        let mut round = 0u32;
        let mut dist = 1usize;
        while dist < p {
            let to = (self.rank + dist) % p;
            let from = (self.rank + p - dist) % p;
            self.send(ctx, to, base + (round << 8), &[]);
            self.recv(ctx, Some(from), Some(base + (round << 8)));
            dist <<= 1;
            round += 1;
        }
    }

    /// Broadcast from `root` (binomial tree). All ranks pass their buffer;
    /// non-roots receive into it.
    pub fn bcast(&self, ctx: &ActorCtx, root: usize, data: &mut Vec<u8>) {
        let p = self.size();
        if p == 1 {
            return;
        }
        let tag = self.next_coll_tag();
        // Rotate ranks so root is virtual rank 0.
        let vrank = (self.rank + p - root) % p;
        // Receive from parent (unless root).
        if vrank != 0 {
            let mut mask = 1usize;
            while mask <= vrank {
                mask <<= 1;
            }
            mask >>= 1;
            let vparent = vrank - mask;
            let parent = (vparent + root) % p;
            let (_, _, d) = self.recv(ctx, Some(parent), Some(tag));
            *data = d;
        }
        // Forward to children.
        let mut mask = 1usize;
        while mask <= vrank {
            mask <<= 1;
        }
        while mask < p {
            let vchild = vrank + mask;
            if vchild < p {
                let child = (vchild + root) % p;
                self.send(ctx, child, tag, data);
            }
            mask <<= 1;
        }
    }

    /// All-gather: every rank contributes `data`; returns all contributions
    /// indexed by rank (ring algorithm; handles variable sizes).
    pub fn allgather(&self, ctx: &ActorCtx, data: &[u8]) -> Vec<Vec<u8>> {
        let p = self.size();
        let tag = self.next_coll_tag();
        let mut slots: Vec<Vec<u8>> = vec![Vec::new(); p];
        slots[self.rank] = data.to_vec();
        if p == 1 {
            return slots;
        }
        let right = (self.rank + 1) % p;
        let left = (self.rank + p - 1) % p;
        // Ring: in step s, forward the piece originally from rank-s.
        for s in 0..p - 1 {
            let send_origin = (self.rank + p - s) % p;
            let piece = slots[send_origin].clone();
            self.send(ctx, right, tag, &piece);
            let (_, _, d) = self.recv(ctx, Some(left), Some(tag));
            let recv_origin = (self.rank + p - s - 1) % p;
            slots[recv_origin] = d;
        }
        slots
    }

    /// All-reduce of one u64 with the given operation.
    pub fn allreduce_u64(&self, ctx: &ActorCtx, op: ReduceOp, v: u64) -> u64 {
        let all = self.allgather(ctx, &v.to_le_bytes());
        let vals = all
            .iter()
            .map(|b| u64::from_le_bytes(b.as_slice().try_into().unwrap()));
        match op {
            ReduceOp::Sum => vals.sum(),
            ReduceOp::Max => vals.max().unwrap(),
            ReduceOp::Min => vals.min().unwrap(),
        }
    }

    /// Personalized all-to-all with per-destination payloads; returns the
    /// payloads received, indexed by source. Borrows the send buffers so
    /// callers in a loop can clear and refill them each round.
    pub fn alltoallv(&self, ctx: &ActorCtx, sends: &[Vec<u8>]) -> Vec<Vec<u8>> {
        let p = self.size();
        assert_eq!(sends.len(), p, "alltoallv needs one payload per rank");
        let tag = self.next_coll_tag();
        let mut recvs: Vec<Vec<u8>> = vec![Vec::new(); p];
        recvs[self.rank] = sends[self.rank].clone();
        // Pairwise-exchange schedule: step s partners rank^s on power-of-two
        // sizes; general sizes use (rank + s) % p pairing.
        for s in 1..p {
            let to = (self.rank + s) % p;
            let from = (self.rank + p - s) % p;
            self.send(ctx, to, tag, &sends[to]);
            let (_, _, d) = self.recv(ctx, Some(from), Some(tag));
            recvs[from] = d;
        }
        recvs
    }

    /// Exclusive prefix sum of a u64 (rank 0 gets 0).
    pub fn exscan_u64(&self, ctx: &ActorCtx, v: u64) -> u64 {
        let all = self.allgather(ctx, &v.to_le_bytes());
        all[..self.rank]
            .iter()
            .map(|b| u64::from_le_bytes(b.as_slice().try_into().unwrap()))
            .sum()
    }
}

/// Reduction operations for [`Comm::allreduce_u64`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Sum.
    Sum,
    /// Maximum.
    Max,
    /// Minimum.
    Min,
}

/// Spawn `n` rank actors running `body(ctx, comm)`; returns the world.
///
/// Hosts are created in `cluster` (one per rank). The kernel must be run
/// by the caller afterwards.
pub fn spawn_ranks<F>(
    kernel: &simnet::SimKernel,
    cluster: &simnet::Cluster,
    cost: CommCost,
    n: usize,
    body: F,
) -> CommWorld
where
    F: Fn(&ActorCtx, &Comm) + Send + Sync + 'static,
{
    let hosts: Vec<Host> = (0..n)
        .map(|i| cluster.add_host(&format!("rank{i}")))
        .collect();
    let world = CommWorld::new(cost, hosts);
    let body = Arc::new(body);
    for r in 0..n {
        let comm = world.comm(r);
        let body = body.clone();
        kernel.spawn(&format!("rank{r}"), move |ctx| {
            body(ctx, &comm);
        });
    }
    world
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{Cluster, SimKernel};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn run_world<F>(n: usize, body: F) -> CommWorld
    where
        F: Fn(&ActorCtx, &Comm) + Send + Sync + 'static,
    {
        let kernel = SimKernel::new();
        let cluster = Cluster::new();
        let world = spawn_ranks(&kernel, &cluster, CommCost::default(), n, body);
        kernel.run();
        world
    }

    #[test]
    fn pt2pt_roundtrip() {
        run_world(2, |ctx, comm| match comm.rank() {
            0 => {
                comm.send(ctx, 1, 7, b"ping");
                let (src, tag, d) = comm.recv(ctx, Some(1), Some(8));
                assert_eq!((src, tag, d.as_slice()), (1, 8, b"pong".as_slice()));
            }
            _ => {
                let (_, _, d) = comm.recv(ctx, Some(0), Some(7));
                assert_eq!(d, b"ping");
                comm.send(ctx, 0, 8, b"pong");
            }
        });
    }

    #[test]
    fn tag_matching_skips_nonmatching() {
        run_world(2, |ctx, comm| match comm.rank() {
            0 => {
                comm.send(ctx, 1, 1, b"first");
                comm.send(ctx, 1, 2, b"second");
            }
            _ => {
                // Ask for tag 2 first: must match the second message.
                let (_, _, d2) = comm.recv(ctx, Some(0), Some(2));
                assert_eq!(d2, b"second");
                let (_, _, d1) = comm.recv(ctx, Some(0), Some(1));
                assert_eq!(d1, b"first");
            }
        });
    }

    #[test]
    fn wildcard_recv() {
        run_world(3, |ctx, comm| {
            if comm.rank() == 0 {
                let mut seen = Vec::new();
                for _ in 0..2 {
                    let (src, _, _) = comm.recv(ctx, None, Some(5));
                    seen.push(src);
                }
                seen.sort_unstable();
                assert_eq!(seen, vec![1, 2]);
            } else {
                comm.send(ctx, 0, 5, &[comm.rank() as u8]);
            }
        });
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        let maxes = Arc::new(AtomicU64::new(0));
        let mins = Arc::new(AtomicU64::new(u64::MAX));
        let (mx, mn) = (maxes.clone(), mins.clone());
        run_world(4, move |ctx, comm| {
            // Stagger ranks widely, then barrier.
            ctx.advance(us(comm.rank() as u64 * 500));
            comm.barrier(ctx);
            let t = ctx.now().as_nanos();
            mx.fetch_max(t, Ordering::Relaxed);
            mn.fetch_min(t, Ordering::Relaxed);
        });
        let spread = maxes.load(Ordering::Relaxed) - mins.load(Ordering::Relaxed);
        // After a barrier every rank is past the slowest rank's entry
        // (1500us); spread is bounded by a few message latencies.
        assert!(mins.load(Ordering::Relaxed) >= 1_500_000);
        assert!(spread < 100_000, "barrier exit spread {spread}ns");
    }

    #[test]
    fn bcast_from_each_root() {
        for root in 0..4 {
            run_world(4, move |ctx, comm| {
                let mut data = if comm.rank() == root {
                    vec![42u8; 1000]
                } else {
                    Vec::new()
                };
                comm.bcast(ctx, root, &mut data);
                assert_eq!(data, vec![42u8; 1000], "rank {}", comm.rank());
            });
        }
    }

    #[test]
    fn allgather_collects_in_rank_order() {
        run_world(5, |ctx, comm| {
            let mine = vec![comm.rank() as u8; comm.rank() + 1]; // variable sizes
            let all = comm.allgather(ctx, &mine);
            for (r, piece) in all.iter().enumerate() {
                assert_eq!(piece, &vec![r as u8; r + 1], "slot {r}");
            }
        });
    }

    #[test]
    fn allreduce_ops() {
        run_world(4, |ctx, comm| {
            let v = (comm.rank() as u64 + 1) * 10;
            assert_eq!(comm.allreduce_u64(ctx, ReduceOp::Sum, v), 100);
            assert_eq!(comm.allreduce_u64(ctx, ReduceOp::Max, v), 40);
            assert_eq!(comm.allreduce_u64(ctx, ReduceOp::Min, v), 10);
        });
    }

    #[test]
    fn alltoallv_personalized_exchange() {
        run_world(4, |ctx, comm| {
            let p = comm.size();
            // Rank r sends "r*10+d" repeated (d+1) times to destination d.
            let sends: Vec<Vec<u8>> = (0..p)
                .map(|d| vec![(comm.rank() * 10 + d) as u8; d + 1])
                .collect();
            let recvs = comm.alltoallv(ctx, &sends);
            for (s, got) in recvs.iter().enumerate() {
                let expect = vec![(s * 10 + comm.rank()) as u8; comm.rank() + 1];
                assert_eq!(got, &expect, "from rank {s}");
            }
        });
    }

    #[test]
    fn exscan_prefix_sums() {
        run_world(4, |ctx, comm| {
            let v = (comm.rank() as u64 + 1) * 100;
            let pre = comm.exscan_u64(ctx, v);
            let expect: u64 = (1..=comm.rank() as u64).map(|r| r * 100).sum();
            assert_eq!(pre, expect);
        });
    }

    #[test]
    fn single_rank_collectives_are_noops() {
        run_world(1, |ctx, comm| {
            comm.barrier(ctx);
            let mut d = vec![1, 2, 3];
            comm.bcast(ctx, 0, &mut d);
            assert_eq!(d, vec![1, 2, 3]);
            assert_eq!(comm.allgather(ctx, &d), vec![vec![1, 2, 3]]);
            assert_eq!(comm.allreduce_u64(ctx, ReduceOp::Sum, 9), 9);
            assert_eq!(comm.alltoallv(ctx, &[vec![7]]), vec![vec![7]]);
        });
    }

    #[test]
    fn traffic_counters_advance() {
        let w = run_world(2, |ctx, comm| {
            if comm.rank() == 0 {
                comm.send(ctx, 1, 1, &[0u8; 1000]);
            } else {
                comm.recv(ctx, Some(0), Some(1));
            }
        });
        let t = w.traffic();
        assert_eq!(t.msgs, 1);
        assert_eq!(t.bytes, 1000);
    }

    #[test]
    fn bandwidth_bound_large_message() {
        let dur = Arc::new(AtomicU64::new(0));
        let d2 = dur.clone();
        run_world(2, move |ctx, comm| {
            if comm.rank() == 0 {
                comm.send(ctx, 1, 1, &vec![0u8; 1 << 20]);
            } else {
                let t0 = ctx.now();
                comm.recv(ctx, Some(0), Some(1));
                d2.store(ctx.now().since(t0).as_nanos(), Ordering::Relaxed);
            }
        });
        let mb_s = (1 << 20) as f64 / (dur.load(Ordering::Relaxed) as f64 / 1e9) / 1e6;
        assert!((95.0..111.0).contains(&mb_s), "MPI msg rate = {mb_s} MB/s");
    }
}
