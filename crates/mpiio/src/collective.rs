//! Collective I/O: ROMIO-style two-phase with generalized aggregators.
//!
//! Phase structure for a collective write:
//! 1. ranks flatten their view-mapped requests and allgather the extents;
//! 2. the file range `[gmin, gmax)` is split into contiguous *file domains*,
//!    one per aggregator (`cb_nodes`, default: every rank);
//! 3. each aggregator sweeps its domain in `cb_buffer_size` windows; in each
//!    phase every rank ships the pieces of its data that fall in each
//!    aggregator's current window (one `alltoallv`), the aggregator overlays
//!    them into its collective buffer and issues one coalesced filesystem
//!    write per covered run.
//!
//! Reads run the same sweep in reverse: ranks send piece *descriptors*, the
//! aggregator reads the coalesced coverage once and ships pieces back.
//!
//! The payoff is the paper-era argument for collective I/O: many tiny
//! strided accesses become a few large contiguous transfers, at the price
//! of an interconnect exchange — cheap on a VIA-class network.
//!
//! With `romio_cb_pipeline` left on (the default) the sweep is
//! *double-buffered*: each aggregator owns two collective buffers and
//! issues window k's filesystem batch nonblocking (`iwrite_list` /
//! `iread_list`, which DAFS handles carry as one vectored wire request and
//! other drivers serve as the plain contiguous batch), so it drains while
//! window k+1 is packed, exchanged and
//! overlaid into the other buffer. Per window the sweep then costs
//! roughly `max(exchange, io)` instead of `exchange + io`. Time the batch
//! spent in flight before its wait is recorded in
//! `mpiio.twophase.overlap_ns`; `romio_cb_pipeline=disable` restores the
//! strictly synchronous sweep.

use simnet::{ActorCtx, Host, SimTime, VirtAddr};

use crate::adio::{AdioRequest, AdioResult};
use crate::comm::Comm;
use crate::file::MpiFile;
use crate::hints::TriState;

/// Accumulate virtual time since `*since` into the named `_ns` counter and
/// advance the mark. The two-phase sweep calls this at each phase boundary
/// so `bench::report::layer_breakdown` can split collective time into
/// aggregation / exchange / I/O.
fn charge_phase(ctx: &ActorCtx, name: &'static str, since: &mut SimTime) {
    let now = ctx.now();
    ctx.metrics().counter(name).add((now - *since).as_nanos());
    *since = now;
}

/// One mapped piece of a rank's request.
#[derive(Debug, Clone, Copy)]
struct Piece {
    /// Physical file offset.
    off: u64,
    /// Length in bytes.
    len: u64,
    /// Offset within the rank's user buffer.
    buf_off: u64,
}

fn mapped_pieces(file: &MpiFile, offset_etypes: u64, nbytes: u64) -> Vec<Piece> {
    let view = file.view();
    let logical = offset_etypes * view.etype_size();
    let mut buf_off = 0u64;
    view.map(logical, nbytes)
        .into_iter()
        .map(|(off, len)| {
            let p = Piece { off, len, buf_off };
            buf_off += len;
            p
        })
        .collect()
}

/// Intersect `p` with the window `[ws, we)`.
fn clip(p: &Piece, ws: u64, we: u64) -> Option<Piece> {
    let s = p.off.max(ws);
    let e = (p.off + p.len).min(we);
    if s >= e {
        return None;
    }
    Some(Piece {
        off: s,
        len: e - s,
        buf_off: p.buf_off + (s - p.off),
    })
}

fn put_u64(v: &mut Vec<u8>, x: u64) {
    v.extend_from_slice(&x.to_le_bytes());
}

fn get_u64(v: &[u8], pos: &mut usize) -> u64 {
    let x = u64::from_le_bytes(v[*pos..*pos + 8].try_into().unwrap());
    *pos += 8;
    x
}

/// Shared sweep geometry, agreed by allgather.
struct Sweep {
    gmin: u64,
    fd: u64,
    naggs: usize,
    cb: u64,
    phases: u64,
    gmax: u64,
}

fn plan_sweep(ctx: &ActorCtx, comm: &Comm, file: &MpiFile, pieces: &[Piece]) -> Option<Sweep> {
    let (lo, hi) = match (pieces.first(), pieces.last()) {
        (Some(f), Some(l)) => (f.off, l.off + l.len),
        _ => (u64::MAX, 0),
    };
    let mut msg = Vec::with_capacity(16);
    put_u64(&mut msg, lo);
    put_u64(&mut msg, hi);
    let all = comm.allgather(ctx, &msg);
    let mut gmin = u64::MAX;
    let mut gmax = 0u64;
    for a in &all {
        let mut pos = 0;
        let l = get_u64(a, &mut pos);
        let h = get_u64(a, &mut pos);
        if l != u64::MAX {
            gmin = gmin.min(l);
            gmax = gmax.max(h);
        }
    }
    if gmin >= gmax {
        return None; // nobody has data
    }
    let naggs = file.hints().aggregators(comm.size());
    let fd = (gmax - gmin).div_ceil(naggs as u64).max(1);
    let cb = file.hints().cb_buffer_size;
    let phases = fd.div_ceil(cb);
    Some(Sweep {
        gmin,
        fd,
        naggs,
        cb,
        phases,
        gmax,
    })
}

impl Sweep {
    /// Aggregator `a`'s domain.
    fn domain(&self, a: usize) -> (u64, u64) {
        let s = self.gmin + a as u64 * self.fd;
        (s.min(self.gmax), (s + self.fd).min(self.gmax))
    }

    /// Aggregator `a`'s window in `phase`, if any.
    fn window(&self, a: usize, phase: u64) -> Option<(u64, u64)> {
        let (ds, de) = self.domain(a);
        let ws = ds + phase * self.cb;
        if ws >= de {
            return None;
        }
        Some((ws, (ws + self.cb).min(de)))
    }
}

fn merge_runs(mut runs: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    runs.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(runs.len());
    for (off, len) in runs {
        match out.last_mut() {
            Some((o, l)) if *o + *l >= off => {
                let end = (off + len).max(*o + *l);
                *l = end - *o;
            }
            _ => out.push((off, len)),
        }
    }
    out
}

/// A read window whose replies are still owed: the per-rank request
/// messages, plus `(cbuf, window_start)` if this rank aggregated it.
type OwedWindow = (Vec<Vec<u8>>, Option<(VirtAddr, u64)>);

/// Decode piece descriptors `(off u64, len u64)*` from each rank's
/// request message into one flat list.
fn piece_descs(requests: &[Vec<u8>]) -> Vec<(u64, u64)> {
    let mut wanted = Vec::new();
    for msg in requests {
        let mut pos = 0usize;
        while pos < msg.len() {
            let off = get_u64(msg, &mut pos);
            let len = get_u64(msg, &mut pos);
            wanted.push((off, len));
        }
    }
    wanted
}

/// Record how long a nonblocking window batch has been in flight, then
/// complete it. The `overlap_ns` share is sweep time the synchronous
/// path would have spent blocked in `io_ns`.
fn drain_window_batch(
    ctx: &ActorCtx,
    pending: Option<(AdioRequest, SimTime)>,
    mark: &mut SimTime,
) -> AdioResult<()> {
    if let Some((req, issued)) = pending {
        ctx.metrics()
            .counter("mpiio.twophase.overlap_ns")
            .add((ctx.now() - issued).as_nanos());
        req.wait(ctx)?;
        charge_phase(ctx, "mpiio.twophase.io_ns", mark);
    }
    Ok(())
}

/// Answer a window's piece requests out of the collective buffer it was
/// read into, exchange the replies, and scatter what came back into the
/// user buffer. Runs on every rank each round — the reply `alltoallv` is
/// collective — with `served` set only on the aggregator that holds data
/// for these requests. Returns the bytes landed locally.
#[allow(clippy::too_many_arguments)]
fn ship_read_replies(
    ctx: &ActorCtx,
    comm: &Comm,
    host: &Host,
    pieces: &[Piece],
    dst: VirtAddr,
    requests: &[Vec<u8>],
    served: Option<(VirtAddr, u64)>,
    mark: &mut SimTime,
) -> u64 {
    // Build per-rank replies in request order.
    let mut replies: Vec<Vec<u8>> = vec![Vec::new(); comm.size()];
    if let Some((cbuf, ws)) = served {
        for (r, msg) in requests.iter().enumerate() {
            let mut pos = 0usize;
            let reply = &mut replies[r];
            while pos < msg.len() {
                let off = get_u64(msg, &mut pos);
                let len = get_u64(msg, &mut pos);
                put_u64(reply, off);
                put_u64(reply, len);
                let data = host.mem.read_vec(cbuf.offset(off - ws), len as usize);
                reply.extend_from_slice(&data);
                host.compute(ctx, simnet::cost::HostCost::default().copy(len));
            }
        }
    }
    charge_phase(ctx, "mpiio.twophase.aggregation_ns", mark);
    let incoming = comm.alltoallv(ctx, &replies);
    charge_phase(ctx, "mpiio.twophase.exchange_ns", mark);
    // Scatter the pieces I got back into my user buffer.
    let mut total = 0u64;
    for msg in &incoming {
        let mut pos = 0usize;
        while pos < msg.len() {
            let off = get_u64(msg, &mut pos);
            let len = get_u64(msg, &mut pos);
            // Find the owning piece to recover the buffer offset.
            let p = pieces
                .iter()
                .find(|p| off >= p.off && off + len <= p.off + p.len)
                .expect("reply for an unrequested piece");
            let boff = p.buf_off + (off - p.off);
            host.mem
                .write(dst.offset(boff), &msg[pos..pos + len as usize]);
            host.compute(ctx, simnet::cost::HostCost::default().copy(len));
            pos += len as usize;
            total += len;
        }
    }
    total
}

/// `MPI_File_write_at_all`.
#[allow(clippy::needless_range_loop)] // `a` indexes both windows and sends
pub fn write_at_all(
    ctx: &ActorCtx,
    comm: &Comm,
    file: &MpiFile,
    offset_etypes: u64,
    src: VirtAddr,
    nbytes: u64,
) -> AdioResult<u64> {
    if file.hints().cb_write == TriState::Disable {
        let pieces = mapped_pieces(file, offset_etypes, nbytes);
        let ranges: Vec<(u64, u64)> = pieces.iter().map(|p| (p.off, p.len)).collect();
        let r = file.write_ranges(ctx, &ranges, src).map(|_| nbytes);
        comm.barrier(ctx);
        return r;
    }
    let pieces = mapped_pieces(file, offset_etypes, nbytes);
    let Some(sweep) = plan_sweep(ctx, comm, file, &pieces) else {
        return Ok(nbytes);
    };
    let host = file.host().clone();
    let is_agg = comm.rank() < sweep.naggs;
    let pipelined = file.hints().cb_pipeline != TriState::Disable;
    // Cache-aware collective buffering (`romio_cb_cache`): aggregated
    // windows go through the lease-coherent write-back cache — one local
    // copy per run now, the wire drain riding the coalesced `WriteList`
    // flush at sync/release. Strictly opt-in, and only on handles opened
    // with `dafs_cache` enabled (`cache_collective` captures that).
    // Single-aggregator sweeps only: the write lease spans the whole
    // file, so a second buffering aggregator would park the first's
    // write-through behind a recall its holder — blocked in the next
    // exchange — can never service. Wider sweeps keep the list path.
    let cb_cache = file.hints().cb_cache == TriState::Enable
        && file.adio().cache_collective()
        && sweep.naggs == 1;
    // Two collective buffers when pipelining: batch k-1 drains from one
    // while phase k overlays into the other.
    let nbufs = if pipelined { 2 } else { 1 };
    let cbufs: Vec<VirtAddr> = (0..if is_agg { nbufs } else { 0 })
        .map(|_| host.mem.alloc(sweep.cb as usize))
        .collect();
    ctx.metrics().counter("mpiio.twophase.writes").inc();
    ctx.trace(
        "mpiio",
        "twophase.write",
        &[
            ("naggs", obs::Value::U64(sweep.naggs as u64)),
            ("phases", obs::Value::U64(sweep.phases)),
            ("extent", obs::Value::U64(sweep.gmax - sweep.gmin)),
        ],
    );
    let mut mark = ctx.now();
    let mut sends: Vec<Vec<u8>> = vec![Vec::new(); comm.size()];
    let mut pending: Option<(AdioRequest, SimTime)> = None;

    for phase in 0..sweep.phases {
        // Ship my pieces to each aggregator's current window.
        for s in sends.iter_mut() {
            s.clear();
        }
        for a in 0..sweep.naggs {
            let Some((ws, we)) = sweep.window(a, phase) else {
                continue;
            };
            let msg = &mut sends[a];
            for p in &pieces {
                if let Some(c) = clip(p, ws, we) {
                    put_u64(msg, c.off);
                    put_u64(msg, c.len);
                    let data = host.mem.read_vec(src.offset(c.buf_off), c.len as usize);
                    msg.extend_from_slice(&data);
                    // Packing copy.
                    host.compute(ctx, simnet::cost::HostCost::default().copy(c.len));
                }
            }
        }
        charge_phase(ctx, "mpiio.twophase.aggregation_ns", &mut mark);
        let received = comm.alltoallv(ctx, &sends);
        charge_phase(ctx, "mpiio.twophase.exchange_ns", &mut mark);
        // Aggregate my window. When pipelining, the previous batch is still
        // draining from the *other* collective buffer while this overlays.
        let mut reqs: Option<Vec<(u64, VirtAddr, u64)>> = None;
        if let (Some(&cbuf), Some((ws, we))) = (
            cbufs.get(phase as usize % nbufs),
            sweep.window(comm.rank(), phase),
        ) {
            let mut covered: Vec<(u64, u64)> = Vec::new();
            for msg in &received {
                let mut pos = 0usize;
                while pos < msg.len() {
                    let off = get_u64(msg, &mut pos);
                    let len = get_u64(msg, &mut pos);
                    host.mem
                        .write(cbuf.offset(off - ws), &msg[pos..pos + len as usize]);
                    host.compute(ctx, simnet::cost::HostCost::default().copy(len));
                    pos += len as usize;
                    covered.push((off, len));
                }
            }
            let runs = merge_runs(covered);
            let r: Vec<(u64, VirtAddr, u64)> = runs
                .iter()
                .map(|(off, len)| (*off, cbuf.offset(off - ws), *len))
                .collect();
            debug_assert!(runs.iter().all(|(o, l)| *o >= ws && o + l <= we));
            charge_phase(ctx, "mpiio.twophase.aggregation_ns", &mut mark);
            reqs = Some(r);
        }
        if cb_cache {
            // Buffer the aggregated runs dirty in the client cache; no
            // per-window wire batch — the flush coalesces them later.
            if let Some(r) = reqs {
                for (off, addr, len) in &r {
                    file.adio().write_contig(ctx, *off, *addr, *len)?;
                }
                charge_phase(ctx, "mpiio.twophase.io_ns", &mut mark);
            }
        } else if pipelined {
            // Drain window k-1 only now — its filesystem time since issue
            // ran under this phase's pack/exchange.
            drain_window_batch(ctx, pending.take(), &mut mark)?;
            if let Some(r) = reqs {
                pending = Some((file.adio().iwrite_list(ctx, &r), ctx.now()));
                // Post cost of issuing the batch.
                charge_phase(ctx, "mpiio.twophase.io_ns", &mut mark);
            }
        } else if let Some(r) = reqs {
            file.adio().write_list(ctx, &r)?;
            charge_phase(ctx, "mpiio.twophase.io_ns", &mut mark);
        }
    }
    drain_window_batch(ctx, pending.take(), &mut mark)?;
    for cbuf in cbufs {
        host.mem.free(cbuf);
    }
    mark = ctx.now();
    comm.barrier(ctx);
    // Time blocked at the closing barrier — mostly waiting on aggregator I/O.
    charge_phase(ctx, "mpiio.twophase.wait_ns", &mut mark);
    Ok(nbytes)
}

/// `MPI_File_read_at_all`.
#[allow(clippy::needless_range_loop)] // `a` indexes both windows and sends
pub fn read_at_all(
    ctx: &ActorCtx,
    comm: &Comm,
    file: &MpiFile,
    offset_etypes: u64,
    dst: VirtAddr,
    nbytes: u64,
) -> AdioResult<u64> {
    if file.hints().cb_read == TriState::Disable {
        let pieces = mapped_pieces(file, offset_etypes, nbytes);
        let ranges: Vec<(u64, u64)> = pieces.iter().map(|p| (p.off, p.len)).collect();
        let r = file.read_ranges(ctx, &ranges, dst);
        comm.barrier(ctx);
        return r;
    }
    let pieces = mapped_pieces(file, offset_etypes, nbytes);
    let Some(sweep) = plan_sweep(ctx, comm, file, &pieces) else {
        return Ok(0);
    };
    let host = file.host().clone();
    let is_agg = comm.rank() < sweep.naggs;
    let pipelined = file.hints().cb_pipeline != TriState::Disable;
    // Cache-aware collective buffering (`romio_cb_cache`): aggregators
    // fill their windows through the lease-coherent cache, so re-read
    // sweeps serve exchange data from leased pages without wire traffic.
    let cb_cache = file.hints().cb_cache == TriState::Enable && file.adio().cache_collective();
    // Two collective buffers when pipelining: window k reads into one
    // while window k-1's replies ship from the other.
    let nbufs = if pipelined { 2 } else { 1 };
    let cbufs: Vec<VirtAddr> = (0..if is_agg { nbufs } else { 0 })
        .map(|_| host.mem.alloc(sweep.cb as usize))
        .collect();
    let mut total = 0u64;
    ctx.metrics().counter("mpiio.twophase.reads").inc();
    ctx.trace(
        "mpiio",
        "twophase.read",
        &[
            ("naggs", obs::Value::U64(sweep.naggs as u64)),
            ("phases", obs::Value::U64(sweep.phases)),
            ("extent", obs::Value::U64(sweep.gmax - sweep.gmin)),
        ],
    );
    let mut mark = ctx.now();
    let mut sends: Vec<Vec<u8>> = vec![Vec::new(); comm.size()];
    let mut pending: Option<(AdioRequest, SimTime)> = None;
    // Pipelined sweep: the previous phase's request messages still owed
    // replies, plus the buffer serving them if this rank aggregated that
    // window. Kept `Some` on every rank so the reply exchange stays
    // collective.
    let mut owed: Option<OwedWindow> = None;

    for phase in 0..sweep.phases {
        // Send piece descriptors to aggregators.
        for s in sends.iter_mut() {
            s.clear();
        }
        for a in 0..sweep.naggs {
            let Some((ws, we)) = sweep.window(a, phase) else {
                continue;
            };
            let msg = &mut sends[a];
            for p in &pieces {
                if let Some(c) = clip(p, ws, we) {
                    put_u64(msg, c.off);
                    put_u64(msg, c.len);
                }
            }
        }
        charge_phase(ctx, "mpiio.twophase.aggregation_ns", &mut mark);
        let requests = comm.alltoallv(ctx, &sends);
        charge_phase(ctx, "mpiio.twophase.exchange_ns", &mut mark);
        if pipelined {
            // Window k-1's batch must land before its buffer is answered
            // from — and before the next issue: one batch outstanding
            // keeps the DAFS credit window honest.
            drain_window_batch(ctx, pending.take(), &mut mark)?;
            // Issue my window's coalesced read nonblocking.
            let mut served: Option<(VirtAddr, u64)> = None;
            if let (Some(&cbuf), Some((ws, _we))) = (
                cbufs.get(phase as usize % nbufs),
                sweep.window(comm.rank(), phase),
            ) {
                let runs = merge_runs(piece_descs(&requests));
                let reqs: Vec<(u64, VirtAddr, u64)> = runs
                    .iter()
                    .map(|(off, len)| (*off, cbuf.offset(off - ws), *len))
                    .collect();
                charge_phase(ctx, "mpiio.twophase.aggregation_ns", &mut mark);
                if cb_cache {
                    // Leased pages answer locally; misses fetch-and-keep.
                    for (off, addr, len) in &reqs {
                        file.adio().read_contig(ctx, *off, *addr, *len)?;
                    }
                } else {
                    pending = Some((file.adio().iread_list(ctx, &reqs), ctx.now()));
                }
                // Post cost of issuing the batch.
                charge_phase(ctx, "mpiio.twophase.io_ns", &mut mark);
                served = Some((cbuf, ws));
            }
            // Ship window k-1's replies while this window's batch drains.
            if let Some((prev_requests, prev_served)) = owed.take() {
                total += ship_read_replies(
                    ctx,
                    comm,
                    &host,
                    &pieces,
                    dst,
                    &prev_requests,
                    prev_served,
                    &mut mark,
                );
            }
            owed = Some((requests, served));
        } else {
            // Aggregator: read coalesced coverage, ship pieces back.
            let mut served: Option<(VirtAddr, u64)> = None;
            if let (Some(&cbuf), Some((ws, _we))) =
                (cbufs.first(), sweep.window(comm.rank(), phase))
            {
                let runs = merge_runs(piece_descs(&requests));
                let reqs: Vec<(u64, VirtAddr, u64)> = runs
                    .iter()
                    .map(|(off, len)| (*off, cbuf.offset(off - ws), *len))
                    .collect();
                charge_phase(ctx, "mpiio.twophase.aggregation_ns", &mut mark);
                if cb_cache {
                    // Leased pages answer locally; misses fetch-and-keep.
                    for (off, addr, len) in &reqs {
                        file.adio().read_contig(ctx, *off, *addr, *len)?;
                    }
                } else {
                    file.adio().read_list(ctx, &reqs)?;
                }
                charge_phase(ctx, "mpiio.twophase.io_ns", &mut mark);
                served = Some((cbuf, ws));
            }
            total +=
                ship_read_replies(ctx, comm, &host, &pieces, dst, &requests, served, &mut mark);
        }
    }
    // Pipelined epilogue: the last window's batch and its reply round.
    drain_window_batch(ctx, pending.take(), &mut mark)?;
    if let Some((prev_requests, prev_served)) = owed.take() {
        total += ship_read_replies(
            ctx,
            comm,
            &host,
            &pieces,
            dst,
            &prev_requests,
            prev_served,
            &mut mark,
        );
    }
    for cbuf in cbufs {
        host.mem.free(cbuf);
    }
    mark = ctx.now();
    comm.barrier(ctx);
    // Time blocked at the closing barrier — mostly waiting on aggregator I/O.
    charge_phase(ctx, "mpiio.twophase.wait_ns", &mut mark);
    Ok(total)
}

/// `MPI_File_write_ordered`: every rank writes at the shared file pointer
/// in **rank order** — the collective counterpart of `write_shared`.
///
/// Implemented the ROMIO way: the sum of contributions is reserved with
/// one shared-pointer fetch-and-add (rank 0), the base is broadcast, and
/// each rank writes at `base + exclusive-prefix-sum(sizes)`. Requires a
/// driver with a shared-pointer primitive (DAFS).
pub fn write_ordered(
    ctx: &ActorCtx,
    comm: &Comm,
    file: &MpiFile,
    src: VirtAddr,
    nbytes: u64,
) -> AdioResult<u64> {
    let prefix = comm.exscan_u64(ctx, nbytes);
    let total = comm.allreduce_u64(ctx, crate::comm::ReduceOp::Sum, nbytes);
    let mut base_bytes = Vec::new();
    if comm.rank() == 0 {
        let base = file.adio().shared_fetch_add(ctx, total)?;
        base_bytes = base.to_le_bytes().to_vec();
    }
    comm.bcast(ctx, 0, &mut base_bytes);
    let base = u64::from_le_bytes(base_bytes.as_slice().try_into().unwrap());
    let view = file.view();
    let ranges = view.map(base + prefix, nbytes);
    file.write_ranges(ctx, &ranges, src)?;
    comm.barrier(ctx);
    Ok(nbytes)
}

/// `MPI_File_read_ordered`: rank-ordered reads at the shared pointer.
pub fn read_ordered(
    ctx: &ActorCtx,
    comm: &Comm,
    file: &MpiFile,
    dst: VirtAddr,
    nbytes: u64,
) -> AdioResult<u64> {
    let prefix = comm.exscan_u64(ctx, nbytes);
    let total = comm.allreduce_u64(ctx, crate::comm::ReduceOp::Sum, nbytes);
    let mut base_bytes = Vec::new();
    if comm.rank() == 0 {
        let base = file.adio().shared_fetch_add(ctx, total)?;
        base_bytes = base.to_le_bytes().to_vec();
    }
    comm.bcast(ctx, 0, &mut base_bytes);
    let base = u64::from_le_bytes(base_bytes.as_slice().try_into().unwrap());
    let view = file.view();
    let ranges = view.map(base + prefix, nbytes);
    let n = file.read_ranges(ctx, &ranges, dst)?;
    comm.barrier(ctx);
    Ok(n)
}

/// A split collective in flight (`MPI_File_*_all_begin` / `_all_end`).
///
/// This implementation completes the transfer eagerly in `begin` (the DAFS
/// driver pipelines internally) and `end` returns the stored result — the
/// MPI-2 split-collective API shape with immediate-completion semantics.
/// At most one split collective may be outstanding per file, as in MPI.
#[must_use = "split collectives must be completed with their _end call"]
pub struct SplitColl {
    result: AdioResult<u64>,
}

/// `MPI_File_write_at_all_begin`.
pub fn write_at_all_begin(
    ctx: &ActorCtx,
    comm: &Comm,
    file: &MpiFile,
    offset_etypes: u64,
    src: VirtAddr,
    nbytes: u64,
) -> SplitColl {
    SplitColl {
        result: write_at_all(ctx, comm, file, offset_etypes, src, nbytes),
    }
}

/// `MPI_File_write_at_all_end`.
pub fn write_at_all_end(_ctx: &ActorCtx, split: SplitColl) -> AdioResult<u64> {
    split.result
}

/// `MPI_File_read_at_all_begin`.
pub fn read_at_all_begin(
    ctx: &ActorCtx,
    comm: &Comm,
    file: &MpiFile,
    offset_etypes: u64,
    dst: VirtAddr,
    nbytes: u64,
) -> SplitColl {
    SplitColl {
        result: read_at_all(ctx, comm, file, offset_etypes, dst, nbytes),
    }
}

/// `MPI_File_read_at_all_end`.
pub fn read_at_all_end(_ctx: &ActorCtx, split: SplitColl) -> AdioResult<u64> {
    split.result
}

/// `MPI_File_write_all` (individual-pointer collective).
pub fn write_all(
    ctx: &ActorCtx,
    comm: &Comm,
    file: &MpiFile,
    src: VirtAddr,
    nbytes: u64,
) -> AdioResult<u64> {
    let etype = file.view().etype_size();
    assert!(nbytes.is_multiple_of(etype));
    let off = file.position();
    let r = write_at_all(ctx, comm, file, off, src, nbytes)?;
    file.seek(off + nbytes / etype);
    Ok(r)
}

/// `MPI_File_read_all`.
pub fn read_all(
    ctx: &ActorCtx,
    comm: &Comm,
    file: &MpiFile,
    dst: VirtAddr,
    nbytes: u64,
) -> AdioResult<u64> {
    let etype = file.view().etype_size();
    assert!(nbytes.is_multiple_of(etype));
    let off = file.position();
    let r = read_at_all(ctx, comm, file, off, dst, nbytes)?;
    file.seek(off + nbytes / etype);
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_runs_coalesces_overlaps() {
        let runs = vec![(10, 5), (0, 4), (14, 6), (30, 2)];
        assert_eq!(merge_runs(runs), vec![(0, 4), (10, 10), (30, 2)]);
        assert_eq!(merge_runs(vec![]), vec![]);
        // Adjacent runs merge.
        assert_eq!(merge_runs(vec![(0, 4), (4, 4)]), vec![(0, 8)]);
    }

    #[test]
    fn sweep_geometry_partitions_domain() {
        let s = Sweep {
            gmin: 1000,
            fd: 400,
            naggs: 3,
            cb: 150,
            phases: 3, // ceil(400/150)
            gmax: 2000,
        };
        // Domains tile [gmin, gmax) without gaps.
        assert_eq!(s.domain(0), (1000, 1400));
        assert_eq!(s.domain(1), (1400, 1800));
        assert_eq!(s.domain(2), (1800, 2000)); // clipped at gmax
                                               // Windows sweep each domain in cb-sized steps.
        assert_eq!(s.window(0, 0), Some((1000, 1150)));
        assert_eq!(s.window(0, 1), Some((1150, 1300)));
        assert_eq!(s.window(0, 2), Some((1300, 1400))); // clipped at domain end
                                                        // The short last domain runs out of windows early.
        assert_eq!(s.window(2, 0), Some((1800, 1950)));
        assert_eq!(s.window(2, 1), Some((1950, 2000)));
        assert_eq!(s.window(2, 2), None);
        // Union of all windows == union of all domains == [gmin, gmax).
        let mut covered = 0u64;
        for a in 0..s.naggs {
            for p in 0..s.phases {
                if let Some((ws, we)) = s.window(a, p) {
                    covered += we - ws;
                }
            }
        }
        assert_eq!(covered, s.gmax - s.gmin);
    }

    #[test]
    fn clip_intersects() {
        let p = Piece {
            off: 100,
            len: 50,
            buf_off: 7,
        };
        let c = clip(&p, 120, 140).unwrap();
        assert_eq!((c.off, c.len, c.buf_off), (120, 20, 27));
        assert!(clip(&p, 150, 200).is_none());
        assert!(clip(&p, 0, 100).is_none());
        // Full containment.
        let c = clip(&p, 0, 1000).unwrap();
        assert_eq!((c.off, c.len, c.buf_off), (100, 50, 7));
    }
}
