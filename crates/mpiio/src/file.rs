//! `MPI_File`: open/close, file views, independent I/O (with data
//! sieving), file pointers (individual and shared), nonblocking requests,
//! and consistency operations.
//!
//! Offsets follow MPI: explicit offsets and file pointers count in
//! **etypes** relative to the current view; transfer lengths are given in
//! bytes (a multiple of the etype size, as MPI's `count × datatype`
//! implies). Memory buffers are contiguous simulated-memory ranges — the
//! common case; noncontiguity lives on the *file* side via the view.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use simnet::{ActorCtx, Host, VirtAddr};

use crate::adio::{AdioError, AdioFile, AdioFs, AdioResult, DriverKind};
use crate::datatype::Datatype;
use crate::hints::{Hints, TriState};
use crate::view::FileView;

/// Open mode.
#[derive(Debug, Clone, Copy, Default)]
pub struct OpenMode {
    /// Create the file (and missing parent directories) if absent.
    pub create: bool,
    /// Delete the file when closed (scratch files).
    pub delete_on_close: bool,
}

impl OpenMode {
    /// `MPI_MODE_CREATE | MPI_MODE_RDWR`.
    pub fn create() -> OpenMode {
        OpenMode {
            create: true,
            delete_on_close: false,
        }
    }

    /// Plain read/write of an existing file.
    pub fn open() -> OpenMode {
        OpenMode::default()
    }
}

/// Builder-style open, so new knobs extend the builder instead of growing
/// the [`MpiFile::open`] signature:
///
/// ```ignore
/// let file = OpenOptions::new()
///     .create(true)
///     .hints(hints)
///     .open(ctx, adio, &host, "/data.out")?;
/// ```
#[derive(Debug, Clone, Default)]
pub struct OpenOptions {
    mode: OpenMode,
    hints: Hints,
}

impl OpenOptions {
    /// Defaults: plain read/write of an existing file, default hints.
    pub fn new() -> OpenOptions {
        OpenOptions::default()
    }

    /// Create the file (and missing parents) if absent (`MPI_MODE_CREATE`).
    pub fn create(mut self, yes: bool) -> OpenOptions {
        self.mode.create = yes;
        self
    }

    /// Delete the file when closed (`MPI_MODE_DELETE_ON_CLOSE`).
    pub fn delete_on_close(mut self, yes: bool) -> OpenOptions {
        self.mode.delete_on_close = yes;
        self
    }

    /// Replace the whole mode at once.
    pub fn mode(mut self, mode: OpenMode) -> OpenOptions {
        self.mode = mode;
        self
    }

    /// I/O-strategy hints (`MPI_Info`).
    pub fn hints(mut self, hints: Hints) -> OpenOptions {
        self.hints = hints;
        self
    }

    /// Open `path` on `fs` with the collected options.
    pub fn open(
        &self,
        ctx: &ActorCtx,
        fs: &dyn AdioFs,
        host: &Host,
        path: &str,
    ) -> AdioResult<MpiFile> {
        MpiFile::open(ctx, fs, host, path, self.mode, self.hints.clone())
    }
}

/// Whence modes for [`MpiFile::seek_whence`] (`MPI_SEEK_*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeekWhence {
    /// Absolute (`MPI_SEEK_SET`).
    Set,
    /// Relative to the individual pointer (`MPI_SEEK_CUR`).
    Cur,
    /// Relative to the view's end of file (`MPI_SEEK_END`).
    End,
}

/// A completed-or-pending nonblocking operation (`MPI_Request`).
///
/// Wraps the driver-level [`AdioRequest`]: on DAFS and NFS the I/O is
/// genuinely in flight (issued but not collected) until `wait`, so the
/// caller can overlap computation or communication with it. Drivers
/// without split-phase support complete eagerly at post time.
#[must_use = "requests must be waited on"]
pub struct Request {
    inner: crate::adio::AdioRequest,
}

impl Request {
    /// Complete the request, returning bytes transferred.
    pub fn wait(self, ctx: &ActorCtx) -> AdioResult<u64> {
        self.inner.wait(ctx)
    }

    /// Nonblocking completion test (`MPI_Test`): true once the transfer
    /// has fully landed. `wait` must still be called to collect the
    /// result.
    pub fn test(&mut self, ctx: &ActorCtx) -> bool {
        self.inner.test(ctx)
    }
}

/// An open MPI file handle (per rank).
pub struct MpiFile {
    file: Arc<dyn AdioFile>,
    path: String,
    mode: OpenMode,
    driver: DriverKind,
    host: Host,
    view: Mutex<FileView>,
    /// Individual file pointer, in etypes.
    fp: Mutex<u64>,
    hints: Hints,
    atomic: AtomicBool,
}

impl MpiFile {
    /// Open `path` on `fs` (each rank calls this; collective open is the
    /// harness calling it on every rank).
    pub fn open(
        ctx: &ActorCtx,
        fs: &dyn AdioFs,
        host: &Host,
        path: &str,
        mode: OpenMode,
        hints: Hints,
    ) -> AdioResult<MpiFile> {
        // Surface inert hints the application supplied: counted (and
        // traced) here because hint parsing itself has no metrics context.
        for key in hints.unknown_keys() {
            ctx.metrics().counter("mpiio.hints.unknown").inc();
            ctx.trace("mpiio", "hints.unknown", &[("key", obs::Value::Str(key))]);
        }
        let file = fs.open_with_hints(ctx, path, mode.create, &hints)?;
        Ok(MpiFile {
            file,
            path: path.to_string(),
            mode,
            driver: fs.kind(),
            host: host.clone(),
            view: Mutex::new(FileView::contiguous()),
            fp: Mutex::new(0),
            hints,
            atomic: AtomicBool::new(false),
        })
    }

    /// Close; honors delete_on_close.
    pub fn close(self, ctx: &ActorCtx, fs: &dyn AdioFs) -> AdioResult<()> {
        if self.mode.delete_on_close {
            fs.delete(ctx, &self.path)?;
        }
        Ok(())
    }

    /// Which driver backs this file.
    pub fn driver(&self) -> DriverKind {
        self.driver
    }

    /// The hints in effect.
    pub fn hints(&self) -> &Hints {
        &self.hints
    }

    /// The rank-local host (for buffer allocation in helpers).
    pub fn host(&self) -> &Host {
        &self.host
    }

    /// The underlying ADIO handle (collective I/O uses it directly).
    pub(crate) fn adio(&self) -> &Arc<dyn AdioFile> {
        &self.file
    }

    /// Set the file view (`MPI_File_set_view`); resets file pointers.
    pub fn set_view(&self, disp: u64, etype: &Datatype, filetype: &Datatype) {
        *self.view.lock() = FileView::new(disp, etype, filetype);
        *self.fp.lock() = 0;
    }

    /// Current view (cloned).
    pub fn view(&self) -> FileView {
        self.view.lock().clone()
    }

    /// `MPI_File_set_atomicity`.
    pub fn set_atomicity(&self, on: bool) {
        self.atomic.store(on, Ordering::Relaxed);
    }

    /// Current atomicity mode.
    pub fn atomicity(&self) -> bool {
        self.atomic.load(Ordering::Relaxed)
    }

    /// File size in bytes (`MPI_File_get_size`).
    pub fn get_size(&self, ctx: &ActorCtx) -> AdioResult<u64> {
        self.file.get_size(ctx)
    }

    /// Truncate / extend (`MPI_File_set_size`).
    pub fn set_size(&self, ctx: &ActorCtx, size: u64) -> AdioResult<()> {
        self.file.set_size(ctx, size)
    }

    /// Ensure at least `size` bytes exist (`MPI_File_preallocate`).
    pub fn preallocate(&self, ctx: &ActorCtx, size: u64) -> AdioResult<()> {
        if self.file.get_size(ctx)? < size {
            self.file.set_size(ctx, size)?;
        }
        Ok(())
    }

    /// Flush to stable storage (`MPI_File_sync`).
    pub fn sync(&self, ctx: &ActorCtx) -> AdioResult<()> {
        self.file.flush(ctx)
    }

    // --- explicit-offset independent I/O -----------------------------------

    /// `MPI_File_read_at`: read `nbytes` at view offset `offset_etypes`
    /// into `dst`. Returns bytes read.
    pub fn read_at(
        &self,
        ctx: &ActorCtx,
        offset_etypes: u64,
        dst: VirtAddr,
        nbytes: u64,
    ) -> AdioResult<u64> {
        let view = self.view.lock().clone();
        let logical = offset_etypes * view.etype_size();
        let ranges = view.map(logical, nbytes);
        self.read_ranges(ctx, &ranges, dst)
    }

    /// `MPI_File_write_at`.
    pub fn write_at(
        &self,
        ctx: &ActorCtx,
        offset_etypes: u64,
        src: VirtAddr,
        nbytes: u64,
    ) -> AdioResult<u64> {
        let view = self.view.lock().clone();
        let logical = offset_etypes * view.etype_size();
        let ranges = view.map(logical, nbytes);
        self.write_ranges(ctx, &ranges, src)?;
        Ok(nbytes)
    }

    // --- individual file pointer -------------------------------------------

    /// Absolute seek of the individual pointer (etypes).
    pub fn seek(&self, offset_etypes: u64) {
        *self.fp.lock() = offset_etypes;
    }

    /// `MPI_File_seek` with a whence mode. Offsets are in etypes and may be
    /// negative for `Cur`/`End`.
    pub fn seek_whence(&self, ctx: &ActorCtx, offset: i64, whence: SeekWhence) -> AdioResult<u64> {
        let new = match whence {
            SeekWhence::Set => {
                assert!(offset >= 0, "absolute seek to a negative offset");
                offset as u64
            }
            SeekWhence::Cur => {
                let cur = *self.fp.lock() as i64;
                let n = cur + offset;
                assert!(n >= 0, "seek before the start of the view");
                n as u64
            }
            SeekWhence::End => {
                let view = self.view.lock().clone();
                let size = self.file.get_size(ctx)?;
                let logical_etypes = (view.logical_size(size) / view.etype_size()) as i64;
                let n = logical_etypes + offset;
                assert!(n >= 0, "seek before the start of the view");
                n as u64
            }
        };
        *self.fp.lock() = new;
        Ok(new)
    }

    /// `MPI_File_get_byte_offset`: the absolute file byte offset of a view
    /// offset (in etypes).
    pub fn get_byte_offset(&self, offset_etypes: u64) -> u64 {
        let view = self.view.lock().clone();
        let logical = offset_etypes * view.etype_size();
        view.map(logical, 1)
            .first()
            .map(|(o, _)| *o)
            .unwrap_or_else(|| view.physical_end(logical))
    }

    /// Current individual pointer (etypes).
    pub fn position(&self) -> u64 {
        *self.fp.lock()
    }

    /// `MPI_File_read`: read at the individual pointer, then advance it.
    pub fn read(&self, ctx: &ActorCtx, dst: VirtAddr, nbytes: u64) -> AdioResult<u64> {
        let etype = self.view.lock().etype_size();
        assert!(
            nbytes.is_multiple_of(etype),
            "transfer not a whole number of etypes"
        );
        let off = {
            let mut fp = self.fp.lock();
            let o = *fp;
            *fp += nbytes / etype;
            o
        };
        self.read_at(ctx, off, dst, nbytes)
    }

    /// `MPI_File_write`.
    pub fn write(&self, ctx: &ActorCtx, src: VirtAddr, nbytes: u64) -> AdioResult<u64> {
        let etype = self.view.lock().etype_size();
        assert!(
            nbytes.is_multiple_of(etype),
            "transfer not a whole number of etypes"
        );
        let off = {
            let mut fp = self.fp.lock();
            let o = *fp;
            *fp += nbytes / etype;
            o
        };
        self.write_at(ctx, off, src, nbytes)
    }

    // --- shared file pointer -------------------------------------------------

    /// `MPI_File_read_shared`: atomically claim the next `nbytes` of the
    /// shared stream and read them. Requires a driver with a shared-pointer
    /// primitive (DAFS).
    pub fn read_shared(&self, ctx: &ActorCtx, dst: VirtAddr, nbytes: u64) -> AdioResult<u64> {
        let logical = self.file.shared_fetch_add(ctx, nbytes)?;
        let view = self.view.lock().clone();
        let ranges = view.map(logical, nbytes);
        self.read_ranges(ctx, &ranges, dst)
    }

    /// `MPI_File_write_shared`.
    pub fn write_shared(&self, ctx: &ActorCtx, src: VirtAddr, nbytes: u64) -> AdioResult<u64> {
        let logical = self.file.shared_fetch_add(ctx, nbytes)?;
        let view = self.view.lock().clone();
        let ranges = view.map(logical, nbytes);
        self.write_ranges(ctx, &ranges, src)?;
        Ok(nbytes)
    }

    /// `MPI_File_seek_shared` (callers must make this collective).
    pub fn seek_shared(&self, ctx: &ActorCtx, offset_etypes: u64) -> AdioResult<()> {
        let etype = self.view.lock().etype_size();
        self.file.shared_set(ctx, offset_etypes * etype)
    }

    // --- memory-side datatypes ----------------------------------------------

    /// `MPI_File_read_at` with a *memory* datatype: the file-side stream
    /// (selected by the view) is scattered into memory at `dst_base`
    /// through `memtype`'s typemap (tiled by its extent).
    pub fn read_at_mem(
        &self,
        ctx: &ActorCtx,
        offset_etypes: u64,
        dst_base: VirtAddr,
        memtype: &Datatype,
        nbytes: u64,
    ) -> AdioResult<u64> {
        let flat = memtype.flatten();
        assert!(flat.size > 0, "zero-size memory datatype");
        assert!(flat.lb >= 0, "negative memory lower bound unsupported");
        // Fast path: dense memory type ≡ contiguous buffer.
        if flat.runs.len() == 1 && flat.runs[0] == (0, flat.extent) {
            return self.read_at(ctx, offset_etypes, dst_base, nbytes);
        }
        // Stage contiguously, then scatter through the typemap.
        let stage = self.host.mem.alloc(nbytes as usize);
        let n = self.read_at(ctx, offset_etypes, stage, nbytes)?;
        let data = self.host.mem.read_vec(stage, n as usize);
        let mut consumed = 0usize;
        let mut tile = 0u64;
        'outer: loop {
            for (roff, rlen) in &flat.runs {
                if consumed >= data.len() {
                    break 'outer;
                }
                let take = (*rlen as usize).min(data.len() - consumed);
                let dst = dst_base.offset(tile * flat.extent + (*roff - flat.lb) as u64);
                self.host.mem.write(dst, &data[consumed..consumed + take]);
                consumed += take;
            }
            tile += 1;
        }
        self.host
            .compute(ctx, simnet::cost::HostCost::default().copy(n));
        self.host.mem.free(stage);
        Ok(n)
    }

    /// `MPI_File_write_at` with a memory datatype: gather from memory
    /// through `memtype`, then write the stream through the view.
    pub fn write_at_mem(
        &self,
        ctx: &ActorCtx,
        offset_etypes: u64,
        src_base: VirtAddr,
        memtype: &Datatype,
        nbytes: u64,
    ) -> AdioResult<u64> {
        let flat = memtype.flatten();
        assert!(flat.size > 0, "zero-size memory datatype");
        assert!(flat.lb >= 0, "negative memory lower bound unsupported");
        if flat.runs.len() == 1 && flat.runs[0] == (0, flat.extent) {
            return self.write_at(ctx, offset_etypes, src_base, nbytes);
        }
        let stage = self.host.mem.alloc(nbytes as usize);
        let mut gathered = 0u64;
        let mut tile = 0u64;
        'outer: loop {
            for (roff, rlen) in &flat.runs {
                if gathered >= nbytes {
                    break 'outer;
                }
                let take = (*rlen).min(nbytes - gathered);
                let src = src_base.offset(tile * flat.extent + (*roff - flat.lb) as u64);
                let piece = self.host.mem.read_vec(src, take as usize);
                self.host.mem.write(stage.offset(gathered), &piece);
                gathered += take;
            }
            tile += 1;
        }
        self.host
            .compute(ctx, simnet::cost::HostCost::default().copy(nbytes));
        let r = self.write_at(ctx, offset_etypes, stage, nbytes);
        self.host.mem.free(stage);
        r
    }

    // --- nonblocking ---------------------------------------------------------

    /// Map a view range to batch requests consuming `buf` in order.
    fn batch_reqs(
        &self,
        offset_etypes: u64,
        buf: VirtAddr,
        nbytes: u64,
    ) -> Vec<(u64, VirtAddr, u64)> {
        let view = self.view.lock().clone();
        let logical = offset_etypes * view.etype_size();
        let mut consumed = 0u64;
        view.map(logical, nbytes)
            .into_iter()
            .map(|(off, len)| {
                let r = (off, buf.offset(consumed), len);
                consumed += len;
                r
            })
            .collect()
    }

    /// `MPI_File_iread_at`: issue the read split-phase and return a
    /// [`Request`]. No data sieving on the nonblocking path — sieving
    /// read-modify-writes staging buffers, which cannot stay in flight.
    pub fn iread_at(
        &self,
        ctx: &ActorCtx,
        offset_etypes: u64,
        dst: VirtAddr,
        nbytes: u64,
    ) -> Request {
        let reqs = self.batch_reqs(offset_etypes, dst, nbytes);
        Request {
            inner: self.file.iread_batch(ctx, &reqs),
        }
    }

    /// `MPI_File_iwrite_at`.
    pub fn iwrite_at(
        &self,
        ctx: &ActorCtx,
        offset_etypes: u64,
        src: VirtAddr,
        nbytes: u64,
    ) -> Request {
        let reqs = self.batch_reqs(offset_etypes, src, nbytes);
        Request {
            inner: self.file.iwrite_batch(ctx, &reqs),
        }
    }

    // --- strided engine ------------------------------------------------------

    /// Decide whether to data-sieve a range list.
    fn should_sieve(&self, ranges: &[(u64, u64)], toggle: TriState) -> bool {
        should_sieve_ranges(ranges, toggle)
    }

    /// Whether a mapped range list ships as wire-level list requests
    /// instead of sieving: the driver must have the vectored ops (per the
    /// `dafs_listio` hint captured at open) and the list must be sorted
    /// ascending and non-overlapping — the wire format's invariant.
    /// Unsorted lists keep the sieving/batch fallback, which preserves
    /// list-order buffer consumption.
    fn use_list_io(&self, ranges: &[(u64, u64)]) -> bool {
        self.file.list_io_enabled() && ranges.windows(2).all(|w| w[0].0 + w[0].1 <= w[1].0)
    }

    /// A range list as packed batch requests consuming `buf` in order.
    fn packed_reqs(ranges: &[(u64, u64)], buf: VirtAddr) -> Vec<(u64, VirtAddr, u64)> {
        let mut reqs = Vec::with_capacity(ranges.len());
        let mut consumed = 0u64;
        for (off, len) in ranges {
            reqs.push((*off, buf.offset(consumed), *len));
            consumed += *len;
        }
        reqs
    }

    /// Read a mapped range list into `dst` (ranges consume the buffer in
    /// order). Chooses between wire-level list I/O, batched range reads,
    /// and data sieving.
    pub(crate) fn read_ranges(
        &self,
        ctx: &ActorCtx,
        ranges: &[(u64, u64)],
        dst: VirtAddr,
    ) -> AdioResult<u64> {
        match ranges {
            [] => Ok(0),
            [(off, len)] => self.file.read_contig(ctx, *off, dst, *len),
            _ if self.use_list_io(ranges) => {
                self.file.read_list(ctx, &Self::packed_reqs(ranges, dst))
            }
            _ if self.should_sieve(ranges, self.hints.ds_read) => self.sieve_read(ctx, ranges, dst),
            _ => self.file.read_batch(ctx, &Self::packed_reqs(ranges, dst)),
        }
    }

    /// Write a mapped range list from `src`.
    pub(crate) fn write_ranges(
        &self,
        ctx: &ActorCtx,
        ranges: &[(u64, u64)],
        src: VirtAddr,
    ) -> AdioResult<()> {
        match ranges {
            [] => Ok(()),
            [(off, len)] => self.file.write_contig(ctx, *off, src, *len),
            // List writes put exactly the requested bytes — no
            // read-modify-write window, hence no whole-file lock.
            _ if self.use_list_io(ranges) => {
                self.file.write_list(ctx, &Self::packed_reqs(ranges, src))
            }
            _ if self.should_sieve(ranges, self.hints.ds_write) => {
                // Sieved writes read-modify-write whole windows, which
                // would clobber concurrent writers' bytes without a lock
                // (ROMIO requires fcntl locks for ds writes). Fall back to
                // per-range batched writes where the driver has no lock.
                match self.file.lock_file(ctx) {
                    Ok(()) => {
                        let r = self.sieve_write(ctx, ranges, src);
                        self.file.unlock_file(ctx)?;
                        r
                    }
                    Err(AdioError::NotSupported) => self.batch_write(ctx, ranges, src),
                    Err(e) => Err(e),
                }
            }
            _ => self.batch_write(ctx, ranges, src),
        }
    }

    fn batch_write(&self, ctx: &ActorCtx, ranges: &[(u64, u64)], src: VirtAddr) -> AdioResult<()> {
        self.file.write_batch(ctx, &Self::packed_reqs(ranges, src))
    }

    /// Data-sieving read: fetch whole windows, pick out the pieces.
    fn sieve_read(&self, ctx: &ActorCtx, ranges: &[(u64, u64)], dst: VirtAddr) -> AdioResult<u64> {
        let bufsize = self.hints.ind_rd_buffer_size.max(4096);
        let sieve = self.host.mem.alloc(bufsize as usize);
        let mut consumed = 0u64;
        let mut total = 0u64;
        let mut i = 0;
        while i < ranges.len() {
            let wstart = ranges[i].0;
            // Extend the window over as many ranges as fit.
            let mut j = i;
            while j < ranges.len() && ranges[j].0 + ranges[j].1 <= wstart + bufsize {
                j += 1;
            }
            if j == i {
                // Single range larger than the sieve buffer: read directly.
                let (off, len) = ranges[i];
                let n = self.file.read_contig(ctx, off, dst.offset(consumed), len)?;
                total += n;
                consumed += len;
                i += 1;
                continue;
            }
            let wend = ranges[j - 1].0 + ranges[j - 1].1;
            let wlen = wend - wstart;
            let got = self.file.read_contig(ctx, wstart, sieve, wlen)?;
            for (off, len) in &ranges[i..j] {
                let s = off - wstart;
                let avail = got.saturating_sub(s).min(*len);
                if avail > 0 {
                    // Copy out of the sieve buffer (charged like any copy).
                    let piece = self.host.mem.read_vec(sieve.offset(s), avail as usize);
                    self.host.mem.write(dst.offset(consumed), &piece);
                    self.host
                        .compute(ctx, simnet::cost::HostCost::default().copy(avail));
                    total += avail;
                }
                consumed += *len;
            }
            i = j;
        }
        self.host.mem.free(sieve);
        Ok(total)
    }

    /// Data-sieving write: read-modify-write whole windows.
    fn sieve_write(&self, ctx: &ActorCtx, ranges: &[(u64, u64)], src: VirtAddr) -> AdioResult<()> {
        let bufsize = self.hints.ind_wr_buffer_size.max(4096);
        let sieve = self.host.mem.alloc(bufsize as usize);
        let mut consumed = 0u64;
        let mut i = 0;
        while i < ranges.len() {
            let wstart = ranges[i].0;
            let mut j = i;
            while j < ranges.len() && ranges[j].0 + ranges[j].1 <= wstart + bufsize {
                j += 1;
            }
            if j == i {
                let (off, len) = ranges[i];
                self.file
                    .write_contig(ctx, off, src.offset(consumed), len)?;
                consumed += len;
                i += 1;
                continue;
            }
            let wend = ranges[j - 1].0 + ranges[j - 1].1;
            let wlen = wend - wstart;
            // RMW: read the window, overlay the pieces, write it back.
            let got = self.file.read_contig(ctx, wstart, sieve, wlen)?;
            if got < wlen {
                // The window tail is past EOF, so the read left that part
                // of the sieve buffer untouched — and the buffer is reused
                // across windows, so it may hold a previous window's bytes.
                // Zero it: the write-back below must fill inter-range gaps
                // past EOF with zeros, exactly like the per-range path's
                // hole fill, not with stale data.
                self.host
                    .mem
                    .fill(sieve.offset(got), (wlen - got) as usize, 0);
            }
            for (off, len) in &ranges[i..j] {
                let s = off - wstart;
                let piece = self.host.mem.read_vec(src.offset(consumed), *len as usize);
                self.host.mem.write(sieve.offset(s), &piece);
                self.host
                    .compute(ctx, simnet::cost::HostCost::default().copy(*len));
                consumed += *len;
            }
            self.file.write_contig(ctx, wstart, sieve, wlen)?;
            i = j;
        }
        self.host.mem.free(sieve);
        Ok(())
    }
}

/// Decide whether a range list is worth data-sieving.
///
/// The span heuristic and the sieve windows both assume offset-sorted
/// ranges. Ranges consume the user buffer ordinally, so *sorting* an
/// unsorted list here would silently permute the data; instead an unsorted
/// list is rejected — in release builds too, not just under `debug_assert`
/// — and falls back to the order-preserving batch path.
fn should_sieve_ranges(ranges: &[(u64, u64)], toggle: TriState) -> bool {
    if !ranges.windows(2).all(|w| w[0].0 <= w[1].0) {
        return false;
    }
    match toggle {
        TriState::Disable => false,
        TriState::Enable => ranges.len() > 1,
        TriState::Automatic => {
            if ranges.len() <= 4 {
                return false;
            }
            let payload: u64 = ranges.iter().map(|r| r.1).sum();
            let span =
                ranges.last().unwrap().0 + ranges.last().unwrap().1 - ranges.first().unwrap().0;
            // Sieve when the holes are less than ~2x the payload.
            payload * 3 >= span
        }
    }
}

/// Delete a file by path (`MPI_File_delete`).
pub fn mpi_file_delete(ctx: &ActorCtx, fs: &dyn AdioFs, path: &str) -> AdioResult<()> {
    fs.delete(ctx, path)
}

impl std::fmt::Debug for MpiFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MpiFile")
            .field("path", &self.path)
            .field("driver", &self.driver)
            .finish()
    }
}

#[allow(unused_imports)]
use AdioError as _AdioErrorUsed;

#[cfg(test)]
mod sieve_tests {
    use super::*;

    #[test]
    fn unsorted_ranges_are_rejected_not_sorted() {
        // Dense enough that the sorted version sieves under every policy…
        let sorted = [(0u64, 64u64), (64, 64), (192, 64), (256, 64), (320, 64)];
        assert!(should_sieve_ranges(&sorted, TriState::Enable));
        assert!(should_sieve_ranges(&sorted, TriState::Automatic));
        // …but any out-of-order list must take the order-preserving batch
        // path, because sieving replays ranges in offset order while the
        // user buffer is consumed in list order.
        let unsorted = [(192u64, 64u64), (0, 64), (64, 64), (256, 64), (320, 64)];
        assert!(!should_sieve_ranges(&unsorted, TriState::Enable));
        assert!(!should_sieve_ranges(&unsorted, TriState::Automatic));
        assert!(!should_sieve_ranges(&unsorted, TriState::Disable));
    }
}
