//! Job harness: assemble a whole simulated cluster — ranks, interconnect,
//! file server, transport — and run an MPI-IO program on it.
//!
//! This is what the examples, integration tests, and every experiment in
//! `EXPERIMENTS.md` use: pick a [`Backend`] (DAFS-over-VIA, NFS-over-TCP,
//! or node-local UFS), a rank count, and a closure of MPI-IO calls; get
//! back a [`JobReport`] of virtual time and resource accounting.

use std::sync::Arc;

use dafs::{DafsClient, DafsClientConfig, DafsServerCost};
use memfs::MemFs;
use nfsv3::{NfsClient, NfsClientConfig, NfsServerCost};
use obs::{Obs, Snapshot};
use parking_lot::Mutex;
use simnet::topo::{DumbbellSpec, ForwardingMode, QueuePolicy, Topology};
use simnet::{
    ActorCtx, Bandwidth, Cluster, FaultPlan, Host, HostId, SimDuration, SimKernel, SimTime,
};
use tcpnet::{TcpCost, TcpFabric};
use via::{ViaCost, ViaFabric};

use crate::adio::{
    set_current_host, AdioFs, DafsAdio, DafsStripedAdio, DriverKind, NfsAdio, UfsAdio, UfsCost,
};
use crate::comm::{Comm, CommCost};

/// Which file-access stack the job runs on.
#[derive(Clone)]
pub enum Backend {
    /// The paper's system: DAFS over VIA.
    Dafs {
        /// VIA fabric cost model (set `rdma_read_supported` for the
        /// direct-write ablation).
        via: ViaCost,
        /// Server cost model.
        server: DafsServerCost,
        /// Per-rank client/session configuration.
        client: DafsClientConfig,
    },
    /// The paper's system striped round-robin across several DAFS
    /// servers (one session per server per rank).
    DafsStriped {
        /// VIA fabric cost model.
        via: ViaCost,
        /// Per-server cost model.
        server: DafsServerCost,
        /// Per-rank, per-session client configuration.
        client: DafsClientConfig,
        /// Number of DAFS servers (hosts 0..servers-1).
        servers: usize,
    },
    /// The baseline: NFSv3 over the kernel TCP path.
    Nfs {
        /// TCP path cost model.
        tcp: TcpCost,
        /// Server cost model.
        server: NfsServerCost,
        /// Per-rank mount configuration.
        client: NfsClientConfig,
    },
    /// Node-local in-memory filesystem (each rank its own; the "local
    /// bound" comparator).
    Ufs {
        /// Local filesystem cost model.
        cost: UfsCost,
    },
}

impl Backend {
    /// Default DAFS backend (cLAN-like fabric).
    pub fn dafs() -> Backend {
        Backend::Dafs {
            via: ViaCost::default(),
            server: DafsServerCost::default(),
            client: DafsClientConfig::default(),
        }
    }

    /// Default striped-DAFS backend over `servers` servers.
    pub fn dafs_striped(servers: usize) -> Backend {
        Backend::DafsStriped {
            via: ViaCost::default(),
            server: DafsServerCost::default(),
            client: DafsClientConfig::default(),
            servers,
        }
    }

    /// Default NFS backend.
    pub fn nfs() -> Backend {
        Backend::Nfs {
            tcp: TcpCost::default(),
            server: NfsServerCost::default(),
            client: NfsClientConfig::default(),
        }
    }

    /// Default UFS backend.
    pub fn ufs() -> Backend {
        Backend::Ufs {
            cost: UfsCost::default(),
        }
    }

    /// Which ADIO driver this backend mounts.
    pub fn kind(&self) -> DriverKind {
        match self {
            Backend::Dafs { .. } => DriverKind::Dafs,
            Backend::DafsStriped { .. } => DriverKind::DafsStriped,
            Backend::Nfs { .. } => DriverKind::Nfs,
            Backend::Ufs { .. } => DriverKind::Ufs,
        }
    }
}

/// Wall-clock harness statistics for one run: how fast the *simulator
/// itself* executed, measured on the host machine. Orthogonal to every
/// virtual-time result — never fed into the metrics registry, and filtered
/// out of all byte-identity comparisons.
#[derive(Debug, Clone)]
pub struct WallStats {
    /// Host wall-clock time spent inside `kernel.run()`.
    pub elapsed: std::time::Duration,
    /// Simulation events dispatched during the run.
    pub sim_events: u64,
    /// Payload bytes that passed through refcounted buffers during the run
    /// (slab charges, i.e. unique bytes materialized — zero-copy views are
    /// free and do not count).
    pub bytes_buffered: u64,
    /// High-water mark of refcounted buffer bytes alive at once.
    pub peak_bytes_alive: u64,
}

impl WallStats {
    /// Simulation events dispatched per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.sim_events as f64 / self.elapsed.as_secs_f64()
    }

    /// MiB of buffered payload materialized per wall-clock second.
    pub fn mib_per_sec(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.bytes_buffered as f64 / (1 << 20) as f64 / self.elapsed.as_secs_f64()
    }
}

/// Post-run accounting.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Virtual time when the last rank finished.
    pub end_time: SimTime,
    /// Server host CPU busy time (zero for UFS).
    pub server_cpu: SimDuration,
    /// Server kernel (softirq) time — NFS only.
    pub server_kernel: SimDuration,
    /// Sum of rank-host CPU busy time.
    pub ranks_cpu: SimDuration,
    /// Server requests served.
    pub server_ops: u64,
    /// Which backend the job ran on.
    pub backend: DriverKind,
    /// Whether trace output (`MPIO_DAFS_TRACE`) was enabled for the run.
    pub traced: bool,
    /// The metrics registry frozen at `end_time`.
    pub snapshot: Snapshot,
    /// Wall-clock harness throughput for this run.
    pub wall: WallStats,
}

/// A fully assembled simulated cluster ready to run one job.
pub struct Testbed {
    kernel: SimKernel,
    cluster: Cluster,
    backend: Backend,
    /// The exported filesystem (server-side handle for test verification;
    /// server 0's piece filesystem on the striped backend).
    pub fs: MemFs,
    /// All server-side filesystems, in server order (one entry for the
    /// single-server backends; empty for UFS).
    pub server_fss: Vec<MemFs>,
    dafs_handles: Vec<dafs::DafsServerHandle>,
    nfs_handle: Option<nfsv3::NfsServerHandle>,
    via_fabric: Option<ViaFabric>,
    tcp_fabric: Option<TcpFabric>,
    /// Switched-fabric topology, when built via [`Testbed::switched`];
    /// `None` keeps the point-to-point wires (all pre-fabric testbeds).
    topology: Option<Arc<Topology>>,
    /// Intended client/rank count of a switched testbed (0 otherwise).
    clients: usize,
}

const PORT: u16 = 2049;

impl Testbed {
    /// Build the server side of a testbed. Observability follows the
    /// environment (`MPIO_DAFS_TRACE`); use [`Testbed::with_obs`] to inject
    /// a specific sink (deterministic trace tests).
    pub fn new(backend: Backend) -> Testbed {
        Testbed::with_obs(backend, Obs::from_env())
    }

    /// Build a testbed whose kernel uses the given observability handle.
    pub fn with_obs(backend: Backend, obs: Obs) -> Testbed {
        let kernel = SimKernel::with_obs(obs);
        let cluster = Cluster::new();
        let fs = MemFs::new();
        let mut server_fss = Vec::new();
        let mut dafs_handles = Vec::new();
        let mut nfs_handle = None;
        let mut via_fabric = None;
        let mut tcp_fabric = None;
        match &backend {
            Backend::Dafs { via, server, .. } => {
                let fabric = ViaFabric::new(*via);
                let nic = fabric.open_nic(cluster.add_host("server0"));
                dafs_handles.push(dafs::spawn_dafs_server(
                    &kernel,
                    &fabric,
                    nic,
                    fs.clone(),
                    PORT,
                    *server,
                ));
                server_fss.push(fs.clone());
                via_fabric = Some(fabric);
            }
            Backend::DafsStriped {
                via,
                server,
                servers,
                ..
            } => {
                assert!(*servers >= 1, "striped backend needs at least one server");
                let fabric = ViaFabric::new(*via);
                for s in 0..*servers {
                    // Server 0 exports the testbed's primary fs handle.
                    let sfs = if s == 0 { fs.clone() } else { MemFs::new() };
                    let nic = fabric.open_nic(cluster.add_host(&format!("server{s}")));
                    dafs_handles.push(dafs::spawn_dafs_server(
                        &kernel,
                        &fabric,
                        nic,
                        sfs.clone(),
                        PORT,
                        *server,
                    ));
                    server_fss.push(sfs);
                }
                via_fabric = Some(fabric);
            }
            Backend::Nfs { tcp, server, .. } => {
                let fabric = TcpFabric::new(*tcp);
                let host = cluster.add_host("server0");
                nfs_handle = Some(nfsv3::spawn_nfs_server(
                    &kernel,
                    &fabric,
                    host,
                    fs.clone(),
                    PORT,
                    *server,
                ));
                server_fss.push(fs.clone());
                tcp_fabric = Some(fabric);
            }
            Backend::Ufs { .. } => {}
        }
        Testbed {
            kernel,
            cluster,
            backend,
            fs,
            server_fss,
            dafs_handles,
            nfs_handle,
            via_fabric,
            tcp_fabric,
            topology: None,
            clients: 0,
        }
    }

    /// Build the canonical switched scale-out testbed: `servers` striped
    /// DAFS servers on one leaf switch, `clients` ranks on another, joined
    /// by a trunk carrying `servers × wire_bw ÷ oversub` — `oversub = 1` is
    /// a non-blocking fabric, larger values converge the leaves onto a
    /// thinner core. Ports forward cut-through with lossless backpressure
    /// (VIA-style link-level flow control), so existing recovery machinery
    /// is exercised only when a fault plan is attached.
    pub fn switched(clients: usize, servers: usize, oversub: u64) -> Testbed {
        Testbed::switched_with(clients, servers, oversub, 1, Obs::from_env(), None)
    }

    /// [`Testbed::switched`] with explicit rail count, observability sink,
    /// and optional fault plan (rail-down windows target the switch
    /// pseudo-hosts reachable via [`Testbed::topology`]).
    pub fn switched_with(
        clients: usize,
        servers: usize,
        oversub: u64,
        rails: usize,
        obs: Obs,
        plan: Option<FaultPlan>,
    ) -> Testbed {
        assert!(oversub >= 1, "oversubscription factor must be >= 1");
        let backend = Backend::dafs_striped(servers);
        let (wire_bw, wire_latency) = match &backend {
            Backend::DafsStriped { via, .. } => (via.wire_bw, via.wire_latency),
            _ => unreachable!(),
        };
        let mut tb = Testbed::with_obs(backend, obs);
        let trunk_bw = Bandwidth::bytes_per_sec(
            (wire_bw.as_bytes_per_sec() * servers as u64 / oversub).max(1),
        );
        let topo = Arc::new(Topology::dumbbell(
            &tb.cluster,
            &tb.server_hosts(),
            DumbbellSpec {
                port_bw: wire_bw,
                trunk_bw,
                latency: wire_latency,
                rails,
                queue_capacity: 64,
                pool_bytes: 0,
                mode: ForwardingMode::CutThrough,
                policy: QueuePolicy::Backpressure,
            },
        ));
        let fabric = tb
            .via_fabric
            .as_ref()
            .expect("striped backend has a VIA fabric");
        fabric.set_topology(topo.clone());
        if let Some(p) = plan {
            fabric.set_fault_plan(p);
        }
        tb.topology = Some(topo);
        tb.clients = clients;
        tb
    }

    /// The switched-fabric topology, if this testbed has one.
    pub fn topology(&self) -> Option<Arc<Topology>> {
        self.topology.clone()
    }

    /// Intended rank count of a switched testbed (what the sweep passes to
    /// [`Testbed::run`]); 0 for point-to-point testbeds.
    pub fn clients(&self) -> usize {
        self.clients
    }

    /// All host names in id order (servers first, then switch pseudo-hosts
    /// for switched testbeds, then ranks as they spawn). Host naming is
    /// uniform — `server<s>`/`rank<i>` — regardless of topology shape.
    pub fn host_names(&self) -> Vec<String> {
        (0..self.cluster.len())
            .map(|i| self.cluster.host(HostId(i)).name().to_string())
            .collect()
    }

    /// Build a testbed whose transport fabric is judged by `plan`: every
    /// DAFS/VIA or NFS/TCP message is subject to the plan's seeded loss,
    /// jitter, link-down and host-crash schedule. UFS has no network and
    /// ignores the plan.
    ///
    /// The plan is attached before any actor runs, so the server's accept
    /// path and every rank's session see it. Host ids are assigned in
    /// construction order — the file server is always host 0 and ranks are
    /// hosts 1..=N — which is what `host_crash` windows should target (see
    /// [`Testbed::server_host`]).
    pub fn with_obs_and_faults(backend: Backend, obs: Obs, plan: FaultPlan) -> Testbed {
        let tb = Testbed::with_obs(backend, obs);
        if let Some(f) = &tb.via_fabric {
            f.set_fault_plan(plan.clone());
        }
        if let Some(f) = &tb.tcp_fabric {
            f.set_fault_plan(plan);
        }
        tb
    }

    /// [`Testbed::with_obs_and_faults`] with environment-driven observability.
    pub fn with_faults(backend: Backend, plan: FaultPlan) -> Testbed {
        Testbed::with_obs_and_faults(backend, Obs::from_env(), plan)
    }

    /// The file server's host id (None for UFS) — the target for
    /// [`FaultPlanBuilder::host_crash`](simnet::FaultPlanBuilder::host_crash)
    /// windows.
    pub fn server_host(&self) -> Option<HostId> {
        self.server_hosts().first().copied()
    }

    /// All file-server host ids, in server order (construction order: the
    /// servers are always hosts 0..N-1, ranks follow). Singleton for the
    /// single-server backends; empty for UFS.
    pub fn server_hosts(&self) -> Vec<HostId> {
        if !self.dafs_handles.is_empty() {
            self.dafs_handles.iter().map(|h| h.host.id).collect()
        } else {
            self.nfs_handle.iter().map(|h| h.host.id).collect()
        }
    }

    /// Spawn `ranks` MPI processes running `body`, drive the simulation to
    /// completion, and return the accounting report.
    ///
    /// The closure receives `(ctx, comm, adio_fs)`; each rank gets its own
    /// client session (DAFS/NFS) or local filesystem (UFS).
    pub fn run<F>(self, ranks: usize, body: F) -> JobReport
    where
        F: Fn(&ActorCtx, &Comm, &dyn AdioFs) + Send + Sync + 'static,
    {
        let backend = self.backend.clone();
        let via_fabric = self.via_fabric.clone();
        let tcp_fabric = self.tcp_fabric.clone();
        let server_host_ids = self.server_hosts();
        let server_host_id = server_host_ids.first().copied();
        let rank_hosts: Arc<Mutex<Vec<Host>>> = Arc::new(Mutex::new(Vec::new()));
        let rh = rank_hosts.clone();
        let shared_fs = self.fs.clone();
        let body = Arc::new(body);
        crate::comm::spawn_ranks(
            &self.kernel,
            &self.cluster,
            CommCost::default(),
            ranks,
            move |ctx, comm| {
                let host = comm.host().clone();
                rh.lock().push(host.clone());
                set_current_host(&host);
                match &backend {
                    Backend::Dafs { client, .. } => {
                        let fabric = via_fabric.as_ref().unwrap();
                        let nic = fabric.open_nic(host.clone());
                        let c = DafsClient::connect(
                            ctx,
                            fabric,
                            &nic,
                            server_host_id.unwrap(),
                            PORT,
                            *client,
                        )
                        .expect("DAFS session");
                        let adio = DafsAdio::new(Arc::new(c));
                        body(ctx, comm, &adio);
                    }
                    Backend::DafsStriped { client, .. } => {
                        let fabric = via_fabric.as_ref().unwrap();
                        let nic = fabric.open_nic(host.clone());
                        // One session per server, all over the rank's NIC.
                        let clients: Vec<Arc<DafsClient>> = server_host_ids
                            .iter()
                            .map(|sid| {
                                Arc::new(
                                    DafsClient::connect(ctx, fabric, &nic, *sid, PORT, *client)
                                        .expect("DAFS session"),
                                )
                            })
                            .collect();
                        let adio = DafsStripedAdio::new(clients);
                        body(ctx, comm, &adio);
                    }
                    Backend::Nfs { client, .. } => {
                        let fabric = tcp_fabric.as_ref().unwrap();
                        let c = NfsClient::mount(
                            ctx,
                            fabric,
                            &host,
                            server_host_id.unwrap(),
                            PORT,
                            *client,
                        )
                        .expect("NFS mount");
                        let adio = NfsAdio::new(Arc::new(c));
                        body(ctx, comm, &adio);
                    }
                    Backend::Ufs { cost } => {
                        // Node-local model: all ranks share one filesystem
                        // object (an idealized shared local disk) so parallel
                        // jobs still see one namespace.
                        let adio = UfsAdio::new(shared_fs.clone(), host.clone(), *cost);
                        body(ctx, comm, &adio);
                    }
                }
            },
        );
        let obs = self.kernel.obs().clone();
        let ev0 = simnet::events_scheduled_global();
        let bytes0 = simnet::buf::bytes_total();
        let t0 = std::time::Instant::now();
        let end_time = self.kernel.run();
        let wall = WallStats {
            elapsed: t0.elapsed(),
            sim_events: simnet::events_scheduled_global() - ev0,
            bytes_buffered: simnet::buf::bytes_total() - bytes0,
            peak_bytes_alive: simnet::buf::bytes_peak(),
        };
        // Per-port fabric accounting lands in the report snapshot (the
        // trace stream's closing snapshot was already emitted by the
        // kernel; tests compare traces run-vs-rerun, so both miss it
        // identically).
        if let Some(t) = &self.topology {
            t.publish_metrics(obs.registry());
        }
        let ranks_cpu = rank_hosts
            .lock()
            .iter()
            .fold(SimDuration::ZERO, |acc, h| acc + h.cpu.busy());
        let (server_cpu, server_ops) = if !self.dafs_handles.is_empty() {
            self.dafs_handles
                .iter()
                .fold((SimDuration::ZERO, 0), |(cpu, ops), h| {
                    (cpu + h.host.cpu.busy(), ops + h.stats.ops.get())
                })
        } else if let Some(h) = &self.nfs_handle {
            (h.host.cpu.busy(), h.stats.ops.get())
        } else {
            (SimDuration::ZERO, 0)
        };
        let server_kernel = match (&self.nfs_handle, &self.tcp_fabric) {
            (Some(h), Some(f)) => f.kernel_busy(&h.host),
            _ => SimDuration::ZERO,
        };
        JobReport {
            end_time,
            server_cpu,
            server_kernel,
            ranks_cpu,
            server_ops,
            backend: self.backend.kind(),
            traced: obs.enabled(),
            snapshot: obs.snapshot(end_time.as_nanos()),
            wall,
        }
    }

    /// The kernel's observability handle (registry + tracer).
    pub fn obs(&self) -> &Obs {
        self.kernel.obs()
    }
}
