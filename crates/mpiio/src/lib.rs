//! # mpiio — MPI-IO on DAFS over VIA (the paper's contribution)
//!
//! An MPI-2 I/O implementation whose ADIO bottom end speaks the DAFS
//! protocol over the Virtual Interface Architecture, with NFS-over-TCP and
//! node-local drivers for comparison — the system the paper *"MPI/IO on
//! DAFS over VIA: Implementation and Performance Evaluation"* (IPPS 2002)
//! built and measured.
//!
//! Layers:
//! * [`comm`] — a simulated MPI communicator (ranks as deterministic
//!   actors; point-to-point with tag matching; barrier/bcast/allgather/
//!   alltoallv collectives).
//! * [`datatype`] / [`view`] — derived datatypes and file views, with the
//!   flattening and logical→physical translation all I/O goes through.
//! * `file` — `MPI_File`: independent I/O (explicit offset, individual
//!   and shared file pointers), data sieving for noncontiguous access,
//!   nonblocking requests, sync/atomicity.
//! * [`collective`] — two-phase collective I/O with configurable
//!   aggregators and collective-buffer sweeps.
//! * [`adio`] — the driver interface + DAFS/NFS/UFS drivers.
//! * [`hints`] — the ROMIO-compatible hint set.
//! * [`world`] — the cluster harness used by examples, tests, and the
//!   experiment suite.

#![warn(missing_docs)]

pub mod adio;
pub mod collective;
pub mod comm;
pub mod datatype;
pub mod file;
pub mod hints;
pub mod view;
pub mod world;

pub use adio::{
    AdioError, AdioFile, AdioFs, AdioRequest, AdioResult, DafsAdio, DafsStripedAdio, DriverKind,
    IoFault, NfsAdio, PendingIo, UfsAdio, UfsCost,
};
pub use collective::{
    read_all, read_at_all, read_at_all_begin, read_at_all_end, read_ordered, write_all,
    write_at_all, write_at_all_begin, write_at_all_end, write_ordered, SplitColl,
};
pub use comm::{Comm, CommCost, CommWorld, ReduceOp, TrafficStats};
pub use datatype::{Datatype, Flattened};
pub use file::{mpi_file_delete, MpiFile, OpenMode, OpenOptions, Request, SeekWhence};
pub use hints::{HintKind, HintValue, Hints, TriState};
pub use view::FileView;
pub use world::{Backend, JobReport, Testbed};

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::SimDuration;

    /// Write a rank-striped file collectively on `backend`, read it back
    /// independently, verify every byte on the server.
    fn striped_roundtrip(backend: Backend, ranks: usize, block: usize) {
        let tb = Testbed::new(backend);
        let fs = tb.fs.clone();
        let report = tb.run(ranks, move |ctx, comm, adio| {
            let host = comm.host().clone();
            let file = MpiFile::open(
                ctx,
                adio,
                &host,
                "/data/striped.bin",
                OpenMode::create(),
                Hints::default(),
            )
            .unwrap();
            // View: this rank owns every `ranks`-th block of `block` bytes.
            let el = Datatype::bytes(block as u64);
            let ft = Datatype::resized(
                &Datatype::hindexed(&[(1, (comm.rank() * block) as i64)], &el),
                0,
                (ranks * block) as u64,
            );
            file.set_view(0, &el, &ft);
            let src = host.mem.alloc(2 * block);
            for b in 0..2 {
                host.mem.fill(
                    src.offset((b * block) as u64),
                    block,
                    (comm.rank() * 2 + b + 1) as u8,
                );
            }
            write_at_all(ctx, comm, &file, 0, src, (2 * block) as u64).unwrap();
            comm.barrier(ctx);
            // Read back my stripes independently and verify.
            let dst = host.mem.alloc(2 * block);
            let n = file.read_at(ctx, 0, dst, (2 * block) as u64).unwrap();
            assert_eq!(n, (2 * block) as u64);
            for b in 0..2 {
                let got = host.mem.read_vec(dst.offset((b * block) as u64), block);
                assert_eq!(got, vec![(comm.rank() * 2 + b + 1) as u8; block]);
            }
        });
        assert!(report.end_time.as_nanos() > 0);
        // Server-side byte check: block r of round b belongs to rank r.
        let attr = fs.resolve("/data/striped.bin").unwrap();
        assert_eq!(attr.size, (2 * ranks * block) as u64);
        for b in 0..2 {
            for r in 0..ranks {
                let off = (b * ranks * block + r * block) as u64;
                let got = fs.read(attr.id, off, 4).unwrap();
                assert_eq!(got, vec![(r * 2 + b + 1) as u8; 4], "round {b} rank {r}");
            }
        }
    }

    #[test]
    fn striped_collective_roundtrip_dafs() {
        striped_roundtrip(Backend::dafs(), 4, 64 << 10);
    }

    #[test]
    fn striped_collective_roundtrip_nfs() {
        striped_roundtrip(Backend::nfs(), 4, 64 << 10);
    }

    #[test]
    fn striped_collective_roundtrip_ufs() {
        striped_roundtrip(Backend::ufs(), 4, 64 << 10);
    }

    #[test]
    fn striped_collective_roundtrip_dafs_striped() {
        // The full MPI-level path (views + two-phase collective + sieving
        // heuristics) over the striped driver, 2 servers.
        let ranks = 4usize;
        let block = 64 << 10; // == the stripe unit below
        let servers = 2usize;
        let tb = Testbed::new(Backend::dafs_striped(servers));
        let fss = tb.server_fss.clone();
        tb.run(ranks, move |ctx, comm, adio| {
            let host = comm.host().clone();
            let mut hints = Hints::default();
            hints.set("striping_unit", &(64 << 10).to_string());
            let file = MpiFile::open(
                ctx,
                adio,
                &host,
                "/data/striped.bin",
                OpenMode::create(),
                hints,
            )
            .unwrap();
            let el = Datatype::bytes(block as u64);
            let ft = Datatype::resized(
                &Datatype::hindexed(&[(1, (comm.rank() * block) as i64)], &el),
                0,
                (ranks * block) as u64,
            );
            file.set_view(0, &el, &ft);
            let src = host.mem.alloc(2 * block);
            for b in 0..2 {
                host.mem.fill(
                    src.offset((b * block) as u64),
                    block,
                    (comm.rank() * 2 + b + 1) as u8,
                );
            }
            write_at_all(ctx, comm, &file, 0, src, (2 * block) as u64).unwrap();
            comm.barrier(ctx);
            let dst = host.mem.alloc(2 * block);
            let n = file.read_at(ctx, 0, dst, (2 * block) as u64).unwrap();
            assert_eq!(n, (2 * block) as u64);
            for b in 0..2 {
                let got = host.mem.read_vec(dst.offset((b * block) as u64), block);
                assert_eq!(got, vec![(comm.rank() * 2 + b + 1) as u8; block]);
            }
            // The logical size is assembled from per-server piece sizes.
            let f = adio.open(ctx, "/data/striped.bin", false).unwrap();
            assert_eq!(f.get_size(ctx).unwrap(), (2 * ranks * block) as u64);
        });
        // Server-side distribution check: logical block g (of 8) lives on
        // server g % 2 at local block g / 2, and block g = b*ranks + r
        // carries rank r's round-b fill byte.
        let stripe = 64 << 10;
        let blocks = 2 * ranks;
        for (s, fs) in fss.iter().enumerate() {
            let attr = fs.resolve("/data/striped.bin").unwrap();
            assert_eq!(
                attr.size,
                (blocks / servers * stripe) as u64,
                "server {s} piece size"
            );
        }
        for g in 0..blocks {
            let fs = &fss[g % servers];
            let attr = fs.resolve("/data/striped.bin").unwrap();
            let local = ((g / servers) * stripe) as u64;
            let expect = ((g % ranks) * 2 + g / ranks + 1) as u8;
            assert_eq!(
                fs.read(attr.id, local, 4).unwrap(),
                vec![expect; 4],
                "logical block {g}"
            );
        }
    }

    #[test]
    fn striping_factor_hint_restricts_servers() {
        // striping_factor=1 on a 2-server mount: all bytes land on server
        // 0, server 1 never sees the file.
        let tb = Testbed::new(Backend::dafs_striped(2));
        let fss = tb.server_fss.clone();
        tb.run(1, move |ctx, comm, adio| {
            let hints = Hints::from_pairs([("striping_factor", "1")]);
            let f = adio.open_with_hints(ctx, "/one.bin", true, &hints).unwrap();
            let host = comm.host().clone();
            let src = host.mem.alloc(256 << 10);
            host.mem.fill(src, 256 << 10, 0x5A);
            f.write_contig(ctx, 0, src, 256 << 10).unwrap();
            assert_eq!(f.get_size(ctx).unwrap(), 256 << 10);
        });
        let attr = fss[0].resolve("/one.bin").unwrap();
        assert_eq!(attr.size, 256 << 10);
        assert_eq!(fss[0].read(attr.id, 0, 8).unwrap(), vec![0x5A; 8]);
        assert!(
            fss[1].resolve("/one.bin").is_err(),
            "server 1 must stay empty"
        );
    }

    #[test]
    fn independent_contiguous_partition() {
        // Each rank writes its own contiguous slab at an explicit offset.
        let tb = Testbed::new(Backend::dafs());
        let fs = tb.fs.clone();
        const SLAB: usize = 256 << 10;
        tb.run(4, move |ctx, comm, adio| {
            let host = comm.host().clone();
            let file = MpiFile::open(
                ctx,
                adio,
                &host,
                "/slabs",
                OpenMode::create(),
                Hints::default(),
            )
            .unwrap();
            let src = host.mem.alloc(SLAB);
            host.mem.fill(src, SLAB, comm.rank() as u8 + 0x40);
            file.write_at(ctx, (comm.rank() * SLAB) as u64, src, SLAB as u64)
                .unwrap();
            comm.barrier(ctx);
            assert_eq!(file.get_size(ctx).unwrap(), (4 * SLAB) as u64);
        });
        let attr = fs.resolve("/slabs").unwrap();
        for r in 0..4 {
            let got = fs.read(attr.id, (r * SLAB) as u64, 2).unwrap();
            assert_eq!(got, vec![r as u8 + 0x40; 2]);
        }
    }

    #[test]
    fn individual_pointer_sequential_io() {
        let tb = Testbed::new(Backend::dafs());
        tb.run(1, |ctx, comm, adio| {
            let host = comm.host().clone();
            let f = MpiFile::open(
                ctx,
                adio,
                &host,
                "/seq",
                OpenMode::create(),
                Hints::default(),
            )
            .unwrap();
            let buf = host.mem.alloc(100);
            host.mem.fill(buf, 100, 1);
            f.write(ctx, buf, 100).unwrap();
            host.mem.fill(buf, 100, 2);
            f.write(ctx, buf, 100).unwrap();
            assert_eq!(f.position(), 200);
            f.seek(0);
            let dst = host.mem.alloc(200);
            assert_eq!(f.read(ctx, dst, 200).unwrap(), 200);
            assert_eq!(host.mem.read_vec(dst, 1), vec![1]);
            assert_eq!(host.mem.read_vec(dst.offset(100), 1), vec![2]);
        });
    }

    #[test]
    fn shared_pointer_partitions_stream_dafs() {
        // 4 ranks each write_shared 3 chunks; the 12 chunks must tile the
        // file without gaps or overlaps.
        let tb = Testbed::new(Backend::dafs());
        let fs = tb.fs.clone();
        const CHUNK: usize = 1 << 10;
        tb.run(4, move |ctx, comm, adio| {
            let host = comm.host().clone();
            let f = MpiFile::open(
                ctx,
                adio,
                &host,
                "/shared",
                OpenMode::create(),
                Hints::default(),
            )
            .unwrap();
            let src = host.mem.alloc(CHUNK);
            host.mem.fill(src, CHUNK, comm.rank() as u8 + 1);
            for _ in 0..3 {
                f.write_shared(ctx, src, CHUNK as u64).unwrap();
            }
            comm.barrier(ctx);
        });
        let attr = fs.resolve("/shared").unwrap();
        assert_eq!(attr.size, (12 * CHUNK) as u64);
        // Each chunk is uniformly one rank's fill; count 3 chunks per rank.
        let mut counts = [0usize; 5];
        for k in 0..12 {
            let b = fs.read(attr.id, (k * CHUNK) as u64, CHUNK as u64).unwrap();
            assert!(b.iter().all(|&x| x == b[0]), "chunk {k} torn");
            counts[b[0] as usize] += 1;
        }
        assert_eq!(&counts[1..], &[3, 3, 3, 3]);
    }

    #[test]
    fn shared_pointer_unsupported_on_nfs() {
        let tb = Testbed::new(Backend::nfs());
        tb.run(1, |ctx, comm, adio| {
            let host = comm.host().clone();
            let f = MpiFile::open(ctx, adio, &host, "/x", OpenMode::create(), Hints::default())
                .unwrap();
            let b = host.mem.alloc(8);
            assert_eq!(
                f.write_shared(ctx, b, 8).unwrap_err(),
                AdioError::NotSupported
            );
        });
    }

    #[test]
    fn nonblocking_requests_complete() {
        let tb = Testbed::new(Backend::dafs());
        tb.run(1, |ctx, comm, adio| {
            let host = comm.host().clone();
            let f = MpiFile::open(
                ctx,
                adio,
                &host,
                "/nb",
                OpenMode::create(),
                Hints::default(),
            )
            .unwrap();
            let src = host.mem.alloc(4096);
            host.mem.fill(src, 4096, 9);
            let mut w = f.iwrite_at(ctx, 0, src, 4096);
            // Poll until the write lands, then collect it.
            while !w.test(ctx) {}
            assert_eq!(w.wait(ctx).unwrap(), 4096);
            let dst = host.mem.alloc(4096);
            let r = f.iread_at(ctx, 0, dst, 4096);
            assert_eq!(r.wait(ctx).unwrap(), 4096);
            assert_eq!(host.mem.read_vec(dst, 4), vec![9; 4]);
        });
    }

    #[test]
    fn set_size_sync_and_delete_on_close() {
        let tb = Testbed::new(Backend::dafs());
        let fs = tb.fs.clone();
        tb.run(1, |ctx, comm, adio| {
            let host = comm.host().clone();
            let mode = OpenMode {
                create: true,
                delete_on_close: true,
            };
            let f = MpiFile::open(ctx, adio, &host, "/scratch", mode, Hints::default()).unwrap();
            f.set_size(ctx, 1 << 20).unwrap();
            assert_eq!(f.get_size(ctx).unwrap(), 1 << 20);
            f.preallocate(ctx, 512).unwrap(); // smaller: no-op
            assert_eq!(f.get_size(ctx).unwrap(), 1 << 20);
            f.sync(ctx).unwrap();
            f.close(ctx, adio).unwrap();
        });
        assert!(fs.resolve("/scratch").is_err(), "delete_on_close");
    }

    #[test]
    fn strided_view_independent_write_with_sieving() {
        // One rank, noncontiguous view, ds_write enabled: the data must
        // land in the right holes and preserve what's between them.
        let tb = Testbed::new(Backend::dafs());
        let fs = tb.fs.clone();
        tb.run(1, move |ctx, comm, adio| {
            let host = comm.host().clone();
            let mut hints = Hints::default();
            hints.set("romio_ds_write", "enable");
            hints.set("romio_ds_read", "enable");
            let f = MpiFile::open(ctx, adio, &host, "/sieved", OpenMode::create(), hints).unwrap();
            // Pre-fill so RMW has something to preserve.
            let fill = host.mem.alloc(1 << 10);
            host.mem.fill(fill, 1 << 10, 0xEE);
            f.write_at(ctx, 0, fill, 1 << 10).unwrap();
            // View: 16 bytes taken every 64.
            let ft = Datatype::resized(&Datatype::bytes(16), 0, 64);
            f.set_view(0, &Datatype::bytes(1), &ft);
            let src = host.mem.alloc(8 * 16);
            host.mem.fill(src, 8 * 16, 0x33);
            f.write_at(ctx, 0, src, 8 * 16).unwrap();
            // Read back through the same view.
            let dst = host.mem.alloc(8 * 16);
            assert_eq!(f.read_at(ctx, 0, dst, 8 * 16).unwrap(), 8 * 16);
            assert_eq!(host.mem.read_vec(dst, 8 * 16), vec![0x33; 8 * 16]);
        });
        let attr = fs.resolve("/sieved").unwrap();
        let data = fs.read(attr.id, 0, 1 << 10).unwrap();
        for (i, &b) in data.iter().enumerate() {
            let expect = if i % 64 < 16 && i < 8 * 64 {
                0x33
            } else {
                0xEE
            };
            assert_eq!(b, expect, "byte {i}");
        }
    }

    #[test]
    fn etype_granular_offsets() {
        // File pointer arithmetic in 8-byte etypes.
        let tb = Testbed::new(Backend::ufs());
        tb.run(1, |ctx, comm, adio| {
            let host = comm.host().clone();
            let f = MpiFile::open(
                ctx,
                adio,
                &host,
                "/ints",
                OpenMode::create(),
                Hints::default(),
            )
            .unwrap();
            let el = Datatype::bytes(8);
            f.set_view(0, &el, &el);
            let one = host.mem.alloc(8);
            host.mem.write(one, &7u64.to_le_bytes());
            // Write the 5th element (byte offset 40).
            f.write_at(ctx, 5, one, 8).unwrap();
            assert_eq!(f.get_size(ctx).unwrap(), 48);
            let dst = host.mem.alloc(8);
            f.read_at(ctx, 5, dst, 8).unwrap();
            assert_eq!(host.mem.read_vec(dst, 8), 7u64.to_le_bytes());
        });
    }

    #[test]
    fn collective_on_interleaved_views_equals_independent() {
        // The same interleaved pattern written collectively and
        // independently must produce identical files.
        fn run(two_phase: bool) -> Vec<u8> {
            let tb = Testbed::new(Backend::dafs());
            let fs = tb.fs.clone();
            const BLOCK: usize = 8 << 10;
            const ROUNDS: usize = 4;
            tb.run(4, move |ctx, comm, adio| {
                let host = comm.host().clone();
                let mut hints = Hints::default();
                if !two_phase {
                    hints.set("romio_cb_write", "disable");
                }
                let f = MpiFile::open(ctx, adio, &host, "/cmp", OpenMode::create(), hints).unwrap();
                let el = Datatype::bytes(BLOCK as u64);
                let ft = Datatype::resized(
                    &Datatype::hindexed(&[(1, (comm.rank() * BLOCK) as i64)], &el),
                    0,
                    (4 * BLOCK) as u64,
                );
                f.set_view(0, &el, &ft);
                let src = host.mem.alloc(ROUNDS * BLOCK);
                for r in 0..ROUNDS {
                    host.mem.fill(
                        src.offset((r * BLOCK) as u64),
                        BLOCK,
                        (comm.rank() * ROUNDS + r) as u8,
                    );
                }
                write_at_all(ctx, comm, &f, 0, src, (ROUNDS * BLOCK) as u64).unwrap();
            });
            let attr = fs.resolve("/cmp").unwrap();
            fs.read(attr.id, 0, attr.size).unwrap()
        }
        let a = run(true);
        let b = run(false);
        assert_eq!(a.len(), 4 * 4 * (8 << 10));
        assert_eq!(a, b, "two-phase and independent files must match");
    }

    #[test]
    fn collective_read_matches_written_data() {
        let tb = Testbed::new(Backend::dafs());
        const BLOCK: usize = 16 << 10;
        tb.run(4, move |ctx, comm, adio| {
            let host = comm.host().clone();
            let f = MpiFile::open(
                ctx,
                adio,
                &host,
                "/cr",
                OpenMode::create(),
                Hints::default(),
            )
            .unwrap();
            let el = Datatype::bytes(BLOCK as u64);
            let ft = Datatype::resized(
                &Datatype::hindexed(&[(1, (comm.rank() * BLOCK) as i64)], &el),
                0,
                (4 * BLOCK) as u64,
            );
            f.set_view(0, &el, &ft);
            let src = host.mem.alloc(2 * BLOCK);
            host.mem.fill(src, 2 * BLOCK, comm.rank() as u8 + 10);
            write_at_all(ctx, comm, &f, 0, src, (2 * BLOCK) as u64).unwrap();
            comm.barrier(ctx);
            let dst = host.mem.alloc(2 * BLOCK);
            let n = read_at_all(ctx, comm, &f, 0, dst, (2 * BLOCK) as u64).unwrap();
            assert_eq!(n, (2 * BLOCK) as u64);
            assert_eq!(
                host.mem.read_vec(dst, 2 * BLOCK),
                vec![comm.rank() as u8 + 10; 2 * BLOCK]
            );
        });
    }

    #[test]
    fn write_all_advances_individual_pointer() {
        let tb = Testbed::new(Backend::ufs());
        tb.run(2, |ctx, comm, adio| {
            let host = comm.host().clone();
            let f = MpiFile::open(
                ctx,
                adio,
                &host,
                "/wa",
                OpenMode::create(),
                Hints::default(),
            )
            .unwrap();
            // Rank-interleaved 1 KiB blocks.
            let el = Datatype::bytes(1024);
            let ft = Datatype::resized(
                &Datatype::hindexed(&[(1, (comm.rank() * 1024) as i64)], &el),
                0,
                2048,
            );
            f.set_view(0, &el, &ft);
            let src = host.mem.alloc(1024);
            host.mem.fill(src, 1024, comm.rank() as u8 + 1);
            write_all(ctx, comm, &f, src, 1024).unwrap();
            assert_eq!(f.position(), 1); // one etype consumed
            write_all(ctx, comm, &f, src, 1024).unwrap();
            assert_eq!(f.position(), 2);
            // Read back both rounds.
            f.seek(0);
            let dst = host.mem.alloc(2048);
            assert_eq!(read_all(ctx, comm, &f, dst, 2048).unwrap(), 2048);
            assert_eq!(
                host.mem.read_vec(dst, 2048),
                vec![comm.rank() as u8 + 1; 2048]
            );
        });
    }

    #[test]
    fn seek_whence_modes() {
        let tb = Testbed::new(Backend::ufs());
        tb.run(1, |ctx, comm, adio| {
            let host = comm.host().clone();
            let f = MpiFile::open(
                ctx,
                adio,
                &host,
                "/sk",
                OpenMode::create(),
                Hints::default(),
            )
            .unwrap();
            // 8-byte etypes; write 10 elements.
            let el = Datatype::bytes(8);
            f.set_view(0, &el, &el);
            let buf = host.mem.alloc(80);
            f.write_at(ctx, 0, buf, 80).unwrap();
            // SEEK_END lands on element 10.
            assert_eq!(f.seek_whence(ctx, 0, SeekWhence::End).unwrap(), 10);
            assert_eq!(f.seek_whence(ctx, -3, SeekWhence::End).unwrap(), 7);
            assert_eq!(f.seek_whence(ctx, 2, SeekWhence::Cur).unwrap(), 9);
            assert_eq!(f.seek_whence(ctx, 4, SeekWhence::Set).unwrap(), 4);
            assert_eq!(f.position(), 4);
            // Under a strided view, END uses the view-relative length.
            let ft = Datatype::resized(&el, 0, 16); // every other element
            f.set_view(0, &el, &ft);
            // File is 80 bytes; the view covers elements at 0,16,32,48,64:
            // 5 full etypes.
            assert_eq!(f.seek_whence(ctx, 0, SeekWhence::End).unwrap(), 5);
        });
    }

    #[test]
    fn byte_offset_translation() {
        let tb = Testbed::new(Backend::ufs());
        tb.run(1, |ctx, comm, adio| {
            let host = comm.host().clone();
            let f = MpiFile::open(
                ctx,
                adio,
                &host,
                "/bo",
                OpenMode::create(),
                Hints::default(),
            )
            .unwrap();
            let el = Datatype::bytes(4);
            let ft = Datatype::resized(&el, 0, 16);
            f.set_view(100, &el, &ft);
            assert_eq!(f.get_byte_offset(0), 100);
            assert_eq!(f.get_byte_offset(1), 116);
            assert_eq!(f.get_byte_offset(3), 148);
        });
    }

    #[test]
    fn memory_datatype_scatter_gather() {
        // Write from a strided memory layout, read back into a different
        // strided layout; the file holds the packed stream.
        let tb = Testbed::new(Backend::dafs());
        let fs = tb.fs.clone();
        tb.run(1, move |ctx, comm, adio| {
            let host = comm.host().clone();
            let f = MpiFile::open(
                ctx,
                adio,
                &host,
                "/mem",
                OpenMode::create(),
                Hints::default(),
            )
            .unwrap();
            // Memory: 8 bytes taken every 32 (e.g. one field of a struct
            // array).
            let memtype = Datatype::resized(&Datatype::bytes(8), 0, 32);
            let src = host.mem.alloc(32 * 16);
            for i in 0..16u64 {
                host.mem.write(src.offset(i * 32), &i.to_le_bytes());
                host.mem.fill(src.offset(i * 32 + 8), 24, 0xFF); // padding
            }
            f.write_at_mem(ctx, 0, src, &memtype, 16 * 8).unwrap();
            // Read the packed stream back through a *different* memory
            // stride.
            let memtype2 = Datatype::resized(&Datatype::bytes(8), 0, 64);
            let dst = host.mem.alloc(64 * 16);
            let n = f.read_at_mem(ctx, 0, dst, &memtype2, 16 * 8).unwrap();
            assert_eq!(n, 128);
            for i in 0..16u64 {
                let got = host.mem.read_vec(dst.offset(i * 64), 8);
                assert_eq!(got, i.to_le_bytes());
            }
        });
        // The file itself is the packed 128-byte stream.
        let attr = fs.resolve("/mem").unwrap();
        assert_eq!(attr.size, 128);
        let data = fs.read(attr.id, 0, 128).unwrap();
        for i in 0..16u64 {
            assert_eq!(
                &data[(i * 8) as usize..(i * 8 + 8) as usize],
                i.to_le_bytes()
            );
        }
    }

    #[test]
    fn ordered_collective_partitions_in_rank_order() {
        let tb = Testbed::new(Backend::dafs());
        let fs = tb.fs.clone();
        tb.run(4, |ctx, comm, adio| {
            let host = comm.host().clone();
            let f = MpiFile::open(
                ctx,
                adio,
                &host,
                "/ord",
                OpenMode::create(),
                Hints::default(),
            )
            .unwrap();
            // Variable sizes per rank: (rank+1) KiB.
            let len = (comm.rank() + 1) * 1024;
            let src = host.mem.alloc(len);
            host.mem.fill(src, len, comm.rank() as u8 + 1);
            // Two rounds of ordered writes.
            write_ordered(ctx, comm, &f, src, len as u64).unwrap();
            write_ordered(ctx, comm, &f, src, len as u64).unwrap();
            // Ordered read-back: each rank reads its own-size slice again.
            let dst = host.mem.alloc(len);
            f.seek_shared(ctx, 0).unwrap();
            comm.barrier(ctx);
            let n = read_ordered(ctx, comm, &f, dst, len as u64).unwrap();
            assert_eq!(n, len as u64);
            assert_eq!(
                host.mem.read_vec(dst, len),
                vec![comm.rank() as u8 + 1; len]
            );
        });
        // File layout: round 0 = 1K of 1s, 2K of 2s, 3K of 3s, 4K of 4s;
        // then round 1 repeats.
        let attr = fs.resolve("/ord").unwrap();
        let round = 1024 + 2048 + 3072 + 4096;
        assert_eq!(attr.size, 2 * round as u64);
        let data = fs.read(attr.id, 0, attr.size).unwrap();
        for base in [0usize, round] {
            let mut off = base;
            for r in 0..4usize {
                let len = (r + 1) * 1024;
                assert!(
                    data[off..off + len].iter().all(|&b| b == r as u8 + 1),
                    "round@{base} rank {r}"
                );
                off += len;
            }
        }
    }

    #[test]
    fn split_collectives_roundtrip() {
        let tb = Testbed::new(Backend::dafs());
        tb.run(2, |ctx, comm, adio| {
            let host = comm.host().clone();
            let f = MpiFile::open(
                ctx,
                adio,
                &host,
                "/split",
                OpenMode::create(),
                Hints::default(),
            )
            .unwrap();
            let el = Datatype::bytes(4096);
            let ft = Datatype::resized(
                &Datatype::hindexed(&[(1, (comm.rank() * 4096) as i64)], &el),
                0,
                2 * 4096,
            );
            f.set_view(0, &el, &ft);
            let src = host.mem.alloc(8192);
            host.mem.fill(src, 8192, comm.rank() as u8 + 7);
            let split = write_at_all_begin(ctx, comm, &f, 0, src, 8192);
            // ("overlap" window here)
            assert_eq!(write_at_all_end(ctx, split).unwrap(), 8192);
            comm.barrier(ctx);
            let dst = host.mem.alloc(8192);
            let split = read_at_all_begin(ctx, comm, &f, 0, dst, 8192);
            assert_eq!(read_at_all_end(ctx, split).unwrap(), 8192);
            assert_eq!(
                host.mem.read_vec(dst, 8192),
                vec![comm.rank() as u8 + 7; 8192]
            );
        });
    }

    #[test]
    fn concurrent_sieved_writes_do_not_clobber() {
        // Four ranks write interleaved fine-grained blocks with data
        // sieving forced ON: each sieved RMW window overlaps other ranks'
        // bytes, so only the file lock keeps this correct.
        let tb = Testbed::new(Backend::dafs());
        let fs = tb.fs.clone();
        const BLOCK: u64 = 256;
        const ROUNDS: u64 = 16;
        const RANKS: usize = 4;
        tb.run(RANKS, move |ctx, comm, adio| {
            let host = comm.host().clone();
            let mut hints = Hints::default();
            hints.set("romio_cb_write", "disable");
            hints.set("romio_ds_write", "enable");
            let f = MpiFile::open(ctx, adio, &host, "/rmw", OpenMode::create(), hints).unwrap();
            let el = Datatype::bytes(BLOCK);
            let ft = Datatype::resized(
                &Datatype::hindexed(&[(1, (comm.rank() as u64 * BLOCK) as i64)], &el),
                0,
                RANKS as u64 * BLOCK,
            );
            f.set_view(0, &el, &ft);
            let src = host.mem.alloc((ROUNDS * BLOCK) as usize);
            host.mem
                .fill(src, (ROUNDS * BLOCK) as usize, comm.rank() as u8 + 1);
            // All ranks write concurrently; sieved RMW windows overlap.
            f.write_at(ctx, 0, src, ROUNDS * BLOCK).unwrap();
            comm.barrier(ctx);
        });
        let attr = fs.resolve("/rmw").unwrap();
        assert_eq!(attr.size, ROUNDS * RANKS as u64 * BLOCK);
        let data = fs.read(attr.id, 0, attr.size).unwrap();
        for round in 0..ROUNDS {
            for r in 0..RANKS {
                let start = ((round * RANKS as u64 + r as u64) * BLOCK) as usize;
                assert!(
                    data[start..start + BLOCK as usize]
                        .iter()
                        .all(|&b| b == r as u8 + 1),
                    "round {round} rank {r} clobbered"
                );
            }
        }
    }

    #[test]
    fn report_accounts_server_activity() {
        let tb = Testbed::new(Backend::nfs());
        let report = tb.run(2, |ctx, comm, adio| {
            let host = comm.host().clone();
            let f = MpiFile::open(
                ctx,
                adio,
                &host,
                "/acct",
                OpenMode::create(),
                Hints::default(),
            )
            .unwrap();
            let b = host.mem.alloc(64 << 10);
            f.write_at(ctx, (comm.rank() * (64 << 10)) as u64, b, 64 << 10)
                .unwrap();
        });
        assert_eq!(report.backend, DriverKind::Nfs);
        assert!(report.server_ops > 0);
        assert!(report.server_cpu > SimDuration::ZERO);
        assert!(report.server_kernel > SimDuration::ZERO);
        assert!(report.ranks_cpu > SimDuration::ZERO);
    }
}
