//! File views: the `(displacement, etype, filetype)` triple of
//! `MPI_File_set_view`, and the logical→physical offset translation every
//! read and write goes through.
//!
//! A view tiles the file with copies of the flattened filetype, one per
//! extent, starting at `disp`. Logical byte `n` of the stream maps to the
//! n-th payload byte of that tiling. [`FileView::map`] translates a
//! logical `(offset, len)` request into the corresponding list of physical
//! `(offset, len)` ranges, which the independent and collective I/O paths
//! then hand to the ADIO drivers.

use crate::datatype::{Datatype, Flattened};

/// An active file view.
#[derive(Debug, Clone)]
pub struct FileView {
    disp: u64,
    etype_size: u64,
    flat: Flattened,
}

impl FileView {
    /// Construct a view. The filetype's payload size must be a multiple of
    /// the etype size (MPI requirement).
    pub fn new(disp: u64, etype: &Datatype, filetype: &Datatype) -> FileView {
        let etype_size = etype.size().max(1);
        let flat = filetype.flatten();
        assert!(
            flat.size.is_multiple_of(etype_size),
            "filetype size {} not a multiple of etype size {}",
            flat.size,
            etype_size
        );
        assert!(flat.lb >= 0, "negative filetype lower bound unsupported");
        FileView {
            disp,
            etype_size,
            flat,
        }
    }

    /// The trivial byte-stream view at displacement 0.
    pub fn contiguous() -> FileView {
        FileView::new(0, &Datatype::bytes(1), &Datatype::bytes(1))
    }

    /// Bytes of payload per filetype tile.
    pub fn tile_size(&self) -> u64 {
        self.flat.size
    }

    /// The etype size in bytes (file pointers count in etypes).
    pub fn etype_size(&self) -> u64 {
        self.etype_size
    }

    /// True if the view is a pure byte stream (fast path).
    pub fn is_contiguous(&self) -> bool {
        self.disp == 0 && self.flat.runs.len() == 1 && self.flat.runs[0] == (0, self.flat.extent)
    }

    /// Translate a logical byte range into physical `(offset, len)` ranges,
    /// in stream order, adjacent ranges merged.
    ///
    /// `logical` is a byte offset into the view's data stream (callers
    /// convert etype offsets by multiplying with [`FileView::etype_size`]).
    pub fn map(&self, logical: u64, len: u64) -> Vec<(u64, u64)> {
        if len == 0 {
            return Vec::new();
        }
        let tile = self.flat.size;
        assert!(tile > 0, "I/O through a zero-size filetype");
        let mut out: Vec<(u64, u64)> = Vec::new();
        let mut remaining = len;
        let mut tile_idx = logical / tile;
        let mut within = logical % tile; // payload bytes to skip in this tile
        while remaining > 0 {
            let tile_base = self.disp + tile_idx * self.flat.extent;
            for (roff, rlen) in &self.flat.runs {
                if remaining == 0 {
                    break;
                }
                if within >= *rlen {
                    within -= *rlen;
                    continue;
                }
                let take = (*rlen - within).min(remaining);
                let phys = tile_base + (*roff - self.flat.lb) as u64 + within;
                match out.last_mut() {
                    Some((poff, plen)) if *poff + *plen == phys => *plen += take,
                    _ => out.push((phys, take)),
                }
                remaining -= take;
                within = 0;
            }
            tile_idx += 1;
        }
        out
    }

    /// Physical end offset of the logical position `logical` (useful for
    /// size computations): the physical offset just past the last byte of
    /// `map(0, logical)`.
    pub fn physical_end(&self, logical: u64) -> u64 {
        if logical == 0 {
            return self.disp;
        }
        let ranges = self.map(logical - 1, 1);
        ranges.last().map(|(o, l)| o + l).unwrap_or(self.disp)
    }

    /// Inverse mapping for `MPI_File_seek(..., MPI_SEEK_END)`: the number
    /// of logical payload bytes whose physical offsets lie strictly below
    /// `phys_size` (the file's current size).
    pub fn logical_size(&self, phys_size: u64) -> u64 {
        if phys_size <= self.disp {
            return 0;
        }
        let span = phys_size - self.disp;
        let full_tiles = span / self.flat.extent.max(1);
        let mut logical = full_tiles * self.flat.size;
        // Scan the partial tile.
        let tile_base = full_tiles * self.flat.extent;
        for (roff, rlen) in &self.flat.runs {
            let start = tile_base + (*roff - self.flat.lb) as u64;
            if start >= span {
                continue;
            }
            logical += (*rlen).min(span - start);
        }
        logical
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_view_is_identity() {
        let v = FileView::contiguous();
        assert!(v.is_contiguous());
        assert_eq!(v.map(0, 100), vec![(0, 100)]);
        assert_eq!(v.map(42, 8), vec![(42, 8)]);
        assert_eq!(v.etype_size(), 1);
    }

    #[test]
    fn displacement_shifts_everything() {
        let v = FileView::new(1000, &Datatype::bytes(1), &Datatype::bytes(1));
        assert_eq!(v.map(0, 10), vec![(1000, 10)]);
        assert_eq!(v.map(5, 10), vec![(1005, 10)]);
        assert!(!v.is_contiguous());
    }

    #[test]
    fn strided_view_maps_to_blocks() {
        // Filetype: take 4 bytes, skip 12 (vector 1×4 stride 16 via resized).
        let ft = Datatype::resized(&Datatype::bytes(4), 0, 16);
        let v = FileView::new(0, &Datatype::bytes(1), &ft);
        assert_eq!(v.tile_size(), 4);
        // 10 logical bytes = tiles 0,1 full + 2 bytes of tile 2.
        assert_eq!(v.map(0, 10), vec![(0, 4), (16, 4), (32, 2)]);
        // Mid-tile start.
        assert_eq!(v.map(2, 4), vec![(2, 2), (16, 2)]);
    }

    #[test]
    fn multi_run_tile() {
        // Filetype: bytes 0..2 and 6..8 of a 10-byte tile.
        let ft = Datatype::resized(
            &Datatype::hindexed(&[(1, 0), (1, 6)], &Datatype::bytes(2)),
            0,
            10,
        );
        let v = FileView::new(100, &Datatype::bytes(1), &ft);
        assert_eq!(v.tile_size(), 4);
        assert_eq!(v.map(0, 8), vec![(100, 2), (106, 2), (110, 2), (116, 2)]);
        // Skip the first run entirely.
        assert_eq!(v.map(2, 2), vec![(106, 2)]);
        // Start inside the second run.
        assert_eq!(v.map(3, 2), vec![(107, 1), (110, 1)]);
    }

    #[test]
    fn rank_partitioned_views_interleave() {
        // Classic 2-rank interleave: each rank sees alternate 8-byte blocks.
        let el = Datatype::bytes(8);
        let mk = |rank: i64| {
            let ft = Datatype::resized(&Datatype::hindexed(&[(1, rank * 8)], &el), 0, 16);
            FileView::new(0, &el, &ft)
        };
        let v0 = mk(0);
        let v1 = mk(1);
        assert_eq!(v0.map(0, 16), vec![(0, 8), (16, 8)]);
        assert_eq!(v1.map(0, 16), vec![(8, 8), (24, 8)]);
        // Together they cover the file without overlap.
    }

    #[test]
    fn adjacent_tiles_merge_when_contiguous() {
        // Filetype = 8 contiguous bytes with extent 8: tiling is seamless.
        let v = FileView::new(0, &Datatype::bytes(1), &Datatype::bytes(8));
        assert_eq!(v.map(0, 64), vec![(0, 64)]);
    }

    #[test]
    fn physical_end_tracks_mapping() {
        let ft = Datatype::resized(&Datatype::bytes(4), 0, 16);
        let v = FileView::new(0, &Datatype::bytes(1), &ft);
        assert_eq!(v.physical_end(0), 0);
        assert_eq!(v.physical_end(4), 4);
        assert_eq!(v.physical_end(5), 17);
        assert_eq!(v.physical_end(8), 20);
    }

    #[test]
    fn zero_len_maps_to_nothing() {
        let v = FileView::contiguous();
        assert!(v.map(123, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn etype_mismatch_rejected() {
        // Filetype carries 6 bytes; etype is 4: not a multiple.
        let ft = Datatype::bytes(6);
        FileView::new(0, &Datatype::bytes(4), &ft);
    }

    #[test]
    fn logical_size_inverts_physical_end() {
        // 4 bytes taken every 16, displacement 8.
        let ft = Datatype::resized(&Datatype::bytes(4), 0, 16);
        let v = FileView::new(8, &Datatype::bytes(1), &ft);
        for logical in [0u64, 1, 3, 4, 5, 9, 16, 17] {
            let phys = v.physical_end(logical);
            assert_eq!(v.logical_size(phys), logical, "logical={logical}");
        }
        // A physical size mid-hole counts only the data before it.
        // Tile 0 data = [8, 12); size 14 is in the hole.
        assert_eq!(v.logical_size(14), 4);
        // Size below the displacement: nothing.
        assert_eq!(v.logical_size(5), 0);
    }

    #[test]
    fn logical_size_inverts_physical_end_randomized() {
        // Property test over randomized multi-run filetypes: for every
        // logical length L, `logical_size(physical_end(L)) == L`, and the
        // mapping itself hands back exactly L sorted, disjoint payload
        // bytes. Exercises partial-tile edges the hand-picked cases miss.
        let mut rng = simnet::Rng64::new(0xF11E_711E);
        for trial in 0..200 {
            let nruns = rng.range_usize(1, 5);
            let mut entries = Vec::with_capacity(nruns);
            let mut off = rng.range(0, 4) as i64;
            for _ in 0..nruns {
                let len = rng.range(1, 9);
                entries.push((len, off));
                off += len as i64 + rng.range(0, 9) as i64;
            }
            let extent = off as u64 + rng.range(0, 9);
            let ft = Datatype::resized(
                &Datatype::hindexed(&entries, &Datatype::bytes(1)),
                0,
                extent,
            );
            let disp = rng.range(0, 64);
            let v = FileView::new(disp, &Datatype::bytes(1), &ft);
            let tile = v.tile_size();
            let probes = [
                0,
                1,
                tile - 1,
                tile,
                tile + 1,
                2 * tile - 1,
                3 * tile,
                rng.range(0, 4 * tile + 1),
                rng.range(0, 4 * tile + 1),
            ];
            for &logical in &probes {
                let phys = v.physical_end(logical);
                assert_eq!(
                    v.logical_size(phys),
                    logical,
                    "trial={trial} runs={entries:?} extent={extent} \
                     disp={disp} logical={logical} phys={phys}"
                );
                let ranges = v.map(0, logical);
                let total: u64 = ranges.iter().map(|r| r.1).sum();
                assert_eq!(total, logical, "trial={trial} mapped payload short");
                assert!(
                    ranges.windows(2).all(|w| w[0].0 + w[0].1 <= w[1].0),
                    "trial={trial} map produced unsorted/overlapping ranges: {ranges:?}"
                );
                if logical > 0 {
                    assert_eq!(
                        ranges.last().map(|(o, l)| o + l),
                        Some(phys),
                        "trial={trial} physical_end disagrees with map"
                    );
                }
            }
        }
    }

    #[test]
    fn subarray_view_2d_row_block() {
        // 2 ranks split a 4x4 byte matrix by rows; rank 1's view.
        let ft = Datatype::subarray(&[4, 4], &[2, 4], &[2, 0], &Datatype::bytes(1));
        let v = FileView::new(0, &Datatype::bytes(1), &ft);
        assert_eq!(v.map(0, 8), vec![(8, 8)]);
    }
}
